#!/usr/bin/env python
"""Serving-plane load benchmark -> BENCH_service.json, with a CI guard.

Measures the numbers the async sharded serving plane commits to:

- **sustained submit throughput** and **p50/p95/p99 submit latency** —
  ``--submissions`` (default 2000) POSTs issued by ``--clients``
  persistent keep-alive connections against the asyncio front end,
  spread over ``--unique`` distinct specs so the drain phase exercises
  dedup the way real duplicate traffic does;
- **drain rate** — jobs/s at which the scheduler empties the backlog
  the submit phase queued;
- **backpressure correctness** — a second, deliberately tiny service
  (queue cap ``--bp-queue-depth``, near-zero admission rate) is driven
  past its limits and must answer with 429/503, a ``Retry-After``
  header on every shed, and accurate shed counters on ``/metrics``;
- **SSE fan-out** — ``--sse-subscribers`` concurrent clients stream
  one finished job's replay; every subscriber must see the full replay
  and the terminal event.

Modes::

    PYTHONPATH=src python scripts/bench_service.py           # write BENCH_service.json
    PYTHONPATH=src python scripts/bench_service.py --check   # CI regression guard

``--check`` re-measures and compares against the committed
``BENCH_service.json``.  The backpressure and SSE invariants are
enforced on every host (they are correctness, not speed).  The
throughput/latency floors are enforced only on multi-core runners: on
a single-core host the client threads and the event loop contend for
one CPU, so the wall-clock numbers say nothing about the serving
plane and the guard is *skipped with a warning* (mirroring
``bench_sweep.py``'s parallel guard).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service import ExperimentService  # noqa: E402

SCHEMA = 1
DEFAULT_OUT = REPO / "BENCH_service.json"


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _submit_worker(host, port, specs, client_id, latencies, statuses, lock):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    local_lat, local_status = [], []
    try:
        for spec in specs:
            body = json.dumps(spec).encode()
            t0 = time.perf_counter()
            conn.request(
                "POST",
                "/jobs",
                body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Client-Id": client_id,
                },
            )
            resp = conn.getresponse()
            resp.read()
            local_lat.append(time.perf_counter() - t0)
            local_status.append(
                (resp.status, resp.getheader("Retry-After"))
            )
    finally:
        conn.close()
        with lock:
            latencies.extend(local_lat)
            statuses.extend(local_status)


def _sse_worker(host, port, path, counts, lock):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    events = 0
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        saw_terminal = False
        for raw in resp.fp:
            line = raw.decode("utf-8", "replace").strip()
            if line.startswith("event:"):
                events += 1
                kind = line.split(":", 1)[1].strip()
                if kind in ("job_done", "job_failed", "end"):
                    saw_terminal = True
    except (OSError, http.client.HTTPException):
        saw_terminal = False
    finally:
        conn.close()
        with lock:
            counts.append((events, saw_terminal))


def _bench_submit_drain(args, tmp):
    """Submit phase + drain phase against a full-size async service."""
    service = ExperimentService(
        db_path="memory://" if args.memory_store else os.path.join(
            tmp, "bench.sqlite"
        ),
        port=0,
        workers=args.workers,
        rate_cache=os.path.join(tmp, "rates.json"),
        frontend=args.frontend,
        max_queue_depth=max(4096, args.submissions + 64),
        admission_rate=1e9,
        admission_burst=1e9,
    )
    service.start()
    try:
        specs = [
            {
                "workload": "stereo",
                "caps_w": [160.0, 150.0],
                "scale": args.scale,
                "seed": 42 + (i % args.unique),
            }
            for i in range(args.submissions)
        ]
        per_client = [
            specs[k :: args.clients] for k in range(args.clients)
        ]
        latencies, statuses = [], []
        lock = threading.Lock()
        threads = [
            threading.Thread(
                target=_submit_worker,
                args=(
                    service.host,
                    service.port,
                    chunk,
                    f"bench-client-{k}",
                    latencies,
                    statuses,
                    lock,
                ),
            )
            for k, chunk in enumerate(per_client)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        submit_wall = time.perf_counter() - t0
        accepted = sum(1 for s, _ in statuses if s == 201)
        shed = sum(1 for s, _ in statuses if s in (429, 503))
        queued = service.scheduler.queue_depth()
        lat_sorted = sorted(latencies)
        submit = {
            "submitted": len(statuses),
            "accepted": accepted,
            "shed": shed,
            "wall_s": round(submit_wall, 3),
            "throughput_per_s": round(len(statuses) / submit_wall, 1),
            "p50_ms": round(_percentile(lat_sorted, 0.50) * 1e3, 2),
            "p95_ms": round(_percentile(lat_sorted, 0.95) * 1e3, 2),
            "p99_ms": round(_percentile(lat_sorted, 0.99) * 1e3, 2),
            "mean_ms": round(statistics.fmean(lat_sorted) * 1e3, 2),
        }
        t0 = time.perf_counter()
        drained = service.scheduler.drain(timeout=args.drain_timeout)
        drain_wall = time.perf_counter() - t0
        counts = service.scheduler.counts_by_state()
        drain = {
            "queued_at_submit_end": queued,
            "drained": bool(drained),
            "wall_s": round(drain_wall, 3),
            "jobs_per_s": round(queued / drain_wall, 2)
            if drain_wall > 0 and queued
            else 0.0,
            "completed": counts.get("done", 0),
            "failed": counts.get("failed", 0),
        }

        # SSE fan-out: every subscriber replays one finished job's
        # events and must reach its terminal frame.
        done_id = next(
            (j.id for j in service.scheduler.jobs() if j.state.value == "done"),
            None,
        )
        sse = {"subscribers": 0, "events_delivered": 0, "complete": 0}
        if done_id is not None and args.sse_subscribers > 0:
            counts_out = []
            sse_lock = threading.Lock()
            sse_threads = [
                threading.Thread(
                    target=_sse_worker,
                    args=(
                        service.host,
                        service.port,
                        f"/jobs/{done_id}/stream",
                        counts_out,
                        sse_lock,
                    ),
                )
                for _ in range(args.sse_subscribers)
            ]
            for t in sse_threads:
                t.start()
            for t in sse_threads:
                t.join()
            sse = {
                "subscribers": len(counts_out),
                "events_delivered": sum(n for n, _ in counts_out),
                "complete": sum(1 for _, ok in counts_out if ok),
            }
        return submit, drain, sse
    finally:
        service.shutdown(drain=False)


def _bench_backpressure(args, tmp):
    """Drive a tiny service past its limits; sheds must be explicit."""
    service = ExperimentService(
        db_path="memory://",
        port=0,
        workers=1,
        frontend=args.frontend,
        max_queue_depth=args.bp_queue_depth,
        admission_rate=1.0,
        admission_burst=args.bp_burst,
        recover=False,
    )
    # Workers idle: everything queues, so the bounded queue and the
    # rate limiter both trip deterministically.
    service.start(start_workers=False)
    try:
        statuses = []
        lock = threading.Lock()
        # Phase A — one hot client: its token bucket empties first, so
        # the sheds here are per-client 429 rate limits.
        specs = [
            {"workload": "stereo", "caps_w": [160.0], "seed": 1000 + i}
            for i in range(args.bp_submissions)
        ]
        _submit_worker(
            service.host,
            service.port,
            specs,
            "bench-hot-client",
            [],
            statuses,
            lock,
        )
        # Phase B — many distinct clients: each gets a fresh bucket, so
        # admissions continue until the bounded queue fills and the
        # sheds become 503 queue_full.
        fill_client = 0
        while (
            not any(s == 503 for s, _ in statuses)
            and fill_client < args.bp_queue_depth + 16
        ):
            specs = [
                {
                    "workload": "stereo",
                    "caps_w": [160.0],
                    "seed": 5000 + fill_client * 8 + i,
                }
                for i in range(int(args.bp_burst))
            ]
            _submit_worker(
                service.host,
                service.port,
                specs,
                f"bench-fill-{fill_client}",
                [],
                statuses,
                lock,
            )
            fill_client += 1
        shed_429 = sum(1 for s, _ in statuses if s == 429)
        shed_503 = sum(1 for s, _ in statuses if s == 503)
        sheds = [ra for s, ra in statuses if s in (429, 503)]
        retry_after_present = bool(sheds) and all(
            ra is not None and float(ra) > 0 for ra in sheds
        )
        depth = service.scheduler.queue_depth()
        shed_counts = service.admission.shed_counts()
        return {
            "queue_cap": args.bp_queue_depth,
            "submissions": len(statuses),
            "accepted": sum(1 for s, _ in statuses if s == 201),
            "shed_429": shed_429,
            "shed_503": shed_503,
            "retry_after_present": retry_after_present,
            "queue_depth_bounded": depth <= args.bp_queue_depth,
            "metrics_shed_total": sum(shed_counts.values()),
        }
    finally:
        service.shutdown(drain=False)


def measure(args):
    with tempfile.TemporaryDirectory() as tmp:
        submit, drain, sse = _bench_submit_drain(args, tmp)
        backpressure = _bench_backpressure(args, tmp)
    return {
        "schema": SCHEMA,
        "benchmark": "service-load",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "parameters": {
            "frontend": args.frontend,
            "submissions": args.submissions,
            "clients": args.clients,
            "unique": args.unique,
            "workers": args.workers,
            "scale": args.scale,
            "sse_subscribers": args.sse_subscribers,
        },
        "submit": submit,
        "drain": drain,
        "sse": sse,
        "backpressure": backpressure,
    }


def check(doc, baseline, args):
    """Return a list of failure strings (empty = guard passes)."""
    failures = []
    # Correctness invariants, every host.
    submit = doc["submit"]
    if submit["accepted"] + submit["shed"] != submit["submitted"]:
        failures.append(
            "submissions unaccounted for: "
            f"{submit['accepted']} accepted + {submit['shed']} shed != "
            f"{submit['submitted']} submitted"
        )
    if doc["drain"]["failed"]:
        failures.append(f"{doc['drain']['failed']} jobs FAILED during drain")
    if not doc["drain"]["drained"]:
        failures.append("queue did not fully drain within the timeout")
    bp = doc["backpressure"]
    if not bp["shed_429"]:
        failures.append(
            "backpressure phase produced no 429 despite a hot client "
            "far past its 1 job/s rate limit"
        )
    if not bp["shed_503"]:
        failures.append(
            "backpressure phase produced no 503 despite filling the "
            f"{bp['queue_cap']}-deep queue"
        )
    if not bp["retry_after_present"]:
        failures.append("a shed response was missing its Retry-After header")
    if not bp["queue_depth_bounded"]:
        failures.append("queue depth exceeded the admission cap")
    if bp["metrics_shed_total"] < bp["shed_429"] + bp["shed_503"]:
        failures.append(
            "shed counters on /metrics undercount the observed sheds"
        )
    sse = doc["sse"]
    if sse["subscribers"] and sse["complete"] < sse["subscribers"]:
        failures.append(
            f"only {sse['complete']}/{sse['subscribers']} SSE subscribers "
            "reached a terminal event"
        )
    # Throughput/latency floors, multi-core hosts only.
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        base_submit = baseline.get("submit") or {}
        base_tp = base_submit.get("throughput_per_s")
        if isinstance(base_tp, (int, float)) and base_tp > 0:
            floor = base_tp * (1.0 - args.tolerance)
            if submit["throughput_per_s"] < floor:
                failures.append(
                    f"submit throughput {submit['throughput_per_s']:.1f}/s "
                    f"below {floor:.1f}/s "
                    f"(committed {base_tp:.1f}/s, "
                    f"tolerance {args.tolerance:.0%})"
                )
        base_p99 = base_submit.get("p99_ms")
        if isinstance(base_p99, (int, float)) and base_p99 > 0:
            ceiling = base_p99 * (1.0 + args.tolerance) + args.latency_slack_ms
            if submit["p99_ms"] > ceiling:
                failures.append(
                    f"submit p99 {submit['p99_ms']:.1f} ms above "
                    f"{ceiling:.1f} ms (committed {base_p99:.1f} ms)"
                )
    else:
        print(
            "SKIP: single-core host — client threads and the event loop "
            "share one CPU, so the submit throughput/latency floors are "
            "not applicable; correctness invariants (backpressure, "
            "Retry-After, bounded queue, SSE completeness) were still "
            "enforced"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUT,
        help="committed baseline for --check",
    )
    parser.add_argument(
        "--frontend",
        choices=("thread", "async"),
        default="async",
        help="front end under load (default async)",
    )
    parser.add_argument("--submissions", type=int, default=2000)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument(
        "--unique",
        type=int,
        default=24,
        help="distinct specs among the submissions (the rest dedup)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--sse-subscribers", type=int, default=100)
    parser.add_argument("--drain-timeout", type=float, default=300.0)
    parser.add_argument(
        "--memory-store",
        action="store_true",
        help="bench against the in-memory store instead of SQLite",
    )
    parser.add_argument("--bp-submissions", type=int, default=64)
    parser.add_argument("--bp-queue-depth", type=int, default=8)
    parser.add_argument("--bp-burst", type=float, default=4.0)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.40,
        help="allowed fractional throughput/latency regression "
        "(default 0.40; submit latency in-process is noisy)",
    )
    parser.add_argument(
        "--latency-slack-ms",
        type=float,
        default=25.0,
        help="absolute p99 slack on top of the fractional tolerance",
    )
    parser.add_argument("--artifact", type=Path, default=None)
    parser.add_argument(
        "--archive",
        type=Path,
        default=None,
        help="also append the measured document into this observability "
        "archive (SQLite), so the bench trajectory accumulates",
    )
    args = parser.parse_args(argv)

    doc = measure(args)
    submit, drain, sse = doc["submit"], doc["drain"], doc["sse"]
    bp = doc["backpressure"]
    print(
        f"submit: {submit['submitted']} reqs via {args.clients} conns in "
        f"{submit['wall_s']:.2f}s -> {submit['throughput_per_s']:.1f}/s  "
        f"p50 {submit['p50_ms']:.1f} ms  p95 {submit['p95_ms']:.1f} ms  "
        f"p99 {submit['p99_ms']:.1f} ms  shed {submit['shed']}"
    )
    print(
        f"drain: {drain['queued_at_submit_end']} queued -> "
        f"{drain['wall_s']:.2f}s ({drain['jobs_per_s']:.2f} jobs/s), "
        f"{drain['completed']} done, {drain['failed']} failed"
    )
    print(
        f"sse: {sse['complete']}/{sse['subscribers']} subscribers "
        f"complete, {sse['events_delivered']} events delivered"
    )
    print(
        f"backpressure: {bp['accepted']} accepted, {bp['shed_429']}x429 + "
        f"{bp['shed_503']}x503, Retry-After "
        f"{'present' if bp['retry_after_present'] else 'MISSING'}, queue "
        f"{'bounded' if bp['queue_depth_bounded'] else 'UNBOUNDED'}"
    )

    if args.artifact is not None:
        args.artifact.parent.mkdir(parents=True, exist_ok=True)
        args.artifact.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote artifact {args.artifact}")

    if args.archive is not None:
        from repro.obs.archive import ObsArchive

        kind, run_id = ObsArchive(args.archive).ingest_bench(
            doc, source="bench_service"
        )
        print(f"archived as {run_id} ({kind}) in {args.archive}")

    if args.check:
        if not args.baseline.exists():
            print(f"FAIL: no committed baseline at {args.baseline}")
            return 1
        baseline = json.loads(args.baseline.read_text())
        failures = check(doc, baseline, args)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("OK: serving-plane invariants hold; floors within tolerance")
        return 0

    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
