#!/usr/bin/env python
"""CI smoke test for the experiment service.

Boots the service on an ephemeral port with a throwaway SQLite store,
submits a tiny sweep over HTTP, polls the job to DONE, and asserts
that ``/healthz`` answers and ``/metrics`` exposes the queue/state/
cache counters.  Exits non-zero on any failure; prints a one-line
summary per step so CI logs read as a transcript.

The whole sequence runs once per front end (``--frontend both``, the
default, covers the legacy threaded server and the asyncio server in
one invocation), so a regression in either transport fails CI.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--frontend both]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.service.api import ExperimentService

SPEC = {
    "workload": "stereo",
    "caps_w": [150.0],
    "repetitions": 1,
    "scale": 0.001,
}
TIMEOUT_S = 300.0

REQUIRED_METRICS = (
    "repro_queue_depth",
    'repro_jobs{state="done"}',
    'repro_jobs{state="queued"}',
    "repro_rate_cache_hits_total",
    "repro_rate_cache_misses_total",
    "repro_jobs_submitted_total",
    "repro_sweep_wall_seconds_count",
    # Engine-level series bridged in from repro.obs.metrics.
    "repro_engine_runs_total",
    "repro_engine_quanta_total",
    "repro_engine_traces_simulated_total",
    "repro_engine_rate_cache_hits_total",
    "repro_engine_rate_cache_misses_total",
    "repro_engine_run_seconds_count",
    'repro_engine_phase_seconds{phase="run"}',
)


def http(method: str, url: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.read()


def run_smoke(frontend: str) -> None:
    tmp = Path(tempfile.mkdtemp(prefix=f"repro-smoke-{frontend}-"))
    service = ExperimentService(
        db_path=tmp / "smoke.sqlite3",
        port=0,
        workers=2,
        rate_cache=tmp / "rates.json",
        frontend=frontend,
    )
    service.start()
    print(f"[smoke] {frontend} front end up at {service.url}")
    try:
        health = json.loads(http("GET", service.url + "/healthz"))
        assert health["status"] == "ok", health
        assert health["frontend"] == frontend, health
        print(f"[smoke] /healthz ok (workers={health['workers']}, "
              f"frontend={health['frontend']})")

        job = json.loads(http("POST", service.url + "/jobs", SPEC))
        print(f"[smoke] submitted job {job['id']} state={job['state']}")

        deadline = time.monotonic() + TIMEOUT_S
        while time.monotonic() < deadline:
            job = json.loads(http("GET", f"{service.url}/jobs/{job['id']}"))
            if job["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert job["state"] == "done", f"job did not finish: {job}"
        print(f"[smoke] job done after {job['attempts']} attempt(s)")

        result = json.loads(
            http("GET", f"{service.url}/jobs/{job['id']}/result")
        )
        rows = result["results"]["StereoMatching"]
        assert "baseline" in json.dumps(rows), rows
        print("[smoke] result document retrieved")

        twin = json.loads(http("POST", service.url + "/jobs", SPEC))
        assert twin["state"] == "done" and twin["deduplicated"], twin
        print("[smoke] identical resubmission was a store hit")

        metrics = http("GET", service.url + "/metrics").decode()
        for name in REQUIRED_METRICS:
            assert name in metrics, f"missing metric: {name}"
        print(f"[smoke] /metrics exposes all {len(REQUIRED_METRICS)} "
              "required series")
    finally:
        service.shutdown(drain=False)
        print(f"[smoke] {frontend} front end stopped")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--frontend",
        choices=("thread", "async", "both"),
        default="both",
        help="which HTTP front end(s) to smoke-test (default: both)",
    )
    args = parser.parse_args(argv)
    frontends = (
        ("thread", "async") if args.frontend == "both" else (args.frontend,)
    )
    for frontend in frontends:
        run_smoke(frontend)
    print(f"[smoke] PASS ({', '.join(frontends)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
