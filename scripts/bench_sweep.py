#!/usr/bin/env python
"""Table II sweep benchmark -> BENCH_sweep.json, with a CI guard.

Measures the three numbers docs/PERFORMANCE.md commits to:

- **sweep wall-clock** — the full Table II experiment (both paper
  workloads, all nine caps plus the uncapped baseline) at ``--jobs 1``
  (per-run and batch-engine paths) and ``--jobs 4``, with runs/s for
  each and the ``effective_jobs`` each sweep actually used after the
  single-core / tiny-chunk fallbacks;
- **single-run speedup** — one 120 W Stereo run through the scalar
  loop versus the block-step kernel, interleaved best-of-N so the two
  paths see the same thermal/cache conditions of the host;
- **block-step engagement** — the fraction of control quanta the
  120 W run retires inside the kernel (``block_quanta / quanta``).

Modes::

    PYTHONPATH=src python scripts/bench_sweep.py            # write BENCH_sweep.json
    PYTHONPATH=src python scripts/bench_sweep.py --check    # CI regression guard

``--check`` re-measures and compares against the committed
``BENCH_sweep.json``: it fails (exit 1) when the jobs=1 sweep
wall-clock regresses by more than ``--tolerance`` (default 20 %), or
when the machine-independent ratios degrade — single-run speedup
below ``--min-speedup``, kernel engagement below
``--min-engagement``, or the batched jobs=1 sweep slower than
``--min-batch-ratio`` of the per-run one.  The ratio guards are the
portable part of the contract (wall-clock shifts with host hardware;
the speedup and engagement of a deterministic simulation do not).

The parallel guard is gated on the host: on a >= 4-core runner the
jobs=4 sweep must reach ``--min-parallel-speedup`` (default 2.0x) over
jobs=1; on a single-core host the pool falls back to in-process
execution by design, so the guard is *skipped with a warning* instead
of failing (``effective_jobs`` in the artifact records the fallback).

Schema 2 artifacts add ``effective_jobs`` per sweep plus
``batch_runs_per_s`` and ``chunk_overhead_ms``; ``--check`` still
reads schema-1 baselines (the shared fields are compared, the new
ones skipped).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.config import PAPER_POWER_CAPS_W  # noqa: E402
from repro.core.experiment import PowerCapExperiment  # noqa: E402
from repro.core.runner import NodeRunner  # noqa: E402
from repro.workloads.sar import SireRsmWorkload  # noqa: E402
from repro.workloads.stereo import StereoMatchingWorkload  # noqa: E402

SCHEMA = 2
DEFAULT_OUT = REPO / "BENCH_sweep.json"


def _scaled(workload, scale):
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * scale,
    )
    return workload


def _bench_sweep(jobs, args, rate_cache, batch=None):
    """Wall-clock one full Table II sweep at the given worker count."""
    experiment = PowerCapExperiment(
        [
            _scaled(StereoMatchingWorkload(), args.scale),
            _scaled(SireRsmWorkload(), args.scale),
        ],
        caps_w=PAPER_POWER_CAPS_W,
        repetitions=args.repetitions,
        slice_accesses=args.slice_accesses,
        rate_cache=rate_cache,
        batch=batch,
    )
    runs = len(experiment._workloads) * (len(PAPER_POWER_CAPS_W) + 1)
    runs *= args.repetitions
    wall = float("inf")
    for _ in range(2):  # best-of-2: the guard wants a floor, not noise
        t0 = time.perf_counter()
        experiment.run_all(jobs=jobs)
        wall = min(wall, time.perf_counter() - t0)
    return {
        "jobs": jobs,
        "effective_jobs": experiment.last_effective_jobs,
        "batch": batch if batch is not None else True,
        "runs": runs,
        "wall_s": round(wall, 3),
        "runs_per_s": round(runs / wall, 3),
    }


def _bench_single_run(args):
    """Scalar vs block-step on one 120 W Stereo run, interleaved."""
    workload = _scaled(StereoMatchingWorkload(), args.scale)
    scalar = NodeRunner(
        slice_accesses=args.slice_accesses, block_step=False
    )
    block = NodeRunner(
        slice_accesses=args.slice_accesses, block_step=True
    )
    # Warm both runners' rate memoization so timing covers the control
    # loop, not the one-time trace simulation.
    scalar._run(workload, 120.0, 0)
    _, quanta, _, block_steps, block_quanta = block._run(
        workload, 120.0, 0
    )
    best_scalar = best_block = float("inf")
    for _ in range(args.number):
        t0 = time.perf_counter()
        scalar._run(workload, 120.0, 0)
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        t0 = time.perf_counter()
        block._run(workload, 120.0, 0)
        best_block = min(best_block, time.perf_counter() - t0)
    return {
        "workload": "StereoMatching",
        "cap_w": 120.0,
        "scalar_ms": round(best_scalar * 1e3, 3),
        "block_ms": round(best_block * 1e3, 3),
        "speedup": round(best_scalar / best_block, 2),
        "quanta": quanta,
        "block_steps": block_steps,
        "block_quanta": block_quanta,
        "engagement": round(block_quanta / quanta, 4),
    }


def measure(args):
    with tempfile.TemporaryDirectory() as tmp:
        # One shared on-disk rate cache, warmed by an untimed sweep
        # first: both timed sweeps then measure the control loop, not
        # the one-time trace simulation (same policy a user gets via
        # --rate-cache across repeated sweeps).
        cache = os.path.join(tmp, "rates.json")
        _bench_sweep(1, args, cache)
        jobs1 = _bench_sweep(1, args, cache, batch=False)
        jobs1_batch = _bench_sweep(1, args, cache, batch=True)
        jobs4 = _bench_sweep(4, args, cache)
    single = _bench_single_run(args)
    # Dispatch overhead the chunked pool pays beyond ideal scaling of
    # the batched serial sweep (0 when the pool fell back in-process).
    ideal = jobs1_batch["wall_s"] / max(1, jobs4["effective_jobs"])
    chunk_overhead_ms = round(max(0.0, jobs4["wall_s"] - ideal) * 1e3, 1)
    return {
        "schema": SCHEMA,
        "benchmark": "table2-sweep",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "parameters": {
            "scale": args.scale,
            "repetitions": args.repetitions,
            "slice_accesses": args.slice_accesses,
            "number": args.number,
            "caps_w": list(PAPER_POWER_CAPS_W),
        },
        "sweep": {
            "jobs1": jobs1,
            "jobs1_batch": jobs1_batch,
            "jobs4": jobs4,
            "parallel_speedup": round(
                jobs1["wall_s"] / jobs4["wall_s"], 2
            ),
            "batch_runs_per_s": jobs1_batch["runs_per_s"],
            "chunk_overhead_ms": chunk_overhead_ms,
        },
        "single_run_120w": single,
    }


def check(doc, baseline, args):
    """Return a list of failure strings (empty = guard passes)."""
    failures = []
    wall = doc["sweep"]["jobs1"]["wall_s"]
    base_wall = baseline["sweep"]["jobs1"]["wall_s"]
    limit = base_wall * (1.0 + args.tolerance)
    if wall > limit:
        failures.append(
            f"sweep wall-clock regressed: {wall:.2f}s vs committed "
            f"{base_wall:.2f}s (limit {limit:.2f}s, "
            f"tolerance {args.tolerance:.0%})"
        )
    speedup = doc["single_run_120w"]["speedup"]
    if speedup < args.min_speedup:
        failures.append(
            f"block-step speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x floor "
            f"(committed {baseline['single_run_120w']['speedup']:.2f}x)"
        )
    engagement = doc["single_run_120w"]["engagement"]
    if engagement < args.min_engagement:
        failures.append(
            f"kernel engagement {engagement:.1%} below the "
            f"{args.min_engagement:.0%} floor"
        )
    # Batched jobs=1 must stay within --min-batch-ratio of the per-run
    # path (the engine's contract is "never meaningfully slower"; the
    # big wins come from warm workers on multi-core hosts).
    ratio = (
        doc["sweep"]["batch_runs_per_s"]
        / doc["sweep"]["jobs1"]["runs_per_s"]
    )
    if ratio < args.min_batch_ratio:
        failures.append(
            f"batched sweep at {ratio:.2f}x of the per-run sweep, "
            f"below the {args.min_batch_ratio:.2f}x floor"
        )
    # Parallel guard, gated on the host: fan-out cannot help a
    # single-core runner (the pool falls back in-process by design),
    # so skip with a warning there instead of failing.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        speedup = doc["sweep"]["parallel_speedup"]
        if speedup < args.min_parallel_speedup:
            failures.append(
                f"parallel speedup {speedup:.2f}x at jobs=4 below the "
                f"{args.min_parallel_speedup:.1f}x floor on a "
                f"{cpus}-CPU host"
            )
    elif cpus > 1:
        if doc["sweep"]["jobs4"]["wall_s"] >= doc["sweep"]["jobs1"]["wall_s"]:
            failures.append(
                "jobs=4 sweep is not faster than jobs=1 on a "
                f"{cpus}-CPU host"
            )
    else:
        print(
            "SKIP: single-core host "
            f"(effective_jobs={doc['sweep']['jobs4']['effective_jobs']}) "
            "— parallel speedup guard not applicable; the "
            f">={args.min_parallel_speedup:.1f}x jobs=4 floor "
            "introduced with the warm-worker sweep engine has still "
            "only ever been asserted on multi-core CI, never verified "
            "on this class of host"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline and exit non-zero "
        "on regression (does not rewrite the baseline)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"artifact path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUT,
        help="committed baseline for --check",
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--repetitions", type=int, default=2)
    parser.add_argument("--slice-accesses", type=int, default=300_000)
    parser.add_argument(
        "--number",
        type=int,
        default=9,
        help="interleaved timing repetitions for the single-run pair",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional wall-clock regression (default 0.20)",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-engagement", type=float, default=0.75)
    parser.add_argument(
        "--min-batch-ratio",
        type=float,
        default=0.75,
        help="floor on batched/per-run jobs=1 throughput (default 0.75)",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=2.0,
        help="jobs=4 speedup floor, enforced on >=4-core hosts only",
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=None,
        help="also write the measured document here (any mode; CI "
        "uploads this without touching the committed baseline)",
    )
    parser.add_argument(
        "--archive",
        type=Path,
        default=None,
        help="also append the measured document into this observability "
        "archive (SQLite), so the bench trajectory accumulates",
    )
    args = parser.parse_args(argv)

    doc = measure(args)
    sweep = doc["sweep"]
    single = doc["single_run_120w"]
    print(
        f"sweep jobs=1: {sweep['jobs1']['wall_s']:.2f}s "
        f"({sweep['jobs1']['runs_per_s']:.2f} runs/s)  "
        f"batched: {sweep['jobs1_batch']['wall_s']:.2f}s "
        f"({sweep['batch_runs_per_s']:.2f} runs/s)  "
        f"jobs=4: {sweep['jobs4']['wall_s']:.2f}s "
        f"({sweep['jobs4']['runs_per_s']:.2f} runs/s, "
        f"effective {sweep['jobs4']['effective_jobs']})  "
        f"parallel x{sweep['parallel_speedup']:.2f}  "
        f"chunk overhead {sweep['chunk_overhead_ms']:.1f} ms"
    )
    print(
        f"single 120 W Stereo: scalar {single['scalar_ms']:.2f} ms, "
        f"block {single['block_ms']:.2f} ms -> x{single['speedup']:.2f}, "
        f"engagement {single['engagement']:.1%} "
        f"({single['block_quanta']}/{single['quanta']} quanta in "
        f"{single['block_steps']} blocks)"
    )

    if args.artifact is not None:
        args.artifact.parent.mkdir(parents=True, exist_ok=True)
        args.artifact.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote artifact {args.artifact}")

    if args.archive is not None:
        from repro.obs.archive import ObsArchive

        kind, run_id = ObsArchive(args.archive).ingest_bench(
            doc, source="bench_sweep"
        )
        print(f"archived as {run_id} ({kind}) in {args.archive}")

    if args.check:
        if not args.baseline.exists():
            print(f"FAIL: no committed baseline at {args.baseline}")
            return 1
        baseline = json.loads(args.baseline.read_text())
        if baseline.get("schema", 1) != SCHEMA:
            print(
                f"note: baseline schema {baseline.get('schema', 1)} vs "
                f"current {SCHEMA} — comparing shared fields only"
            )
        failures = check(doc, baseline, args)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(f"OK: within {args.tolerance:.0%} of the committed baseline")
        return 0

    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
