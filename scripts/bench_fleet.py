#!/usr/bin/env python
"""Fleet-scale engine benchmark -> BENCH_fleet.json, with a CI guard.

Measures the scaling number docs/FLEET.md commits to: sustained
node-steps/s of :class:`repro.fleet.engine.FleetEngine` at 1k, 10k and
100k nodes (diurnal traffic, hierarchical PROPORTIONAL division every
5 ticks, telemetry off so the timing covers the control loop and not
the recorder).

Modes::

    PYTHONPATH=src python scripts/bench_fleet.py            # write BENCH_fleet.json
    PYTHONPATH=src python scripts/bench_fleet.py --check    # CI regression guard

``--check`` re-measures and compares against the committed
``BENCH_fleet.json``: it fails (exit 1) when any size's node-steps/s
drops by more than ``--tolerance`` (default 20 %) below the committed
number, or when the 100k-node fleet falls below the absolute
``--min-node-steps`` floor (default 1e6 node-steps/s — the subsystem's
"simulated datacenter in real time" contract; wall-clock shifts with
host hardware, which is what the relative tolerance absorbs).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.dcm.group import DivisionStrategy  # noqa: E402
from repro.fleet import DiurnalTraffic, FleetEngine, FleetTopology  # noqa: E402

SCHEMA = 1
DEFAULT_OUT = REPO / "BENCH_fleet.json"
SIZES = (1_000, 10_000, 100_000)


def _topology(n_nodes):
    """A plausible grid for n_nodes: 32-node racks, 8 racks per row."""
    racks = max(1, n_nodes // 32)
    rows = max(1, racks // 8)
    racks_per_row = racks // rows
    return FleetTopology.build(
        rows=rows, racks_per_row=racks_per_row, nodes_per_rack=32
    )


def _bench_size(n_nodes, args):
    """Best-of-2 node-steps/s for one fleet size."""
    topo = _topology(n_nodes)
    n = topo.n_nodes
    ticks = max(10, args.node_steps_target // n)
    wall = float("inf")
    for _ in range(2):
        engine = FleetEngine(
            topo,
            DiurnalTraffic(),
            budget_w=0.8 * float(topo.max_cap_w.sum()),
            strategy=DivisionStrategy.PROPORTIONAL,
            rebalance_every=5,
            telemetry=False,
        )
        t0 = time.perf_counter()
        engine.run(float(ticks))
        wall = min(wall, time.perf_counter() - t0)
    node_steps = n * ticks
    return {
        "nodes": n,
        "rows": topo.n_rows,
        "racks": topo.n_racks,
        "ticks": ticks,
        "node_steps": node_steps,
        "wall_s": round(wall, 4),
        "node_steps_per_s": round(node_steps / wall, 1),
    }


def measure(args):
    sizes = [_bench_size(n, args) for n in SIZES]
    return {
        "schema": SCHEMA,
        "benchmark": "fleet-scale",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "parameters": {
            "node_steps_target": args.node_steps_target,
            "strategy": "proportional",
            "rebalance_every": 5,
            "traffic": "diurnal",
        },
        "sizes": {str(s["nodes"]): s for s in sizes},
    }


def check(doc, baseline, args):
    """Return a list of failure strings (empty = guard passes)."""
    failures = []
    base_cpus = (baseline.get("machine") or {}).get("cpu_count")
    cpus = os.cpu_count() or 1
    if base_cpus is not None and cpus != base_cpus:
        # The per-size floors track the committed baseline, which was
        # recorded on a different host class; the relative tolerance
        # absorbs some of the shift, but the committed numbers have
        # never been re-validated at this CPU count.
        print(
            f"NOTE: committed BENCH_fleet baseline was recorded on a "
            f"{base_cpus}-CPU host, checking on {cpus} CPUs — the "
            "baseline node-steps/s floors are unverified for this "
            "host class (only the absolute --min-node-steps floor is "
            "host-independent)"
        )
    for key, size in sorted(doc["sizes"].items(), key=lambda kv: int(kv[0])):
        rate = size["node_steps_per_s"]
        base = baseline["sizes"].get(key)
        if base is not None:
            floor = base["node_steps_per_s"] * (1.0 - args.tolerance)
            if rate < floor:
                failures.append(
                    f"{key} nodes: {rate:,.0f} node-steps/s regressed below "
                    f"{floor:,.0f} (committed "
                    f"{base['node_steps_per_s']:,.0f}, "
                    f"tolerance {args.tolerance:.0%})"
                )
    largest = doc["sizes"][str(max(int(k) for k in doc["sizes"]))]
    if largest["node_steps_per_s"] < args.min_node_steps:
        failures.append(
            f"{largest['nodes']} nodes: "
            f"{largest['node_steps_per_s']:,.0f} node-steps/s below the "
            f"absolute {args.min_node_steps:,.0f} floor"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline and exit non-zero "
        "on regression (does not rewrite the baseline)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"artifact path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUT,
        help="committed baseline for --check",
    )
    parser.add_argument(
        "--node-steps-target",
        type=int,
        default=4_000_000,
        help="node-steps per timed size (sets the tick count; "
        "default 4,000,000)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional node-steps/s regression (default 0.20)",
    )
    parser.add_argument(
        "--min-node-steps",
        type=float,
        default=1_000_000.0,
        help="absolute node-steps/s floor at the largest size "
        "(default 1e6)",
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=None,
        help="also write the measured document here (any mode; CI "
        "uploads this without touching the committed baseline)",
    )
    parser.add_argument(
        "--archive",
        type=Path,
        default=None,
        help="also append the measured document into this observability "
        "archive (SQLite), so the bench trajectory accumulates",
    )
    args = parser.parse_args(argv)

    doc = measure(args)
    for key, size in sorted(doc["sizes"].items(), key=lambda kv: int(kv[0])):
        print(
            f"{size['nodes']:>7,} nodes ({size['racks']:>4} racks): "
            f"{size['ticks']:>5} ticks in {size['wall_s']:.3f}s -> "
            f"{size['node_steps_per_s']:>13,.0f} node-steps/s"
        )

    if args.artifact is not None:
        args.artifact.parent.mkdir(parents=True, exist_ok=True)
        args.artifact.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote artifact {args.artifact}")

    if args.archive is not None:
        from repro.obs.archive import ObsArchive

        kind, run_id = ObsArchive(args.archive).ingest_bench(
            doc, source="bench_fleet"
        )
        print(f"archived as {run_id} ({kind}) in {args.archive}")

    if args.check:
        if not args.baseline.exists():
            print(f"FAIL: no committed baseline at {args.baseline}")
            return 1
        baseline = json.loads(args.baseline.read_text())
        failures = check(doc, baseline, args)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(f"OK: within {args.tolerance:.0%} of the committed baseline")
        return 0

    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
