#!/usr/bin/env python
"""CI smoke test for the observability layer.

Runs a tiny CLI sweep with ``--log-json --log-level info --trace-out``
in a subprocess (exactly what a user types) and asserts the
instrumentation products are well-formed:

- **stderr** is valid JSON lines, every record carrying the stable
  schema keys (``ts``, ``level``, ``logger``, ``event``);
- **the trace file** parses as Chrome ``trace_event`` JSON whose
  complete (``"ph": "X"``) spans account for at least 90% of the
  trace's wall-clock extent via the ``sweep`` span, and whose
  telemetry counter (``"ph": "C"``) events carry channel values;
- **stdout** is the sweep's JSON result document with a ``provenance``
  manifest recording seed, config digest, and per-phase seconds —
  and ``repro-powercap inspect`` renders it;
- **the service timeline API**: a tiny job driven to DONE over HTTP
  serves ``GET /jobs/<id>/timeseries`` with non-empty, monotonic
  timestamps and both power and frequency channels;
- **the SSE stream**: ``GET /jobs/<id>/stream`` subscribed to during a
  live sweep delivers at least one telemetry ``sample`` event with
  strictly increasing event ids and closes cleanly on a terminal
  job-lifecycle event;
- **the observability archive**: the service runs with ``--archive``
  semantics (an :class:`repro.obs.archive.ObsArchive` attached), so
  after the job completes the archive holds ``/metrics`` snapshot rows
  (including ``repro_build_info``), a distilled per-run record, and
  ``GET /metrics/history`` serves the recorded series.

The trace, the served timeline JSON, and the captured SSE stream are
copied into ``$REPRO_SMOKE_ARTIFACT_DIR`` (when set) so CI can upload
them as workflow artifacts.  Exits non-zero on any failure; prints a one-line
summary per step so CI logs read as a transcript.

The service-backed checks (timeline API, archive, SSE stream) run on
the front end selected with ``--frontend`` — pass ``async`` to drive
the asyncio server instead of the default threaded one, or ``both``
to cover each in turn.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--frontend thread]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.parse
import urllib.request
from pathlib import Path

SCHEMA_KEYS = {"ts", "level", "logger", "event"}


def run_cli(args: list[str], **kwargs) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        **kwargs,
    )


def http(method: str, url: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.read()


def check_timeline_api(tmp: Path, frontend: str) -> Path:
    """Drive a job to DONE and validate ``GET /jobs/<id>/timeseries``."""
    from repro.service.api import ExperimentService

    archive_path = tmp / f"archive-{frontend}.sqlite3"
    service = ExperimentService(
        db_path=tmp / f"smoke-{frontend}.sqlite3",
        port=0,
        workers=1,
        rate_cache=tmp / f"rates-{frontend}.json",
        archive=archive_path,
        archive_period_s=0.2,
        frontend=frontend,
    )
    service.start()
    print(f"[obs-smoke] {frontend} front end up at {service.url}")
    try:
        spec = {
            "workload": "stereo",
            "caps_w": [150.0, 120.0],
            "repetitions": 1,
            "scale": 0.001,
        }
        job = json.loads(http("POST", service.url + "/jobs", spec))
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            job = json.loads(http("GET", f"{service.url}/jobs/{job['id']}"))
            if job["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert job["state"] == "done", f"job did not finish: {job}"

        raw = http("GET", f"{service.url}/jobs/{job['id']}/timeseries")
        payload = json.loads(raw)
        entry = payload["timeseries"]["StereoMatching"]
        rows = [entry["baseline"], *entry["by_cap"].values()]
        assert entry["by_cap"], "no per-cap timelines served"
        for row in rows:
            channels = row["timeline"]["channels"]
            assert "power_w" in channels, sorted(channels)
            assert "freq_mhz" in channels, sorted(channels)
            ts = channels["power_w"]["t"]
            assert ts, "empty power_w timestamps"
            assert ts == sorted(ts), "timestamps not monotonic"
        print(
            f"[obs-smoke] /jobs/<id>/timeseries serves {len(rows)} "
            "timelines with monotonic power+frequency samples"
        )
        timeline_path = tmp / f"timeline-{frontend}.json"
        timeline_path.write_bytes(raw)

        check_archive(service, job["id"])

        stream_path = check_sse_stream(service, tmp)
        return timeline_path, stream_path
    finally:
        service.shutdown(drain=False)


def check_archive(service, job_id: str) -> None:
    """The attached archive holds snapshots and the completed run."""
    archive = service.archive
    assert archive is not None, "service did not attach the archive"
    # The recorder snapshots once at start(); give the periodic loop a
    # beat so at least one timed scrape lands too.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and archive.snapshot_count() == 0:
        time.sleep(0.1)
    n_rows = archive.snapshot_count()
    assert n_rows > 0, "no /metrics snapshot rows recorded while serving"
    series = archive.snapshot_series()
    assert any(s.startswith("repro_build_info") for s in series), series
    assert any(s.startswith("repro_jobs_submitted_total") for s in series), (
        series
    )

    run = archive.get_run(job_id)
    assert run is not None, f"completed job {job_id} not archived"
    assert run["kind"] == "job", run
    assert run["series"].get("runs_per_s", 0.0) > 0.0, run["series"]
    assert any(k.startswith("phase.") for k in run["series"]), run["series"]

    history = json.loads(http("GET", service.url + "/metrics/history"))
    assert set(history["series"]) == set(series)
    name = next(s for s in series if s.startswith("repro_jobs_submitted_total"))
    points = json.loads(
        http("GET", service.url + "/metrics/history?series="
             + urllib.parse.quote(name))
    )
    assert points["points"], f"no history points served for {name}"
    print(
        f"[obs-smoke] archive recorded {n_rows} snapshot rows over "
        f"{len(series)} series and the run record for {job_id}; "
        "/metrics/history serves them"
    )


def parse_sse(text: str) -> list[dict]:
    """``[{'id': .., 'event': .., 'data': ..}, ...]`` from a raw stream."""
    frames = []
    for block in text.split("\n\n"):
        frame: dict = {}
        for line in block.splitlines():
            if line.startswith(":"):  # comment / keepalive
                continue
            if ": " in line:
                key, value = line.split(": ", 1)
                frame[key] = value
        if frame:
            frames.append(frame)
    return frames


def check_sse_stream(service, tmp: Path) -> Path:
    """Subscribe to ``/jobs/<id>/stream`` during a live sweep.

    The subscription is opened immediately after the POST, so the
    stream is consumed while the sweep runs; ``Last-Event-ID`` replay
    covers the race where the tiny job finishes first.  Asserts at
    least one telemetry ``sample`` event, strictly increasing event
    ids, and a clean terminal close.
    """
    spec = {
        "workload": "sire",
        "caps_w": [150.0],
        "repetitions": 1,
        "scale": 0.001,
    }
    job = json.loads(http("POST", service.url + "/jobs", spec))
    # Blocks until the server closes the stream on the terminal event.
    raw = http("GET", f"{service.url}/jobs/{job['id']}/stream").decode()
    frames = parse_sse(raw)
    assert frames, "empty SSE stream"
    kinds = [f.get("event") for f in frames]
    assert "job_started" in kinds, kinds
    assert kinds.count("sample") >= 1, f"no telemetry samples: {kinds}"
    assert kinds[-1] in ("job_done", "end"), f"unclean close: {kinds[-1]}"
    ids = [int(f["id"]) for f in frames if "id" in f]
    assert ids == sorted(set(ids)), f"event ids not increasing: {ids}"
    for frame in frames:
        if "data" in frame:
            json.loads(frame["data"])  # raises on malformed payloads
    print(
        f"[obs-smoke] /jobs/<id>/stream delivered {len(frames)} SSE "
        f"events ({kinds.count('sample')} samples), closed on "
        f"{kinds[-1]!r}"
    )
    stream_path = tmp / f"stream-{service.frontend}.txt"
    stream_path.write_text(raw)
    return stream_path


def export_artifacts(paths: list[Path]) -> None:
    artifact_dir = os.environ.get("REPRO_SMOKE_ARTIFACT_DIR")
    if not artifact_dir:
        return
    dest = Path(artifact_dir)
    dest.mkdir(parents=True, exist_ok=True)
    for path in paths:
        (dest / path.name).write_bytes(path.read_bytes())
    print(f"[obs-smoke] exported {len(paths)} artifact(s) to {dest}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--frontend",
        choices=("thread", "async", "both"),
        default="thread",
        help="HTTP front end(s) for the service-backed checks "
        "(default: thread)",
    )
    args = parser.parse_args(argv)
    frontends = (
        ("thread", "async") if args.frontend == "both" else (args.frontend,)
    )
    tmp = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    trace_path = tmp / "prof.json"
    proc = run_cli(
        [
            "--log-json",
            "--log-level",
            "info",
            "--trace-out",
            str(trace_path),
            "--scale",
            "0.001",
            "sweep",
            "--workload",
            "stereo",
            "--caps",
            "150",
            "--format",
            "json",
        ]
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    print("[obs-smoke] sweep exited 0")

    log_lines = [l for l in proc.stderr.splitlines() if l.strip()]
    assert log_lines, "no log lines on stderr"
    for line in log_lines:
        doc = json.loads(line)  # raises on malformed JSON
        missing = SCHEMA_KEYS - set(doc)
        assert not missing, f"log line missing {missing}: {line}"
    events = [json.loads(l)["event"] for l in log_lines]
    assert "sweep_done" in events, events
    print(f"[obs-smoke] {len(log_lines)} JSON log lines, schema stable")

    trace = json.loads(trace_path.read_text())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert spans, "empty traceEvents"
    assert len(spans) + len(counters) == len(trace["traceEvents"]), (
        "unexpected event phase in trace"
    )
    for event in spans:
        assert event["dur"] >= 0.0, event
    start = min(e["ts"] for e in spans)
    end = max(e["ts"] + e["dur"] for e in spans)
    sweep_us = sum(e["dur"] for e in spans if e["name"] == "sweep")
    coverage = sweep_us / (end - start)
    assert coverage >= 0.9, f"sweep span covers only {coverage:.0%}"
    print(
        f"[obs-smoke] trace has {len(spans)} spans; sweep covers "
        f"{coverage:.0%} of the {(end - start) / 1e6:.2f}s extent"
    )
    assert counters, "no telemetry counter events in trace"
    for event in counters:
        assert event["args"], event
    names = {e["name"] for e in counters}
    assert "telemetry:power_w" in names, sorted(names)
    print(
        f"[obs-smoke] trace has {len(counters)} counter events on "
        f"{len(names)} telemetry tracks"
    )

    result = json.loads(proc.stdout)
    manifest = result["provenance"]
    for key in ("config_digest", "seed", "phase_seconds", "workload"):
        assert key in manifest, f"provenance missing {key}"
    assert manifest["phase_seconds"].get("sweep", 0.0) > 0.0
    print("[obs-smoke] result document carries a provenance manifest")

    result_path = tmp / "result.json"
    result_path.write_text(proc.stdout)
    proc = run_cli(["inspect", str(result_path)])
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "config_digest:" in proc.stdout, proc.stdout
    print("[obs-smoke] inspect renders the stored manifest")

    proc = run_cli(["timeline", str(result_path), "--ascii",
                    "--channel", "power_w"])
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "power_w |" in proc.stdout, proc.stdout
    print("[obs-smoke] timeline --ascii renders the stored timeline")

    artifacts = [trace_path]
    for frontend in frontends:
        timeline_path, stream_path = check_timeline_api(tmp, frontend)
        artifacts.extend([timeline_path, stream_path])
    export_artifacts(artifacts)

    print(f"[obs-smoke] PASS (service checks on: {', '.join(frontends)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
