#!/usr/bin/env python
"""CI smoke test for the observability layer.

Runs a tiny CLI sweep with ``--log-json --log-level info --trace-out``
in a subprocess (exactly what a user types) and asserts the three
instrumentation products are well-formed:

- **stderr** is valid JSON lines, every record carrying the stable
  schema keys (``ts``, ``level``, ``logger``, ``event``);
- **the trace file** parses as Chrome ``trace_event`` JSON with a
  non-empty ``traceEvents`` list, and the ``sweep`` span accounts for
  at least 90% of the trace's wall-clock extent;
- **stdout** is the sweep's JSON result document with a ``provenance``
  manifest recording seed, config digest, and per-phase seconds —
  and ``repro-powercap inspect`` renders it.

Exits non-zero on any failure; prints a one-line summary per step so
CI logs read as a transcript.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

SCHEMA_KEYS = {"ts", "level", "logger", "event"}


def run_cli(args: list[str], **kwargs) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        **kwargs,
    )


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    trace_path = tmp / "prof.json"
    proc = run_cli(
        [
            "--log-json",
            "--log-level",
            "info",
            "--trace-out",
            str(trace_path),
            "--scale",
            "0.001",
            "sweep",
            "--workload",
            "stereo",
            "--caps",
            "150",
            "--format",
            "json",
        ]
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    print("[obs-smoke] sweep exited 0")

    log_lines = [l for l in proc.stderr.splitlines() if l.strip()]
    assert log_lines, "no log lines on stderr"
    for line in log_lines:
        doc = json.loads(line)  # raises on malformed JSON
        missing = SCHEMA_KEYS - set(doc)
        assert not missing, f"log line missing {missing}: {line}"
    events = [json.loads(l)["event"] for l in log_lines]
    assert "sweep_done" in events, events
    print(f"[obs-smoke] {len(log_lines)} JSON log lines, schema stable")

    trace = json.loads(trace_path.read_text())
    spans = trace["traceEvents"]
    assert spans, "empty traceEvents"
    for event in spans:
        assert event["ph"] == "X" and event["dur"] >= 0.0, event
    start = min(e["ts"] for e in spans)
    end = max(e["ts"] + e["dur"] for e in spans)
    sweep_us = sum(e["dur"] for e in spans if e["name"] == "sweep")
    coverage = sweep_us / (end - start)
    assert coverage >= 0.9, f"sweep span covers only {coverage:.0%}"
    print(
        f"[obs-smoke] trace has {len(spans)} spans; sweep covers "
        f"{coverage:.0%} of the {(end - start) / 1e6:.2f}s extent"
    )

    result = json.loads(proc.stdout)
    manifest = result["provenance"]
    for key in ("config_digest", "seed", "phase_seconds", "workload"):
        assert key in manifest, f"provenance missing {key}"
    assert manifest["phase_seconds"].get("sweep", 0.0) > 0.0
    print("[obs-smoke] result document carries a provenance manifest")

    result_path = tmp / "result.json"
    result_path.write_text(proc.stdout)
    proc = run_cli(["inspect", str(result_path)])
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "config_digest:" in proc.stdout, proc.stdout
    print("[obs-smoke] inspect renders the stored manifest")

    print("[obs-smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
