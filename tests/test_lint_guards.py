"""Source-tree lint guards enforced as tests.

The observability layer only pays off if subsystems actually route
their output through it — a stray ``print()`` in library code bypasses
the level/format machinery and corrupts machine-readable stdout.  CLI
entry points are the one sanctioned home for ``print`` (their stdout
*is* the product).
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose job is writing to stdout.
PRINT_ALLOWED = {"cli.py", "__main__.py"}

_PRINT = re.compile(r"(?<![\w.])print\(")


def test_no_bare_print_outside_cli_modules():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name in PRINT_ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            code = line.split("#", 1)[0]
            if _PRINT.search(code):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "bare print() in library code — use repro.obs.logging instead:\n"
        + "\n".join(offenders)
    )
