"""Unit helpers: conversions, validation, formatting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import UnitsError


class TestConversions:
    def test_kib_mib_gib(self):
        assert units.kib(32) == 32 * 1024
        assert units.mib(20) == 20 * 1024 * 1024
        assert units.gib(64) == 64 * 1024**3

    def test_mhz_ghz(self):
        assert units.mhz(2701) == 2.701e9
        assert units.ghz(2.7) == 2.7e9

    def test_hz_roundtrip(self):
        assert units.hz_to_mhz(units.mhz(1200)) == pytest.approx(1200)
        assert units.hz_to_ghz(units.ghz(2.7)) == pytest.approx(2.7)

    def test_time_units(self):
        assert units.ns(60) == pytest.approx(60e-9)
        assert units.us(2) == pytest.approx(2e-6)
        assert units.ms(50) == pytest.approx(0.05)
        assert units.seconds_to_ns(1.5) == pytest.approx(1.5e9)
        assert units.ns_to_seconds(1.5e9) == pytest.approx(1.5)

    def test_energy_identity(self):
        # The paper's central identity: energy = power x time.
        assert units.joules(153.1, 89.0) == pytest.approx(13625.9)

    def test_watt_hours(self):
        assert units.watt_hours_to_joules(1.0) == 3600.0
        assert units.joules_to_watt_hours(7200.0) == 2.0


class TestValidation:
    @pytest.mark.parametrize("bad", [-1.0, 0.0, float("nan"), float("inf")])
    def test_require_positive_rejects(self, bad):
        with pytest.raises(UnitsError):
            units.require_positive(bad, "x")

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("-inf")])
    def test_require_non_negative_rejects(self, bad):
        with pytest.raises(UnitsError):
            units.require_non_negative(bad, "x")

    def test_require_non_negative_accepts_zero(self):
        assert units.require_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_require_fraction_rejects(self, bad):
        with pytest.raises(UnitsError):
            units.require_fraction(bad, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(UnitsError, match="cap_watts"):
            units.require_positive(-5, "cap_watts")


class TestFormatting:
    def test_format_duration_paper_values(self):
        # Exact values from Table II rows.
        assert units.format_duration(89) == "0:01:29"
        assert units.format_duration(92) == "0:01:32"
        assert units.format_duration(3168) == "0:52:48"
        assert units.format_duration(10139) == "2:48:59"

    def test_format_duration_zero(self):
        assert units.format_duration(0) == "0:00:00"

    def test_format_bytes(self):
        assert units.format_bytes(32 * 1024) == "32K"
        assert units.format_bytes(20 * 1024**2) == "20M"
        assert units.format_bytes(64 * 1024**3) == "64G"
        assert units.format_bytes(100) == "100B"


class TestProperties:
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_hz_mhz_roundtrip(self, f):
        assert units.hz_to_mhz(units.mhz(f)) == pytest.approx(f)

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=1e5),
    )
    def test_energy_non_negative_and_bilinear(self, p, t):
        e = units.joules(p, t)
        assert e >= 0
        assert units.joules(2 * p, t) == pytest.approx(2 * e)

    @given(st.integers(min_value=0, max_value=10**7))
    def test_format_duration_parses_back(self, seconds):
        text = units.format_duration(seconds)
        h, m, s = (int(x) for x in text.split(":"))
        assert h * 3600 + m * 60 + s == seconds
        assert 0 <= m < 60 and 0 <= s < 60
