"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import sandy_bridge_config
from repro.rng import RngStreams


@pytest.fixture
def config():
    """The default Sandy Bridge node configuration."""
    return sandy_bridge_config()


@pytest.fixture
def streams():
    """Deterministic RNG streams for a test."""
    return RngStreams(seed=1234)


@pytest.fixture
def rng(streams):
    """One deterministic generator."""
    return streams.stream("test")


@pytest.fixture
def small_config():
    """A scaled-down node for fast cache tests.

    Same structure as the real platform but with tiny caches so tests
    can exercise capacity/associativity effects with short traces.
    """
    from repro.config import CacheGeometry, TlbGeometry

    base = sandy_bridge_config()
    return base.with_overrides(
        l1d=CacheGeometry(
            name="L1D", capacity_bytes=1024, line_bytes=64, ways=2,
            hit_latency_ns=1.5, miss_penalty_ns=2.0, leakage_w=0.2,
        ),
        l1i=CacheGeometry(
            name="L1I", capacity_bytes=1024, line_bytes=64, ways=2,
            hit_latency_ns=1.5, miss_penalty_ns=2.0, leakage_w=0.2,
        ),
        l2=CacheGeometry(
            name="L2", capacity_bytes=4096, line_bytes=64, ways=4,
            hit_latency_ns=3.5, miss_penalty_ns=5.1, leakage_w=0.4,
        ),
        l3=CacheGeometry(
            name="L3", capacity_bytes=16384, line_bytes=64, ways=4,
            hit_latency_ns=8.6, miss_penalty_ns=37.1, leakage_w=1.2,
        ),
        itlb=TlbGeometry(
            name="ITLB", entries=16, ways=4, page_bytes=4096,
            miss_penalty_ns=45.0, leakage_w=0.05,
        ),
        dtlb=TlbGeometry(
            name="DTLB", entries=16, ways=4, page_bytes=4096,
            miss_penalty_ns=45.0, leakage_w=0.05,
        ),
    )
