"""Whole-experiment reproducibility.

The paper's credibility rests on averaged, repeatable measurements; the
reproduction goes further — bit-identical results per seed, and
shape-stable results across seeds.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.workloads.stereo import StereoMatchingWorkload


def scaled(workload, factor=0.005):
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * factor,
    )
    return workload


def run_sweep(seed: int):
    experiment = PowerCapExperiment(
        [scaled(StereoMatchingWorkload())],
        caps_w=(150.0, 125.0),
        repetitions=2,
        seed=seed,
        slice_accesses=60_000,
    )
    return experiment.run_workload(scaled(StereoMatchingWorkload()))


class TestSeedDeterminism:
    @pytest.fixture(scope="class")
    def sweep_a(self):
        return run_sweep(seed=99)

    @pytest.fixture(scope="class")
    def sweep_b(self):
        return run_sweep(seed=99)

    def test_identical_times_and_energy(self, sweep_a, sweep_b):
        for cap in (None, 150.0, 125.0):
            ra, rb = sweep_a.row(cap), sweep_b.row(cap)
            assert ra.execution_s == rb.execution_s
            assert ra.energy_j == rb.energy_j
            assert ra.avg_power_w == rb.avg_power_w

    def test_identical_counters(self, sweep_a, sweep_b):
        for cap in (None, 125.0):
            ca = sweep_a.row(cap).counters
            cb = sweep_b.row(cap).counters
            assert ca == cb


class TestSeedIndependenceOfShape:
    def test_different_seeds_same_shape(self):
        a = run_sweep(seed=1)
        b = run_sweep(seed=2)
        # Noise moves the numbers a little...
        assert a.baseline.avg_power_w != b.baseline.avg_power_w
        # ...but never the structure.
        assert a.slowdown(125.0) == pytest.approx(b.slowdown(125.0), rel=0.05)
        assert a.row(125.0).max_escalation_level == b.row(
            125.0
        ).max_escalation_level
        for cap in (150.0, 125.0):
            assert a.row(cap).avg_freq_mhz == pytest.approx(
                b.row(cap).avg_freq_mhz, rel=0.03
            )

    def test_committed_instructions_seed_invariant(self):
        a = run_sweep(seed=1)
        b = run_sweep(seed=2)
        assert (
            a.baseline.committed_instructions
            == b.baseline.committed_instructions
        )
        # Executed instructions carry the speculation wobble and differ.
        assert (
            a.baseline.executed_instructions
            != b.baseline.executed_instructions
        )
