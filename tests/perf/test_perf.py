"""PAPI-like counters: bank accumulation and session windows."""

from __future__ import annotations

import pytest

from repro.errors import CounterError
from repro.mem.hierarchy import AccessCounts
from repro.perf.counters import CounterBank
from repro.perf.events import PapiEvent
from repro.perf.papi import PapiSession


class TestCounterBank:
    def test_starts_at_zero(self):
        bank = CounterBank()
        for e in PapiEvent:
            assert bank.read(e) == 0.0

    def test_add(self):
        bank = CounterBank()
        bank.add(PapiEvent.PAPI_TOT_INS, 1000.0)
        bank.add(PapiEvent.PAPI_TOT_INS, 500.0)
        assert bank.read(PapiEvent.PAPI_TOT_INS) == 1500.0

    def test_negative_rejected(self):
        with pytest.raises(CounterError):
            CounterBank().add(PapiEvent.PAPI_TOT_INS, -1.0)

    def test_access_counts_mapping(self):
        bank = CounterBank()
        counts = AccessCounts(
            data_accesses=300, ifetches=100, l1d_misses=30, l1i_misses=3,
            l2_misses=10, l3_misses=4, itlb_misses=1, dtlb_misses=7,
        )
        bank.add_access_counts(counts)
        assert bank.read(PapiEvent.PAPI_L1_DCM) == 30
        assert bank.read(PapiEvent.PAPI_L1_ICM) == 3
        assert bank.read(PapiEvent.PAPI_L1_TCM) == 33
        assert bank.read(PapiEvent.PAPI_L2_TCM) == 10
        assert bank.read(PapiEvent.PAPI_L3_TCM) == 4
        assert bank.read(PapiEvent.PAPI_TLB_DM) == 7
        assert bank.read(PapiEvent.PAPI_TLB_IM) == 1
        # Loads + stores = data accesses (2:1 split).
        total = bank.read(PapiEvent.PAPI_LD_INS) + bank.read(PapiEvent.PAPI_SR_INS)
        assert total == pytest.approx(300)

    def test_snapshot_is_a_copy(self):
        bank = CounterBank()
        snap = bank.snapshot()
        bank.add(PapiEvent.PAPI_TOT_CYC, 10)
        assert snap[PapiEvent.PAPI_TOT_CYC] == 0.0

    def test_reset(self):
        bank = CounterBank()
        bank.add(PapiEvent.PAPI_TOT_CYC, 10)
        bank.reset()
        assert bank.read(PapiEvent.PAPI_TOT_CYC) == 0.0


class TestPapiSession:
    def test_window_semantics(self):
        bank = CounterBank()
        bank.add(PapiEvent.PAPI_L2_TCM, 100)
        session = PapiSession(bank, [PapiEvent.PAPI_L2_TCM])
        session.start()
        bank.add(PapiEvent.PAPI_L2_TCM, 42)
        assert session.read()[PapiEvent.PAPI_L2_TCM] == 42
        final = session.stop()
        assert final[PapiEvent.PAPI_L2_TCM] == 42
        assert not session.running

    def test_double_start_rejected(self):
        session = PapiSession(CounterBank(), [PapiEvent.PAPI_TOT_INS])
        session.start()
        with pytest.raises(CounterError):
            session.start()

    def test_read_before_start_rejected(self):
        session = PapiSession(CounterBank(), [PapiEvent.PAPI_TOT_INS])
        with pytest.raises(CounterError):
            session.read()

    def test_empty_event_set_rejected(self):
        with pytest.raises(CounterError):
            PapiSession(CounterBank(), [])

    def test_duplicate_events_rejected(self):
        with pytest.raises(CounterError):
            PapiSession(
                CounterBank(), [PapiEvent.PAPI_TOT_INS, PapiEvent.PAPI_TOT_INS]
            )

    def test_overlapping_sessions_independent_windows(self):
        bank = CounterBank()
        a = PapiSession(bank, [PapiEvent.PAPI_TOT_INS])
        b = PapiSession(bank, [PapiEvent.PAPI_TOT_INS])
        a.start()
        bank.add(PapiEvent.PAPI_TOT_INS, 10)
        b.start()
        bank.add(PapiEvent.PAPI_TOT_INS, 5)
        assert a.read()[PapiEvent.PAPI_TOT_INS] == 15
        assert b.read()[PapiEvent.PAPI_TOT_INS] == 5

    def test_session_reset_rezeroes_window(self):
        bank = CounterBank()
        s = PapiSession(bank, [PapiEvent.PAPI_TOT_INS])
        s.start()
        bank.add(PapiEvent.PAPI_TOT_INS, 10)
        s.reset()
        bank.add(PapiEvent.PAPI_TOT_INS, 3)
        assert s.read()[PapiEvent.PAPI_TOT_INS] == 3
