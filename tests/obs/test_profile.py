"""The sampling profiler: config resolution, attribution, reporting.

The sampler is timing-dependent by nature, so assertions target what
is deterministic — config precedence, report arithmetic, idempotent
stop — and use generous busy loops where real samples are needed.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import engine_metrics
from repro.obs.profile import (
    DEFAULT_HZ,
    ProfileConfig,
    ProfileReport,
    SamplingProfiler,
    profile_from_env,
    profiling_enabled,
)
from repro.obs.tracing import span


def busy_ms(ms: float) -> None:
    deadline = time.perf_counter() + ms / 1e3
    while time.perf_counter() < deadline:
        sum(range(200))


class TestConfig:
    def test_default_hz_is_prime(self):
        assert ProfileConfig().hz == DEFAULT_HZ == 97.0

    def test_hz_validation(self):
        with pytest.raises(ValueError):
            ProfileConfig(hz=0.0)
        with pytest.raises(ValueError):
            ProfileConfig(hz=-5.0)
        with pytest.raises(ValueError):
            ProfileConfig(hz=20_000.0)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_HZ", raising=False)
        assert ProfileConfig.from_env().hz == DEFAULT_HZ
        monkeypatch.setenv("REPRO_PROFILE_HZ", "251")
        assert ProfileConfig.from_env().hz == 251.0

    def test_from_env_bad_value_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_HZ", "not-a-number")
        assert ProfileConfig.from_env().hz == DEFAULT_HZ
        monkeypatch.setenv("REPRO_PROFILE_HZ", "-3")
        assert ProfileConfig.from_env().hz == DEFAULT_HZ


class TestEnablement:
    def test_cli_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profiling_enabled(cli_flag=False) is False
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profiling_enabled(cli_flag=True) is True

    def test_env_truthy_values(self, monkeypatch):
        for raw, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("off", False), ("", False), ("garbage", False),
        ):
            monkeypatch.setenv("REPRO_PROFILE", raw)
            assert profiling_enabled() is expected

    def test_profile_from_env_disabled_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_from_env() is None

    def test_profile_from_env_enabled_returns_running(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_HZ", "307")
        profiler = profile_from_env()
        try:
            assert profiler is not None and profiler.running
            assert profiler.config.hz == 307.0
        finally:
            profiler.stop()


class TestSampling:
    def test_samples_and_phase_attribution(self):
        profiler = SamplingProfiler(ProfileConfig(hz=500.0)).start()
        with span("profiled_phase"):
            busy_ms(120)
        report = profiler.stop()
        assert report.samples > 0
        assert report.wall_s > 0.1
        assert "profiled_phase" in report.phase_samples
        assert report.function_samples  # top-of-stack view populated
        assert sum(report.phase_samples.values()) == report.samples

    def test_attributes_spans_on_other_threads(self):
        profiler = SamplingProfiler(ProfileConfig(hz=500.0)).start()

        def worker():
            with span("worker_phase"):
                busy_ms(120)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        report = profiler.stop()
        assert "worker_phase" in report.phase_samples

    def test_per_quantum_attribution(self):
        quanta = engine_metrics().quanta
        profiler = SamplingProfiler(ProfileConfig(hz=500.0)).start()
        with span("quantified"):
            busy_ms(60)
            quanta.inc(1000)
        report = profiler.stop()
        assert report.quanta >= 1000
        per_q = report.per_quantum_s["quantified"]
        assert per_q == pytest.approx(
            (report.phase_samples["quantified"] / report.hz) / report.quanta
        )

    def test_stop_is_idempotent_and_start_restarts(self):
        profiler = SamplingProfiler(ProfileConfig(hz=500.0)).start()
        busy_ms(20)
        first = profiler.stop()
        assert profiler.stop() is first
        assert not profiler.running
        profiler.start()
        assert profiler.running
        second = profiler.stop()
        assert second is not first

    def test_profiler_excludes_its_own_thread(self):
        profiler = SamplingProfiler(ProfileConfig(hz=1000.0)).start()
        busy_ms(60)
        report = profiler.stop()
        assert not any(
            "profile.py:" in name and "_run" in name
            for name in report.function_samples
        )


class TestReport:
    def make(self) -> ProfileReport:
        return ProfileReport(
            samples=10,
            wall_s=0.5,
            hz=100.0,
            phase_samples={"a": 6, "b": 4},
            function_samples={"m.py:f": 7, "m.py:g": 3},
            quanta=200,
            per_quantum_s={"a": 0.0003, "b": 0.0002},
        )

    def test_phase_seconds(self):
        assert self.make().phase_seconds() == {"a": 0.06, "b": 0.04}

    def test_top_functions_ranked(self):
        assert self.make().top_functions(1) == [("m.py:f", 7)]

    def test_to_dict_is_json_ready(self):
        import json

        doc = self.make().to_dict()
        json.dumps(doc)
        assert doc["samples"] == 10
        assert doc["quanta"] == 200
        assert doc["top_functions"][0] == {"function": "m.py:f", "samples": 7}
