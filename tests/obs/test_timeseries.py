"""Telemetry timelines: bounded channels, sampler coverage, round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.obs.timeseries import (
    STANDARD_CHANNELS,
    RunTimeline,
    SeriesChannel,
    TelemetryConfig,
    TelemetrySampler,
    timeline_from_dict,
    timeline_to_dict,
)


def filled_channel(n=100, capacity=16) -> SeriesChannel:
    ch = SeriesChannel("power_w", "W", capacity)
    for i in range(n):
        ch.add(i * 0.25, 0.25, 100.0 + i)
    return ch


class TestSeriesChannel:
    def test_capacity_floor(self):
        with pytest.raises(SimulationError):
            SeriesChannel("x", capacity=4)

    def test_negative_duration_rejected(self):
        ch = SeriesChannel("x")
        with pytest.raises(SimulationError):
            ch.add(0.0, -1.0, 5.0)

    def test_bounded_by_capacity(self):
        ch = filled_channel(n=10_000, capacity=16)
        assert len(ch) <= 16
        assert ch.decimations > 0

    def test_decimation_preserves_integral_and_coverage(self):
        ch = filled_channel(n=1000, capacity=16)
        exact = sum((100.0 + i) * 0.25 for i in range(1000))
        assert ch.integral() == pytest.approx(exact, rel=1e-12)
        assert ch.duration_s() == pytest.approx(250.0, rel=1e-12)

    def test_min_max_survive_decimation(self):
        ch = SeriesChannel("x", capacity=8)
        for i in range(200):
            ch.add(i * 1.0, 1.0, 50.0)
        ch.add(200.0, 1.0, 7.0, vmin=3.0, vmax=90.0)
        for i in range(200):
            ch.add(201.0 + i, 1.0, 50.0)
        assert ch.vmin() == 3.0
        assert ch.vmax() == 90.0

    def test_coverage_is_gap_free_after_decimation(self):
        ch = filled_channel(n=500, capacity=16)
        pts = ch.points()
        for prev, cur in zip(pts, pts[1:]):
            assert cur.t_s == pytest.approx(prev.end_s, rel=1e-9)

    def test_time_weighted_mean(self):
        ch = SeriesChannel("x")
        ch.add(0.0, 1.0, 100.0)
        ch.add(1.0, 3.0, 200.0)
        assert ch.time_weighted_mean() == pytest.approx(175.0)

    def test_empty_channel_stats_raise(self):
        ch = SeriesChannel("x")
        with pytest.raises(SimulationError):
            ch.time_weighted_mean()
        with pytest.raises(SimulationError):
            ch.vmin()

    def test_resample_preserves_weighted_mean(self):
        ch = filled_channel(n=300, capacity=64)
        pts = ch.resample(10)
        total = sum(p.mean * p.dt_s for p in pts)
        assert total == pytest.approx(ch.integral(), rel=1e-6)

    def test_resample_fills_gaps_with_carry_forward(self):
        ch = SeriesChannel("x")
        ch.add(0.0, 1.0, 10.0)
        ch.add(9.0, 1.0, 20.0)  # nothing recorded for t in [1, 9)
        pts = ch.resample(10, 10.0)
        assert len(pts) == 10
        assert pts[5].mean == pytest.approx(10.0)  # carried forward
        assert pts[9].mean == pytest.approx(20.0)

    def test_merge_averages_reps(self):
        a = SeriesChannel("x")
        b = SeriesChannel("x")
        for i in range(10):
            a.add(i * 1.0, 1.0, 100.0)
            b.add(i * 1.0, 1.0, 200.0)
        merged = SeriesChannel.merge([a, b])
        assert merged.time_weighted_mean() == pytest.approx(150.0)
        assert merged.vmin() == 100.0
        assert merged.vmax() == 200.0

    def test_merge_rejects_mixed_names(self):
        other = SeriesChannel("other")
        other.add(0.0, 1.0, 5.0)
        with pytest.raises(SimulationError):
            SeriesChannel.merge([filled_channel(), other])

    def test_merge_ignores_empty_channels(self):
        merged = SeriesChannel.merge([filled_channel(), SeriesChannel("power_w")])
        assert len(merged) > 0

    def test_round_trip(self):
        ch = filled_channel(n=120, capacity=32)
        back = SeriesChannel.from_dict("power_w", ch.to_dict())
        assert back.unit == "W"
        assert len(back) == len(ch)
        assert back.integral() == pytest.approx(ch.integral(), rel=1e-7)
        assert back.decimations == ch.decimations

    def test_ragged_columns_rejected(self):
        doc = filled_channel(n=20).to_dict()
        doc["mean"] = doc["mean"][:-1]
        with pytest.raises(SimulationError):
            SeriesChannel.from_dict("power_w", doc)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.0, max_value=500.0),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_integral_invariant_under_any_capacity(self, samples):
        exact = sum(v * dt for dt, v in samples)
        ch = SeriesChannel("x", capacity=8)
        t = 0.0
        for dt, v in samples:
            ch.add(t, dt, v)
            t += dt
        assert ch.integral() == pytest.approx(exact, rel=1e-9, abs=1e-9)
        assert ch.duration_s() == pytest.approx(t, rel=1e-9)


class TestUnequalPeriodMerge:
    """Rep-merge across channels sampled at different periods.

    The archive's retention path replays stored rows through
    :class:`SeriesChannel`, so the decimation contract has to hold when
    the inputs were recorded at unequal sample periods — merge and
    decimate must commute up to float tolerance on the time integral.
    """

    def channel(self, period, total_s=50.0, base=100.0, capacity=256):
        ch = SeriesChannel("power_w", "W", capacity)
        t = 0.0
        i = 0
        while t < total_s - 1e-9:
            dt = min(period, total_s - t)
            ch.add(t, dt, base + (i % 7))
            t += dt
            i += 1
        return ch

    def replayed(self, ch, capacity):
        out = SeriesChannel(ch.name, ch.unit, capacity)
        out.add_block(ch.points())
        return out

    def test_merge_unequal_periods_averages_integrals(self):
        a = self.channel(period=0.1, base=100.0)
        b = self.channel(period=0.25, base=200.0)
        merged = SeriesChannel.merge([a, b])
        expected = (a.integral() + b.integral()) / 2.0
        assert merged.integral() == pytest.approx(expected, rel=1e-6)
        assert merged.duration_s() == pytest.approx(50.0, rel=1e-9)

    def test_merge_then_decimate_matches_decimate_then_merge(self):
        a = self.channel(period=0.1, base=100.0, capacity=1024)
        b = self.channel(period=0.25, base=150.0, capacity=1024)
        exact = (a.integral() + b.integral()) / 2.0

        merged_first = self.replayed(SeriesChannel.merge([a, b]), capacity=16)
        decimated_first = SeriesChannel.merge(
            [self.replayed(a, 16), self.replayed(b, 16)]
        )

        assert merged_first.integral() == pytest.approx(exact, rel=1e-6)
        assert decimated_first.integral() == pytest.approx(exact, rel=1e-6)
        assert merged_first.integral() == pytest.approx(
            decimated_first.integral(), rel=1e-6
        )
        assert merged_first.duration_s() == pytest.approx(50.0, rel=1e-6)
        assert decimated_first.duration_s() == pytest.approx(50.0, rel=1e-6)

    def test_merged_coverage_stays_gap_free(self):
        a = self.channel(period=0.1)
        b = self.channel(period=0.3)
        pts = SeriesChannel.merge([a, b]).points()
        for prev, cur in zip(pts, pts[1:]):
            assert cur.t_s == pytest.approx(prev.end_s, rel=1e-9)

    def test_min_max_envelope_spans_both_reps(self):
        a = self.channel(period=0.1, base=100.0)
        b = self.channel(period=0.25, base=200.0)
        merged = SeriesChannel.merge([a, b])
        assert merged.vmin() >= 100.0
        assert merged.vmax() <= 206.0 + 1e-9
        assert merged.vmax() > merged.vmin()


class TestRunTimeline:
    def make(self, cap=140.0) -> RunTimeline:
        tl = RunTimeline(workload="w", cap_w=cap, period_s=0.25)
        tl.channels["power_w"] = filled_channel(n=40, capacity=64)
        return tl

    def test_unknown_channel_raises(self):
        with pytest.raises(SimulationError):
            self.make().channel("nope")

    def test_cap_label(self):
        assert self.make().cap_label == "140"
        assert self.make(cap=None).cap_label == "baseline"

    def test_csv_shape(self):
        lines = self.make().to_csv().strip().splitlines()
        assert lines[0] == "workload,cap,channel,t_s,dt_s,mean,min,max"
        assert len(lines) == 41
        assert lines[1].startswith("w,140,power_w,")

    def test_merge_sums_reps(self):
        merged = RunTimeline.merge([self.make(), self.make()])
        assert merged.reps == 2
        assert merged.channel("power_w").time_weighted_mean() == pytest.approx(
            self.make().channel("power_w").time_weighted_mean()
        )

    def test_counter_samples_bounded(self):
        samples = self.make().counter_samples(max_points=8)
        assert len(samples) == 8
        assert all(name == "power_w" for name, _, _ in samples)

    def test_round_trip(self):
        tl = self.make()
        back = timeline_from_dict(timeline_to_dict(tl))
        assert back.workload == "w" and back.cap_w == 140.0
        assert back.channel("power_w").integral() == pytest.approx(
            tl.channel("power_w").integral(), rel=1e-7
        )

    def test_schema_version_enforced(self):
        doc = timeline_to_dict(self.make())
        doc["schema"] = 99
        with pytest.raises(SimulationError):
            timeline_from_dict(doc)


class TestTelemetryConfig:
    def test_defaults(self):
        cfg = TelemetryConfig()
        assert cfg.enabled and cfg.period_s == 0.25 and cfg.capacity == 256

    def test_validation(self):
        with pytest.raises(SimulationError):
            TelemetryConfig(period_s=0.0)
        with pytest.raises(SimulationError):
            TelemetryConfig(capacity=2)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        monkeypatch.setenv("REPRO_TELEMETRY_PERIOD", "0.5")
        monkeypatch.setenv("REPRO_TELEMETRY_CAPACITY", "64")
        cfg = TelemetryConfig.from_env()
        assert not cfg.enabled
        assert cfg.period_s == 0.5 and cfg.capacity == 64

    def test_resolve(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert TelemetryConfig.resolve(None).enabled
        assert TelemetryConfig.resolve(True) == TelemetryConfig()
        assert not TelemetryConfig.resolve(False).enabled
        custom = TelemetryConfig(period_s=2.0)
        assert TelemetryConfig.resolve(custom) is custom


class TestTelemetrySampler:
    def test_period_buckets(self):
        # 0.125 is exact in binary, so bucket boundaries are exact too.
        sampler = TelemetrySampler(TelemetryConfig(period_s=0.5))
        for _ in range(100):
            sampler.record(0.125, {"power_w": 150.0})
        tl = sampler.finish("w", None)
        ch = tl.channel("power_w")
        assert len(ch) == 25
        assert ch.duration_s() == pytest.approx(12.5)
        assert all(p.dt_s == pytest.approx(0.5) for p in ch.points())

    def test_fast_forward_slice_has_no_gap(self):
        # A steady-state fast-forward arrives as one long record();
        # coverage must remain continuous and integral-exact.
        sampler = TelemetrySampler(TelemetryConfig(period_s=0.25))
        for _ in range(8):
            sampler.record(0.05, {"power_w": 140.0})
        sampler.record(30.0, {"power_w": 120.0})  # fast-forward
        for _ in range(8):
            sampler.record(0.05, {"power_w": 130.0})
        tl = sampler.finish("w", 120.0)
        ch = tl.channel("power_w")
        pts = ch.points()
        for prev, cur in zip(pts, pts[1:]):
            assert cur.t_s == pytest.approx(prev.end_s, rel=1e-9)
        exact = 8 * 0.05 * 140.0 + 30.0 * 120.0 + 8 * 0.05 * 130.0
        assert ch.integral() == pytest.approx(exact, rel=1e-12)
        assert ch.duration_s() == pytest.approx(30.8, rel=1e-12)

    def test_bucket_min_max_envelope(self):
        sampler = TelemetrySampler(TelemetryConfig(period_s=1.0))
        sampler.record(0.4, {"power_w": 100.0})
        sampler.record(0.6, {"power_w": 200.0})
        ch = sampler.finish("w", None).channel("power_w")
        (p,) = ch.points()
        assert p.vmin == 100.0 and p.vmax == 200.0
        assert p.mean == pytest.approx(160.0)  # duration-weighted

    def test_standard_channels_registered(self):
        sampler = TelemetrySampler(TelemetryConfig())
        sampler.record(1.0, {name: 1.0 for name in STANDARD_CHANNELS})
        tl = sampler.finish("w", None)
        assert set(tl.names()) == set(STANDARD_CHANNELS)
        assert tl.channel("power_w").unit == "W"

    def test_empty_channels_omitted(self):
        sampler = TelemetrySampler(TelemetryConfig())
        sampler.record(1.0, {"power_w": 1.0})
        tl = sampler.finish("w", None)
        assert tl.names() == ["power_w"]

    def test_negative_step_rejected(self):
        sampler = TelemetrySampler(TelemetryConfig())
        with pytest.raises(SimulationError):
            sampler.record(-0.1, {"power_w": 1.0})
