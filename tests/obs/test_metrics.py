"""Engine metrics: the simulation-core panel and the service bridge."""

from __future__ import annotations

import re
from dataclasses import replace

from repro.obs.metrics import ServiceMetrics, engine_metrics
from repro.service.metrics import (
    ServiceMetrics as ReExportedServiceMetrics,
)
from repro.service.metrics import engine_metrics as re_exported_engine_metrics


class TestEngineMetrics:
    def test_singleton(self):
        assert engine_metrics() is engine_metrics()

    def test_exposes_at_least_six_engine_series(self):
        text = engine_metrics().render()
        names = set(
            re.findall(r"^# TYPE (repro_engine_\w+)", text, re.MULTILINE)
        )
        assert len(names) >= 6, sorted(names)
        for expected in (
            "repro_engine_runs_total",
            "repro_engine_quanta_total",
            "repro_engine_traces_simulated_total",
            "repro_engine_rate_cache_hits_total",
            "repro_engine_rate_cache_misses_total",
            "repro_engine_run_seconds",
            "repro_engine_phase_seconds",
        ):
            assert expected in names

    def test_run_increments_counters(self):
        from repro.core.runner import NodeRunner
        from repro.workloads.stereo import StereoMatchingWorkload

        metrics = engine_metrics()
        runs_before = metrics.runs.value
        quanta_before = metrics.quanta.value
        workload = StereoMatchingWorkload()
        workload._spec = replace(
            workload.spec,
            total_instructions=int(workload.spec.total_instructions * 0.003),
        )
        NodeRunner(slice_accesses=60_000).run(workload)
        assert metrics.runs.value == runs_before + 1
        assert metrics.quanta.value > quanta_before

    def test_service_render_includes_engine_panel(self):
        text = ServiceMetrics().render()
        assert "repro_jobs_submitted_total" in text
        assert "repro_engine_runs_total" in text

    def test_service_module_re_exports(self):
        assert ReExportedServiceMetrics is ServiceMetrics
        assert re_exported_engine_metrics is engine_metrics


class TestBuildInfo:
    def test_singleton(self):
        from repro.obs.metrics import build_info_metrics

        assert build_info_metrics() is build_info_metrics()

    def test_info_convention(self):
        """``repro_build_info`` is a constant-1 gauge with id labels."""
        from repro import __version__
        from repro.obs.archive import ARCHIVE_SCHEMA_VERSION
        from repro.obs.metrics import build_info_metrics

        ((name, labels, value),) = build_info_metrics().build_info.samples()
        assert name == "repro_build_info"
        assert value == 1.0
        assert labels["version"] == __version__
        assert labels["archive_schema"] == str(ARCHIVE_SCHEMA_VERSION)
        assert labels["git"]  # "unknown" outside a checkout, never empty
        assert {"provenance_schema", "timeline_schema"} <= set(labels)

    def test_rendered_on_service_metrics(self):
        text = ServiceMetrics().render()
        assert "# TYPE repro_build_info gauge" in text
        assert 'repro_build_info{' in text

    def test_sample_all_covers_every_panel(self):
        metrics = ServiceMetrics()
        names = {name for name, _, _ in metrics.sample_all()}
        for expected in (
            "repro_build_info",
            "repro_jobs_submitted_total",
            "repro_engine_runs_total",
            "repro_fleet_runs_total",
        ):
            assert expected in names, sorted(names)
