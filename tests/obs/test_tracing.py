"""Span tracing: nesting, exception safety, Chrome trace export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import (
    TraceCollector,
    current_collector,
    current_span_stack,
    phase_totals,
    reset_phase_totals,
    set_enabled,
    span,
    start_tracing,
    stop_tracing,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts with no collector and an empty accumulator."""
    stop_tracing()
    reset_phase_totals()
    set_enabled(True)
    yield
    stop_tracing()
    reset_phase_totals()
    set_enabled(True)


class TestNesting:
    def test_stack_and_parent(self):
        collector = start_tracing()
        assert current_span_stack() == ()
        with span("outer"):
            assert current_span_stack() == ("outer",)
            with span("inner"):
                assert current_span_stack() == ("outer", "inner")
            assert current_span_stack() == ("outer",)
        assert current_span_stack() == ()
        by_name = {e["name"]: e for e in collector.events()}
        assert by_name["inner"]["parent"] == "outer"
        assert by_name["outer"]["parent"] is None

    def test_inner_closes_before_outer(self):
        collector = start_tracing()
        with span("outer"):
            with span("inner"):
                pass
        names = [e["name"] for e in collector.events()]
        assert names == ["inner", "outer"]

    def test_thread_local_stacks(self):
        seen = {}

        def worker():
            with span("worker_span"):
                seen["stack"] = current_span_stack()

        with span("main_span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread never sees the main thread's open span.
        assert seen["stack"] == ("worker_span",)


class TestExceptionSafety:
    def test_span_closes_and_flags_error(self):
        collector = start_tracing()
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        assert current_span_stack() == ()
        (event,) = collector.events()
        assert event["error"] is True
        assert event["dur"] >= 0.0
        # The phase accumulator got the timing despite the raise.
        assert phase_totals()["doomed"]["count"] == 1

    def test_nested_raise_unwinds_all(self):
        with pytest.raises(ValueError):
            with span("a"):
                with span("b"):
                    raise ValueError
        assert current_span_stack() == ()

    def test_decorator_exception(self):
        @span("dec")
        def boom():
            raise KeyError("k")

        with pytest.raises(KeyError):
            boom()
        assert phase_totals()["dec"]["count"] == 1
        assert current_span_stack() == ()


class TestDecorator:
    def test_fresh_span_per_call(self):
        @span("work", kind="test")
        def work(x):
            return x * 2

        assert work(2) == 4
        assert work(3) == 6
        totals = phase_totals()
        assert totals["work"]["count"] == 2
        assert work.__name__ == "work"


class TestPhaseAccumulator:
    def test_accumulates_seconds_and_counts(self):
        for _ in range(3):
            with span("tick"):
                pass
        totals = phase_totals()
        assert totals["tick"]["count"] == 3
        assert totals["tick"]["seconds"] >= 0.0

    def test_reset(self):
        with span("tick"):
            pass
        reset_phase_totals()
        assert phase_totals() == {}

    def test_disabled_is_noop(self):
        set_enabled(False)
        assert not tracing_enabled()
        collector = start_tracing()
        with span("ghost"):
            assert current_span_stack() == ()
        assert phase_totals() == {}
        assert len(collector) == 0


class TestCollector:
    def test_install_and_uninstall(self):
        assert current_collector() is None
        collector = start_tracing()
        assert current_collector() is collector
        assert stop_tracing() is collector
        assert current_collector() is None

    def test_span_totals(self):
        collector = start_tracing()
        with span("a"):
            pass
        with span("a"):
            pass
        with span("b"):
            pass
        totals = collector.span_totals()
        assert set(totals) == {"a", "b"}
        assert totals["a"] >= 0.0

    def test_chrome_trace_is_valid(self, tmp_path):
        collector = start_tracing()
        with span("sweep", workload="stereo"):
            with span("run", cap_w=120.0):
                pass
        out = tmp_path / "prof.json"
        collector.dump(out)
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        by_name = {e["name"]: e for e in events}
        assert by_name["run"]["args"]["parent"] == "sweep"
        assert by_name["run"]["args"]["cap_w"] == 120.0
        assert by_name["sweep"]["args"]["workload"] == "stereo"

    def test_chrome_trace_args_jsonable(self):
        collector = start_tracing()
        with span("s", obj=object()):
            pass
        # Must serialise even with a non-JSON attribute value.
        json.dumps(collector.chrome_trace())

    def test_nested_spans_within_parent_extent(self):
        collector = start_tracing()
        with span("outer"):
            with span("inner"):
                pass
        by_name = {e["name"]: e for e in collector.chrome_trace()["traceEvents"]}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3
