"""Structured logging: JSON schema stability, levels, formatters."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logging import (
    HumanFormatter,
    JsonFormatter,
    configure_logging,
    get_logger,
    logging_configured,
)

#: Keys every JSON log line must carry, in every release.
SCHEMA_KEYS = {"ts", "level", "logger", "event"}


@pytest.fixture
def json_stream():
    """Reinstall the repro handler on a buffer in JSON mode."""
    stream = io.StringIO()
    configure_logging(level="debug", json_mode=True, stream=stream, force=True)
    yield stream
    configure_logging(level="warning", json_mode=False, force=True)


@pytest.fixture
def human_stream():
    """Reinstall the repro handler on a buffer in human mode."""
    stream = io.StringIO()
    configure_logging(
        level="debug", json_mode=False, stream=stream, force=True
    )
    yield stream
    configure_logging(level="warning", json_mode=False, force=True)


def lines(stream: io.StringIO):
    return [l for l in stream.getvalue().splitlines() if l]


class TestJsonSchema:
    def test_schema_keys_always_present(self, json_stream):
        get_logger("core.runner").info("run_done")
        (line,) = lines(json_stream)
        doc = json.loads(line)
        assert SCHEMA_KEYS <= set(doc)
        assert doc["event"] == "run_done"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.core.runner"
        assert isinstance(doc["ts"], float)

    def test_kwargs_ride_along_verbatim(self, json_stream):
        get_logger("t").info(
            "ev", cap_w=120.0, workload="stereo", n=3, ok=True, none=None
        )
        doc = json.loads(lines(json_stream)[0])
        assert doc["cap_w"] == 120.0
        assert doc["workload"] == "stereo"
        assert doc["n"] == 3
        assert doc["ok"] is True
        assert doc["none"] is None

    def test_schema_keys_win_over_colliding_fields(self, json_stream):
        get_logger("t").info("real_event", level="fake", logger="fake", ts=0)
        doc = json.loads(lines(json_stream)[0])
        assert doc["event"] == "real_event"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.t"
        assert doc["ts"] != 0

    def test_non_json_values_are_stringified(self, json_stream):
        get_logger("t").info("ev", path=object())
        doc = json.loads(lines(json_stream)[0])
        assert isinstance(doc["path"], str)

    def test_exception_fields(self, json_stream):
        log = get_logger("t")
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("crashed", job_id="j1")
        doc = json.loads(lines(json_stream)[0])
        assert doc["exc_type"] == "ValueError"
        assert doc["exc"] == "boom"
        assert doc["job_id"] == "j1"
        assert doc["level"] == "error"

    def test_every_line_parses_independently(self, json_stream):
        log = get_logger("t")
        for i in range(5):
            log.debug("tick", i=i)
        docs = [json.loads(l) for l in lines(json_stream)]
        assert [d["i"] for d in docs] == list(range(5))


class TestLevels:
    def test_threshold_filters(self, json_stream):
        configure_logging(level="warning", json_mode=True)
        log = get_logger("t")
        log.debug("hidden")
        log.info("hidden")
        log.warning("shown")
        events = [json.loads(l)["event"] for l in lines(json_stream)]
        assert events == ["shown"]

    def test_is_enabled_for(self, json_stream):
        configure_logging(level="info", json_mode=True)
        log = get_logger("t")
        assert log.is_enabled_for("info")
        assert not log.is_enabled_for("debug")
        assert log.is_enabled_for(logging.ERROR)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")


class TestConfiguration:
    def test_idempotent_no_handler_stacking(self, json_stream):
        for _ in range(3):
            configure_logging(level="debug", json_mode=True)
        get_logger("t").info("once")
        assert len(lines(json_stream)) == 1

    def test_configured_flag(self, json_stream):
        assert logging_configured()

    def test_get_logger_prefixes_root(self, json_stream):
        assert get_logger("mem.fastsim").name == "repro.mem.fastsim"
        assert get_logger("repro.cli").name == "repro.cli"

    def test_human_format_contains_fields(self, human_stream):
        get_logger("t").warning("cache_corrupt", path="/tmp/x", n=2)
        (line,) = lines(human_stream)
        assert "WARNING" in line
        assert "cache_corrupt" in line
        assert "path='/tmp/x'" in line
        assert "n=2" in line

    def test_formatters_standalone(self):
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "ev", (), None
        )
        record.fields = {"a": 1}
        assert json.loads(JsonFormatter().format(record))["a"] == 1
        assert "a=1" in HumanFormatter().format(record)
