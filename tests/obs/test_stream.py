"""The event bus behind the SSE API: semantics and backpressure.

Covers: per-topic monotonic sequence ids, replay history and the
``Last-Event-ID`` floor, the thread-local stream context, drop-oldest
backpressure with an exact dropped counter (including under concurrent
publishers), that a keeping-up subscriber loses nothing, and ≥ 4
subscribers fed concurrently.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.stream import (
    FLEET_TOPIC,
    JOB_TOPIC_PREFIX,
    TERMINAL_EVENT_KINDS,
    EventBus,
    StreamEvent,
    current_stream,
    event_bus,
    reset_event_bus,
    stream_context,
    stream_publish,
)


class TestBusBasics:
    def test_sequence_ids_are_per_topic_and_monotonic_from_1(self):
        bus = EventBus()
        assert bus.publish("a", "x", {}) == 1
        assert bus.publish("a", "x", {}) == 2
        assert bus.publish("b", "x", {}) == 1
        assert bus.last_seq("a") == 2
        assert bus.last_seq("b") == 1
        assert bus.last_seq("never") == 0

    def test_events_arrive_in_order_with_kind_and_data(self):
        bus = EventBus()
        sub = bus.subscribe("t")
        bus.publish("t", "sample", {"v": 1})
        bus.publish("t", "detection", {"v": 2})
        first = sub.get(timeout=1.0)
        second = sub.get(timeout=1.0)
        assert first == StreamEvent(1, "sample", {"v": 1})
        assert second == StreamEvent(2, "detection", {"v": 2})
        assert sub.get(timeout=0.01) is None

    def test_publish_retains_history_with_zero_subscribers(self):
        bus = EventBus()
        for i in range(5):
            bus.publish("t", "sample", {"i": i})
        sub = bus.subscribe("t")  # attach after the fact
        got = [sub.get(timeout=1.0) for _ in range(5)]
        assert [e.seq for e in got] == [1, 2, 3, 4, 5]

    def test_replay_floor_is_the_last_event_id_contract(self):
        bus = EventBus()
        for i in range(10):
            bus.publish("t", "sample", {"i": i})
        sub = bus.subscribe("t", last_event_id=7)
        got = [sub.get(timeout=1.0) for _ in range(3)]
        assert [e.seq for e in got] == [8, 9, 10]
        assert sub.get(timeout=0.01) is None

    def test_history_is_bounded(self):
        bus = EventBus(history=4)
        for i in range(10):
            bus.publish("t", "sample", {"i": i})
        sub = bus.subscribe("t")
        got = [sub.get(timeout=1.0) for _ in range(4)]
        assert [e.seq for e in got] == [7, 8, 9, 10]

    def test_unsubscribe_is_idempotent_and_closes(self):
        bus = EventBus()
        sub = bus.subscribe("t")
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)
        assert sub.closed
        assert bus.subscriber_count("t") == 0
        assert bus.publish("t", "sample", {}) == 1  # no delivery, no error

    def test_introspection_counts(self):
        bus = EventBus()
        a = bus.subscribe("t")
        b = bus.subscribe("t")
        bus.subscribe("u")
        assert bus.subscriber_count("t") == 2
        assert bus.subscriber_count() == 3
        assert bus.has_subscribers("t")
        assert not bus.has_subscribers("v")
        bus.publish("t", "x", {})
        assert bus.published_total() == 1
        assert bus.topics() == ["t", "u"]
        bus.unsubscribe(a)
        bus.unsubscribe(b)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EventBus(history=0)
        with pytest.raises(ValueError):
            EventBus(queue_size=0)


class TestBackpressure:
    def test_slow_subscriber_drops_oldest_and_counts_exactly(self):
        bus = EventBus()
        sub = bus.subscribe("t", queue_size=8)
        for i in range(20):
            bus.publish("t", "sample", {"i": i})
        # Oldest 12 dropped; the queue converged on the live edge.
        assert sub.dropped == 12
        assert bus.dropped_total() == 12
        got = [sub.get(timeout=1.0) for _ in range(8)]
        assert [e.seq for e in got] == list(range(13, 21))

    def test_fast_subscriber_loses_nothing(self):
        bus = EventBus()
        sub = bus.subscribe("t", queue_size=4)
        got = []
        for i in range(100):
            bus.publish("t", "sample", {"i": i})
            got.append(sub.get(timeout=1.0))  # keeps up
        assert [e.seq for e in got] == list(range(1, 101))
        assert sub.dropped == 0
        assert bus.dropped_total() == 0

    def test_dropped_counter_exact_under_concurrent_publishers(self):
        bus = EventBus()
        n_publishers, per_publisher, qsize = 8, 200, 16
        sub = bus.subscribe("t", queue_size=qsize)

        def blast():
            for _ in range(per_publisher):
                bus.publish("t", "sample", {})

        threads = [threading.Thread(target=blast) for _ in range(n_publishers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_publishers * per_publisher
        # Exactly (published - queue capacity) events were dropped, and
        # the bus-wide counter agrees with the subscription's own.
        assert sub.pending() == qsize
        assert sub.dropped == total - qsize
        assert bus.dropped_total() == sub.dropped
        assert bus.published_total() == total

    def test_four_subscribers_with_concurrent_publishers(self):
        bus = EventBus()
        subs = [bus.subscribe("t", queue_size=4096) for _ in range(4)]
        n_publishers, per_publisher = 4, 250

        def blast():
            for _ in range(per_publisher):
                bus.publish("t", "sample", {})

        threads = [threading.Thread(target=blast) for _ in range(n_publishers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_publishers * per_publisher
        for sub in subs:
            got = [sub.get(timeout=1.0) for _ in range(total)]
            # Every subscriber saw every event exactly once, in order.
            assert sorted(e.seq for e in got) == list(range(1, total + 1))
            assert sub.dropped == 0
        assert bus.dropped_total() == 0


class TestStreamContext:
    def test_no_context_means_no_publish(self):
        reset_event_bus()
        assert current_stream() is None
        assert stream_publish("sample", {"v": 1}) is None
        assert event_bus().published_total() == 0

    def test_context_routes_and_nests(self):
        reset_event_bus()
        with stream_context("outer"):
            assert current_stream() == "outer"
            assert stream_publish("sample", {}) == 1
            with stream_context("inner"):
                assert current_stream() == "inner"
                assert stream_publish("sample", {}) == 1
            assert current_stream() == "outer"
            assert stream_publish("sample", {}) == 2
        assert current_stream() is None
        assert event_bus().last_seq("outer") == 2
        assert event_bus().last_seq("inner") == 1
        reset_event_bus()

    def test_context_is_thread_local(self):
        reset_event_bus()
        seen = {}

        def worker():
            seen["topic"] = current_stream()

        with stream_context("main-only"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["topic"] is None
        reset_event_bus()


class TestConstants:
    def test_topic_naming(self):
        assert JOB_TOPIC_PREFIX == "job:"
        assert FLEET_TOPIC == "fleet"

    def test_terminal_kinds(self):
        assert TERMINAL_EVENT_KINDS == {
            "job_done",
            "job_failed",
            "job_cancelled",
        }
