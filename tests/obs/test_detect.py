"""Phenomenon detectors: frequency floor, cap overshoot, energy knee."""

from __future__ import annotations

import pytest

from repro.obs.detect import (
    detect_cap_overshoot,
    detect_energy_knee,
    detect_frequency_floor,
    scan_timeline,
)
from repro.obs.timeseries import RunTimeline, SeriesChannel

FLOOR = 1200.0


def timeline_with(name, values, cap=130.0, dt=1.0) -> RunTimeline:
    tl = RunTimeline(workload="w", cap_w=cap, period_s=dt)
    ch = SeriesChannel(name, capacity=max(8, len(values)))
    for i, v in enumerate(values):
        ch.add(i * dt, dt, v)
    tl.channels[name] = ch
    return tl


class TestFrequencyFloor:
    def test_pinned_run_flagged(self):
        tl = timeline_with("freq_mhz", [1200.0] * 20)
        det = detect_frequency_floor(tl, FLOOR)
        assert det is not None
        assert det.phenomenon == "freq_floor"
        assert det.detail["pinned_fraction"] == pytest.approx(1.0)

    def test_high_frequency_run_not_flagged(self):
        tl = timeline_with("freq_mhz", [2300.0] * 20)
        assert detect_frequency_floor(tl, FLOOR) is None

    def test_partial_pinning_below_threshold_not_flagged(self):
        values = [1200.0] * 5 + [2700.0] * 15  # 25% pinned < 60%
        tl = timeline_with("freq_mhz", values)
        assert detect_frequency_floor(tl, FLOOR) is None

    def test_mostly_pinned_flagged(self):
        values = [1200.0] * 15 + [2700.0] * 5
        det = detect_frequency_floor(timeline_with("freq_mhz", values), FLOOR)
        assert det is not None
        assert det.detail["pinned_fraction"] == pytest.approx(0.75)

    def test_missing_channel_ignored(self):
        tl = timeline_with("power_w", [120.0] * 5)
        assert detect_frequency_floor(tl, FLOOR) is None

    def test_none_timeline_ignored(self):
        assert detect_frequency_floor(None, FLOOR) is None


class TestCapOvershoot:
    def test_overshoot_with_settling(self):
        # Over-cap start, then settled: the paper's control-loop shape.
        values = [140.0, 135.0, 131.5, 129.0, 128.5, 129.5, 129.0]
        tl = timeline_with("power_w", values, cap=130.0)
        det = detect_cap_overshoot(tl)
        assert det is not None
        assert det.detail["peak_w"] == pytest.approx(140.0)
        assert det.detail["overshoot_w"] == pytest.approx(10.0)
        assert det.detail["settling_s"] == pytest.approx(3.0)  # end of 131.5

    def test_within_tolerance_not_flagged(self):
        tl = timeline_with("power_w", [130.5, 129.8, 130.2], cap=130.0)
        assert detect_cap_overshoot(tl) is None

    def test_uncapped_run_not_flagged(self):
        tl = timeline_with("power_w", [150.0] * 5, cap=None)
        assert detect_cap_overshoot(tl) is None


class TestEnergyKnee:
    def test_knee_found(self):
        # Flat near the top, rising steeply below 135 W (Figure 1 shape).
        energy = {160.0: 100.0, 150.0: 99.0, 140.0: 100.5,
                  135.0: 108.0, 130.0: 130.0, 120.0: 290.0}
        det = detect_energy_knee("w", energy)
        assert det is not None
        assert det.detail["knee_cap_w"] == 135.0
        assert det.detail["min_energy_j"] == pytest.approx(99.0)

    def test_flat_sweep_has_no_knee(self):
        energy = {c: 100.0 for c in (160.0, 150.0, 140.0, 130.0)}
        assert detect_energy_knee("w", energy) is None

    def test_too_few_caps(self):
        assert detect_energy_knee("w", {160.0: 1.0, 120.0: 2.0}) is None

    def test_transient_rise_not_a_knee(self):
        # A bump that recovers is measurement noise, not the knee.
        energy = {160.0: 110.0, 150.0: 100.0, 140.0: 100.5,
                  130.0: 100.2, 120.0: 100.1}
        assert detect_energy_knee("w", energy) is None


class TestScanTimeline:
    def test_collects_both_run_detections(self):
        tl = timeline_with("freq_mhz", [1200.0] * 10, cap=120.0)
        power = SeriesChannel("power_w", capacity=16)
        for i, v in enumerate([126.0, 124.0, 120.4, 120.2]):
            power.add(i * 1.0, 1.0, v)
        tl.channels["power_w"] = power
        names = {d.phenomenon for d in scan_timeline(tl, FLOOR)}
        assert names == {"freq_floor", "cap_overshoot"}

    def test_to_dict_is_json_ready(self):
        tl = timeline_with("freq_mhz", [1200.0] * 4, cap=120.0)
        (det,) = scan_timeline(tl, FLOOR)
        doc = det.to_dict()
        assert doc["phenomenon"] == "freq_floor"
        assert doc["cap_w"] == 120.0
        assert isinstance(doc["detail"], dict)
