"""The `top` dashboard: metrics parsing and frame rendering."""

from __future__ import annotations

from repro.obs.top import parse_metrics, render_dashboard, run_top

EXPOSITION = """\
# HELP repro_queue_depth Jobs queued and not yet running
# TYPE repro_queue_depth gauge
repro_queue_depth 3
repro_jobs{state="running"} 2
repro_jobs{state="done"} 7
repro_rate_cache_hits_total 30
repro_rate_cache_misses_total 10
repro_engine_effective_jobs 4
repro_stream_events_total 120
repro_stream_dropped_total 5
repro_stream_subscribers 1
"""

FLEET_EXPOSITION = EXPOSITION + """\
repro_fleet_nodes 960
repro_fleet_health_headroom_w -12.5
repro_fleet_health_capfloor_frac 0.25
repro_fleet_health_slo_debt_rate_w 80.2
repro_fleet_health_escalation_level 2
repro_fleet_health_rack_headroom_w_bucket{le="0"} 10
repro_fleet_health_rack_headroom_w_bucket{le="50"} 25
repro_fleet_health_rack_headroom_w_bucket{le="+Inf"} 30
repro_telemetry_detections_total{phenomenon="budget_thrash"} 1
"""


class TestParseMetrics:
    def test_scalars_and_labels(self):
        metrics = parse_metrics(EXPOSITION)
        assert metrics["repro_queue_depth"] == [({}, 3.0)]
        assert ({"state": "running"}, 2.0) in metrics["repro_jobs"]
        assert ({"state": "done"}, 7.0) in metrics["repro_jobs"]

    def test_garbage_lines_skipped(self):
        metrics = parse_metrics(
            "not a metric line\n\n# comment\nrepro_x nan_is_fine_no 1\nok 2\n"
        )
        assert "not" not in metrics
        assert metrics["ok"] == [({}, 2.0)]
        # Malformed value column -> line dropped, not crashed.
        assert "repro_x" not in metrics

    def test_quoted_label_values(self):
        metrics = parse_metrics('m{le="+Inf",x="a b"} 4\n')
        assert metrics["m"] == [({"le": "+Inf", "x": "a b"}, 4.0)]


class TestRenderDashboard:
    def test_service_panel_contents(self):
        frame = render_dashboard(
            parse_metrics(EXPOSITION), health={"workers": 4}
        )
        assert "queue depth      3" in frame
        assert "workers   4" in frame
        assert "( 50.0% busy)" in frame
        assert "done=7  running=2" in frame
        assert "rate cache   75.0% hit (30/40)" in frame
        assert "effective jobs 4" in frame
        assert "120 events   5 dropped   1 subscribers" in frame

    def test_fleet_block_gated_on_node_count(self):
        without = render_dashboard(parse_metrics(EXPOSITION))
        assert "fleet" not in without
        with_fleet = render_dashboard(parse_metrics(FLEET_EXPOSITION))
        assert "fleet  headroom     -12.5 W" in with_fleet
        assert "cap-floor  25.0%" in with_fleet
        assert "esc L2" in with_fleet

    def test_rack_histogram_buckets(self):
        frame = render_dashboard(parse_metrics(FLEET_EXPOSITION))
        # 10 racks <= 0 W, 15 in (0, 50], 5 beyond.
        assert "racks         <= 0 W" in frame
        assert "racks        <= 50 W" in frame
        assert "racks      <= +Inf W" in frame

    def test_detections_line(self):
        frame = render_dashboard(parse_metrics(FLEET_EXPOSITION))
        assert "detections  budget_thrash=1" in frame

    def test_no_health_means_zero_workers(self):
        frame = render_dashboard(parse_metrics(EXPOSITION), health=None)
        assert "workers   0" in frame


class TestRunTop:
    def test_unreachable_url_renders_error_frame(self):
        chunks = []
        code = run_top(
            "http://127.0.0.1:1",  # reserved port: connection refused
            once=True,
            write=chunks.append,
        )
        assert code == 0
        out = "".join(chunks)
        assert "unreachable: http://127.0.0.1:1" in out
        # `once` never emits cursor-movement escapes.
        assert "\x1b[" not in out

    def test_iterations_bounds_the_loop(self):
        chunks = []
        code = run_top(
            "http://127.0.0.1:1",
            interval_s=0.0,
            iterations=3,
            write=chunks.append,
        )
        assert code == 0
        out = "".join(chunks)
        assert out.count("unreachable") == 3
        # Repaint escapes appear from the second frame on.
        assert out.count("\x1b[") == 4  # 2 frames x (cursor-up + clear)
