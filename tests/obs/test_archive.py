"""Observability archive: snapshots, run records, trends, retention."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import ConfigError, SimulationError
from repro.obs.archive import (
    DEFAULT_TREND_RULES,
    MetricsRecorder,
    ObsArchive,
    detect_trends,
    distill_experiment_doc,
    distill_fleet_doc,
    flatten_series_name,
    rule_for_series,
)


@pytest.fixture()
def archive(tmp_path):
    return ObsArchive(tmp_path / "archive.sqlite3")


def sweep_doc(runs_per_s=100.0):
    """A minimal but schema-true BENCH_sweep.json document."""
    return {
        "schema": 2,
        "benchmark": "table2-sweep",
        "machine": {"cpu_count": 4},
        "parameters": {"repetitions": 3},
        "sweep": {
            "jobs1": {"wall_s": 10.0, "runs_per_s": runs_per_s},
            "jobs1_batch": {"wall_s": 8.0, "runs_per_s": 1.2 * runs_per_s},
            "jobs4": {"wall_s": 4.0, "runs_per_s": 2.5 * runs_per_s},
            "parallel_speedup": 2.5,
            "batch_runs_per_s": 1.2 * runs_per_s,
            "chunk_overhead_ms": 1.5,
        },
        "single_run_120w": {
            "speedup": 1.3,
            "engagement": 0.9,
            "scalar_ms": 5.0,
            "block_ms": 3.8,
        },
    }


def fleet_doc():
    """A minimal BENCH_fleet.json document."""
    return {
        "schema": 1,
        "benchmark": "fleet-scale",
        "machine": {"cpu_count": 4},
        "parameters": {},
        "sizes": {
            "960": {"wall_s": 1.0, "node_steps_per_s": 2.0e6},
            "99840": {"wall_s": 9.0, "node_steps_per_s": 1.5e6},
        },
    }


def seed_sweep_history(archive, rates):
    """One bench_sweep run per rate, with strictly increasing ts."""
    run_ids = []
    for i, rate in enumerate(rates):
        _, run_id = archive.ingest_bench(
            sweep_doc(runs_per_s=rate), ts=1000.0 + i, run_id=f"r{i}"
        )
        run_ids.append(run_id)
    return run_ids


class TestArchiveBasics:
    def test_creates_schema_and_survives_reopen(self, tmp_path):
        path = tmp_path / "a.sqlite3"
        first = ObsArchive(path)
        first.record_run("r1", "job", {"runs_per_s": 5.0})
        again = ObsArchive(path)  # reopen must not clobber
        assert again.get_run("r1")["series"]["runs_per_s"] == 5.0
        assert again.path == str(path)

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ObsArchive(tmp_path)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.sqlite3"
        ObsArchive(path)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigError):
            ObsArchive(path)


class TestSnapshots:
    def test_record_and_read_back(self, archive):
        samples = [
            ("repro_jobs_submitted_total", {}, 3.0),
            ("repro_jobs", {"state": "done"}, 2.0),
        ]
        assert archive.record_snapshot(samples, ts=10.0, dt_s=5.0) == 2
        assert archive.snapshot_series() == [
            "repro_jobs_submitted_total",
            "repro_jobs{state=done}",
        ]
        (point,) = archive.metric_history("repro_jobs_submitted_total")
        assert (point.t_s, point.dt_s, point.mean) == (10.0, 5.0, 3.0)
        assert point.vmin == point.vmax == 3.0

    def test_empty_scrape_writes_nothing(self, archive):
        assert archive.record_snapshot([], ts=1.0) == 0
        assert archive.snapshot_count() == 0

    def test_since_and_limit_filters(self, archive):
        for i in range(10):
            archive.record_snapshot([("m", {}, float(i))], ts=float(i),
                                    dt_s=1.0)
        assert len(archive.metric_history("m", since=5.0)) == 5
        tail = archive.metric_history("m", limit=3)
        assert [p.mean for p in tail] == [7.0, 8.0, 9.0]
        assert archive.snapshot_count("m") == 10
        assert archive.snapshot_count("nope") == 0

    def test_prune_preserves_integral(self, archive):
        exact = 0.0
        for i in range(200):
            value = 100.0 + (i % 7)
            archive.record_snapshot([("m", {}, value)], ts=float(i), dt_s=1.0)
            exact += value * 1.0
        freed = archive.prune_snapshots(max_points=16)
        assert freed > 0
        points = archive.metric_history("m")
        assert len(points) <= 16
        integral = sum(p.mean * p.dt_s for p in points)
        assert integral == pytest.approx(exact, rel=1e-9)
        # Coverage stays gap-free at the coarser resolution.
        for prev, cur in zip(points, points[1:]):
            assert cur.t_s == pytest.approx(prev.t_s + prev.dt_s, rel=1e-9)

    def test_prune_skips_short_series(self, archive):
        for i in range(5):
            archive.record_snapshot([("m", {}, 1.0)], ts=float(i), dt_s=1.0)
        assert archive.prune_snapshots(max_points=16) == 0
        assert archive.snapshot_count("m") == 5

    def test_prune_retention_floor(self, archive):
        with pytest.raises(ConfigError):
            archive.prune_snapshots(max_points=4)


class TestRunRecords:
    def test_record_get_and_list(self, archive):
        archive.record_run(
            "r1", "job", {"runs_per_s": 4.0, "wall_s": 2.0},
            meta={"workloads": ["sire"]}, source="service", ts=100.0,
        )
        run = archive.get_run("r1")
        assert run["kind"] == "job" and run["source"] == "service"
        assert run["series"] == {"runs_per_s": 4.0, "wall_s": 2.0}
        assert run["meta"]["workloads"] == ["sire"]
        assert archive.get_run("missing") is None
        (listed,) = archive.runs(kind="job")
        assert listed["run_id"] == "r1" and "series" not in listed

    def test_rerecord_replaces_series(self, archive):
        archive.record_run("r1", "job", {"a": 1.0, "b": 2.0})
        archive.record_run("r1", "job", {"a": 5.0})
        assert archive.get_run("r1")["series"] == {"a": 5.0}

    def test_series_history_ordering(self, archive):
        archive.record_run("r2", "job", {"x": 2.0}, ts=20.0)
        archive.record_run("r1", "job", {"x": 1.0}, ts=10.0)
        archive.record_run("f1", "fleet", {"x": 9.0}, ts=15.0)
        assert archive.series_history("x") == [
            (10.0, "r1", 1.0), (15.0, "f1", 9.0), (20.0, "r2", 2.0),
        ]
        assert archive.series_history("x", kind="job") == [
            (10.0, "r1", 1.0), (20.0, "r2", 2.0),
        ]
        assert archive.run_series_names(kind="fleet") == ["x"]

    def test_compare_runs(self, archive):
        archive.record_run("a", "job", {"runs_per_s": 100.0, "only_a": 1.0,
                                        "zero": 0.0})
        archive.record_run("b", "job", {"runs_per_s": 75.0, "only_b": 2.0,
                                        "zero": 3.0})
        cmp = archive.compare_runs("a", "b")
        entry = cmp["series"]["runs_per_s"]
        assert entry["delta"] == pytest.approx(-25.0)
        assert entry["rel"] == pytest.approx(-0.25)
        assert cmp["series"]["only_a"] == {"a": 1.0, "b": None}
        assert cmp["series"]["only_b"] == {"a": None, "b": 2.0}
        assert "rel" not in cmp["series"]["zero"]  # zero reference
        assert cmp["a"]["run_id"] == "a" and cmp["b"]["run_id"] == "b"

    def test_compare_unknown_run_raises(self, archive):
        archive.record_run("a", "job", {"x": 1.0})
        with pytest.raises(SimulationError):
            archive.compare_runs("a", "ghost")
        with pytest.raises(SimulationError):
            archive.compare_runs("ghost", "a")


class TestHealthWindows:
    def test_sink_records_windows(self, archive):
        sink = archive.health_sink("fleet-1")
        sink(0.0, 60.0, {"headroom_w": 12.0, "capfloor_frac": 0.1,
                         "slo_debt_rate_w": 3.0, "escalation_level": 1.0})
        sink(60.0, 60.0, {"headroom_w": 10.0})
        windows = archive.health_windows("fleet-1")
        assert len(windows) == 2
        assert windows[0]["headroom_w"] == 12.0
        assert windows[0]["escalation_level"] == 1.0
        assert windows[1]["capfloor_frac"] == 0.0  # missing keys default
        assert archive.health_windows("other") == []


class TestBaselines:
    def test_set_get_replace(self, archive):
        archive.set_baseline("v1", {"runs_per_s": 100.0, "wall_s": 2.0})
        assert archive.baseline("v1")["runs_per_s"] == 100.0
        archive.set_baseline("v1", {"runs_per_s": 120.0})
        assert archive.baseline("v1") == {"runs_per_s": 120.0}
        assert archive.baseline_names() == ["v1"]
        assert archive.baseline("ghost") == {}


class TestBenchIngestion:
    def test_ingest_sweep(self, archive):
        kind, run_id = archive.ingest_bench(sweep_doc(), source="test",
                                            ts=123.0)
        assert kind == "bench_sweep"
        run = archive.get_run(run_id)
        assert run["series"]["runs_per_s"] == 100.0
        assert run["series"]["jobs4.runs_per_s"] == 250.0
        assert run["series"]["single_run.speedup"] == 1.3
        assert run["meta"]["benchmark"] == "table2-sweep"

    def test_ingest_fleet(self, archive):
        kind, run_id = archive.ingest_bench(fleet_doc())
        assert kind == "bench_fleet"
        series = archive.get_run(run_id)["series"]
        # Headline tracks the largest fleet size.
        assert series["node_steps_per_s"] == 1.5e6
        assert series["node_steps_per_s.960"] == 2.0e6
        assert series["wall_s.99840"] == 9.0

    def test_ingest_rejects_unknown_document(self, archive):
        with pytest.raises(SimulationError):
            archive.ingest_bench({"benchmark": "nope"})
        with pytest.raises(SimulationError):
            archive.ingest_bench([1, 2, 3])
        with pytest.raises(SimulationError):
            archive.ingest_bench({"benchmark": "table2-sweep", "sweep": {}})


class TestTrendEngine:
    def test_injected_regression_detected(self, archive):
        # 5 healthy runs at 100 runs/s, then 3 at 75 — a 25% drop, past
        # the 20% threshold the issue's acceptance criterion names.
        seed_sweep_history(archive, [100.0] * 5 + [75.0] * 3)
        trends = {t.series: t for t in detect_trends(archive, window=3)}
        t = trends["runs_per_s"]
        assert t.verdict == "regression" and t.is_regression
        assert t.reference == pytest.approx(100.0)
        assert t.recent == pytest.approx(75.0)
        assert t.shift == pytest.approx(-0.25)
        assert t.values == [100.0] * 5 + [75.0] * 3

    def test_stable_and_improvement(self, archive):
        seed_sweep_history(archive, [100.0] * 5 + [130.0] * 3)
        trends = {t.series: t for t in detect_trends(archive, window=3)}
        assert trends["runs_per_s"].verdict == "improvement"
        # chunk_overhead_ms never moved: stable, lower-is-better rule.
        t = trends["chunk_overhead_ms"]
        assert t.verdict == "stable" and not t.higher_is_better

    def test_lower_is_better_direction(self, archive):
        # Wall clock rising 50% is a regression even though the value grew.
        for i, wall in enumerate([10.0] * 4 + [15.0] * 3):
            doc = sweep_doc()
            doc["sweep"]["jobs1"]["wall_s"] = wall
            archive.ingest_bench(doc, ts=1000.0 + i, run_id=f"w{i}")
        trends = {t.series: t for t in detect_trends(archive, window=3)}
        assert trends["jobs1.wall_s"].verdict == "regression"

    def test_insufficient_history(self, archive):
        seed_sweep_history(archive, [100.0, 90.0])
        trends = detect_trends(archive, window=3)
        assert trends and all(t.verdict == "insufficient" for t in trends)
        assert not any(t.is_regression for t in trends)

    def test_named_baseline_reference(self, archive):
        # History alone looks flat, but against the pinned baseline the
        # whole tail is 40% down.
        seed_sweep_history(archive, [60.0] * 6)
        archive.set_baseline("golden", {"runs_per_s": 100.0})
        trends = {
            t.series: t
            for t in detect_trends(archive, window=3, baseline="golden")
        }
        t = trends["runs_per_s"]
        assert t.verdict == "regression"
        assert t.reference == 100.0
        # Series the baseline doesn't pin fall back to history medians.
        assert trends["parallel_speedup"].verdict == "stable"

    def test_explicit_series_subset(self, archive):
        seed_sweep_history(archive, [100.0] * 5 + [75.0] * 3)
        trends = detect_trends(archive, series=["runs_per_s"], window=3)
        assert [t.series for t in trends] == ["runs_per_s"]

    def test_window_floor(self, archive):
        with pytest.raises(ConfigError):
            detect_trends(archive, window=0)

    def test_to_dict_round_trips_json(self, archive):
        seed_sweep_history(archive, [100.0] * 5)
        doc = detect_trends(archive, window=2)[0].to_dict()
        assert {"series", "verdict", "shift", "values"} <= set(doc)


class TestTrendRules:
    def test_exact_match_wins(self):
        rule = rule_for_series("single_run.engagement")
        assert rule.threshold == 0.10 and rule.higher_is_better

    def test_suffix_heuristics(self):
        assert rule_for_series("jobs4.runs_per_s").higher_is_better
        assert not rule_for_series("phase.sweep_s").higher_is_better
        assert not rule_for_series("chunk_overhead_ms").higher_is_better
        assert not rule_for_series("total_energy_j").higher_is_better
        assert rule_for_series("totally_unknown").higher_is_better

    def test_default_rules_cover_headlines(self):
        names = {r.series for r in DEFAULT_TREND_RULES}
        assert {"runs_per_s", "node_steps_per_s", "parallel_speedup"} <= names


class TestFlattenSeriesName:
    def test_bare_when_unlabelled(self):
        assert flatten_series_name("m", {}) == "m"

    def test_labels_sorted(self):
        assert (
            flatten_series_name("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"
        )


class TestMetricsRecorder:
    def make(self, archive, samples, **kwargs):
        return MetricsRecorder(archive, lambda: list(samples), **kwargs)

    def test_snapshot_dt_tracks_scrape_gap(self, archive):
        rec = self.make(archive, [("m", {}, 1.0)])
        rec.snapshot_once(ts=100.0)
        rec.snapshot_once(ts=104.0)
        points = archive.metric_history("m")
        assert [p.dt_s for p in points] == [0.0, 4.0]
        assert rec.snapshots == 2 and rec.rows == 2

    def test_bucket_rows_skipped_by_default(self, archive):
        samples = [
            ("repro_sweep_seconds_bucket", {"le": "1"}, 3.0),
            ("repro_sweep_seconds_sum", {}, 2.5),
        ]
        self.make(archive, samples).snapshot_once(ts=1.0)
        assert archive.snapshot_series() == ["repro_sweep_seconds_sum"]
        rec = self.make(archive, samples, include_buckets=True)
        rec.snapshot_once(ts=2.0)
        assert len(archive.snapshot_series()) == 2

    def test_opportunistic_prune(self, archive):
        rec = self.make(archive, [("m", {}, 1.0)], retention=8,
                        prune_every=16)
        for i in range(32):
            rec.snapshot_once(ts=float(i))
        assert archive.snapshot_count("m") <= 9  # 8 kept + newest scrape

    def test_background_thread_lifecycle(self, archive):
        rec = self.make(archive, [("m", {}, 1.0)], period_s=0.01)
        rec.start()
        rec.start()  # idempotent
        try:
            import time as _time

            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline and rec.snapshots < 3:
                _time.sleep(0.01)
            assert rec.snapshots >= 3
        finally:
            rec.stop(final_snapshot=True)
        stopped_at = rec.snapshots
        assert archive.snapshot_count("m") == stopped_at
        assert rec._thread is None

    def test_period_must_be_positive(self, archive):
        with pytest.raises(ConfigError):
            self.make(archive, [], period_s=0.0)


class TestDistillation:
    def experiment_docs(self):
        return {
            "StereoMatching": {
                "baseline": {"execution_s": 10.0, "energy_j": 900.0,
                             "n_runs": 3},
                "by_cap": {
                    "120": {"execution_s": 14.0, "energy_j": 800.0,
                            "n_runs": 3},
                },
                "provenance": {
                    "phase_seconds": {"sweep": 2.0, "trace": 0.5},
                    "phenomena": [
                        {"phenomenon": "cap_cliff"},
                        {"phenomenon": "cap_cliff"},
                    ],
                    "rate_cache": {"hits": 9, "misses": 1},
                    "git": "abc123",
                    "package_version": "1.0.0",
                },
            },
        }

    def test_distill_experiment_doc(self):
        series, meta = distill_experiment_doc(self.experiment_docs(),
                                              wall_s=3.0)
        assert series["StereoMatching.execution_s.baseline"] == 10.0
        assert series["StereoMatching.execution_s.120"] == 14.0
        assert series["StereoMatching.energy_j.120"] == 800.0
        assert series["phase.sweep_s"] == 2.0
        assert series["phenomena.cap_cliff"] == 2.0
        assert series["rate_cache.hit_rate"] == pytest.approx(0.9)
        assert series["runs"] == 6.0
        assert series["runs_per_s"] == pytest.approx(2.0)
        assert meta["workloads"] == ["StereoMatching"]
        assert meta["git"] == "abc123"

    def test_distill_without_wall_clock(self):
        series, _ = distill_experiment_doc(self.experiment_docs())
        assert "runs_per_s" not in series and "wall_s" not in series

    def test_distill_fleet_doc(self):
        doc = {
            "ticks": 500,
            "summary": {
                "node_steps_per_s": 1.2e6,
                "health": {"headroom_w": 10.0},
                "strategy": "proportional",  # non-numeric: dropped
            },
            "rebalances": {"applied": 10, "evaluated": 100},
            "phenomena": [{"phenomenon": "thrash"}],
            "provenance": {"engine": "fleet", "budget_w": 5000.0},
            "topology": {"n_nodes": 960},
        }
        series, meta = distill_fleet_doc(doc)
        assert series["node_steps_per_s"] == 1.2e6
        assert series["health.headroom_w"] == 10.0
        assert series["ticks"] == 500.0
        assert series["rebalances.applied"] == 10.0
        assert series["phenomena.thrash"] == 1.0
        assert "strategy" not in series
        assert meta["n_nodes"] == 960 and meta["budget_w"] == 5000.0
