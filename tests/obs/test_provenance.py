"""Provenance manifests: contents, round-trips, inspect rendering."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.config import sandy_bridge_config
from repro.core.experiment import PowerCapExperiment
from repro.core.serialize import (
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
    save_experiment,
)
from repro.obs.provenance import (
    PROVENANCE_SCHEMA_VERSION,
    build_provenance,
    config_digest,
    render_provenance,
)
from repro.service.store import ResultStore
from repro.workloads.stereo import StereoMatchingWorkload


def scaled(workload, factor=0.005):
    workload._spec = replace(
        workload.spec,
        total_instructions=int(workload.spec.total_instructions * factor),
    )
    return workload


@pytest.fixture(scope="module")
def swept():
    """One tiny sweep with provenance attached (module-cached)."""
    workload = scaled(StereoMatchingWorkload())
    experiment = PowerCapExperiment(
        [workload],
        caps_w=(150.0,),
        repetitions=1,
        slice_accesses=60_000,
    )
    return experiment.run_workload(workload)


class TestManifest:
    def test_required_keys(self, swept):
        manifest = swept.provenance
        assert manifest is not None
        for key in (
            "schema",
            "package_version",
            "git",
            "created_at",
            "config_digest",
            "workload",
            "seed",
            "caps_w",
            "repetitions",
            "slice_accesses",
            "rate_cache",
            "phase_seconds",
        ):
            assert key in manifest, key
        assert manifest["schema"] == PROVENANCE_SCHEMA_VERSION
        assert manifest["caps_w"] == [150.0]
        assert manifest["repetitions"] == 1
        assert manifest["slice_accesses"] == 60_000
        assert manifest["workload"]["type"] == "StereoMatchingWorkload"
        assert "total_instructions" in manifest["workload"]["spec"]

    def test_phase_seconds_cover_the_sweep(self, swept):
        phases = swept.provenance["phase_seconds"]
        # The sweep phase dominates; run and simulate_trace nest in it.
        assert phases.get("sweep", 0.0) > 0.0
        assert phases.get("run", 0.0) > 0.0
        assert phases["run"] <= phases["sweep"] + 1e-3

    def test_config_digest_is_stable(self):
        config = sandy_bridge_config()
        assert config_digest(config) == config_digest(sandy_bridge_config())
        assert len(config_digest(config)) == 32

    def test_rate_cache_block(self, tmp_path):
        from repro.core.ratecache import RateCache

        cache = RateCache(tmp_path / "rates.json")
        manifest = build_provenance(
            config=sandy_bridge_config(),
            workload=scaled(StereoMatchingWorkload()),
            seed=7,
            caps_w=(150.0,),
            repetitions=1,
            slice_accesses=1000,
            rate_cache=cache,
        )
        block = manifest["rate_cache"]
        assert block["path"].endswith("rates.json")
        assert block["hits"] == 0
        assert block["misses"] == 0
        assert block["entries"] == 0

    def test_manifest_is_json_normalised(self):
        manifest = build_provenance(
            config=sandy_bridge_config(),
            workload=scaled(StereoMatchingWorkload()),
            seed=7,
            caps_w=(150.0, 140.0),
            repetitions=2,
            slice_accesses=1000,
        )
        # Tuples were converted up front: the dict round-trips equal.
        assert json.loads(json.dumps(manifest)) == manifest


class TestRoundTrips:
    def test_serialize_round_trip(self, swept):
        restored = experiment_from_dict(experiment_to_dict(swept))
        assert restored.provenance == swept.provenance
        assert restored == swept

    def test_file_round_trip(self, swept, tmp_path):
        path = tmp_path / "result.json"
        save_experiment(swept, path)
        assert load_experiment(path) == swept

    def test_documents_without_provenance_still_load(self, swept):
        doc = experiment_to_dict(swept)
        doc.pop("provenance")
        assert experiment_from_dict(doc).provenance is None

    def test_sqlite_store_round_trip(self, swept, tmp_path):
        store = ResultStore(tmp_path / "store.sqlite3")
        store.put_result("digest-1", {swept.workload: swept})
        restored = store.get_result("digest-1")[swept.workload]
        assert restored.provenance == swept.provenance
        assert restored == swept


class TestRendering:
    def test_render_contains_key_facts(self, swept):
        text = render_provenance(swept.provenance, title="StereoMatching:")
        assert "StereoMatching:" in text
        assert "config_digest:" in text
        assert "phase_seconds:" in text
        assert "seed:" in text

    def test_render_handles_missing_manifest(self):
        text = render_provenance(None, title="x:")
        assert "(no provenance recorded)" in text


class TestInspectCommand:
    def test_inspect_result_file(self, swept, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "result.json"
        save_experiment(swept, path)
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "config_digest:" in out
        assert "phase_seconds:" in out

    def test_inspect_stored_job(self, swept, tmp_path, capsys):
        from repro.cli import main
        from repro.service.jobs import Job, JobSpec

        db = tmp_path / "svc.sqlite3"
        store = ResultStore(db)
        job = Job(spec=JobSpec(workload="stereo", caps_w=(150.0,)))
        store.record_job(job)
        store.put_result(job.spec_digest, {swept.workload: swept})
        assert main(["inspect", job.id, "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert job.id in out
        assert "config_digest:" in out

    def test_inspect_unknown_target(self, tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "svc.sqlite3"
        ResultStore(db)
        assert main(["inspect", "no-such-job", "--db", str(db)]) == 2
        assert "neither a result file nor a job id" in capsys.readouterr().err

    def test_inspect_never_creates_a_store(self, tmp_path):
        from repro.cli import main

        db = tmp_path / "absent.sqlite3"
        assert main(["inspect", "whatever", "--db", str(db)]) == 2
        assert not db.exists()
