"""Failure injection: the management plane under adverse conditions.

A credible management stack must degrade sanely when its inputs lie or
its network misbehaves — these tests break things on purpose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.bmc import Bmc
from repro.bmc.controller import CapController
from repro.bmc.sensors import PowerSensor
from repro.dcm.events import AlertSeverity
from repro.dcm.manager import DataCenterManager
from repro.dcm.policy import StaticCapPolicy
from repro.errors import IpmiTransportError
from repro.ipmi.transport import LanTransport


class StuckSensor(PowerSensor):
    """A sensor whose reading froze at a fixed value."""

    def __init__(self, stuck_at_w: float) -> None:
        super().__init__(np.random.default_rng(0), noise_sigma_w=0.0)
        self._stuck = stuck_at_w

    def sample(self, true_power_w: float) -> float:  # noqa: ARG002
        return super().sample(self._stuck)


def drive(node, controller, quanta=400):
    power = node.power_w()
    cmd = None
    for _ in range(quanta):
        cmd = controller.update(power)
        power = node.power_model.power_of_pstate(
            cmd.pstate_slow,
            duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            temperature_c=node.thermal.temperature_c,
        )
        node.thermal.step(power, 0.05)
    return cmd, power


class TestStuckSensors:
    """The DVFS stage is model-based feed-forward, so a lying sensor
    cannot disturb it; only the (sensor-fed) escalation machine is
    corrupted, and only when the bracket sits at the floor."""

    def test_dvfs_stage_immune_to_stuck_sensor(self, config):
        node = Node(config)
        controller = CapController(node, StuckSensor(200.0))
        controller.set_cap(150.0)
        cmd, power = drive(node, controller, quanta=1500)
        # The model still picks the right dither pair; no escalation is
        # possible because the bracket never reaches the floor.
        assert cmd.escalation_level == 0
        assert cmd.duty == 1.0
        assert power == pytest.approx(147.0, abs=2.0)

    def test_sensor_stuck_low_blocks_escalation(self, config):
        """At a 120 W cap the node genuinely needs sub-floor measures,
        but a sensor stuck at 110 W says everything is fine: the node
        sits at the DVFS floor, quietly over the cap, with no
        escalation artifacts — a bounded failure, not a spiral."""
        node = Node(config)
        controller = CapController(node, StuckSensor(110.0))
        controller.set_cap(120.0)
        cmd, power = drive(node, controller, quanta=800)
        assert cmd.escalation_level == 0
        assert cmd.duty == 1.0
        assert power > 120.0  # overrun, as physics demands

    def test_sensor_stuck_high_exhausts_actuators_and_stops(self, config):
        """At the floor, a sensor stuck high walks the ladder to its
        top and duty to its minimum — and stays there, stable."""
        node = Node(config)
        controller = CapController(node, StuckSensor(200.0))
        controller.set_cap(120.0)
        cmd, power = drive(node, controller, quanta=1500)
        assert cmd.escalation_level == controller.ladder.max_level
        assert cmd.duty == pytest.approx(config.bmc.ladder.duty_min)
        # Still over 120 W (the achievable floor) but bounded.
        assert 118.0 < power < 126.0


class TestNetworkPartitions:
    def test_partition_alerts_then_recovers(self, config):
        """Node vanishes from the LAN mid-operation; the DCM raises a
        CRITICAL alert, keeps ticking, and reconciles on return."""
        rng = np.random.default_rng(0)
        lan = LanTransport(
            rng, drop_probability=0.0, corruption_probability=0.0,
            max_retries=1,
        )
        node = Node(config)
        bmc = Bmc(node, np.random.default_rng(1), lan_address="10.0.0.8",
                  transport=lan)
        bmc.record_power(150.0, 0.05)
        dcm = DataCenterManager(lan)
        dcm.register_node("n", "10.0.0.8", policy=StaticCapPolicy(140.0))
        dcm.tick(0.0)
        assert dcm.node("n").reachable

        # Partition: detach the endpoint.
        lan.unregister("10.0.0.8")
        dcm.tick(10.0)
        assert not dcm.node("n").reachable
        critical = dcm.alerts.by_severity(AlertSeverity.CRITICAL)
        assert len(critical) == 1

        # Heal: reattach; next tick reconciles and logs recovery.
        lan.register("10.0.0.8", bmc.handle_frame)
        dcm.tick(20.0)
        assert dcm.node("n").reachable
        infos = dcm.alerts.by_severity(AlertSeverity.INFO)
        assert any("reachable again" in a.message for a in infos)

    def test_direct_request_to_partitioned_node_raises(self, config):
        rng = np.random.default_rng(0)
        lan = LanTransport(rng, max_retries=1)
        dcm = DataCenterManager(lan)
        dcm.register_node("ghost", "10.0.0.99")
        with pytest.raises(IpmiTransportError):
            dcm.read_power("ghost")

    def test_very_lossy_lan_still_converges(self, config):
        """30 % frame loss: retries carry the day."""
        rng = np.random.default_rng(4)
        lan = LanTransport(
            rng, drop_probability=0.3, corruption_probability=0.05,
            max_retries=40,
        )
        node = Node(config)
        bmc = Bmc(node, np.random.default_rng(1), lan_address="10.0.0.7",
                  transport=lan)
        bmc.record_power(151.0, 0.05)
        dcm = DataCenterManager(lan)
        dcm.register_node("n", "10.0.0.7", policy=StaticCapPolicy(135.0))
        for t in range(5):
            dcm.tick(float(t))
        assert bmc.controller.cap_w == 135.0
        assert dcm.node("n").history  # readings made it through
        assert lan.stats.retries > 0


class TestThermalExtremes:
    def test_hot_ambient_raises_idle_power_but_nothing_breaks(self, config):
        node = Node(config)
        node.thermal.reset(70.0)
        hot_idle = node.idle_power_w()
        node.thermal.reset(25.0)
        cool_idle = node.idle_power_w()
        assert hot_idle > cool_idle
        # Controller still converges with the hotter leakage.
        node.thermal.reset(70.0)
        controller = CapController(
            node, PowerSensor(np.random.default_rng(0), noise_sigma_w=0.0)
        )
        controller.set_cap(140.0)
        cmd, power = drive(node, controller)
        assert power < 140.5
