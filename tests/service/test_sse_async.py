"""SSE fan-out at scale on the asyncio front end.

The headline test holds 100+ concurrent SSE subscribers against one
event loop and requires every one of them to receive the complete,
identical frame sequence with the terminal close.  The companion
tests pin down the drop-oldest backpressure contract at the bus layer:
a slow subscriber loses the *oldest* events, the loss is counted
exactly, and fast subscribers lose nothing.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.obs.stream import event_bus
from repro.service.api import ExperimentService

SPEC = {
    "workload": "stereo",
    "caps_w": [150.0, 140.0],
    "repetitions": 1,
    "scale": 0.001,
}
SUBSCRIBERS = 100


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("sse_async")
    svc = ExperimentService(
        db_path=tmp / "svc.sqlite3",
        port=0,
        workers=2,
        rate_cache=tmp / "rates.json",
        frontend="async",
    )
    svc.start()
    yield svc
    svc.shutdown(drain=False)


def request_json(service, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def parse_sse(text):
    frames = []
    for block in text.split("\n\n"):
        fields = {}
        for line in block.splitlines():
            if not line or line.startswith(":"):
                continue
            key, _, value = line.partition(": ")
            fields[key] = value
        if "event" in fields:
            frames.append({
                "id": int(fields["id"]) if "id" in fields else None,
                "event": fields["event"],
                "data": json.loads(fields["data"]),
            })
    return frames


@pytest.fixture(scope="module")
def done_job(service):
    status, job = request_json(service, "POST", "/jobs", SPEC)
    assert status == 201
    for _ in range(1200):
        _, state = request_json(service, "GET", f"/jobs/{job['id']}")
        if state["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert state["state"] == "done"
    return job


class TestConcurrentSubscribers:
    def test_100_subscribers_all_complete(self, service, done_job):
        """100 concurrent streams on one event loop, all identical."""
        url = f"{service.url}/jobs/{done_job['id']}/stream"
        results = [None] * SUBSCRIBERS
        errors = []
        barrier = threading.Barrier(SUBSCRIBERS)

        def consume(k: int) -> None:
            try:
                barrier.wait(timeout=60)
                req = urllib.request.Request(url)
                with urllib.request.urlopen(req, timeout=120) as resp:
                    assert (
                        resp.headers["Content-Type"] == "text/event-stream"
                    )
                    results[k] = resp.read().decode()
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append((k, exc))

        threads = [
            threading.Thread(target=consume, args=(k,))
            for k in range(SUBSCRIBERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors[:3]

        parsed = [parse_sse(body) for body in results]
        # Every subscriber saw the complete history and the terminal
        # frame — and saw exactly the same bytes as everyone else.
        for frames in parsed:
            assert frames[0]["event"] == "job_started"
            assert frames[-1]["event"] == "job_done"
        assert all(body == results[0] for body in results)

    def test_subscribers_gauge_returns_to_zero(self, service, done_job):
        bus = event_bus()
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if bus.subscriber_count() == 0:
                break
            time.sleep(0.25)
        assert bus.subscriber_count() == 0


class TestDropOldestBackpressure:
    def test_slow_subscriber_drops_oldest_and_counts(self):
        bus = event_bus()
        topic = "test.backpressure.slow"
        before = bus.dropped_total()
        sub = bus.subscribe(topic, queue_size=4)
        try:
            for k in range(10):
                bus.publish(topic, "tick", {"k": k})
            # 10 events into a 4-slot queue: the oldest 6 fall out.
            assert sub.dropped == 6
            assert bus.dropped_total() - before == 6
            survivors = []
            while True:
                event = sub.get(timeout=0)
                if event is None:
                    break
                survivors.append(event.data["k"])
            assert survivors == [6, 7, 8, 9]  # newest 4, in order
        finally:
            bus.unsubscribe(sub)

    def test_fast_subscriber_loses_nothing(self):
        bus = event_bus()
        topic = "test.backpressure.fast"
        sub = bus.subscribe(topic, queue_size=4)
        try:
            seen = []
            for k in range(12):
                bus.publish(topic, "tick", {"k": k})
                event = sub.get(timeout=1)
                seen.append(event.data["k"])
            assert seen == list(range(12))
            assert sub.dropped == 0
        finally:
            bus.unsubscribe(sub)

    def test_wakeup_hook_fires_on_offer_and_close(self):
        """The asyncio bridge: set_wakeup fires without consuming."""
        bus = event_bus()
        topic = "test.backpressure.wakeup"
        sub = bus.subscribe(topic, queue_size=4)
        fired = threading.Event()
        try:
            sub.set_wakeup(fired.set)
            bus.publish(topic, "tick", {"k": 0})
            assert fired.wait(timeout=5)
            # The wakeup did not consume: the event is still queued.
            assert sub.get(timeout=0) is not None

            fired.clear()
            sub.close()
            assert fired.wait(timeout=5)
        finally:
            bus.unsubscribe(sub)

    def test_wakeup_fires_immediately_when_already_pending(self):
        bus = event_bus()
        topic = "test.backpressure.pending"
        sub = bus.subscribe(topic, queue_size=4)
        try:
            bus.publish(topic, "tick", {"k": 0})
            fired = threading.Event()
            sub.set_wakeup(fired.set)  # event already waiting
            assert fired.is_set()
        finally:
            bus.unsubscribe(sub)
