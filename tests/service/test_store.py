"""SQLite result store: round-trips, dedup, per-cap rows, job records.

The round-trip tests double as the :mod:`repro.core.serialize`
coverage the store relies on: an :class:`ExperimentResult` pushed
through SQLite and back must compare equal field-for-field, PAPI
counter dicts and cap labels included.
"""

from __future__ import annotations

import time

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.metrics import AveragedResult
from repro.perf.events import PapiEvent
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.store import ResultStore


def make_row(cap, time_s):
    counters = {e: float(i) * 7.5 for i, e in enumerate(PapiEvent, start=1)}
    return AveragedResult(
        workload="StereoMatching",
        cap_w=cap,
        n_runs=5,
        execution_s=time_s,
        avg_power_w=153.1,
        energy_j=153.1 * time_s,
        avg_freq_mhz=3101.0 if cap is None else 1200.0,
        counters=counters,
        committed_instructions=1e9,
        executed_instructions=1.07e9,
        max_escalation_level=0 if cap is None else 3,
        min_duty=1.0 if cap is None else 0.12,
        execution_s_std=0.4,
    )


def make_result() -> ExperimentResult:
    result = ExperimentResult(
        workload="StereoMatching", baseline=make_row(None, 91.0)
    )
    for cap, t in ((160.0, 91.2), (140.0, 127.5), (120.0, 3100.0)):
        result.by_cap[cap] = make_row(cap, t)
    return result


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "svc.sqlite3")


class TestResultRoundTrip:
    def test_experiment_result_round_trips_exactly(self, store):
        original = make_result()
        store.put_result("digest-1", {"StereoMatching": original})
        loaded = store.get_result("digest-1")["StereoMatching"]
        # AveragedResult is a dataclass: equality is field-by-field,
        # so this asserts the counters dict and every statistic.
        assert loaded.baseline == original.baseline
        assert loaded.by_cap == original.by_cap
        assert loaded.workload == original.workload

    def test_counters_preserve_papi_enum_keys(self, store):
        store.put_result("digest-2", {"StereoMatching": make_result()})
        loaded = store.get_result("digest-2")["StereoMatching"]
        counters = loaded.baseline.counters
        assert set(counters) == set(PapiEvent)
        assert counters[PapiEvent.PAPI_TLB_IM] == pytest.approx(
            make_result().baseline.counters[PapiEvent.PAPI_TLB_IM]
        )

    def test_cap_labels_preserved(self, store):
        store.put_result("digest-3", {"StereoMatching": make_result()})
        loaded = store.get_result("digest-3")["StereoMatching"]
        assert loaded.baseline.cap_label == "baseline"
        assert sorted(r.cap_label for r in loaded.rows()) == sorted(
            ["baseline", "160", "140", "120"]
        )

    def test_multi_workload_document(self, store):
        store.put_result(
            "digest-4",
            {"StereoMatching": make_result(), "SIRE/RSM": make_result()},
        )
        assert set(store.get_result("digest-4")) == {
            "StereoMatching",
            "SIRE/RSM",
        }

    def test_missing_digest_is_none(self, store):
        assert store.get_result("nope") is None
        assert store.get_result_dict("nope") is None
        assert not store.has_result("nope")


class TestResultRows:
    def test_per_cap_rows_exploded(self, store):
        store.put_result("digest-5", {"StereoMatching": make_result()})
        rows = store.result_rows("digest-5")
        assert len(rows) == 4  # baseline + three caps
        labels = {r["cap_label"] for r in rows}
        assert labels == {"baseline", "160", "140", "120"}
        baseline = next(r for r in rows if r["cap_label"] == "baseline")
        assert baseline["workload"] == "StereoMatching"
        assert baseline["row"]["execution_s"] == pytest.approx(91.0)

    def test_overwrite_replaces_rows(self, store):
        store.put_result("digest-6", {"StereoMatching": make_result()})
        smaller = ExperimentResult(
            workload="StereoMatching", baseline=make_row(None, 91.0)
        )
        store.put_result("digest-6", {"StereoMatching": smaller})
        assert len(store.result_rows("digest-6")) == 1
        assert store.result_count() == 1


class TestDedup:
    def test_has_result_after_put(self, store):
        assert not store.has_result("d")
        store.put_result("d", {"StereoMatching": make_result()})
        assert store.has_result("d")

    def test_idempotent_put(self, store):
        store.put_result("d", {"StereoMatching": make_result()})
        store.put_result("d", {"StereoMatching": make_result()})
        assert store.result_count() == 1


class TestJobRecords:
    def test_job_round_trip(self, store):
        job = Job(
            spec=JobSpec(workload="sire", caps_w=(150.0,), scale=0.01),
            priority=3,
        )
        job.state = JobState.RUNNING
        job.attempts = 2
        job.started_at = time.time()
        store.record_job(job)
        loaded = store.get_job(job.id)
        assert loaded.spec == job.spec
        assert loaded.state is JobState.RUNNING
        assert loaded.attempts == 2
        assert loaded.priority == 3
        assert loaded.spec_digest == job.spec_digest

    def test_unknown_job_is_none(self, store):
        assert store.get_job("missing") is None

    def test_counts_by_state(self, store):
        for state in (JobState.QUEUED, JobState.QUEUED, JobState.DONE):
            job = Job(spec=JobSpec(caps_w=(150.0,)))
            job.state = state
            store.record_job(job)
        counts = store.counts_by_state()
        assert counts["queued"] == 2
        assert counts["done"] == 1
        assert counts["failed"] == 0

    def test_pending_jobs_for_recovery(self, store):
        queued = Job(spec=JobSpec(caps_w=(150.0,)))
        running = Job(spec=JobSpec(caps_w=(140.0,)))
        running.state = JobState.RUNNING
        done = Job(spec=JobSpec(caps_w=(130.0,)))
        done.state = JobState.DONE
        for j in (queued, running, done):
            store.record_job(j)
        pending = {j.id for j in store.pending_jobs()}
        assert pending == {queued.id, running.id}

    def test_list_jobs_newest_first(self, store):
        old = Job(spec=JobSpec(caps_w=(150.0,)), created_at=100.0)
        new = Job(spec=JobSpec(caps_w=(140.0,)), created_at=200.0)
        store.record_job(old)
        store.record_job(new)
        assert [j.id for j in store.list_jobs()] == [new.id, old.id]
