"""Scheduler: worker pool, retries with backoff, dedup, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.service.jobs import JobSpec, JobState
from repro.service.scheduler import ExperimentScheduler
from repro.service.store import ResultStore

from .test_store import make_result

TINY = dict(caps_w=(150.0,), repetitions=1, scale=0.001)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "svc.sqlite3")


def make_scheduler(store, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("retry_backoff_s", 0.01)
    return ExperimentScheduler(store, **kwargs)


def fake_run(scheduler, delay_s=0.0, fail_times=0):
    """Replace the sweep with a stub (keeps scheduler tests fast)."""
    calls = {"n": 0}
    lock = threading.Lock()

    def _run(spec):
        with lock:
            calls["n"] += 1
            n = calls["n"]
        if n <= fail_times:
            raise RuntimeError(f"injected crash #{n}")
        if delay_s:
            time.sleep(delay_s)
        return {"StereoMatching": make_result()}

    scheduler._run_spec = _run
    return calls


class TestLifecycle:
    def test_real_tiny_sweep_reaches_done(self, store, tmp_path):
        scheduler = make_scheduler(
            store, workers=1, rate_cache=tmp_path / "rates.json"
        )
        scheduler.start()
        job = scheduler.submit(JobSpec(**TINY))
        assert scheduler.drain(timeout=120)
        scheduler.shutdown(drain=False)
        assert job.state is JobState.DONE
        stored = store.get_result(job.spec_digest)
        assert "StereoMatching" in stored
        assert stored["StereoMatching"].by_cap[150.0].execution_s > 0

    def test_submit_before_start_queues(self, store):
        scheduler = make_scheduler(store)
        fake_run(scheduler)
        job = scheduler.submit(JobSpec(**TINY))
        assert job.state is JobState.QUEUED
        assert scheduler.queue_depth() == 1
        scheduler.start()
        assert scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert job.state is JobState.DONE

    def test_counts_by_state(self, store):
        scheduler = make_scheduler(store)
        fake_run(scheduler)
        scheduler.submit(JobSpec(**TINY))
        counts = scheduler.counts_by_state()
        assert counts["queued"] == 1
        scheduler.start()
        scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert scheduler.counts_by_state()["done"] == 1


class TestDedup:
    def test_resubmission_is_a_store_hit(self, store):
        scheduler = make_scheduler(store)
        calls = fake_run(scheduler)
        scheduler.start()
        first = scheduler.submit(JobSpec(**TINY))
        assert scheduler.drain(timeout=30)
        second = scheduler.submit(JobSpec(**TINY))
        scheduler.shutdown(drain=False)
        assert first.state is JobState.DONE and not first.deduplicated
        # The twin is born DONE without ever touching the queue or
        # re-running the sweep.
        assert second.state is JobState.DONE and second.deduplicated
        assert calls["n"] == 1
        assert scheduler.metrics.dedup_hits.value == 1

    def test_worker_rechecks_store_at_run_time(self, store):
        # A duplicate queued while its twin is still running must not
        # re-simulate once the twin's result lands.
        scheduler = make_scheduler(store, workers=1)
        calls = fake_run(scheduler, delay_s=0.2)
        a = scheduler.submit(JobSpec(**TINY))
        b = scheduler.submit(JobSpec(**TINY))
        scheduler.start()
        assert scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert a.state is JobState.DONE
        assert b.state is JobState.DONE
        assert calls["n"] == 1
        assert b.deduplicated


class TestRetries:
    def test_transient_crash_retries_then_succeeds(self, store):
        scheduler = make_scheduler(store, max_attempts=3)
        calls = fake_run(scheduler, fail_times=2)
        scheduler.start()
        job = scheduler.submit(JobSpec(**TINY))
        assert scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert job.state is JobState.DONE
        assert job.attempts == 3
        assert calls["n"] == 3
        assert scheduler.metrics.job_retries.value == 2

    def test_retry_budget_exhaustion_fails_the_job(self, store):
        scheduler = make_scheduler(store, max_attempts=2)
        fake_run(scheduler, fail_times=99)
        scheduler.start()
        job = scheduler.submit(JobSpec(**TINY))
        assert scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert job.state is JobState.FAILED
        assert job.attempts == 2
        assert "injected crash" in job.error
        assert scheduler.metrics.jobs_failed.value == 1

    def test_deterministic_config_errors_do_not_retry(self, store):
        scheduler = make_scheduler(store, max_attempts=3)

        def _run(spec):
            raise ConfigError("always wrong")

        scheduler._run_spec = _run
        scheduler.start()
        job = scheduler.submit(JobSpec(**TINY))
        assert scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert job.state is JobState.FAILED
        assert job.attempts == 1  # retrying a deterministic error is futile


class TestCancel:
    def test_cancel_queued_job(self, store):
        scheduler = make_scheduler(store)  # not started: stays queued
        job = scheduler.submit(JobSpec(**TINY))
        assert scheduler.cancel(job.id)
        assert job.state is JobState.CANCELLED
        assert store.get_job(job.id).state is JobState.CANCELLED

    def test_cancel_done_job_refused(self, store):
        scheduler = make_scheduler(store)
        fake_run(scheduler)
        scheduler.start()
        job = scheduler.submit(JobSpec(**TINY))
        scheduler.drain(timeout=30)
        scheduler.shutdown(drain=False)
        assert not scheduler.cancel(job.id)
        assert job.state is JobState.DONE

    def test_cancel_unknown_job_refused(self, store):
        assert not make_scheduler(store).cancel("missing")


class TestRecovery:
    def test_recover_requeues_interrupted_jobs(self, store, tmp_path):
        # A first scheduler records jobs, then "crashes" before running.
        first = make_scheduler(store)
        job = first.submit(JobSpec(**TINY))
        assert job.state is JobState.QUEUED

        second = make_scheduler(store)
        fake_run(second)
        assert second.recover() == 1
        second.start()
        assert second.drain(timeout=30)
        second.shutdown(drain=False)
        assert store.get_job(job.id).state is JobState.DONE


class TestConcurrentLoad:
    def test_50_concurrent_submissions_drain_without_loss(self, store):
        scheduler = make_scheduler(store, workers=4)
        fake_run(scheduler, delay_s=0.01)
        scheduler.start()
        jobs = []
        jobs_lock = threading.Lock()

        def submit_batch(offset):
            for i in range(10):
                # Eight distinct specs overall -> plenty of dedup races.
                cap = 150.0 - ((offset + i) % 8)
                job = scheduler.submit(
                    JobSpec(caps_w=(cap,), repetitions=1, scale=0.001),
                    priority=i % 3,
                )
                with jobs_lock:
                    jobs.append(job)

        threads = [
            threading.Thread(target=submit_batch, args=(k,)) for k in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(jobs) == 50
        assert scheduler.drain(timeout=60), "queue failed to drain"
        scheduler.shutdown(drain=False)
        states = [j.state for j in jobs]
        assert all(s is JobState.DONE for s in states), states
        assert scheduler.metrics.jobs_completed.value == 50
        # Every distinct digest landed exactly one stored result.
        assert store.result_count() == 8
