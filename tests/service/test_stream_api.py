"""The SSE streaming API end-to-end.

Covers: live subscription to a running job (every event exactly once,
ids strictly increasing, terminal close), full-history replay on a
finished job, ``Last-Event-ID`` resume via header and query parameter,
404 on unknown jobs, the fleet stream, the live stream/engine gauges
on ``/metrics``, and the no-perturbation contract — the result
document is identical whether or not anyone was subscribed while the
job ran.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from urllib.parse import urlparse

import pytest

from repro.obs.stream import FLEET_TOPIC, event_bus
from repro.service.api import ExperimentService

SPEC = {
    "workload": "stereo",
    "caps_w": [150.0, 140.0],
    "repetitions": 1,
    "scale": 0.001,
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("stream_service")
    svc = ExperimentService(
        db_path=tmp / "svc.sqlite3",
        port=0,
        workers=2,
        rate_cache=tmp / "rates.json",
    )
    svc.start()
    yield svc
    svc.shutdown(drain=False)


def request_json(service, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def read_stream(service, path, headers=None):
    """Blocking GET; returns the whole SSE body once the server closes."""
    req = urllib.request.Request(service.url + path, headers=headers or {})
    with urllib.request.urlopen(req, timeout=120) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        return resp.read().decode()


def parse_sse(text):
    """SSE body -> [{'id': int|None, 'event': str, 'data': dict}]."""
    frames = []
    for block in text.split("\n\n"):
        fields = {}
        for line in block.splitlines():
            if not line or line.startswith(":"):
                continue
            key, _, value = line.partition(": ")
            fields[key] = value
        if "event" in fields:
            frames.append({
                "id": int(fields["id"]) if "id" in fields else None,
                "event": fields["event"],
                "data": json.loads(fields["data"]),
            })
    return frames


@pytest.fixture(scope="module")
def streamed_job(service):
    """Submit a job and consume its live stream until the server closes."""
    status, job = request_json(service, "POST", "/jobs", SPEC)
    assert status == 201
    frames = parse_sse(read_stream(service, f"/jobs/{job['id']}/stream"))
    return job, frames


class TestJobStream:
    def test_live_stream_exactly_once_and_terminal_close(self, streamed_job):
        _job, frames = streamed_job
        kinds = [f["event"] for f in frames]
        assert kinds[0] == "job_started"
        assert kinds[-1] == "job_done"
        assert kinds.count("job_done") == 1
        assert kinds.count("sample") >= 1
        ids = [f["id"] for f in frames if f["id"] is not None]
        # Strictly increasing: nothing duplicated, nothing reordered.
        assert all(b > a for a, b in zip(ids, ids[1:]))
        assert ids[0] == 1  # the live subscriber saw the very first event

    def test_sample_frames_carry_telemetry(self, streamed_job):
        _job, frames = streamed_job
        sample = next(f for f in frames if f["event"] == "sample")
        assert "t_s" in sample["data"]
        assert "channels" in sample["data"]
        assert "power_w" in sample["data"]["channels"]

    def test_finished_job_replays_full_history(self, service, streamed_job):
        job, live_frames = streamed_job
        replay = parse_sse(read_stream(service, f"/jobs/{job['id']}/stream"))
        assert replay == live_frames

    def test_last_event_id_header_resumes(self, service, streamed_job):
        job, live_frames = streamed_job
        ids = [f["id"] for f in live_frames if f["id"] is not None]
        floor = ids[len(ids) // 2]
        resumed = parse_sse(read_stream(
            service,
            f"/jobs/{job['id']}/stream",
            headers={"Last-Event-ID": str(floor)},
        ))
        resumed_ids = [f["id"] for f in resumed if f["id"] is not None]
        assert resumed_ids == [i for i in ids if i > floor]
        assert resumed[-1]["event"] == "job_done"

    def test_last_event_id_query_param_resumes(self, service, streamed_job):
        job, live_frames = streamed_job
        last = max(f["id"] for f in live_frames if f["id"] is not None)
        # Fully caught up: no events left, just the synthetic end frame.
        tail = parse_sse(read_stream(
            service, f"/jobs/{job['id']}/stream?last_event_id={last}"
        ))
        assert [f["event"] for f in tail] == ["end"]
        assert tail[0]["data"]["state"] == "done"

    def test_unknown_job_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            read_stream(service, "/jobs/nope/stream")
        assert err.value.code == 404


class TestFleetStream:
    def test_replays_published_fleet_events(self, service):
        bus = event_bus()
        first = bus.publish(FLEET_TOPIC, "fleet_health", {"headroom_w": 40.0})
        bus.publish(FLEET_TOPIC, "fleet_health", {"headroom_w": 35.0})
        last = bus.publish(
            FLEET_TOPIC, "detection", {"phenomenon": "budget_thrash"}
        )
        # The fleet topic never terminates, so read incrementally over
        # a raw connection and hang up once the frames have arrived.
        parsed = urlparse(service.url)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=10
        )
        try:
            conn.request(
                "GET", f"/fleet/stream?last_event_id={first - 1}"
            )
            resp = conn.getresponse()
            assert resp.headers["Content-Type"] == "text/event-stream"
            buf = b""
            while f"id: {last}\n".encode() not in buf or not buf.endswith(
                b"\n\n"
            ):
                buf += resp.fp.readline()
        finally:
            conn.close()
        frames = parse_sse(buf.decode())
        assert [f["id"] for f in frames] == [first, first + 1, last]
        assert [f["event"] for f in frames] == [
            "fleet_health", "fleet_health", "detection",
        ]
        assert frames[0]["data"] == {"headroom_w": 40.0}


class TestLiveGauges:
    def get_metrics(self, service):
        req = urllib.request.Request(service.url + "/metrics")
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.read().decode()

    def scalar(self, text, name):
        for line in text.splitlines():
            if line.startswith(name + " "):
                return float(line.split()[1])
        raise AssertionError(f"{name} not found in /metrics")

    def test_stream_counters_exposed(self, service, streamed_job):
        _job, frames = streamed_job
        text = self.get_metrics(service)
        assert self.scalar(text, "repro_stream_events_total") >= len(frames)
        assert self.scalar(text, "repro_stream_dropped_total") >= 0.0
        # No stream is held open here, but the fleet-stream test's
        # hang-up is only noticed at the server's next keepalive write
        # — poll until that subscription drains rather than leak.
        import time

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            value = self.scalar(
                self.get_metrics(service), "repro_stream_subscribers"
            )
            if value == 0.0:
                break
            time.sleep(0.5)
        assert value == 0.0

    def test_effective_jobs_gauge_exposed(self, service, streamed_job):
        text = self.get_metrics(service)
        assert self.scalar(text, "repro_engine_effective_jobs") >= 1.0

    def test_rate_cache_gauges_live(self, service, streamed_job):
        text = self.get_metrics(service)
        hits = self.scalar(text, "repro_rate_cache_hits_total")
        misses = self.scalar(text, "repro_rate_cache_misses_total")
        # The sweep simulated at least one fresh (workload, gating)
        # rate set; the scrape-time callback must see the scheduler's
        # shared cache, not a zeroed default.
        assert misses >= 1.0
        assert hits >= 0.0


class TestByteIdentity:
    """Streaming is observation only: a subscriber cannot change results."""

    def run_job(self, tmp_path, name, subscribe):
        svc = ExperimentService(
            db_path=tmp_path / f"{name}.sqlite3",
            port=0,
            workers=1,
            rate_cache=tmp_path / f"{name}_rates.json",
        )
        svc.start()
        try:
            _, job = request_json(svc, "POST", "/jobs", SPEC)
            if subscribe:
                frames = parse_sse(
                    read_stream(svc, f"/jobs/{job['id']}/stream")
                )
                assert frames[-1]["event"] == "job_done"
            else:
                import time

                for _ in range(1200):
                    _, j = request_json(svc, "GET", f"/jobs/{job['id']}")
                    if j["state"] == "done":
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError("job never finished")
            _, payload = request_json(
                svc, "GET", f"/jobs/{job['id']}/result"
            )
            return payload["results"]
        finally:
            svc.shutdown(drain=False)

    def test_result_identical_with_and_without_subscriber(self, tmp_path):
        observed = self.run_job(tmp_path, "observed", subscribe=True)
        silent = self.run_job(tmp_path, "silent", subscribe=False)
        assert set(observed) == set(silent)
        for name in observed:
            a, b = dict(observed[name]), dict(silent[name])
            # Provenance records this production's wall times; every
            # engine-produced byte must match exactly.
            a.pop("provenance")
            b.pop("provenance")
            assert a == b
