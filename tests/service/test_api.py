"""HTTP API end-to-end: the acceptance path of the service layer.

Covers: submit -> DONE -> result identical to a direct sweep; dedup on
resubmission; /healthz; /metrics content; cancellation; error paths.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.core.serialize import experiment_to_dict
from repro.service.api import ExperimentService
from repro.workloads import make_workload

SPEC = {
    "workload": "stereo",
    "caps_w": [150.0, 140.0],
    "repetitions": 1,
    "scale": 0.001,
}
POLL_S = 0.05
POLL_TRIES = 1200  # 60 s ceiling


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    svc = ExperimentService(
        db_path=tmp / "svc.sqlite3",
        port=0,
        workers=2,
        rate_cache=tmp / "rates.json",
    )
    svc.start()
    yield svc
    svc.shutdown(drain=False)


def request(service, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, resp.read()


def request_json(service, method, path, body=None):
    status, raw = request(service, method, path, body)
    return status, json.loads(raw)


def poll_until_done(service, job_id):
    import time

    for _ in range(POLL_TRIES):
        _, job = request_json(service, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(POLL_S)
    raise AssertionError(f"job {job_id} never finished: {job}")


@pytest.fixture(scope="module")
def finished_job(service):
    status, job = request_json(service, "POST", "/jobs", SPEC)
    assert status == 201
    assert job["state"] in ("queued", "running", "done")
    return poll_until_done(service, job["id"])


class TestEndToEnd:
    def test_job_reaches_done(self, finished_job):
        assert finished_job["state"] == "done"
        assert finished_job["error"] is None
        assert finished_job["attempts"] == 1

    def test_result_identical_to_direct_sweep(self, service, finished_job):
        _, payload = request_json(
            service, "GET", f"/jobs/{finished_job['id']}/result"
        )
        workload = make_workload("stereo", SPEC["scale"])
        direct = PowerCapExperiment(
            [workload],
            caps_w=SPEC["caps_w"],
            repetitions=SPEC["repetitions"],
        ).run_workload(workload)
        served = dict(payload["results"]["StereoMatching"])
        expected = json.loads(json.dumps(experiment_to_dict(direct)))
        # Provenance records *this* production (timestamps, phase
        # seconds, cache stats), so it legitimately differs between the
        # two sweeps; the engine output must still be bit-identical.
        assert served.pop("provenance")["seed"] == expected.pop(
            "provenance"
        )["seed"]
        assert served == expected

    def test_resubmission_is_a_store_hit(self, service, finished_job):
        status, twin = request_json(service, "POST", "/jobs", SPEC)
        assert status == 201
        assert twin["state"] == "done"
        assert twin["deduplicated"] is True
        assert twin["spec_digest"] == finished_job["spec_digest"]
        _, payload = request_json(
            service, "GET", f"/jobs/{twin['id']}/result"
        )
        assert payload["deduplicated"] is True

    def test_jobs_listing(self, service, finished_job):
        _, listing = request_json(service, "GET", "/jobs")
        assert any(j["id"] == finished_job["id"] for j in listing["jobs"])


class TestTimeseriesEndpoint:
    def test_json_timelines_for_every_cap(self, service, finished_job):
        status, payload = request_json(
            service, "GET", f"/jobs/{finished_job['id']}/timeseries"
        )
        assert status == 200
        assert payload["id"] == finished_job["id"]
        entry = payload["timeseries"]["StereoMatching"]
        assert entry["baseline"] is not None
        assert set(entry["by_cap"]) == {"150", "140"}
        for cap_entry in [entry["baseline"], *entry["by_cap"].values()]:
            channels = cap_entry["timeline"]["channels"]
            assert "power_w" in channels and "freq_mhz" in channels
            ts = channels["power_w"]["t"]
            assert len(ts) > 0
            assert ts == sorted(ts)  # monotonic timestamps
            assert cap_entry["summary"]["channels"]["power_w"]["points"] > 0

    def test_channel_filter(self, service, finished_job):
        _, payload = request_json(
            service,
            "GET",
            f"/jobs/{finished_job['id']}/timeseries?channel=power_w",
        )
        entry = payload["timeseries"]["StereoMatching"]
        assert list(entry["baseline"]["timeline"]["channels"]) == ["power_w"]

    def test_csv_format(self, service, finished_job):
        status, raw = request(
            service,
            "GET",
            f"/jobs/{finished_job['id']}/timeseries?format=csv"
            "&channel=power_w&channel=freq_mhz",
        )
        assert status == 200
        lines = raw.decode().strip().splitlines()
        assert lines[0] == "workload,cap,channel,t_s,dt_s,mean,min,max"
        assert len(lines) > 3
        assert any(",baseline,power_w," in l for l in lines[1:])
        assert any(",140,freq_mhz," in l for l in lines[1:])

    def test_unknown_channel_400(self, service, finished_job):
        with pytest.raises(urllib.error.HTTPError) as err:
            request(
                service,
                "GET",
                f"/jobs/{finished_job['id']}/timeseries?channel=bogus",
            )
        assert err.value.code == 400
        assert "unknown channel" in json.loads(err.value.read())["error"]

    def test_unknown_format_400(self, service, finished_job):
        with pytest.raises(urllib.error.HTTPError) as err:
            request(
                service,
                "GET",
                f"/jobs/{finished_job['id']}/timeseries?format=xml",
            )
        assert err.value.code == 400

    def test_unknown_job_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            request(service, "GET", "/jobs/ghost/timeseries")
        assert err.value.code == 404


class TestHealthAndMetrics:
    def test_healthz(self, service):
        status, health = request_json(service, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert isinstance(health["queue_depth"], int)

    def test_metrics_exposition(self, service, finished_job):
        status, raw = request(service, "GET", "/metrics")
        assert status == 200
        text = raw.decode()
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth " in text
        assert 'repro_jobs{state="done"}' in text
        assert 'repro_jobs{state="queued"}' in text
        assert "repro_rate_cache_hits_total" in text
        assert "repro_rate_cache_misses_total" in text
        assert "# TYPE repro_sweep_wall_seconds histogram" in text
        assert "repro_sweep_wall_seconds_count" in text
        assert "repro_jobs_submitted_total" in text
        # Telemetry series ride along in the same exposition; the
        # finished sweep recorded at least one timeline.
        assert "repro_telemetry_runs_total" in text
        assert "repro_telemetry_samples_total" in text

    def test_rate_cache_counters_move(self, service, finished_job):
        # The sweep measured at least one gating -> misses > 0.
        _, raw = request(service, "GET", "/metrics")
        line = next(
            l
            for l in raw.decode().splitlines()
            if l.startswith("repro_rate_cache_misses_total")
        )
        assert float(line.split()[-1]) > 0


class TestErrorPaths:
    def expect_status(self, service, method, path, body, expected):
        with pytest.raises(urllib.error.HTTPError) as err:
            request(service, method, path, body)
        assert err.value.code == expected
        return json.loads(err.value.read())

    def test_unknown_job_404(self, service):
        body = self.expect_status(service, "GET", "/jobs/ghost", None, 404)
        assert "no such job" in body["error"]

    def test_unknown_route_404(self, service):
        self.expect_status(service, "GET", "/nope", None, 404)

    def test_bad_spec_400(self, service):
        body = self.expect_status(
            service, "POST", "/jobs", {"workload": "linpack"}, 400
        )
        assert "unknown workload" in body["error"]

    def test_inverted_range_400(self, service):
        body = self.expect_status(
            service,
            "POST",
            "/jobs",
            {"workload": "stereo", "cap_max_w": 120, "cap_min_w": 160},
            400,
        )
        assert "inverted cap range" in body["error"]

    def test_invalid_json_400(self, service):
        req = urllib.request.Request(
            service.url + "/jobs", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_queued_job_result_409_and_cancel(self, tmp_path):
        # API up, workers idle: the job deterministically stays QUEUED.
        svc = ExperimentService(
            db_path=tmp_path / "idle.sqlite3", port=0, workers=1
        )
        svc.start(start_workers=False)
        try:
            _, job = request_json(svc, "POST", "/jobs", SPEC)
            assert job["state"] == "queued"
            body = self.expect_status(
                svc, "GET", f"/jobs/{job['id']}/result", None, 409
            )
            assert "not available" in body["error"]
            status, cancelled = request_json(
                svc, "DELETE", f"/jobs/{job['id']}"
            )
            assert status == 200
            assert cancelled["state"] == "cancelled"
        finally:
            svc.shutdown(drain=False)

    def test_cancel_unknown_404(self, service):
        self.expect_status(service, "DELETE", "/jobs/ghost", None, 404)

    def test_cancel_done_job_409(self, service, finished_job):
        body = self.expect_status(
            service, "DELETE", f"/jobs/{finished_job['id']}", None, 409
        )
        assert "only queued jobs" in body["error"]
