"""Partitioned worker shards: routing, fallback, byte-identity.

The acceptance property: a result produced through the sharded path is
byte-identical to the synchronous in-process path — same digests, same
stored documents.  ``REPRO_SHARD_FORCE=1`` exercises real shard
processes even on the single-core CI class of host.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.core.serialize import experiment_to_dict
from repro.errors import SimulationError
from repro.service.api import ExperimentService
from repro.service.jobs import JobSpec
from repro.service.shards import (
    ShardPool,
    ShardRing,
    effective_shard_count,
)
from repro.workloads import make_workload

SPEC = JobSpec(
    workload="stereo", caps_w=(150.0, 140.0), scale=0.001, seed=11
)


class TestShardRing:
    def test_routing_is_deterministic(self):
        ring = ShardRing(4)
        digests = [f"{k:032x}" for k in range(64)]
        first = [ring.shard_for(d) for d in digests]
        second = [ShardRing(4).shard_for(d) for d in digests]
        assert first == second

    def test_every_shard_owns_some_digests(self):
        ring = ShardRing(4)
        owners = Counter(
            ring.shard_for(f"{k:032x}") for k in range(512)
        )
        assert set(owners) == {0, 1, 2, 3}

    def test_adding_a_shard_moves_a_minority(self):
        """Consistent hashing: growing the ring remaps ~1/N, not ~all."""
        digests = [f"{k:032x}" for k in range(1024)]
        before = ShardRing(4)
        after = ShardRing(5)
        moved = sum(
            1
            for d in digests
            if before.shard_for(d) != after.shard_for(d)
        )
        assert moved < len(digests) * 0.5

    def test_rejects_zero_shards(self):
        with pytest.raises(SimulationError):
            ShardRing(0)


class TestEffectiveShardCount:
    def test_below_two_is_in_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_FORCE", raising=False)
        assert effective_shard_count(0) == 0
        assert effective_shard_count(1) == 0

    def test_single_core_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_FORCE", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert effective_shard_count(4) == 0

    def test_force_overrides_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_FORCE", "1")
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert effective_shard_count(4) == 4

    def test_capped_by_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_FORCE", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        assert effective_shard_count(16) == 4


@pytest.fixture(scope="module")
def pool(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("shards")
    p = ShardPool(2, rate_cache=tmp / "rates.json")
    p.start()
    yield p
    p.shutdown()


class TestShardPool:
    def test_result_byte_identical_to_in_process(self, pool):
        doc = pool.run(SPEC.digest(), SPEC.to_dict())
        workload = make_workload(SPEC.workload, SPEC.scale)
        direct = PowerCapExperiment(
            [workload],
            caps_w=SPEC.caps_w,
            repetitions=SPEC.repetitions,
            seed=SPEC.seed,
        ).run_all()
        expected = {
            name: json.loads(
                json.dumps(experiment_to_dict(result), sort_keys=True)
            )
            for name, result in direct.items()
        }
        served = json.loads(json.dumps(doc, sort_keys=True))
        # Provenance records *this* production (timestamps, host phase
        # seconds); the engine output must still be bit-identical.
        for docs in (served, expected):
            for payload in docs.values():
                payload.pop("provenance")
        assert served == expected

    def test_same_digest_routes_to_same_shard(self, pool):
        shard = pool.shard_for(SPEC.digest())
        assert all(
            pool.shard_for(SPEC.digest()) == shard for _ in range(8)
        )

    def test_simulation_error_crosses_the_pipe(self, pool):
        bad = dict(SPEC.to_dict())
        bad["workload"] = "no-such-workload"
        with pytest.raises(SimulationError):
            pool.run("feedfeedfeedfeed", bad)

    def test_stats_report_partitions(self, pool):
        stats = pool.stats()
        assert stats["shards"] == 2
        assert sum(stats["dispatched"]) >= 1
        assert set(stats["partition_entries"]) == {"0", "1"}

    def test_rejects_single_shard(self):
        with pytest.raises(SimulationError):
            ShardPool(1)


class TestShardedService:
    """End-to-end: the service with forced shards matches unsharded."""

    @pytest.fixture(scope="class")
    def sharded_service(self, tmp_path_factory, monkeypatch_class):
        monkeypatch_class.setenv("REPRO_SHARD_FORCE", "1")
        tmp = tmp_path_factory.mktemp("sharded")
        svc = ExperimentService(
            db_path=tmp / "svc.sqlite3",
            port=0,
            workers=2,
            rate_cache=tmp / "rates.json",
            shards=2,
        )
        svc.start()
        yield svc
        svc.shutdown(drain=False)

    def test_service_runs_sharded(self, sharded_service):
        assert sharded_service.scheduler.effective_shards == 2

    def test_result_through_shards_matches_store_bytes(
        self, sharded_service, tmp_path
    ):
        import time as _time

        job = sharded_service.scheduler.submit(SPEC)
        for _ in range(1200):
            current = sharded_service.scheduler.get(job.id)
            if current.state.value in ("done", "failed"):
                break
            _time.sleep(0.05)
        assert current.state.value == "done"
        served = sharded_service.store.get_result_dict(SPEC.digest())
        assert served is not None

        # The same spec through a plain unsharded scheduler stores the
        # same bytes (provenance aside).
        from repro.service.store import MemoryResultStore

        workload = make_workload(SPEC.workload, SPEC.scale)
        direct = PowerCapExperiment(
            [workload],
            caps_w=SPEC.caps_w,
            repetitions=SPEC.repetitions,
            seed=SPEC.seed,
        ).run_all()
        reference = MemoryResultStore()
        reference.put_result(SPEC.digest(), direct)
        expected = reference.get_result_dict(SPEC.digest())
        for docs in (served, expected):
            for payload in docs.values():
                payload.pop("provenance")
        assert served == expected


@pytest.fixture(scope="class")
def monkeypatch_class():
    from _pytest.monkeypatch import MonkeyPatch

    mp = MonkeyPatch()
    yield mp
    mp.undo()
