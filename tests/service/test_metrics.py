"""The Prometheus text exposition primitives."""

from __future__ import annotations

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_sample(self):
        c = Counter("x_total", "help")
        c.inc(4)
        assert c.samples() == [("x_total", {}, 4.0)]


class TestGauge:
    def test_set_and_sample(self):
        g = Gauge("depth", "help")
        g.set(7)
        assert g.samples() == [("depth", {}, 7.0)]

    def test_callback_scalar(self):
        g = Gauge("depth", "help", callback=lambda: 3)
        assert g.samples() == [("depth", {}, 3.0)]

    def test_callback_dict_is_labelled(self):
        g = Gauge(
            "jobs", "help", callback=lambda: {"done": 2, "queued": 1}
        )
        assert g.samples() == [
            ("jobs", {"state": "done"}, 2.0),
            ("jobs", {"state": "queued"}, 1.0),
        ]


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("t", "help", buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 100.0):
            h.observe(v)
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in h.samples()
        )
        assert samples[("t_bucket", (("le", "1"),))] == 2
        assert samples[("t_bucket", (("le", "5"),))] == 3
        assert samples[("t_bucket", (("le", "+Inf"),))] == 4
        assert samples[("t_count", ())] == 4
        assert samples[("t_sum", ())] == pytest.approx(104.2)


class TestRegistry:
    def test_render_format(self):
        reg = MetricsRegistry()
        c = reg.register(Counter("repro_things_total", "Things counted"))
        c.inc(2)
        text = reg.render()
        assert "# HELP repro_things_total Things counted" in text
        assert "# TYPE repro_things_total counter" in text
        assert "repro_things_total 2" in text
        assert text.endswith("\n")

    def test_duplicate_names_rejected(self):
        reg = MetricsRegistry()
        reg.register(Counter("a", "h"))
        with pytest.raises(ValueError):
            reg.register(Gauge("a", "h"))


class TestServiceMetrics:
    def test_panel_renders_all_required_names(self):
        panel = ServiceMetrics()
        panel.bind(
            queue_depth=lambda: 3,
            jobs_by_state=lambda: {"queued": 3.0, "done": 1.0},
            cache_hits=lambda: 10,
            cache_misses=lambda: 4,
        )
        text = panel.render()
        assert "repro_queue_depth 3" in text
        assert 'repro_jobs{state="queued"} 3' in text
        assert 'repro_jobs{state="done"} 1' in text
        assert "repro_rate_cache_hits_total 10" in text
        assert "repro_rate_cache_misses_total 4" in text
        assert "repro_jobs_submitted_total 0" in text
        assert "repro_sweep_wall_seconds_bucket" in text
