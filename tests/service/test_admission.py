"""Admission control: token buckets, bounded queue, shed accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.service.admission import (
    Admission,
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        now = 100.0
        assert all(bucket.try_acquire(now) for _ in range(3))
        assert not bucket.try_acquire(now)

    def test_refills_from_elapsed_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        now = 50.0
        bucket.try_acquire(now)
        bucket.try_acquire(now)
        assert not bucket.try_acquire(now)
        # 0.5 s at 2 tokens/s refills exactly one token.
        assert bucket.try_acquire(now + 0.5)
        assert not bucket.try_acquire(now + 0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        bucket.try_acquire(10.0)
        # A long idle period cannot bank more than the burst.
        assert bucket.try_acquire(10_000.0)
        assert bucket.try_acquire(10_000.0)
        assert not bucket.try_acquire(10_000.0)

    def test_seconds_until_token(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        now = 7.0
        bucket.try_acquire(now)
        assert bucket.seconds_until_token() == pytest.approx(0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admits_within_budget(self):
        gate = AdmissionController(rate=100.0, burst=10.0)
        decision = gate.admit("client-a")
        assert decision == Admission(True)
        assert gate.admitted_total() == 1

    def test_rate_limit_sheds_with_retry_after(self):
        gate = AdmissionController(rate=1.0, burst=2.0)
        assert gate.admit("hot").admitted
        assert gate.admit("hot").admitted
        shed = gate.admit("hot")
        assert not shed.admitted
        assert shed.reason == "rate_limit"
        assert shed.status == 429
        assert shed.retry_after_s > 0
        assert gate.shed_counts()["rate_limit"] == 1.0

    def test_rate_limits_are_per_client(self):
        gate = AdmissionController(rate=1.0, burst=1.0)
        assert gate.admit("a").admitted
        assert not gate.admit("a").admitted
        # A different client has its own bucket.
        assert gate.admit("b").admitted

    def test_queue_full_sheds_503(self):
        gate = AdmissionController(
            rate=1e9, burst=1e9, max_queue_depth=4, queue_depth=lambda: 4
        )
        shed = gate.admit("any")
        assert not shed.admitted
        assert shed.reason == "queue_full"
        assert shed.status == 503
        assert 1.0 <= shed.retry_after_s <= 60.0

    def test_queue_full_retry_after_tracks_drain_rate(self):
        depth = 100
        gate = AdmissionController(
            max_queue_depth=50, queue_depth=lambda: depth
        )
        gate.bind_drain_rate(lambda: 10.0)
        shed = gate.admit("x")
        assert shed.retry_after_s == pytest.approx(10.0)  # 100 / 10 per s

    def test_shutdown_sheds_everything(self):
        gate = AdmissionController()
        gate.begin_shutdown()
        shed = gate.admit("anyone")
        assert not shed.admitted
        assert shed.reason == "shutting_down"
        assert shed.status == 503
        assert gate.shutting_down

    def test_client_table_is_lru_bounded(self):
        gate = AdmissionController(rate=1.0, burst=1.0, max_clients=3)
        for k in range(5):
            gate.admit(f"client-{k}")
        assert gate.client_count() == 3
        # The evicted client gets a fresh bucket: it admits again even
        # though its original bucket was empty.
        assert gate.admit("client-0").admitted

    def test_shed_counts_cover_every_reason(self):
        gate = AdmissionController()
        assert set(gate.shed_counts()) == {
            "rate_limit",
            "queue_full",
            "shutting_down",
        }

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_queue_depth=0)
