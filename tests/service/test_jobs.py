"""Job specs, lifecycle states, and the priority queue."""

from __future__ import annotations

import time

import pytest

from repro.config import PAPER_POWER_CAPS_W
from repro.errors import ConfigError
from repro.service.jobs import (
    Job,
    JobQueue,
    JobSpec,
    JobState,
    caps_from_range,
)


class TestJobSpec:
    def test_defaults_are_the_paper_sweep(self):
        spec = JobSpec()
        assert spec.workload == "stereo"
        assert spec.caps_w == tuple(PAPER_POWER_CAPS_W)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            JobSpec(workload="linpack")

    def test_empty_caps_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            JobSpec(caps_w=())

    def test_bad_scale_rejected(self):
        for scale in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ConfigError):
                JobSpec(scale=scale)

    def test_bad_repetitions_and_jobs_rejected(self):
        with pytest.raises(ConfigError):
            JobSpec(repetitions=0)
        with pytest.raises(ConfigError):
            JobSpec(jobs=0)

    def test_digest_is_stable_and_content_addressed(self):
        a = JobSpec(workload="stereo", caps_w=(150.0, 140.0), scale=0.01)
        b = JobSpec(workload="stereo", caps_w=(150, 140), scale=0.01)
        assert a.digest() == b.digest()
        assert a.digest() != JobSpec(
            workload="stereo", caps_w=(150.0,), scale=0.01
        ).digest()
        assert a.digest() != JobSpec(
            workload="sire", caps_w=(150.0, 140.0), scale=0.01
        ).digest()

    def test_digest_ignores_fanout(self):
        # Parallel sweeps are bit-identical to serial, so the process
        # fan-out must not defeat store dedup.
        assert JobSpec(jobs=1).digest() == JobSpec(jobs=4).digest()

    def test_round_trips_through_dict(self):
        spec = JobSpec(workload="sire", caps_w=(145.0,), repetitions=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown job spec fields"):
            JobSpec.from_dict({"workload": "stereo", "capz": [150]})

    def test_from_dict_range_form(self):
        spec = JobSpec.from_dict(
            {"workload": "sire", "cap_max_w": 160, "cap_min_w": 120}
        )
        assert spec.caps_w == tuple(PAPER_POWER_CAPS_W)

    def test_from_dict_range_and_caps_conflict(self):
        with pytest.raises(ConfigError, match="not both"):
            JobSpec.from_dict(
                {"caps_w": [150], "cap_max_w": 160, "cap_min_w": 120}
            )


class TestCapsFromRange:
    def test_paper_range(self):
        assert caps_from_range(160, 120, 5) == tuple(PAPER_POWER_CAPS_W)

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigError, match="inverted cap range"):
            caps_from_range(120, 160)

    def test_bad_step_rejected(self):
        with pytest.raises(ConfigError, match="step"):
            caps_from_range(160, 120, 0)
        with pytest.raises(ConfigError, match="step"):
            caps_from_range(160, 120, -5)

    def test_single_cap_range(self):
        assert caps_from_range(150, 150) == (150.0,)


def make_job(priority=0):
    return Job(spec=JobSpec(caps_w=(150.0,), scale=0.001), priority=priority)


class TestJobQueue:
    def test_priority_order_then_fifo(self):
        q = JobQueue()
        low1, low2, high = make_job(0), make_job(0), make_job(9)
        q.push(low1)
        q.push(low2)
        q.push(high)
        assert [q.pop().id for _ in range(3)] == [high.id, low1.id, low2.id]

    def test_pop_timeout_on_empty(self):
        q = JobQueue()
        t0 = time.monotonic()
        assert q.pop(timeout=0.05) is None
        assert time.monotonic() - t0 >= 0.04

    def test_delayed_push_invisible_until_ripe(self):
        q = JobQueue()
        job = make_job()
        q.push(job, delay_s=0.15)
        assert q.pop(timeout=0.01) is None
        assert q.depth() == 1  # still counted while backing off
        assert q.pop(timeout=1.0).id == job.id

    def test_cancelled_jobs_are_skipped(self):
        q = JobQueue()
        victim, survivor = make_job(), make_job()
        q.push(victim)
        q.push(survivor)
        victim.state = JobState.CANCELLED
        assert q.pop().id == survivor.id
        assert q.depth() == 0

    def test_close_unblocks_pop(self):
        q = JobQueue()
        q.close()
        assert q.pop() is None
        with pytest.raises(ConfigError):
            q.push(make_job())

    def test_terminal_states(self):
        assert JobState.DONE.is_terminal
        assert JobState.FAILED.is_terminal
        assert JobState.CANCELLED.is_terminal
        assert not JobState.QUEUED.is_terminal
        assert not JobState.RUNNING.is_terminal
