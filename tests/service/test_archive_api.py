"""Archive wiring end-to-end: recorder, run records, history endpoints.

Covers: the background recorder landing ``/metrics`` snapshots while
the service runs; the scheduler's completion hook distilling finished
jobs into run records; ``GET /metrics/history`` and
``GET /runs/compare``; and the 404 contract when no archive is
attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.obs.archive import ObsArchive
from repro.service.api import ExperimentService

SPEC = {
    "workload": "stereo",
    "caps_w": [150.0, 140.0],
    "repetitions": 1,
    "scale": 0.001,
}
POLL_S = 0.05
POLL_TRIES = 1200  # 60 s ceiling


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("archive-service")
    svc = ExperimentService(
        db_path=tmp / "svc.sqlite3",
        port=0,
        workers=1,
        rate_cache=tmp / "rates.json",
        archive=tmp / "archive.sqlite3",
        archive_period_s=0.1,
    )
    svc.start()
    yield svc
    svc.shutdown(drain=False)


def request_json(service, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def http_error(service, path):
    try:
        request_json(service, "GET", path)
    except urllib.error.HTTPError as exc:
        return exc.code
    raise AssertionError(f"GET {path} unexpectedly succeeded")


def poll_until_done(service, job_id):
    for _ in range(POLL_TRIES):
        _, job = request_json(service, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(POLL_S)
    raise AssertionError(f"job {job_id} never finished: {job}")


@pytest.fixture(scope="module")
def finished_job(service):
    status, job = request_json(service, "POST", "/jobs", SPEC)
    assert status == 201
    job = poll_until_done(service, job["id"])
    assert job["state"] == "done"
    return job


class TestRecorder:
    def test_snapshots_land_while_serving(self, service):
        archive = service.archive
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and archive.snapshot_count() == 0:
            time.sleep(0.05)
        assert archive.snapshot_count() > 0
        series = archive.snapshot_series()
        assert any(s.startswith("repro_build_info") for s in series)
        assert "repro_jobs_submitted_total" in series

    def test_build_info_series_carries_identity_labels(self, service):
        name = next(
            s for s in service.archive.snapshot_series()
            if s.startswith("repro_build_info")
        )
        assert "version=" in name and "archive_schema=1" in name
        (point, *_) = service.archive.metric_history(name)
        assert point.mean == 1.0  # the *_info convention: constant 1


class TestMetricsHistoryEndpoint:
    def test_series_index(self, service):
        status, payload = request_json(service, "GET", "/metrics/history")
        assert status == 200
        assert payload["series"] == service.archive.snapshot_series()

    def test_one_series_points(self, service):
        # Force a deterministic scrape so the series has fresh points.
        service._recorder.snapshot_once()
        name = next(
            s for s in service.archive.snapshot_series()
            if s.startswith("repro_jobs_submitted_total")
        )
        path = "/metrics/history?series=" + urllib.parse.quote(name)
        status, payload = request_json(service, "GET", path)
        assert status == 200
        assert payload["series"] == name
        assert payload["points"]
        point = payload["points"][-1]
        assert {"t_s", "dt_s", "mean", "min", "max"} == set(point)
        status, limited = request_json(service, "GET", path + "&limit=1")
        assert len(limited["points"]) == 1
        assert limited["points"][0] == payload["points"][-1]

    def test_bad_query_parameter_is_400(self, service):
        assert http_error(
            service, "/metrics/history?series=x&limit=banana"
        ) == 400


class TestRunRecords:
    def test_completed_job_is_archived(self, service, finished_job):
        run = service.archive.get_run(finished_job["id"])
        assert run is not None
        assert run["kind"] == "job" and run["source"] == "service"
        series = run["series"]
        assert series["runs_per_s"] > 0.0
        assert series["wall_s"] > 0.0
        assert any(k.startswith("phase.") for k in series)
        assert any(
            k.startswith("StereoMatching.execution_s.") for k in series
        )
        assert run["meta"]["workloads"] == ["StereoMatching"]
        assert run["meta"]["spec_digest"] == finished_job["spec_digest"]

    def test_dedup_twin_not_double_counted(self, service, finished_job):
        before = {r["run_id"] for r in service.archive.runs(kind="job")}
        status, twin = request_json(service, "POST", "/jobs", SPEC)
        assert status == 201 and twin["deduplicated"] is True
        poll_until_done(service, twin["id"])
        after = {r["run_id"] for r in service.archive.runs(kind="job")}
        assert after == before  # the twin simulated nothing


class TestRunsCompareEndpoint:
    def test_compare_two_archived_runs(self, service, finished_job):
        # A second, distinct spec gives a genuinely different run.
        spec = dict(SPEC, caps_w=[150.0])
        _, job = request_json(service, "POST", "/jobs", spec)
        job = poll_until_done(service, job["id"])
        assert job["state"] == "done"
        status, payload = request_json(
            service,
            "GET",
            f"/runs/compare?a={finished_job['id']}&b={job['id']}",
        )
        assert status == 200
        assert payload["a"]["run_id"] == finished_job["id"]
        assert payload["b"]["run_id"] == job["id"]
        entry = payload["series"]["runs_per_s"]
        assert entry["a"] > 0 and entry["b"] > 0
        assert "delta" in entry and "rel" in entry
        # Per-phase deltas: the acceptance criterion for `compare`.
        assert any(k.startswith("phase.") for k in payload["series"])

    def test_missing_params_is_400(self, service, finished_job):
        assert http_error(service, "/runs/compare") == 400
        assert http_error(
            service, f"/runs/compare?a={finished_job['id']}"
        ) == 400

    def test_unknown_run_is_404(self, service, finished_job):
        assert http_error(
            service, f"/runs/compare?a={finished_job['id']}&b=ghost"
        ) == 404


class TestNoArchiveAttached:
    def test_endpoints_404_without_archive(self, tmp_path):
        svc = ExperimentService(
            db_path=tmp_path / "svc.sqlite3",
            port=0,
            workers=1,
            rate_cache=tmp_path / "rates.json",
        )
        svc.start()
        try:
            assert svc.archive is None
            assert http_error(svc, "/metrics/history") == 404
            assert http_error(svc, "/runs/compare?a=x&b=y") == 404
        finally:
            svc.shutdown(drain=False)


class TestArchivePathCoercion:
    def test_accepts_prebuilt_archive_instance(self, tmp_path):
        archive = ObsArchive(tmp_path / "a.sqlite3")
        svc = ExperimentService(
            db_path=tmp_path / "svc.sqlite3",
            port=0,
            workers=1,
            rate_cache=tmp_path / "rates.json",
            archive=archive,
        )
        svc.start()
        try:
            assert svc.archive is archive
            # start() takes an immediate first snapshot.
            assert archive.snapshot_count() > 0
        finally:
            svc.shutdown(drain=False)
