"""The asyncio front end, end-to-end over real sockets.

Parity contract: every route behaves identically to the threaded
front end — same status codes, same payloads, same SSE frames — and
the served result document is byte-identical to a direct in-process
sweep.  Also covers keep-alive connection reuse, admission sheds with
``Retry-After``, and graceful shutdown (queued jobs re-recorded, open
streams closed with a terminal ``end`` frame).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from urllib.parse import urlparse

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.core.serialize import experiment_to_dict
from repro.service.api import ExperimentService
from repro.service.store import SQLiteResultStore
from repro.workloads import make_workload

SPEC = {
    "workload": "stereo",
    "caps_w": [150.0, 140.0],
    "repetitions": 1,
    "scale": 0.001,
}
POLL_S = 0.05
POLL_TRIES = 1200


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("async_service")
    svc = ExperimentService(
        db_path=tmp / "svc.sqlite3",
        port=0,
        workers=2,
        rate_cache=tmp / "rates.json",
        frontend="async",
    )
    svc.start()
    yield svc
    svc.shutdown(drain=False)


def request(service, method, path, body=None, headers=None):
    data = None if body is None else json.dumps(body).encode()
    merged = dict(headers or {})
    if data:
        merged.setdefault("Content-Type", "application/json")
    req = urllib.request.Request(
        service.url + path, data=data, method=method, headers=merged
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, resp.read(), dict(resp.headers)


def request_json(service, method, path, body=None, headers=None):
    status, raw, _ = request(service, method, path, body, headers)
    return status, json.loads(raw)


def poll_until_done(service, job_id):
    for _ in range(POLL_TRIES):
        _, job = request_json(service, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(POLL_S)
    raise AssertionError(f"job {job_id} never finished: {job}")


def parse_sse(text):
    frames = []
    for block in text.split("\n\n"):
        fields = {}
        for line in block.splitlines():
            if not line or line.startswith(":"):
                continue
            key, _, value = line.partition(": ")
            fields[key] = value
        if "event" in fields:
            frames.append({
                "id": int(fields["id"]) if "id" in fields else None,
                "event": fields["event"],
                "data": json.loads(fields["data"]),
            })
    return frames


def read_stream(service, path, headers=None):
    req = urllib.request.Request(service.url + path, headers=headers or {})
    with urllib.request.urlopen(req, timeout=120) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        return resp.read().decode()


@pytest.fixture(scope="module")
def finished_job(service):
    status, job = request_json(service, "POST", "/jobs", SPEC)
    assert status == 201
    done = poll_until_done(service, job["id"])
    assert done["state"] == "done"
    return done


class TestParity:
    def test_healthz_reports_async_frontend(self, service):
        status, health = request_json(service, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["frontend"] == "async"
        assert health["workers"] == 2

    def test_result_byte_identical_to_direct_sweep(
        self, service, finished_job
    ):
        _, payload = request_json(
            service, "GET", f"/jobs/{finished_job['id']}/result"
        )
        workload = make_workload(SPEC["workload"], SPEC["scale"])
        direct = PowerCapExperiment(
            [workload],
            caps_w=tuple(SPEC["caps_w"]),
            repetitions=SPEC["repetitions"],
            seed=finished_job["spec"]["seed"],
        ).run_all()
        expected = {
            name: json.loads(json.dumps(experiment_to_dict(result)))
            for name, result in direct.items()
        }
        served = payload["results"]
        for docs in (served, expected):
            for doc in docs.values():
                doc.pop("provenance")
        assert served == expected

    def test_resubmission_dedups_on_digest(self, service, finished_job):
        status, twin = request_json(service, "POST", "/jobs", SPEC)
        assert status == 201
        assert twin["spec_digest"] == finished_job["spec_digest"]
        assert poll_until_done(service, twin["id"])["state"] == "done"

    def test_jobs_listing(self, service, finished_job):
        _, listing = request_json(service, "GET", "/jobs")
        assert any(j["id"] == finished_job["id"] for j in listing["jobs"])

    def test_metrics_scrape(self, service, finished_job):
        status, raw, headers = request(service, "GET", "/metrics")
        assert status == 200
        assert "text/plain" in headers["Content-Type"]
        text = raw.decode()
        assert "repro_admission_shed_total" in text
        assert "repro_service_shards" in text


class TestErrors:
    def test_unknown_job_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            request(service, "GET", "/jobs/nope")
        assert err.value.code == 404

    def test_unknown_resource_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            request(service, "GET", "/bogus")
        assert err.value.code == 404

    def test_malformed_json_400(self, service):
        req = urllib.request.Request(
            service.url + "/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_unsupported_method_405(self, service):
        req = urllib.request.Request(
            service.url + "/jobs", data=b"{}", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 405

    def test_oversized_body_413(self, service):
        body = b'{"pad": "' + b"x" * (1 << 20) + b'"}'
        req = urllib.request.Request(
            service.url + "/jobs",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 413


class TestKeepAlive:
    def test_connection_reuse(self, service):
        """Several requests down one socket: HTTP/1.1 keep-alive."""
        parsed = urlparse(service.url)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=30
        )
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                json.loads(resp.read())
        finally:
            conn.close()

    def test_connection_close_honoured(self, service):
        parsed = urlparse(service.url)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=30
        )
        try:
            conn.request(
                "GET", "/healthz", headers={"Connection": "close"}
            )
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
            assert resp.will_close
        finally:
            conn.close()


class TestStreams:
    def test_replay_ends_with_terminal_frame(self, service, finished_job):
        frames = parse_sse(
            read_stream(service, f"/jobs/{finished_job['id']}/stream")
        )
        kinds = [f["event"] for f in frames]
        assert kinds[0] == "job_started"
        assert kinds[-1] == "job_done"
        ids = [f["id"] for f in frames if f["id"] is not None]
        assert all(b > a for a, b in zip(ids, ids[1:]))

    def test_last_event_id_resumes(self, service, finished_job):
        full = parse_sse(
            read_stream(service, f"/jobs/{finished_job['id']}/stream")
        )
        ids = [f["id"] for f in full if f["id"] is not None]
        floor = ids[len(ids) // 2]
        resumed = parse_sse(read_stream(
            service,
            f"/jobs/{finished_job['id']}/stream",
            headers={"Last-Event-ID": str(floor)},
        ))
        resumed_ids = [f["id"] for f in resumed if f["id"] is not None]
        assert resumed_ids == [i for i in ids if i > floor]

    def test_caught_up_subscriber_gets_end_frame(
        self, service, finished_job
    ):
        full = parse_sse(
            read_stream(service, f"/jobs/{finished_job['id']}/stream")
        )
        last = max(f["id"] for f in full if f["id"] is not None)
        tail = parse_sse(read_stream(
            service,
            f"/jobs/{finished_job['id']}/stream?last_event_id={last}",
        ))
        assert [f["event"] for f in tail] == ["end"]
        assert tail[0]["data"]["state"] == "done"

    def test_unknown_job_stream_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            read_stream(service, "/jobs/nope/stream")
        assert err.value.code == 404


class TestAdmissionOverHttp:
    @pytest.fixture()
    def tight_service(self, tmp_path):
        svc = ExperimentService(
            db_path="memory://",
            port=0,
            workers=1,
            rate_cache=tmp_path / "rates.json",
            frontend="async",
            admission_rate=0.001,
            admission_burst=1.0,
        )
        svc.start(start_workers=False)
        yield svc
        svc.shutdown(drain=False)

    def test_rate_limited_submit_gets_429_with_retry_after(
        self, tight_service
    ):
        status, job = request_json(
            tight_service,
            "POST",
            "/jobs",
            SPEC,
            headers={"X-Client-Id": "hot"},
        )
        assert status == 201
        with pytest.raises(urllib.error.HTTPError) as err:
            request(
                tight_service,
                "POST",
                "/jobs",
                SPEC,
                headers={"X-Client-Id": "hot"},
            )
        assert err.value.code == 429
        assert float(err.value.headers["Retry-After"]) > 0
        body = json.loads(err.value.read())
        assert "rate_limit" in body["error"]

    def test_shed_counted_on_metrics(self, tight_service):
        for _ in range(2):
            try:
                request(
                    tight_service,
                    "POST",
                    "/jobs",
                    SPEC,
                    headers={"X-Client-Id": "metered"},
                )
            except urllib.error.HTTPError:
                pass
        _, raw, _ = request(tight_service, "GET", "/metrics")
        shed_lines = [
            line
            for line in raw.decode().splitlines()
            if line.startswith("repro_admission_shed_total")
            and 'reason="rate_limit"' in line
        ]
        assert shed_lines and float(shed_lines[0].split()[-1]) >= 1.0
        assert tight_service.admission.shed_counts()["rate_limit"] >= 1.0


class TestGracefulShutdown:
    def test_queued_jobs_survive_and_streams_get_end_frame(self, tmp_path):
        db = tmp_path / "shutdown.sqlite3"
        svc = ExperimentService(
            db_path=db,
            port=0,
            workers=1,
            rate_cache=tmp_path / "rates.json",
            frontend="async",
        )
        svc.start(start_workers=False)  # jobs queue, never run
        job_ids = []
        for k in range(3):
            spec = dict(SPEC, seed=4200 + k)
            status, job = request_json(svc, "POST", "/jobs", spec)
            assert status == 201
            job_ids.append(job["id"])

        # Hold a live stream open across the shutdown.
        import threading

        captured = {}

        def consume():
            try:
                captured["body"] = read_stream(
                    svc, f"/jobs/{job_ids[0]}/stream"
                )
            except Exception as exc:  # noqa: BLE001 — asserted below
                captured["error"] = exc

        reader = threading.Thread(target=consume)
        reader.start()
        time.sleep(0.5)  # let the subscription attach

        svc.shutdown(drain=False)
        reader.join(timeout=30)
        assert not reader.is_alive()
        assert "error" not in captured
        frames = parse_sse(captured["body"])
        assert frames[-1]["event"] == "end"
        assert frames[-1]["data"]["state"] == "shutting_down"

        # The queue was discarded, not lost: every job is back in the
        # store as QUEUED, ready for recovery on the next boot.
        reopened = SQLiteResultStore(db)
        try:
            pending = {j.id for j in reopened.pending_jobs()}
            assert set(job_ids) <= pending
        finally:
            reopened.close()

    def test_submissions_after_shutdown_are_shed(self, tmp_path):
        svc = ExperimentService(
            db_path="memory://",
            port=0,
            workers=1,
            rate_cache=tmp_path / "rates.json",
            frontend="async",
        )
        svc.start(start_workers=False)
        try:
            svc.admission.begin_shutdown()
            with pytest.raises(urllib.error.HTTPError) as err:
                request_json(svc, "POST", "/jobs", SPEC)
            assert err.value.code == 503
            assert "Retry-After" in err.value.headers
        finally:
            svc.shutdown(drain=False)
