"""ResultStore conformance suite, parameterized over every backend.

The pluggable-store contract: any backend reachable through
``open_store`` must behave identically for job CRUD, result dedup,
per-cap rows, concurrent writers, and — the property everything else
leans on — byte-identical storage of serialized sweep documents.
A future Postgres backend plugs into this suite unchanged.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.core.serialize import experiment_to_dict
from repro.errors import ConfigError
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.store import (
    MemoryResultStore,
    ResultStore,
    ResultStoreBase,
    SQLiteResultStore,
    open_store,
)
from repro.workloads import make_workload

BACKENDS = ("sqlite", "memory")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    if request.param == "sqlite":
        yield SQLiteResultStore(tmp_path / "conformance.sqlite3")
    else:
        yield MemoryResultStore()


@pytest.fixture(scope="module")
def sweeps():
    spec = JobSpec(workload="stereo", caps_w=(150.0, 140.0), scale=0.001)
    workload = make_workload(spec.workload, spec.scale)
    experiment = PowerCapExperiment(
        [workload],
        caps_w=spec.caps_w,
        repetitions=spec.repetitions,
        seed=spec.seed,
    )
    return spec, experiment.run_all()


class TestJobCrud:
    def test_record_and_get_round_trip(self, store):
        job = Job(spec=JobSpec(workload="stereo"), priority=3)
        store.record_job(job)
        loaded = store.get_job(job.id)
        assert loaded is not None
        assert loaded.to_dict() == job.to_dict()

    def test_get_unknown_job_is_none(self, store):
        assert store.get_job("nope") is None

    def test_update_overwrites(self, store):
        job = Job(spec=JobSpec(workload="stereo"))
        store.record_job(job)
        job.state = JobState.DONE
        job.finished_at = 123.0
        store.record_job(job)
        assert store.get_job(job.id).state is JobState.DONE

    def test_list_jobs_newest_first(self, store):
        jobs = [Job(spec=JobSpec(workload="stereo")) for _ in range(3)]
        for i, job in enumerate(jobs):
            job.created_at = 1000.0 + i
            store.record_job(job)
        listed = store.list_jobs()
        assert [j.id for j in listed[:3]] == [j.id for j in reversed(jobs)]

    def test_counts_by_state(self, store):
        done = Job(spec=JobSpec(workload="stereo"), state=JobState.DONE)
        queued = Job(spec=JobSpec(workload="sire"))
        store.record_job(done)
        store.record_job(queued)
        counts = store.counts_by_state()
        assert counts.get("done") == 1
        assert counts.get("queued") == 1

    def test_pending_jobs_covers_queued_and_running(self, store):
        states = {
            JobState.QUEUED: True,
            JobState.RUNNING: True,
            JobState.DONE: False,
            JobState.CANCELLED: False,
        }
        ids = {}
        for state, pending in states.items():
            job = Job(spec=JobSpec(workload="stereo"), state=state)
            store.record_job(job)
            ids[job.id] = pending
        pending_ids = {j.id for j in store.pending_jobs()}
        for job_id, expected in ids.items():
            assert (job_id in pending_ids) is expected


class TestResults:
    def test_put_and_has_result(self, store, sweeps):
        spec, results = sweeps
        assert not store.has_result(spec.digest())
        store.put_result(spec.digest(), results)
        assert store.has_result(spec.digest())
        assert store.result_count() == 1

    def test_round_trip_is_byte_identical(self, store, sweeps):
        spec, results = sweeps
        store.put_result(spec.digest(), results)
        doc = store.get_result_dict(spec.digest())
        expected = {
            name: json.loads(
                json.dumps(experiment_to_dict(result), sort_keys=True)
            )
            for name, result in results.items()
        }
        assert doc == expected

    def test_put_result_doc_stores_identical_bytes(self, store, sweeps):
        """The sharded path's entry point stores the same document."""
        spec, results = sweeps
        doc = {
            name: json.loads(
                json.dumps(experiment_to_dict(result), sort_keys=True)
            )
            for name, result in results.items()
        }
        store.put_result_doc(spec.digest(), doc)
        assert store.get_result_dict(spec.digest()) == doc

    def test_result_rows_exploded_per_cap(self, store, sweeps):
        spec, results = sweeps
        store.put_result(spec.digest(), results)
        rows = store.result_rows(spec.digest())
        labels = {(r["workload"], r["cap_label"]) for r in rows}
        # One baseline row + one per cap, per workload.
        assert labels == {
            ("StereoMatching", "baseline"),
            ("StereoMatching", "150"),
            ("StereoMatching", "140"),
        }

    def test_overwrite_same_digest_is_idempotent(self, store, sweeps):
        spec, results = sweeps
        store.put_result(spec.digest(), results)
        store.put_result(spec.digest(), results)
        assert store.result_count() == 1

    def test_missing_result_is_none(self, store):
        assert store.get_result_dict("absent") is None
        assert store.result_rows("absent") == []


class TestConcurrency:
    def test_concurrent_writers_all_land(self, store, sweeps):
        """Writers on many threads: every job and result survives."""
        _, results = sweeps
        doc = {
            name: json.loads(
                json.dumps(experiment_to_dict(result), sort_keys=True)
            )
            for name, result in results.items()
        }
        errors = []

        def write(k: int) -> None:
            try:
                spec = JobSpec(workload="stereo", seed=7000 + k)
                job = Job(spec=spec)
                store.record_job(job)
                store.put_result_doc(spec.digest(), doc)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(k,)) for k in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.result_count() == 16
        assert len(store.list_jobs()) == 16


class TestOpenStore:
    def test_bare_path_is_sqlite(self, tmp_path):
        store = open_store(tmp_path / "s.sqlite3")
        assert isinstance(store, SQLiteResultStore)
        assert store.backend == "sqlite"

    def test_sqlite_url(self, tmp_path):
        store = open_store(f"sqlite://{tmp_path}/s.sqlite3")
        assert isinstance(store, SQLiteResultStore)

    def test_memory_url(self):
        store = open_store("memory://")
        assert isinstance(store, MemoryResultStore)
        assert store.backend == "memory"

    def test_instance_passthrough(self):
        store = MemoryResultStore()
        assert open_store(store) is store

    def test_postgres_not_wired_yet(self):
        with pytest.raises(ConfigError):
            open_store("postgres://db.example/repro")

    def test_compat_alias(self):
        assert ResultStore is SQLiteResultStore
        assert issubclass(SQLiteResultStore, ResultStoreBase)
        assert issubclass(MemoryResultStore, ResultStoreBase)
