"""Bursty workload scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.bursty import BurstyWorkload, PhaseSpec
from repro.workloads.stereo import StereoMatchingWorkload


@pytest.fixture
def bursty():
    return BurstyWorkload(
        [
            PhaseSpec("idle", None, mean_duration_s=3.0, weight=2.0),
            PhaseSpec(
                "burst", StereoMatchingWorkload(), mean_duration_s=1.5,
                weight=1.0,
            ),
        ]
    )


class TestConstruction:
    def test_requires_phases(self):
        with pytest.raises(WorkloadError):
            BurstyWorkload([])

    def test_requires_a_busy_phase(self):
        with pytest.raises(WorkloadError):
            BurstyWorkload([PhaseSpec("idle", None, mean_duration_s=1.0)])

    def test_phase_validation(self):
        with pytest.raises(WorkloadError):
            PhaseSpec("bad", None, mean_duration_s=0.0)
        with pytest.raises(WorkloadError):
            PhaseSpec("bad", None, mean_duration_s=1.0, weight=0.0)


class TestSchedule:
    def test_covers_horizon_exactly(self, bursty, rng):
        schedule = bursty.schedule(60.0, rng)
        assert schedule[0].start_s == 0.0
        assert schedule[-1].end_s == pytest.approx(60.0)
        for a, b in zip(schedule, schedule[1:]):
            assert b.start_s == pytest.approx(a.end_s)

    def test_alternates_phases(self, bursty, rng):
        schedule = bursty.schedule(200.0, rng)
        names = [i.name for i in schedule]
        assert all(a != b for a, b in zip(names, names[1:]))
        assert "burst" in names and "idle" in names

    def test_deterministic_given_rng(self, bursty):
        a = bursty.schedule(50.0, np.random.default_rng(9))
        b = bursty.schedule(50.0, np.random.default_rng(9))
        assert [i.duration_s for i in a] == [i.duration_s for i in b]

    def test_busy_fraction(self, bursty, rng):
        schedule = bursty.schedule(500.0, rng)
        frac = bursty.busy_fraction(schedule)
        # Mean durations 3 s idle vs 1.5 s burst, alternating: ~1/3.
        assert 0.15 < frac < 0.55

    def test_invalid_horizon(self, bursty, rng):
        with pytest.raises(WorkloadError):
            bursty.schedule(0.0, rng)

    def test_mean_durations_roughly_respected(self, bursty, rng):
        schedule = bursty.schedule(2000.0, rng)
        bursts = [i.duration_s for i in schedule if i.name == "burst"]
        assert np.mean(bursts) == pytest.approx(1.5, rel=0.35)
