"""Microbenchmark probes: counters, kernels, edges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.mem.reconfig import GatingState
from repro.workloads.microbench import (
    TSC_HZ,
    MachineUnderTest,
    cache_capacity_probe,
    compute_probe,
    dram_latency_probe,
    itlb_reach_probe,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMsrCounters:
    def test_tsc_always_ticks(self):
        m = MachineUnderTest(duty=0.25)
        wall = m.time_compute(1_000_000)
        msr = m.read_msr()
        assert msr.tsc == pytest.approx(wall * TSC_HZ)

    def test_mperf_tracks_unhalted_fraction(self):
        m = MachineUnderTest(duty=0.25)
        m.time_compute(1_000_000)
        msr = m.read_msr()
        assert msr.mperf / msr.tsc == pytest.approx(0.25)

    def test_aperf_tracks_actual_frequency(self):
        m = MachineUnderTest(freq_hz=1.2e9)
        m.time_compute(1_000_000)
        msr = m.read_msr()
        assert msr.aperf / msr.mperf * TSC_HZ == pytest.approx(1.2e9)

    def test_delta(self):
        m = MachineUnderTest()
        before = m.read_msr()
        m.time_compute(1000)
        d = m.read_msr().delta(before)
        assert d.tsc > 0 and d.aperf > 0 and d.mperf > 0


class TestComputeProbe:
    def test_unthrottled_nominal(self):
        r = compute_probe(MachineUnderTest())
        assert r.effective_freq_hz == pytest.approx(2.701e9)
        assert r.duty == pytest.approx(1.0)

    def test_separates_dvfs_from_modulation(self):
        r = compute_probe(MachineUnderTest(freq_hz=1.2e9, duty=0.15))
        assert r.effective_freq_hz == pytest.approx(1.2e9)
        assert r.duty == pytest.approx(0.15)

    def test_wall_time_reflects_both(self):
        base = compute_probe(MachineUnderTest()).seconds_per_instruction
        slow = compute_probe(
            MachineUnderTest(freq_hz=1.3505e9, duty=0.5)
        ).seconds_per_instruction
        assert slow == pytest.approx(4.0 * base)


class TestCacheCapacityProbe:
    def test_l2_edge_at_nominal_capacity(self, rng):
        m = MachineUnderTest()
        curve = cache_capacity_probe(
            m, (128 * 1024, 256 * 1024, 512 * 1024), rng
        )
        assert curve[512 * 1024] > 1.6 * curve[256 * 1024]
        assert curve[256 * 1024] == pytest.approx(curve[128 * 1024], rel=0.3)

    def test_l2_edge_moves_under_way_gating(self, rng):
        m = MachineUnderTest(gating=GatingState(l2_way_fraction=0.5))
        curve = cache_capacity_probe(
            m, (64 * 1024, 128 * 1024, 256 * 1024), rng
        )
        # 128 KB effective: the 256 KB point now misses.
        assert curve[256 * 1024] > 1.6 * curve[128 * 1024]


class TestItlbProbe:
    def test_reach_at_nominal(self, rng):
        m = MachineUnderTest()
        curve = itlb_reach_probe(m, (96, 128, 192), rng)
        assert curve[192] > 1.6 * curve[128]

    def test_reach_shrinks_under_gating(self, rng):
        m = MachineUnderTest(gating=GatingState(itlb_fraction=0.0625))
        curve = itlb_reach_probe(m, (8, 16, 24, 48), rng)
        assert curve[24] > 1.6 * curve[16]


class TestDramProbe:
    def test_nominal_latency(self, rng):
        ns = dram_latency_probe(MachineUnderTest(), rng, accesses=60_000)
        assert 40.0 < ns < 55.0

    def test_gated_latency(self, rng):
        m = MachineUnderTest(gating=GatingState(dram_latency_multiplier=4.0))
        ns = dram_latency_probe(m, rng, accesses=60_000)
        assert ns > 150.0


class TestValidation:
    def test_duty_bounds(self):
        with pytest.raises(WorkloadError):
            MachineUnderTest(duty=0.0)

    def test_compute_requires_positive_n(self):
        with pytest.raises(WorkloadError):
            MachineUnderTest().time_compute(0)
