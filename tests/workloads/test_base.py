"""Workload base abstractions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trace.events import TraceSlice
from repro.workloads.base import Workload, WorkloadSpec


class TestWorkloadSpec:
    def test_valid(self):
        spec = WorkloadSpec(
            name="toy",
            total_instructions=1e9,
            loads_stores_per_instruction=0.4,
            ifetch_per_instruction=0.2,
        )
        assert spec.name == "toy"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_instructions": 0},
            {"loads_stores_per_instruction": 0.0},
            {"loads_stores_per_instruction": 4.5},
            {"ifetch_per_instruction": 0.0},
            {"ifetch_per_instruction": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        base = dict(
            name="toy",
            total_instructions=1e9,
            loads_stores_per_instruction=0.4,
            ifetch_per_instruction=0.2,
        )
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            WorkloadSpec(**base)


class ToyWorkload(Workload):
    """Minimal concrete workload for exercising the base class."""

    def __init__(self):
        super().__init__(
            WorkloadSpec(
                name="toy",
                total_instructions=1e9,
                loads_stores_per_instruction=0.5,
                ifetch_per_instruction=0.25,
            )
        )

    def build_slice(self, rng, n_data_accesses):
        data = np.arange(n_data_accesses, dtype=np.int64) * 64
        instructions = self.slice_instructions(n_data_accesses)
        ifetch = np.arange(self.ifetches_for(instructions), dtype=np.int64) * 16
        return TraceSlice(
            data_addresses=data,
            ifetch_addresses=ifetch,
            instructions=instructions,
        )

    def run_reference(self, scale: float = 1.0, seed: int = 0):
        return {"scale": scale}


class TestWorkloadBase:
    def test_slice_instruction_accounting(self):
        w = ToyWorkload()
        # 0.5 loads/stores per instruction: 1000 accesses = 2000 instrs.
        assert w.slice_instructions(1000) == pytest.approx(2000.0)

    def test_ifetch_budget(self):
        w = ToyWorkload()
        assert w.ifetches_for(2000.0) == 500

    def test_ifetch_budget_minimum_one(self):
        assert ToyWorkload().ifetches_for(0.5) == 1

    def test_name_and_spec(self):
        w = ToyWorkload()
        assert w.name == "toy"
        assert w.spec.total_instructions == 1e9

    def test_runs_on_the_runner(self):
        """Any conforming Workload can be driven by the NodeRunner."""
        import dataclasses

        from repro.core.runner import NodeRunner

        w = ToyWorkload()
        w._spec = dataclasses.replace(w.spec, total_instructions=5e8)
        result = NodeRunner(slice_accesses=20_000).run(w)
        assert result.workload == "toy"
        assert result.execution_s > 0
        assert result.avg_freq_mhz == pytest.approx(2701.0, abs=2)
