"""SIRE radar forward model and SAR back-projection/RSM — the real
algorithms, verified numerically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.radar import (
    SireScene,
    gaussian_monocycle,
    generate_returns,
)
from repro.workloads.sar import (
    SireRsmWorkload,
    backproject,
    rsm_denoise,
)


class TestMonocycle:
    def test_zero_at_center(self):
        t = np.array([5.0])
        assert gaussian_monocycle(t, 5.0, 1.0)[0] == pytest.approx(0.0)

    def test_antisymmetric(self):
        t = np.linspace(-3, 3, 7)
        pulse = gaussian_monocycle(t, 0.0, 1.0)
        assert np.allclose(pulse, -pulse[::-1])

    def test_invalid_sigma(self):
        with pytest.raises(WorkloadError):
            gaussian_monocycle(np.zeros(1), 0.0, 0.0)


class TestSceneAndReturns:
    def test_random_scene_in_bounds(self, rng):
        scene = SireScene.random(rng, n_scatterers=10)
        xy = scene.scatterers_xy
        assert np.all(xy[:, 0] >= 0) and np.all(xy[:, 0] <= scene.extent_x_m)
        assert np.all(xy[:, 1] >= scene.standoff_y_m)

    def test_returns_shape(self, rng):
        scene = SireScene.random(rng, n_scatterers=3)
        returns, ap_x, ft = generate_returns(
            scene, n_apertures=16, n_samples=256, rng=rng
        )
        assert returns.shape == (16, 256)
        assert len(ap_x) == 16 and len(ft) == 256
        assert returns.dtype == np.float32

    def test_echo_arrives_at_two_way_delay(self):
        # Single scatterer directly below one aperture: the strongest
        # response in that aperture's trace must sit at 2R/c.
        scene = SireScene(
            scatterers_xy=np.array([[15.0, 12.0]]),
            reflectivity=np.array([1.0]),
        )
        returns, ap_x, ft = generate_returns(
            scene, n_apertures=31, n_samples=2048, noise_sigma=0.0
        )
        a = int(np.argmin(np.abs(ap_x - 15.0)))
        r = np.hypot(15.0 - ap_x[a], 12.0)
        expected_delay = 2 * r / 2.99792458e8
        peak_t = ft[int(np.argmax(np.abs(returns[a])))]
        dt = ft[1] - ft[0]
        assert abs(peak_t - expected_delay) < 5 * dt

    def test_closer_scatterer_is_stronger(self):
        scene = SireScene(
            scatterers_xy=np.array([[15.0, 10.0], [15.0, 30.0]]),
            reflectivity=np.array([1.0, 1.0]),
        )
        returns, ap_x, ft = generate_returns(
            scene, n_apertures=5, n_samples=2048, noise_sigma=0.0
        )
        a = 2  # middle aperture
        near_delay = 2 * np.hypot(15.0 - ap_x[a], 10.0) / 2.99792458e8
        far_delay = 2 * np.hypot(15.0 - ap_x[a], 30.0) / 2.99792458e8
        dt = ft[1] - ft[0]
        near_window = np.abs(
            returns[a][int(near_delay / dt) - 8 : int(near_delay / dt) + 8]
        ).max()
        far_window = np.abs(
            returns[a][int(far_delay / dt) - 8 : int(far_delay / dt) + 8]
        ).max()
        assert near_window > 3 * far_window

    def test_too_small_rejected(self, rng):
        scene = SireScene.random(rng)
        with pytest.raises(WorkloadError):
            generate_returns(scene, n_apertures=1)


class TestBackprojection:
    def _focused_image(self, rng, iterations=None):
        scene = SireScene(
            scatterers_xy=np.array([[12.0, 15.0], [20.0, 25.0]]),
            reflectivity=np.array([1.0, 0.9]),
        )
        returns, ap_x, ft = generate_returns(
            scene, n_apertures=64, n_samples=1536, noise_sigma=0.0, rng=rng
        )
        if iterations is None:
            img = np.abs(
                backproject(
                    returns, ap_x, ft, (64, 64),
                    scene.extent_x_m, scene.extent_y_m, scene.standoff_y_m,
                )
            )
        else:
            img = rsm_denoise(
                returns, ap_x, ft, (64, 64),
                scene.extent_x_m, scene.extent_y_m, scene.standoff_y_m,
                iterations=iterations, rng=rng,
            )
        return scene, img

    @staticmethod
    def _pixel_of(scene, img, idx):
        ny, nx = img.shape
        x, y = scene.scatterers_xy[idx]
        px = int(round(x / scene.extent_x_m * (nx - 1)))
        py = int(
            round((y - scene.standoff_y_m) / scene.extent_y_m * (ny - 1))
        )
        return py, px

    def test_backprojection_focuses_scatterers(self, rng):
        scene, img = self._focused_image(rng)
        for i in range(2):
            py, px = self._pixel_of(scene, img, i)
            local = img[
                max(0, py - 2) : py + 3, max(0, px - 2) : px + 3
            ].max()
            assert local > 3 * np.median(img)

    def test_rsm_suppresses_background(self, rng):
        scene, plain = self._focused_image(rng)
        _, denoised = self._focused_image(np.random.default_rng(1), iterations=6)
        # RSM reduces the background (median) relative to the peak.
        plain_ratio = plain.max() / np.median(plain)
        rsm_ratio = denoised.max() / np.median(denoised)
        assert rsm_ratio > plain_ratio

    def test_aperture_mask_reduces_contributions(self, rng):
        scene = SireScene.random(rng, n_scatterers=2)
        returns, ap_x, ft = generate_returns(
            scene, n_apertures=16, n_samples=512, noise_sigma=0.0
        )
        full = backproject(
            returns, ap_x, ft, (16, 16),
            scene.extent_x_m, scene.extent_y_m, scene.standoff_y_m,
        )
        none = backproject(
            returns, ap_x, ft, (16, 16),
            scene.extent_x_m, scene.extent_y_m, scene.standoff_y_m,
            aperture_mask=np.zeros(16, dtype=bool),
        )
        assert np.all(none == 0.0)
        assert np.any(full != 0.0)

    def test_shape_validation(self, rng):
        scene = SireScene.random(rng)
        returns, ap_x, ft = generate_returns(scene, n_apertures=8, n_samples=256)
        with pytest.raises(WorkloadError):
            backproject(
                returns, ap_x[:4], ft, (8, 8), 30.0, 30.0, 8.0
            )

    def test_rsm_validation(self, rng):
        scene = SireScene.random(rng)
        returns, ap_x, ft = generate_returns(scene, n_apertures=8, n_samples=256)
        with pytest.raises(WorkloadError):
            rsm_denoise(returns, ap_x, ft, (8, 8), 30.0, 30.0, 8.0, iterations=0)
        with pytest.raises(WorkloadError):
            rsm_denoise(
                returns, ap_x, ft, (8, 8), 30.0, 30.0, 8.0, keep_fraction=1.5
            )


class TestSireRsmWorkload:
    def test_reference_run_produces_contrast(self):
        result = SireRsmWorkload().run_reference(scale=0.6, seed=2)
        assert result.image.shape[0] >= 32
        assert result.peak_to_background_db > 6.0

    def test_slice_shape_and_scaling(self, rng):
        w = SireRsmWorkload()
        sl = w.build_slice(rng, 50_000)
        assert abs(len(sl.data_addresses) - 50_000) < 200
        assert sl.instructions == pytest.approx(
            len(sl.data_addresses) / w.spec.loads_stores_per_instruction
        )
        assert len(sl.preload_addresses) > 0

    def test_slice_too_short_rejected(self, rng):
        with pytest.raises(WorkloadError):
            SireRsmWorkload().build_slice(rng, 10)

    def test_spec(self):
        spec = SireRsmWorkload().spec
        assert spec.name == "SIRE/RSM"
        assert spec.total_instructions > 1e11
