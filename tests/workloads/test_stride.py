"""Stride microbenchmark: Figure 3 structure and Figure 4 inflation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.mem.reconfig import GatingState
from repro.workloads.stride import StrideBenchmark, StrideResult

# A reduced grid that still spans L1 / L2 / L3 / DRAM regimes.
SIZES = (16 * 1024, 128 * 1024, 2 * 1024 * 1024, 48 * 1024 * 1024)
STRIDES = (8, 64, 512, 4096, 65536)


@pytest.fixture(scope="module")
def uncapped_result():
    bench = StrideBenchmark(sizes=SIZES, strides=STRIDES, accesses_per_cell=3000)
    return bench.run()


class TestFigure3Structure:
    def test_grid_shape_and_validity_mask(self, uncapped_result):
        r = uncapped_result
        assert r.access_time_ns.shape == (len(SIZES), len(STRIDES))
        for i, size in enumerate(SIZES):
            for j, stride in enumerate(STRIDES):
                valid = stride <= size // 2
                assert np.isfinite(r.access_time_ns[i, j]) == valid

    def test_l1_resident_array_at_l1_latency(self, uncapped_result):
        # 16 KB fits L1: every stride reads at ~1.5 ns.
        series = uncapped_result.series_for_size(16 * 1024)
        assert all(v == pytest.approx(1.5, abs=0.3) for v in series.values())

    def test_plateaus_increase_with_array_size(self, uncapped_result):
        plateaus = [uncapped_result.plateau_ns(s) for s in SIZES]
        assert all(a <= b + 1e-9 for a, b in zip(plateaus, plateaus[1:]))

    def test_capacity_edges_visible(self, uncapped_result):
        # The paper infers the cache sizes from exactly these gaps; the
        # 64 B (one line per access) column shows them cleanly.
        l1 = uncapped_result.series_for_size(16 * 1024)[64]
        l2 = uncapped_result.series_for_size(128 * 1024)[64]
        l3 = uncapped_result.series_for_size(2 * 1024 * 1024)[64]
        dram = uncapped_result.series_for_size(48 * 1024 * 1024)[64]
        assert l2 > 1.8 * l1
        assert l3 > 2.0 * l2
        assert dram > 3.0 * l3

    def test_dram_plateau_near_figure3(self, uncapped_result):
        # The 64 B-stride large-array level sits at the DRAM service
        # cost (~46 ns in our latency model; the paper reads ~60 ns).
        assert 30.0 < uncapped_result.series_for_size(48 * 1024 * 1024)[64] < 70.0

    def test_page_stride_tail_shows_tlb_walks(self, uncapped_result):
        # Page-sized strides over many pages add dTLB walk time — the
        # raised large-stride tails visible in the published curves.
        series = uncapped_result.series_for_size(48 * 1024 * 1024)
        assert series[4096] > series[64] + 30.0

    def test_small_stride_within_line_amortised(self, uncapped_result):
        # 8 B strides hit the same 64 B line 8x: far cheaper than the
        # line-per-access regime.
        series = uncapped_result.series_for_size(48 * 1024 * 1024)
        assert series[8] < 0.35 * series[64]


class TestGatedRun:
    def test_way_gating_shifts_capacity_edge(self):
        bench = StrideBenchmark(
            sizes=(2 * 1024 * 1024, 16 * 1024 * 1024),
            strides=(64,),
            accesses_per_cell=3000,
        )
        full = bench.run()
        gated = bench.run(GatingState(l3_way_fraction=0.25))
        # 16 MB fits a 20 MB L3 but not a 5 MB (quarter-ways) one.
        assert gated.access_time_ns[1, 0] > 1.5 * full.access_time_ns[1, 0]

    def test_dram_gating_inflates_only_dram_served(self):
        bench = StrideBenchmark(
            sizes=(16 * 1024, 48 * 1024 * 1024),
            strides=(64,),
            accesses_per_cell=2000,
        )
        full = bench.run()
        gated = bench.run(GatingState(dram_latency_multiplier=4.0))
        assert gated.access_time_ns[0, 0] == pytest.approx(
            full.access_time_ns[0, 0]
        )
        assert gated.access_time_ns[1, 0] > 2.0 * full.access_time_ns[1, 0]


class TestFigure4Cap:
    def test_capped_run_inflates_and_varies(self):
        bench = StrideBenchmark(
            sizes=(16 * 1024, 2 * 1024 * 1024),
            strides=(64, 4096),
            accesses_per_cell=2000,
        )
        uncapped = bench.run()
        capped = bench.run_capped(
            120.0, np.random.default_rng(7), cell_duration_s=1.0, settle_s=10.0
        )
        # Every valid cell is slower under the 120 W cap (Figure 4).
        for i in range(2):
            for j in range(2):
                if np.isfinite(uncapped.access_time_ns[i, j]):
                    assert (
                        capped.access_time_ns[i, j]
                        > 3.0 * uncapped.access_time_ns[i, j]
                    )

    def test_high_cap_barely_changes_times(self):
        bench = StrideBenchmark(
            sizes=(16 * 1024,), strides=(64,), accesses_per_cell=2000
        )
        uncapped = bench.run()
        capped = bench.run_capped(
            200.0, np.random.default_rng(7), cell_duration_s=0.5, settle_s=5.0
        )
        assert capped.access_time_ns[0, 0] == pytest.approx(
            uncapped.access_time_ns[0, 0], rel=0.05
        )


class TestValidation:
    def test_result_helpers(self, uncapped_result):
        with pytest.raises(WorkloadError):
            StrideResult(
                sizes=(64,), strides=(8,), access_time_ns=np.full((1, 1), np.nan)
            ).plateau_ns(64)

    def test_bad_construction(self):
        with pytest.raises(WorkloadError):
            StrideBenchmark(sizes=(), strides=(8,))
        with pytest.raises(WorkloadError):
            StrideBenchmark(sizes=(1024,), strides=(8,), accesses_per_cell=10)
