"""Wedding-cake scene and the simulated-annealing stereo matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.stereo import (
    AnnealingSchedule,
    StereoMatcher,
    StereoMatchingWorkload,
)
from repro.workloads.wedding_cake import (
    render_stereo_pair,
    wedding_cake_disparity,
)


class TestWeddingCake:
    def test_three_tiers_plus_ground(self):
        d = wedding_cake_disparity(64, 64, layer_disparities=(2, 6, 10, 14))
        assert set(np.unique(d)) == {2.0, 6.0, 10.0, 14.0}

    def test_tiers_are_concentric(self):
        d = wedding_cake_disparity(65, 65, layer_disparities=(0, 1, 2, 3))
        # Center pixel is the top tier; corner is ground.
        assert d[32, 32] == 3.0
        assert d[0, 0] == 0.0

    def test_tier_areas_decrease(self):
        d = wedding_cake_disparity(128, 128, layer_disparities=(0, 1, 2, 3))
        areas = [(d == v).sum() for v in (1.0, 2.0, 3.0)]
        assert areas[0] > areas[1] > areas[2] > 0

    def test_radii_must_decrease(self):
        with pytest.raises(WorkloadError):
            wedding_cake_disparity(64, 64, radii_fractions=(0.2, 0.3, 0.1))

    def test_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            wedding_cake_disparity(4, 4)


class TestRenderStereoPair:
    def test_shapes_and_range(self, rng):
        d = wedding_cake_disparity(48, 64)
        left, right = render_stereo_pair(d, rng, noise_sigma=0.0)
        assert left.shape == right.shape == (48, 64)
        assert 0.0 <= left.min() and left.max() <= 1.0

    def test_zero_disparity_reproduces_left(self, rng):
        d = np.zeros((32, 32), dtype=np.float32)
        left, right = render_stereo_pair(d, rng, noise_sigma=0.0)
        assert np.allclose(left, right, atol=1e-6)

    def test_constant_disparity_shifts(self, rng):
        d = np.full((32, 48), 5.0, dtype=np.float32)
        left, right = render_stereo_pair(d, rng, noise_sigma=0.0)
        # left(x) == right(x - 5) away from the border.
        assert np.allclose(left[:, 10:40], right[:, 5:35], atol=1e-5)


class TestAnnealingSchedule:
    def test_temperatures_decrease_geometrically(self):
        s = AnnealingSchedule(t_initial=1.0, t_final=0.1, cooling=0.5)
        temps = s.temperatures()
        assert temps[0] == 1.0
        assert np.allclose(temps[1:] / temps[:-1], 0.5)
        assert temps[-1] > 0.1 * 0.5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AnnealingSchedule(t_initial=0.1, t_final=1.0)
        with pytest.raises(WorkloadError):
            AnnealingSchedule(cooling=1.0)


class TestStereoMatcher:
    @pytest.fixture
    def problem(self, rng):
        truth = wedding_cake_disparity(28, 40, layer_disparities=(2, 4, 6, 8))
        left, right = render_stereo_pair(truth, rng, noise_sigma=0.005)
        return truth, StereoMatcher(left, right, max_disparity=10, window=5)

    def test_data_cost_minimised_at_truth(self, problem):
        truth, matcher = problem
        y, x = 14, 25  # interior pixel on a known tier
        d_true = int(truth[y, x])
        costs = {d: matcher.data_cost(y, x, d) for d in range(11)}
        assert min(costs, key=costs.get) == d_true

    def test_off_image_window_forbidden(self, problem):
        _, matcher = problem
        assert matcher.data_cost(5, 2, 8) >= 1e3

    def test_smoothness_zero_for_uniform_field(self, problem):
        _, matcher = problem
        field = np.full((28, 40), 5, dtype=np.int32)
        assert matcher.smoothness_cost(field, 10, 10, 5) == 0.0
        assert matcher.smoothness_cost(field, 10, 10, 7) > 0.0

    def test_energy_delta_zero_for_same_value(self, problem):
        _, matcher = problem
        field = np.full((28, 40), 5, dtype=np.int32)
        assert matcher.energy_delta(field, 10, 10, 5) == 0.0

    def test_annealing_improves_over_random_init(self, problem, rng):
        truth, matcher = problem
        schedule = AnnealingSchedule(
            t_initial=0.3, t_final=0.03, cooling=0.7, sweeps_per_temperature=2
        )
        init = rng.integers(0, 11, size=truth.shape).astype(np.int32)
        init_err = np.abs(init - truth).mean()
        solved, stats = matcher.solve(schedule, rng, initial=init)
        final_err = np.abs(solved - truth).mean()
        assert final_err < 0.6 * init_err
        assert 0 < stats["acceptance_rate"] <= 1.0

    def test_validation(self, rng):
        img = rng.random((16, 16)).astype(np.float32)
        with pytest.raises(WorkloadError):
            StereoMatcher(img, img[:8], max_disparity=4)
        with pytest.raises(WorkloadError):
            StereoMatcher(img, img, window=4)
        with pytest.raises(WorkloadError):
            StereoMatcher(img, img, max_disparity=0)


class TestStereoWorkload:
    def test_reference_run_beats_chance(self):
        stats = StereoMatchingWorkload().run_reference(scale=0.6, seed=1)
        # Random disparity over 13 levels would land within one of
        # truth ~23% of the time; the matcher must do far better.
        assert stats["within_one"] > 0.5
        assert stats["mean_abs_error"] < 2.0

    def test_slice_composition(self, rng):
        w = StereoMatchingWorkload()
        sl = w.build_slice(rng, 60_000)
        d = sl.data_addresses
        hot = (d < (1 << 28)).sum() / len(d)
        assert 0.9 < hot <= 0.99  # hot-dominated mix
        assert len(sl.preload_addresses) > 100_000  # 12 MB + tile lines

    def test_spec(self):
        spec = StereoMatchingWorkload().spec
        assert spec.name == "StereoMatching"
        assert 0 < spec.loads_stores_per_instruction < 1
