"""End-to-end integration: DCM -> IPMI -> BMC -> node -> workload.

The full management chain the paper's testbed used: the Data Center
Manager programs a cap over the out-of-band LAN; the BMC enforces it
while a workload executes on the node; the DCM polls power readings
back over the same wire.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch.node import Node
from repro.bmc.bmc import Bmc
from repro.core.runner import NodeRunner
from repro.dcm.manager import DataCenterManager
from repro.dcm.policy import StaticCapPolicy
from repro.ipmi.transport import LanTransport
from repro.mem.latency import AccessCosts, stall_ns_per_instruction
from repro.rng import RngStreams
from repro.workloads.stereo import StereoMatchingWorkload


@pytest.fixture
def plane(config):
    streams = RngStreams(3)
    lan = LanTransport(streams.stream("lan"), drop_probability=0.005)
    node = Node(config)
    bmc = Bmc(
        node, streams.stream("bmc"), lan_address="10.0.0.42", transport=lan
    )
    dcm = DataCenterManager(lan)
    dcm.register_node("edge-node", "10.0.0.42")
    return dcm, bmc, node


class TestManagementPlane:
    def test_policy_reaches_the_controller(self, plane):
        dcm, bmc, node = plane
        dcm.set_policy("edge-node", StaticCapPolicy(135.0))
        dcm.tick(time_s=0.0)
        assert bmc.controller.cap_w == 135.0

    def test_enforcement_loop_with_workload_model(self, plane):
        """Drive the node's closed loop under a DCM-set cap and check
        the power the DCM reads back respects the cap."""
        dcm, bmc, node = plane
        dcm.set_policy("edge-node", StaticCapPolicy(140.0))
        dcm.tick(time_s=0.0)

        runner = NodeRunner(slice_accesses=60_000)
        workload = StereoMatchingWorkload()
        rates = runner.rates_for(workload, bmc.controller.ladder.gating_state())
        costs = AccessCosts.from_config(node.config)
        stall = stall_ns_per_instruction(rates, costs)

        power = node.power_w()
        model = node.power_model
        for _ in range(600):
            cmd = bmc.controller.update(power)
            p_fast = model.power_of_pstate(
                cmd.pstate_fast,
                duty=cmd.duty,
                gating_saving_w=cmd.gating_saving_w,
                temperature_c=node.thermal.temperature_c,
            )
            p_slow = model.power_of_pstate(
                cmd.pstate_slow,
                duty=cmd.duty,
                gating_saving_w=cmd.gating_saving_w,
                temperature_c=node.thermal.temperature_c,
            )
            power = cmd.alpha * p_fast + (1 - cmd.alpha) * p_slow
            node.thermal.step(power, 0.05)
            bmc.record_power(power, 0.05)

        dcm.tick(time_s=30.0)
        reading = dcm.read_power("edge-node")
        assert reading.average_w <= 141
        assert reading.maximum_w <= 156  # includes the pre-cap samples

    def test_policy_change_deescalates(self, plane):
        dcm, bmc, node = plane
        dcm.set_policy("edge-node", StaticCapPolicy(120.0))
        dcm.tick(0.0)
        power = node.power_w()
        for _ in range(800):
            cmd = bmc.controller.update(power)
            power = node.power_model.power_of_pstate(
                cmd.pstate_slow,
                duty=cmd.duty,
                gating_saving_w=cmd.gating_saving_w,
                temperature_c=node.thermal.temperature_c,
            )
            node.thermal.step(power, 0.05)
        assert bmc.controller.ladder.level > 0
        # Lift the cap entirely via policy.
        from repro.dcm.policy import NoCapPolicy

        dcm.set_policy("edge-node", NoCapPolicy())
        dcm.tick(60.0)
        assert bmc.controller.cap_w is None
        cmd = bmc.controller.update(power)
        assert cmd.escalation_level == 0
        assert cmd.duty == 1.0

    def test_runner_matches_direct_controller_shape(self, plane, config):
        """The runner's result and a hand-driven loop agree on the
        steady-state power at a given cap."""
        runner = NodeRunner(slice_accesses=60_000)
        workload = StereoMatchingWorkload()
        workload._spec = dataclasses.replace(
            workload.spec,
            total_instructions=workload.spec.total_instructions * 0.01,
        )
        result = runner.run(workload, 140.0)
        assert result.avg_power_w == pytest.approx(137.0, abs=2.0)
