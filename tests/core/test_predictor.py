"""The cap-impact predictor, validated against the simulator."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.predictor import CapImpactPredictor, CapRegime
from repro.core.runner import NodeRunner
from repro.errors import SimulationError
from repro.mem.reconfig import GatingState
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload


def scaled(workload, factor=0.01):
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * factor,
    )
    return workload


@pytest.fixture(scope="module")
def runner():
    return NodeRunner(slice_accesses=150_000)


@pytest.fixture(scope="module")
def predictor(runner):
    return CapImpactPredictor(runner.config)


@pytest.fixture(scope="module")
def stereo_rates(runner):
    return runner.rates_for(StereoMatchingWorkload(), GatingState.ungated())


@pytest.fixture(scope="module")
def sire_rates(runner):
    return runner.rates_for(SireRsmWorkload(), GatingState.ungated())


class TestRegimes:
    def test_unconstrained(self, predictor, stereo_rates):
        impact = predictor.predict(stereo_rates, 170.0)
        assert impact.regime is CapRegime.UNCONSTRAINED
        assert impact.predicted_slowdown == 1.0

    def test_dvfs(self, predictor, stereo_rates):
        impact = predictor.predict(stereo_rates, 140.0)
        assert impact.regime is CapRegime.DVFS
        assert not impact.is_lower_bound
        assert 1.1 < impact.predicted_slowdown < 1.6

    def test_beyond_dvfs(self, predictor, stereo_rates):
        impact = predictor.predict(stereo_rates, 123.0)
        assert impact.regime in (CapRegime.BEYOND_DVFS, CapRegime.INFEASIBLE)
        assert impact.is_lower_bound
        assert impact.predicted_freq_mhz == pytest.approx(1200.0)

    def test_infeasible(self, predictor, stereo_rates):
        impact = predictor.predict(stereo_rates, 118.0)
        assert impact.regime is CapRegime.INFEASIBLE
        assert impact.predicted_slowdown > 10.0

    def test_invalid_cap(self, predictor, stereo_rates):
        with pytest.raises(SimulationError):
            predictor.predict(stereo_rates, 0.0)


class TestAgainstSimulation:
    """The methodology's validation: predict, then actually run."""

    @pytest.mark.parametrize("cap", [150.0, 145.0, 140.0, 135.0])
    def test_dvfs_region_accuracy(self, predictor, runner, stereo_rates, cap):
        predicted = predictor.predict(stereo_rates, cap).predicted_slowdown
        base = runner.run(scaled(StereoMatchingWorkload()))
        capped = runner.run(scaled(StereoMatchingWorkload()), cap)
        simulated = capped.execution_s / base.execution_s
        assert predicted == pytest.approx(simulated, rel=0.12)

    def test_lower_bound_holds_at_120(self, predictor, runner, stereo_rates):
        predicted = predictor.predict(stereo_rates, 120.0)
        # A longer run so the controller's ramp-down transient is a
        # negligible share and the steady state dominates.
        base = runner.run(scaled(StereoMatchingWorkload(), 0.05))
        capped = runner.run(scaled(StereoMatchingWorkload(), 0.05), 120.0)
        simulated = capped.execution_s / base.execution_s
        assert predicted.is_lower_bound
        assert simulated >= 0.9 * predicted.predicted_slowdown

    def test_baseline_power_estimate(self, predictor, stereo_rates, sire_rates):
        stereo_w = predictor.baseline_power_w(stereo_rates)
        sire_w = predictor.baseline_power_w(sire_rates)
        assert 150.0 < stereo_w < 158.0
        assert sire_w > stereo_w  # the Table I ordering


class TestAmenabilityPrediction:
    def test_memory_bound_tolerates_lower_caps(
        self, predictor, stereo_rates, sire_rates
    ):
        """The paper's core characterisation claim, predicted from
        counters alone: the streaming workload's compute component is a
        smaller share of its CPI, so frequency scaling hurts it less."""
        st = predictor.predict(stereo_rates, 140.0).predicted_slowdown
        si = predictor.predict(sire_rates, 140.0).predicted_slowdown
        assert si < st

    def test_knee_matches_paper_region(self, predictor, stereo_rates, sire_rates):
        st_knee = predictor.knee_cap_w(stereo_rates, 1.25)
        si_knee = predictor.knee_cap_w(sire_rates, 1.25)
        # Paper: 145 W (Stereo), 140 W (SIRE).
        assert st_knee in (150.0, 145.0)
        assert si_knee in (145.0, 140.0)
        assert si_knee <= st_knee

    def test_tolerable_tri_state(self, predictor, stereo_rates):
        assert predictor.predict(stereo_rates, 150.0).tolerable(1.25) is True
        assert predictor.predict(stereo_rates, 120.0).tolerable(1.25) is False
        # A beyond-DVFS cap whose lower bound is within tolerance is
        # undecidable from baseline data.
        impact = predictor.predict(stereo_rates, 124.5)
        if impact.is_lower_bound and impact.predicted_slowdown <= 3.0:
            assert impact.tolerable(3.0) is None

    def test_knee_tolerance_validation(self, predictor, stereo_rates):
        with pytest.raises(SimulationError):
            predictor.knee_cap_w(stereo_rates, 1.0)
