"""Report rendering and the amenability characterisation."""

from __future__ import annotations

import pytest

from repro.core.amenability import characterize_amenability
from repro.core.experiment import ExperimentResult
from repro.core.metrics import AveragedResult
from repro.core.report import (
    figure1_series,
    figure2_series,
    render_stride_figure,
    render_table1,
    render_table2,
)
from repro.errors import SimulationError
from repro.perf.events import PapiEvent


def make_avg(workload="StereoMatching", cap=None, time_s=91.0, power=153.1,
             freq=2701.0, itlb=6.2e4, l2=6.9e7, l3=1.5e7):
    counters = {e: 1.0 for e in PapiEvent}
    counters[PapiEvent.PAPI_L1_TCM] = 1.66e9
    counters[PapiEvent.PAPI_L2_TCM] = l2
    counters[PapiEvent.PAPI_L3_TCM] = l3
    counters[PapiEvent.PAPI_TLB_DM] = 1.34e8
    counters[PapiEvent.PAPI_TLB_IM] = itlb
    return AveragedResult(
        workload=workload,
        cap_w=cap,
        n_runs=5,
        execution_s=time_s,
        avg_power_w=power,
        energy_j=power * time_s,
        avg_freq_mhz=freq,
        counters=counters,
        committed_instructions=2.6e11,
        executed_instructions=2.6e11,
        max_escalation_level=0,
        min_duty=1.0,
    )


@pytest.fixture
def sweep():
    """A hand-built sweep shaped like the paper's Stereo column."""
    result = ExperimentResult(workload="StereoMatching", baseline=make_avg())
    slowdowns = {
        160.0: 1.03, 155.0: 1.0, 150.0: 1.09, 145.0: 1.21, 140.0: 1.40,
        135.0: 2.07, 130.0: 5.44, 125.0: 12.04, 120.0: 35.67,
    }
    for cap, x in slowdowns.items():
        result.by_cap[cap] = make_avg(
            cap=cap,
            time_s=91.0 * x,
            power=min(cap - 2, 153.0),
            freq=max(1200.0, 2701.0 / min(x, 2.25)),
        )
    return result


class TestTables:
    def test_table1_contains_baselines(self, sweep):
        text = render_table1([sweep])
        assert "StereoMatching" in text
        assert "0:01:31" in text
        assert "153.1" in text

    def test_table2_has_all_rows(self, sweep):
        text = render_table2(sweep)
        assert "baseline" in text
        for cap in (160, 155, 150, 145, 140, 135, 130, 125, 120):
            assert f"\n      {cap} " in text or f" {cap} " in text
        # Percent-diff columns present (time diff at 120 is ~3467%).
        assert "3467" in text or "3,467" in text.replace(",", "")

    def test_table2_counters_section(self, sweep):
        text = render_table2(sweep)
        assert "L1 Misses" in text
        assert "TLB Instr" in text


class TestFigures:
    def test_figure2_series_shapes(self, sweep):
        series = figure2_series(sweep)
        n = 10  # baseline + 9 caps
        for key in ("frequency", "time", "power", "energy",
                    "PAPI_L2_TCM", "PAPI_L3_TCM", "PAPI_TLB_IM"):
            assert len(series[key]) == n
            assert series[key].max() <= 1.0 + 1e-12

    def test_figure_time_and_energy_peak_at_lowest_cap(self, sweep):
        series = figure2_series(sweep)
        assert series["time"][-1] == pytest.approx(1.0)
        assert series["energy"][-1] == pytest.approx(1.0)

    def test_figure_frequency_peaks_at_baseline(self, sweep):
        series = figure1_series(sweep)
        assert series["frequency"][0] == pytest.approx(1.0)
        assert series["frequency"][-1] < 0.5

    def test_stride_render(self):
        import numpy as np

        from repro.workloads.stride import StrideResult

        r = StrideResult(
            sizes=(4096, 65536),
            strides=(8, 64),
            access_time_ns=np.array([[1.5, 1.5], [np.nan, 3.5]]),
        )
        text = render_stride_figure(r, "Figure 3")
        assert "Figure 3" in text
        assert "4K" in text and "64K" in text
        assert "-" in text  # the NaN cell


class TestAmenability:
    def test_knee_matches_paper_narrative(self, sweep):
        # "the increase for Stereo Matching is bounded by 25% down to a
        # power cap of 145 Watts."
        report = characterize_amenability(sweep, tolerance_slowdown=1.25)
        assert report.knee_cap_w == 145.0
        assert set(report.usable_caps_w) == {160.0, 155.0, 150.0, 145.0}
        assert report.amenability_score == pytest.approx(4 / 9)

    def test_headroom(self, sweep):
        report = characterize_amenability(sweep, tolerance_slowdown=1.25)
        assert report.headroom_w == pytest.approx(153.1 - 145.0)

    def test_looser_tolerance_extends_range(self, sweep):
        tight = characterize_amenability(sweep, tolerance_slowdown=1.25)
        loose = characterize_amenability(sweep, tolerance_slowdown=1.5)
        assert len(loose.usable_caps_w) > len(tight.usable_caps_w)

    def test_no_usable_caps(self, sweep):
        report = characterize_amenability(sweep, tolerance_slowdown=1.01)
        assert report.knee_cap_w is None
        assert report.amenability_score == 0.0
        assert report.headroom_w == 0.0

    def test_stops_at_first_violation(self, sweep):
        # Even if a lower cap dipped back under tolerance, the range
        # must stop at the first violation.
        sweep.by_cap[130.0] = make_avg(cap=130.0, time_s=91.0)  # fake dip
        report = characterize_amenability(sweep, tolerance_slowdown=1.45)
        assert 130.0 not in report.usable_caps_w

    def test_tolerance_validation(self, sweep):
        with pytest.raises(SimulationError):
            characterize_amenability(sweep, tolerance_slowdown=1.0)

    def test_tolerates(self, sweep):
        report = characterize_amenability(sweep, tolerance_slowdown=1.25)
        assert report.tolerates(150.0)
        assert not report.tolerates(120.0)
