"""JSON serialisation of experiment results."""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.metrics import AveragedResult
from repro.core.serialize import (
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
    save_experiment,
)
from repro.errors import SimulationError
from repro.perf.events import PapiEvent


def make_result() -> ExperimentResult:
    def row(cap, time_s):
        counters = {e: float(i) for i, e in enumerate(PapiEvent, start=1)}
        return AveragedResult(
            workload="StereoMatching",
            cap_w=cap,
            n_runs=5,
            execution_s=time_s,
            avg_power_w=153.1,
            energy_j=153.1 * time_s,
            avg_freq_mhz=2701.0,
            counters=counters,
            committed_instructions=2.6e11,
            executed_instructions=2.6e11,
            max_escalation_level=0,
            min_duty=1.0,
            execution_s_std=0.4,
        )

    result = ExperimentResult(workload="StereoMatching", baseline=row(None, 91.0))
    result.by_cap[140.0] = row(140.0, 124.0)
    result.by_cap[120.0] = row(120.0, 3168.0)
    return result


class TestRoundTrip:
    def test_dict_roundtrip(self):
        original = make_result()
        restored = experiment_from_dict(experiment_to_dict(original))
        assert restored.workload == original.workload
        assert restored.baseline == original.baseline
        assert restored.by_cap == original.by_cap

    def test_file_roundtrip(self, tmp_path):
        original = make_result()
        path = tmp_path / "sweep.json"
        save_experiment(original, path)
        restored = load_experiment(path)
        assert restored.by_cap[120.0].execution_s == 3168.0
        assert restored.slowdown(120.0) == pytest.approx(3168.0 / 91.0)

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_experiment(make_result(), path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert "PAPI_L2_TCM" in data["baseline"]["counters"]


class TestErrors:
    def test_version_mismatch(self):
        data = experiment_to_dict(make_result())
        data["format_version"] = 99
        with pytest.raises(SimulationError, match="version"):
            experiment_from_dict(data)

    def test_malformed_row(self):
        data = experiment_to_dict(make_result())
        del data["baseline"]["avg_power_w"]
        with pytest.raises(SimulationError, match="malformed"):
            experiment_from_dict(data)

    def test_unknown_counter_rejected(self):
        data = experiment_to_dict(make_result())
        data["baseline"]["counters"]["PAPI_FAKE"] = 1.0
        with pytest.raises(SimulationError):
            experiment_from_dict(data)

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json at all{")
        with pytest.raises(SimulationError, match="not a result file"):
            load_experiment(path)
