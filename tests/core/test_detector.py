"""The technique detector (the paper's future-work methodology)."""

from __future__ import annotations

import pytest

from repro.core.detector import TechniqueDetector, _edge_before
from repro.mem.reconfig import GatingState
from repro.workloads.microbench import MachineUnderTest

# Compact probe grids so each detection runs in a couple of seconds.
L2_FOOTPRINTS = (48 * 1024, 96 * 1024, 224 * 1024, 384 * 1024)
L3_FOOTPRINTS = tuple(m * 1024 * 1024 for m in (3, 6, 10, 16))
ITLB_PAGES = (8, 16, 32, 96, 128, 192)


def detect(machine: MachineUnderTest):
    return TechniqueDetector(machine).detect(
        l2_footprints=L2_FOOTPRINTS,
        l3_footprints=L3_FOOTPRINTS,
        itlb_page_counts=ITLB_PAGES,
    )


class TestEdgeFinder:
    def test_finds_first_jump(self):
        curve = {1: 1.0, 2: 1.1, 4: 5.0, 8: 5.2}
        assert _edge_before(curve, jump=1.6) == 2

    def test_no_jump_returns_last(self):
        curve = {1: 1.0, 2: 1.1, 4: 1.2}
        assert _edge_before(curve, jump=1.6) == 4


class TestScenarios:
    def test_uncapped_nothing_active(self):
        report = detect(MachineUnderTest())
        assert not report.dvfs_active
        assert not report.clock_modulation_active
        assert not report.l2_way_gating_active
        assert not report.itlb_gating_active
        assert not report.dram_gating_active

    def test_dvfs_only(self):
        report = detect(MachineUnderTest(freq_hz=1.7e9))
        assert report.dvfs_active
        assert report.effective_freq_hz == pytest.approx(1.7e9)
        assert not report.clock_modulation_active
        assert not report.l2_way_gating_active

    def test_clock_modulation_only(self):
        report = detect(MachineUnderTest(duty=0.25))
        assert report.clock_modulation_active
        assert report.duty == pytest.approx(0.25)
        assert not report.dvfs_active

    def test_way_gating_only(self):
        gating = GatingState(l2_way_fraction=0.25, l3_way_fraction=0.25)
        report = detect(MachineUnderTest(gating=gating))
        assert report.l2_way_gating_active
        assert report.l3_way_gating_active
        assert not report.dvfs_active
        assert not report.dram_gating_active

    def test_itlb_gating_only(self):
        gating = GatingState(itlb_fraction=0.0625)
        report = detect(MachineUnderTest(gating=gating))
        assert report.itlb_gating_active
        assert report.effective_itlb_pages <= 16
        assert not report.l2_way_gating_active

    def test_dram_gating_only(self):
        gating = GatingState(dram_latency_multiplier=4.0)
        report = detect(MachineUnderTest(gating=gating))
        assert report.dram_gating_active
        assert not report.l2_way_gating_active

    def test_the_120w_operating_point(self):
        """The full stack the BMC applies at the 120 W cap: every
        mechanism lights up — the answer to the paper's open question."""
        gating = GatingState(
            l3_way_fraction=0.25,
            l2_way_fraction=0.25,
            itlb_fraction=0.0625,
            dram_latency_multiplier=3.0,
            cache_latency_multiplier=1.5,
        )
        report = detect(
            MachineUnderTest(gating=gating, freq_hz=1.2e9, duty=0.15)
        )
        assert report.dvfs_active
        assert report.clock_modulation_active
        assert report.l2_way_gating_active
        assert report.l3_way_gating_active
        assert report.itlb_gating_active
        assert report.dram_gating_active
        assert report.duty == pytest.approx(0.15, abs=0.02)
        assert report.effective_freq_hz == pytest.approx(1.2e9, rel=0.01)

    def test_summary_text(self):
        report = detect(MachineUnderTest(freq_hz=1.2e9))
        text = report.summary()
        assert "DVFS" in text and "ACTIVE" in text
        assert "1200 MHz" in text
