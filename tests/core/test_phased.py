"""Phased runner: budgets under bursty demand (Section IV-C)."""

from __future__ import annotations

import pytest

from repro.core.phased import PhasedRunner
from repro.errors import SimulationError
from repro.workloads.bursty import BurstyWorkload, PhaseSpec
from repro.workloads.stereo import StereoMatchingWorkload


@pytest.fixture(scope="module")
def bursty():
    return BurstyWorkload(
        [
            PhaseSpec("idle", None, mean_duration_s=4.0),
            PhaseSpec("burst", StereoMatchingWorkload(), mean_duration_s=2.0),
        ]
    )


@pytest.fixture(scope="module")
def runner():
    return PhasedRunner(slice_accesses=80_000)


@pytest.fixture(scope="module")
def comparison(runner, bursty):
    return runner.compare(bursty, horizon_s=60.0, budget_w=135.0)


class TestBudgetComparison:
    def test_uncapped_spikes_over_budget(self, comparison):
        u = comparison.uncapped
        assert u.peak_power_w > 145.0
        assert u.over_budget_s > 1.0
        assert not u.budget_held

    def test_capped_holds_the_budget(self, comparison):
        c = comparison.capped
        assert c.peak_power_w <= 135.0 + 1.0
        assert c.budget_held

    def test_capping_costs_bounded_throughput(self, comparison):
        # The cap is above the DVFS knee: the cost is the frequency
        # ratio during bursts, not a collapse.
        assert 0.45 < comparison.throughput_retained < 1.0

    def test_violation_reduction_positive(self, comparison):
        assert comparison.violation_reduction_s > 1.0

    def test_same_demand_process(self, comparison):
        assert comparison.capped.busy_fraction == pytest.approx(
            comparison.uncapped.busy_fraction
        )


class TestPhasedRunner:
    def test_idle_heavy_schedule_draws_near_floor(self, runner):
        mostly_idle = BurstyWorkload(
            [
                PhaseSpec("idle", None, mean_duration_s=20.0, weight=8.0),
                PhaseSpec(
                    "burst", StereoMatchingWorkload(), mean_duration_s=0.5,
                    weight=1.0,
                ),
            ]
        )
        result = runner.run(mostly_idle, horizon_s=40.0, budget_w=160.0)
        assert result.avg_power_w < 115.0
        assert result.budget_held

    def test_generous_cap_changes_nothing(self, runner, bursty):
        schedule = bursty.schedule(
            30.0, __import__("numpy").random.default_rng(5)
        )
        free = runner.run(
            bursty, 30.0, budget_w=200.0, schedule=schedule
        )
        capped = runner.run(
            bursty, 30.0, budget_w=200.0, cap_w=200.0, schedule=schedule
        )
        assert capped.instructions == pytest.approx(free.instructions, rel=0.01)

    def test_horizon_respected(self, runner, bursty):
        result = runner.run(bursty, horizon_s=12.0, budget_w=140.0)
        assert result.horizon_s == pytest.approx(12.0, abs=0.1)

    def test_budget_validation(self, runner, bursty):
        with pytest.raises(SimulationError):
            runner.run(bursty, horizon_s=10.0, budget_w=0.0)

    def test_energy_consistent(self, runner, bursty):
        result = runner.run(bursty, horizon_s=20.0, budget_w=140.0)
        assert result.energy_j == pytest.approx(
            result.avg_power_w * result.horizon_s, rel=0.01
        )
