"""Parallel sweep executor, steady-state fast-forward, and rate cache."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.core.ratecache import RateCache, rate_key
from repro.core.runner import NodeRunner
from repro.mem.reconfig import GatingState
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload


def scaled(workload, factor):
    workload._spec = dataclasses.replace(
        workload.spec, total_instructions=workload.spec.total_instructions * factor
    )
    return workload


class TestParallelDeterminism:
    def test_parallel_equals_serial_run_for_run(self):
        def build():
            return PowerCapExperiment(
                [scaled(StereoMatchingWorkload(), 0.005),
                 scaled(SireRsmWorkload(), 0.005)],
                caps_w=[150.0, 135.0],
                repetitions=2,
                slice_accesses=50_000,
            )

        serial = build().run_all(jobs=1)
        parallel = build().run_all(jobs=2)
        assert set(serial) == set(parallel)
        for name in serial:
            # AveragedResult is a dataclass: equality is field-by-field
            # over every run statistic, so this asserts bit-identity.
            assert serial[name].baseline == parallel[name].baseline
            assert serial[name].by_cap == parallel[name].by_cap

    def test_run_workload_jobs_matches_serial(self):
        wl = scaled(StereoMatchingWorkload(), 0.005)
        a = PowerCapExperiment(
            [wl], caps_w=[145.0], repetitions=1, slice_accesses=50_000
        ).run_workload(wl, jobs=2)
        b = PowerCapExperiment(
            [wl], caps_w=[145.0], repetitions=1, slice_accesses=50_000
        ).run_workload(wl)
        assert a.baseline == b.baseline
        assert a.by_cap == b.by_cap


class TestFastForward:
    @pytest.fixture(scope="class")
    def runs(self):
        # Long enough (in simulated seconds) for the thermal state to
        # converge while the 120 W command is pinned at the floor, so
        # the fast-forward actually engages.
        kwargs = dict(slice_accesses=80_000, record_series=True)
        wl = scaled(StereoMatchingWorkload(), 0.06)
        ff = NodeRunner(**kwargs).run(wl, 120.0)
        stepped = NodeRunner(fast_forward=False, **kwargs).run(wl, 120.0)
        return ff, stepped

    def test_fast_forward_engages(self, runs):
        ff, stepped = runs
        # A single closed-form tail replaces the stretch of quanta after
        # thermal convergence (~tau * ln(dT/eps) into the run).
        assert len(stepped.series) - len(ff.series) > 50

    def test_execution_time_identical(self, runs):
        ff, stepped = runs
        assert ff.execution_s == pytest.approx(stepped.execution_s, rel=1e-12)

    def test_avg_freq_identical(self, runs):
        ff, stepped = runs
        assert ff.avg_freq_mhz == pytest.approx(stepped.avg_freq_mhz, rel=1e-12)

    def test_series_ends_at_same_time(self, runs):
        ff, stepped = runs
        assert ff.series[-1][0] == pytest.approx(stepped.series[-1][0], rel=1e-12)

    def test_integral_quantities_close(self, runs):
        ff, stepped = runs
        assert ff.energy_j == pytest.approx(stepped.energy_j, rel=1e-3)
        assert ff.avg_power_w == pytest.approx(stepped.avg_power_w, rel=1e-3)

    def test_integer_counters_identical(self, runs):
        ff, stepped = runs
        for key, value in stepped.counters.items():
            if float(value).is_integer():
                assert ff.counters[key] == value, key

    def test_short_runs_bit_identical_even_with_ff_enabled(self):
        # Runs too short to converge thermally never trigger the
        # fast-forward, so enabling it must change nothing at all.
        wl = scaled(StereoMatchingWorkload(), 0.01)
        a = NodeRunner(slice_accesses=50_000).run(wl, 140.0)
        b = NodeRunner(slice_accesses=50_000, fast_forward=False).run(wl, 140.0)
        assert a == b


class TestRateCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rates.json"
        wl = scaled(StereoMatchingWorkload(), 0.01)
        warm = NodeRunner(slice_accesses=50_000, rate_cache=path)
        gating = GatingState.ungated()
        rates = warm.rates_for(wl, gating)
        # Writes are batched: the miss marks the cache dirty, and the
        # file lands on flush (run boundary / save / close), not on
        # every put.
        assert not path.exists()
        warm.rate_cache.save()
        assert path.exists()

        cold = NodeRunner(slice_accesses=50_000, rate_cache=path)
        assert cold.rates_for(wl, gating) == rates
        # The hit was served from disk: no trace engine was built.
        assert not cold._engines

    def test_key_sensitivity(self, tmp_path):
        wl = scaled(StereoMatchingWorkload(), 0.01)
        cfg_args = dict(workload=wl, gating=GatingState.ungated())
        from repro.config import sandy_bridge_config
        cfg = sandy_bridge_config()
        base = rate_key(cfg, seed=1, slice_accesses=100, **cfg_args)
        assert rate_key(cfg, seed=2, slice_accesses=100, **cfg_args) != base
        assert rate_key(cfg, seed=1, slice_accesses=200, **cfg_args) != base
        assert rate_key(cfg, seed=1, slice_accesses=100, workload=wl,
                        gating=GatingState(l2_way_fraction=0.5)) != base

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        path = tmp_path / "rates.json"
        path.write_text("{not json")
        cache = RateCache(path)
        assert len(cache) == 0
        wl = scaled(StereoMatchingWorkload(), 0.01)
        runner = NodeRunner(slice_accesses=50_000, rate_cache=cache)
        runner.rates_for(wl, GatingState.ungated())  # must not raise

    def test_cached_sweep_matches_uncached(self, tmp_path):
        path = tmp_path / "rates.json"
        wl = scaled(StereoMatchingWorkload(), 0.005)
        plain = NodeRunner(slice_accesses=50_000).run(wl, 140.0)
        NodeRunner(slice_accesses=50_000, rate_cache=path).run(wl, 140.0)
        cached = NodeRunner(slice_accesses=50_000, rate_cache=path).run(wl, 140.0)
        assert cached == plain

    def test_hit_miss_counters(self, tmp_path):
        path = tmp_path / "rates.json"
        wl = scaled(StereoMatchingWorkload(), 0.01)
        warm = RateCache(path)
        NodeRunner(slice_accesses=50_000, rate_cache=warm).run(wl, 140.0)
        assert warm.misses > 0 and warm.hits == 0

        cold = RateCache(path)
        NodeRunner(slice_accesses=50_000, rate_cache=cold).run(wl, 140.0)
        assert cold.hits > 0 and cold.misses == 0


def fake_rates(i: float):
    from dataclasses import fields

    from repro.mem.hierarchy import AccessRates

    return AccessRates(
        **{f.name: float(i) for f in fields(AccessRates)}
    )


class TestRateCacheReadOnly:
    """mode="ro" snapshots: observe a shared cache, never write it."""

    def test_snapshot_serves_hits_but_rejects_writes(self, tmp_path):
        from repro.errors import SimulationError

        path = tmp_path / "rates.json"
        writer = RateCache(path)
        writer.put("key-a", fake_rates(1))
        writer.save()

        reader = RateCache(path, mode="ro")
        assert reader.readonly and reader.mode == "ro"
        assert reader.get("key-a") == fake_rates(1)
        assert reader.hits == 1
        with pytest.raises(SimulationError):
            reader.put("key-b", fake_rates(2))
        before = path.read_bytes()
        reader.save()  # no-op, never touches the file
        reader.close()
        assert path.read_bytes() == before

    def test_missing_file_snapshot_is_empty(self, tmp_path):
        reader = RateCache(tmp_path / "absent.json", mode="ro")
        assert len(reader) == 0
        assert reader.get("key-a") is None

    def test_invalid_mode_rejected(self, tmp_path):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            RateCache(tmp_path / "rates.json", mode="append")

    def test_batched_flush_survives_concurrent_snapshots(self, tmp_path):
        """Readers see complete flushes only, in flush order.

        put() is batched (dirty-marking, no I/O), so a concurrent
        reader must not observe an entry until the writer's save() —
        and each save is one atomic replace, so a reload between
        flushes yields either the old or the new complete view.
        """
        import json

        path = tmp_path / "rates.json"
        writer = RateCache(path)
        writer.put("key-a", fake_rates(1))
        writer.save()

        reader = RateCache(path, mode="ro")
        assert reader.get("key-a") is not None

        # A put that has not been flushed is invisible to snapshots,
        # even after a reload: flush batching is what the reader sees.
        writer.put("key-b", fake_rates(2))
        reader.reload()
        assert reader.get("key-b") is None

        # After the flush a reload adopts the complete new view, and
        # the on-disk bytes parse at every step (atomic replace).
        writer.save()
        assert set(json.loads(path.read_text())) == {"key-a", "key-b"}
        assert reader.reload() == 2
        assert reader.get("key-b") == fake_rates(2)
        assert reader.get("key-a") == fake_rates(1)

    def test_rw_reload_keeps_local_unsaved_puts(self, tmp_path):
        path = tmp_path / "rates.json"
        first = RateCache(path)
        first.put("key-a", fake_rates(1))
        first.save()

        second = RateCache(path)
        second.put("key-b", fake_rates(2))  # unsaved
        first.put("key-c", fake_rates(3))
        first.save()
        # reload merges the concurrent flush *under* local state.
        second.reload()
        assert second.get("key-a") is not None
        assert second.get("key-c") is not None
        assert second.get("key-b") == fake_rates(2)


class TestRateCacheLru:
    """The file is bounded: LRU eviction keeps it under max_entries."""

    def test_repeated_distinct_sweeps_stay_under_cap(self, tmp_path):
        import json

        path = tmp_path / "rates.json"
        cap = 5
        # Many sessions, each adding distinct entries (as distinct
        # (workload, gating, seed) sweeps would) and saving.
        for session in range(4):
            cache = RateCache(path, max_entries=cap)
            for i in range(4):
                cache.put(f"key-{session}-{i}", fake_rates(i))
            cache.save()
            assert len(cache) <= cap
        on_disk = json.loads(path.read_text())
        assert len(on_disk) <= cap

    def test_least_recently_used_evicted_first(self, tmp_path):
        path = tmp_path / "rates.json"
        cache = RateCache(path, max_entries=3)
        for i in range(3):
            cache.put(f"key-{i}", fake_rates(i))
        cache.save()
        # Touch key-0 so key-1 becomes the oldest, then overflow.
        assert cache.get("key-0") is not None
        cache.put("key-3", fake_rates(3))
        cache.save()
        reloaded = RateCache(path, max_entries=3)
        assert reloaded.get("key-1") is None
        assert reloaded.get("key-0") is not None
        assert reloaded.get("key-3") is not None

    def test_timestamps_persist_in_payload(self, tmp_path):
        import json

        path = tmp_path / "rates.json"
        cache = RateCache(path, max_entries=10)
        cache.put("k", fake_rates(1))
        cache.save()
        entry = json.loads(path.read_text())["k"]
        assert "rates" in entry and entry["ts"] > 0

    def test_legacy_flat_format_still_loads(self, tmp_path):
        import json
        from dataclasses import asdict

        path = tmp_path / "rates.json"
        path.write_text(json.dumps({"old": asdict(fake_rates(2))}))
        cache = RateCache(path)
        assert cache.get("old") == fake_rates(2)

    def test_bad_max_entries_rejected(self, tmp_path):
        import pytest as _pytest

        from repro.errors import SimulationError

        with _pytest.raises(SimulationError):
            RateCache(tmp_path / "rates.json", max_entries=0)

    def test_env_var_sets_default_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RATE_CACHE_MAX", "7")
        assert RateCache(tmp_path / "rates.json").max_entries == 7
