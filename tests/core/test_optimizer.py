"""The cap optimiser: screening, verification, objectives."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.optimizer import CapOptimizer
from repro.core.runner import NodeRunner
from repro.errors import SimulationError
from repro.workloads.stereo import StereoMatchingWorkload

CAPS = (160.0, 150.0, 140.0, 130.0, 120.0)


def scaled(workload, factor=0.01):
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * factor,
    )
    return workload


@pytest.fixture(scope="module")
def runner():
    return NodeRunner(slice_accesses=120_000)


@pytest.fixture(scope="module")
def optimizer(runner):
    return CapOptimizer(runner)


@pytest.fixture(scope="module")
def baseline_s(runner):
    return runner.run(scaled(StereoMatchingWorkload())).execution_s


class TestRecommendation:
    def test_headroom_objective_picks_lowest_feasible_cap(
        self, optimizer, baseline_s
    ):
        rec = optimizer.recommend(
            scaled(StereoMatchingWorkload()),
            deadline_s=baseline_s * 1.5,
            candidate_caps_w=CAPS,
            objective="headroom",
        )
        # With a 1.5x deadline, ~135-140 W is reachable but 120 is not.
        assert rec.cap_w is not None
        assert 130.0 <= rec.cap_w <= 145.0
        assert rec.meets_deadline

    def test_energy_objective_prefers_high_caps(self, optimizer, baseline_s):
        # Energy rises as caps fall (the paper's core finding), so the
        # minimum-energy choice is uncapped or the highest cap.
        rec = optimizer.recommend(
            scaled(StereoMatchingWorkload()),
            deadline_s=baseline_s * 1.5,
            candidate_caps_w=CAPS,
            objective="energy",
        )
        assert rec.cap_w is None or rec.cap_w >= 150.0

    def test_time_objective_behaves_like_energy_here(self, optimizer, baseline_s):
        rec = optimizer.recommend(
            scaled(StereoMatchingWorkload()),
            deadline_s=baseline_s * 2.0,
            candidate_caps_w=CAPS,
            objective="time",
        )
        assert rec.run.execution_s <= baseline_s * 1.01

    def test_screening_discards_infeasible_caps_without_running(
        self, optimizer, baseline_s
    ):
        rec = optimizer.recommend(
            scaled(StereoMatchingWorkload()),
            deadline_s=baseline_s * 1.3,
            candidate_caps_w=CAPS,
            objective="headroom",
        )
        # 120 W (x30 slowdown) must be screened out by prediction, not
        # burned as a simulated run.
        assert 120.0 in rec.screened_out_w
        assert 120.0 not in rec.verified_out_w

    def test_allocation_excludes_high_caps(self, optimizer, baseline_s):
        rec = optimizer.recommend(
            scaled(StereoMatchingWorkload()),
            deadline_s=baseline_s * 1.5,
            candidate_caps_w=CAPS,
            objective="headroom",
            allocation_w=145.0,
        )
        assert 160.0 in rec.screened_out_w
        assert 150.0 in rec.screened_out_w
        assert rec.cap_w <= 145.0

    def test_tight_deadline_keeps_it_uncapped_or_high(
        self, optimizer, baseline_s
    ):
        rec = optimizer.recommend(
            scaled(StereoMatchingWorkload()),
            deadline_s=baseline_s * 1.02,
            candidate_caps_w=CAPS,
            objective="headroom",
        )
        assert rec.cap_w is None or rec.cap_w >= 150.0


class TestValidation:
    def test_impossible_deadline_raises(self, optimizer, baseline_s):
        with pytest.raises(SimulationError, match="misses the deadline"):
            optimizer.recommend(
                scaled(StereoMatchingWorkload()),
                deadline_s=baseline_s * 0.5,
                candidate_caps_w=CAPS,
            )

    def test_bad_objective(self, optimizer, baseline_s):
        with pytest.raises(SimulationError, match="objective"):
            optimizer.recommend(
                scaled(StereoMatchingWorkload()),
                deadline_s=baseline_s * 2,
                candidate_caps_w=CAPS,
                objective="vibes",
            )

    def test_empty_candidates(self, optimizer, baseline_s):
        with pytest.raises(SimulationError, match="candidate"):
            optimizer.recommend(
                scaled(StereoMatchingWorkload()),
                deadline_s=baseline_s * 2,
                candidate_caps_w=(),
            )
