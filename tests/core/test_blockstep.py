"""Scalar-vs-block bit-identity for the block-step kernel.

The kernel's contract (`repro.core.blockstep`) is that block-stepped
runs are **bit-identical** to the scalar control loop — same
arithmetic, same float association order, same RNG consumption — not
merely close.  This suite runs the same (workload, cap, telemetry,
record_series) cell through both paths and asserts equality of every
``RunResult`` field (counters, meter-derived averages, SEL events,
series), of the serialized form byte for byte, and of the telemetry
timelines sample for sample.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core.runner import NodeRunner
from repro.obs.timeseries import timeline_to_dict
from repro.trace.events import TraceSlice
from repro.trace.synthetic import loop_ifetch_trace, streaming_trace
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload

#: The paper's regime corners: uncapped, a loose cap, the knee, the
#: first duty-throttled cap, and the tightest studied cap.
CAPS = [None, 160.0, 140.0, 130.0, 120.0]
#: Instruction-budget scale for the two paper workloads (shape is
#: scale-invariant; full budgets would make the matrix minutes long).
SCALE = 0.05
SLICE_ACCESSES = 60_000


class StridedWalkWorkload(Workload):
    """Fixed-stride array walk — the Figure 3/4 access pattern.

    Exercises a trace shape neither paper workload has (pure streaming
    misses, no random reuse), so the kernel's rate handling is checked
    on a third memory behaviour.
    """

    FOOTPRINT = 8 * 1024 * 1024

    def __init__(self) -> None:
        super().__init__(
            WorkloadSpec(
                name="StridedWalk",
                total_instructions=1.2e10,
                loads_stores_per_instruction=0.5,
                ifetch_per_instruction=0.2,
                description="fixed-stride walk over an L3-exceeding array",
            )
        )

    def build_slice(
        self, rng: np.random.Generator, n_data_accesses: int
    ) -> TraceSlice:
        data = streaming_trace(
            self.FOOTPRINT, n_data_accesses, element_bytes=256, base=0
        )
        instructions = self.slice_instructions(len(data))
        ifetch = loop_ifetch_trace(
            self.ifetches_for(instructions),
            rng,
            hot_pages=4,
            cold_pages=16,
            excursion_probability=1e-4,
        )
        return TraceSlice(
            data_addresses=data,
            ifetch_addresses=ifetch,
            instructions=instructions,
            warmup_fraction=0.25,
        )

    def run_reference(self, scale: float = 1.0, seed: int = 0):
        raise NotImplementedError("synthetic trace-only test workload")


def _make_workload(name: str) -> Workload:
    if name == "stride":
        return StridedWalkWorkload()
    cls = {"sire": SireRsmWorkload, "stereo": StereoMatchingWorkload}[name]
    workload = cls()
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * SCALE,
    )
    return workload


# One workload instance and one runner per configuration, shared across
# the cap parametrization: trace slices and miss rates are measured
# once, so the 60-cell matrix stays seconds, not minutes.
_workloads: dict = {}
_runners: dict = {}


def _workload(name: str) -> Workload:
    if name not in _workloads:
        _workloads[name] = _make_workload(name)
    return _workloads[name]


def _runner(name, telemetry, series, block_step) -> NodeRunner:
    key = (name, telemetry, series, block_step)
    if key not in _runners:
        _runners[key] = NodeRunner(
            slice_accesses=SLICE_ACCESSES,
            telemetry=telemetry,
            record_series=series,
            block_step=block_step,
        )
    return _runners[key]


def _serialized(result) -> str:
    """Canonical JSON of every RunResult field (timeline separately)."""
    doc = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "timeline"
    }
    doc["counters"] = {e.name: v for e, v in result.counters.items()}
    doc["series"] = list(doc["series"])
    doc["sel_events"] = list(doc["sel_events"])
    return json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize("name", ["stereo", "sire", "stride"])
@pytest.mark.parametrize(
    "cap", CAPS, ids=lambda c: "uncapped" if c is None else f"{c:.0f}W"
)
@pytest.mark.parametrize(
    "telemetry,series",
    [(True, True), (True, False), (False, True), (False, False)],
    ids=["tel+ser", "tel", "ser", "bare"],
)
def test_block_step_bit_identical(name, cap, telemetry, series):
    workload = _workload(name)
    scalar = _runner(name, telemetry, series, False).run(workload, cap)
    block = _runner(name, telemetry, series, True).run(workload, cap)

    # Field-for-field equality: counters, meter-derived power/energy,
    # SEL trail, min duty, and the optional power/freq/duty series.
    assert scalar == block
    # Byte-equal serialized form (floats round-trip via repr, so any
    # ULP difference would show).
    assert _serialized(scalar) == _serialized(block)
    # Timelines are excluded from dataclass equality — compare their
    # full dict form (every channel, every sample, decimation state).
    if telemetry:
        assert timeline_to_dict(scalar.timeline) == timeline_to_dict(
            block.timeline
        )
    else:
        assert scalar.timeline is None and block.timeline is None


def test_kernel_engages_on_capped_runs():
    """The speedup is real only if blocks actually retire quanta."""
    runner = NodeRunner(slice_accesses=SLICE_ACCESSES, block_step=True)
    _, quanta, _, block_steps, block_quanta = runner._run(
        _workload("stereo"), 120.0, 0
    )
    assert block_steps > 0
    # The duty-throttle walk at 120 W is handled in-block, so nearly
    # every quantum retires through the kernel.
    assert block_quanta >= quanta * 0.9


def test_duty_steps_replayed_in_block():
    """In-block duty throttling must reproduce the scalar SEL trail."""
    workload = _workload("stereo")
    scalar = _runner("stereo", False, False, False).run(workload, 120.0)
    block = _runner("stereo", False, False, True).run(workload, 120.0)
    throttles = [e for e in scalar.sel_events if e[1] == "duty-throttled"]
    assert throttles, "120 W must walk the duty ladder"
    assert scalar.sel_events == block.sel_events
    assert scalar.min_duty == block.min_duty < 1.0


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_STEP", "0")
    assert NodeRunner().block_step is False
    monkeypatch.setenv("REPRO_BLOCK_STEP", "1")
    assert NodeRunner().block_step is True
    monkeypatch.delenv("REPRO_BLOCK_STEP")
    assert NodeRunner().block_step is True
    # An explicit argument beats the environment.
    monkeypatch.setenv("REPRO_BLOCK_STEP", "0")
    assert NodeRunner(block_step=True).block_step is True


def test_cli_escape_hatch():
    args = build_parser().parse_args(["--no-block-step", "sweep"])
    assert args.no_block_step is True
    args = build_parser().parse_args(["sweep"])
    assert args.no_block_step is False


def test_scalar_path_unchanged_by_flag():
    """--no-block-step restores the old loop: zero kernel activity."""
    runner = NodeRunner(slice_accesses=SLICE_ACCESSES, block_step=False)
    _, _, _, block_steps, block_quanta = runner._run(
        _workload("stereo"), 130.0, 0
    )
    assert block_steps == 0 and block_quanta == 0


# ----------------------------------------------------------------------
# The batch engine (repro.core.batchstep): marching stable segments of
# many runs as one numpy batch must preserve each run's bit-identity.
# ----------------------------------------------------------------------


def _sweep_tasks(names, caps, reps):
    return [
        (_workload(n), cap, rep)
        for n in names
        for cap in caps
        for rep in range(reps)
    ]


@pytest.mark.parametrize(
    "telemetry,series",
    [(True, True), (True, False), (False, True), (False, False)],
    ids=["tel+ser", "tel", "ser", "bare"],
)
def test_batched_sweep_bit_identical(telemetry, series):
    """Batch-of-N byte-equal to serial, timelines and SEL included.

    min_width=2 forces the march to stay engaged down to two lanes, so
    the drop/compress/replay machinery is exercised, not just the wide
    path.
    """
    from repro.core.batchstep import run_sweep

    tasks = _sweep_tasks(["stereo", "sire", "stride"], CAPS, 2)
    batched_runner = NodeRunner(
        slice_accesses=SLICE_ACCESSES,
        telemetry=telemetry,
        record_series=series,
        block_step=True,
    )
    serial_runner = NodeRunner(
        slice_accesses=SLICE_ACCESSES,
        telemetry=telemetry,
        record_series=series,
        block_step=True,
    )
    batched = run_sweep(batched_runner, tasks, batch=True, min_width=2)
    plain = [serial_runner.run(w, cap, rep=rep) for (w, cap, rep) in tasks]

    for got, want in zip(batched, plain):
        assert got == want
        assert _serialized(got) == _serialized(want)
        assert got.sel_events == want.sel_events
        if telemetry:
            assert timeline_to_dict(got.timeline) == timeline_to_dict(
                want.timeline
            )
        else:
            assert got.timeline is None and want.timeline is None


def test_batch_engine_engages():
    """The pinned caps must actually retire quanta through the march."""
    from repro.core.batchstep import run_sweep
    from repro.obs.metrics import engine_metrics

    metrics = engine_metrics()
    before = metrics.batch_quanta.value
    runner = NodeRunner(slice_accesses=SLICE_ACCESSES, block_step=True)
    tasks = _sweep_tasks(["stereo"], [160.0, 120.0], 3)
    results = run_sweep(runner, tasks, batch=True, min_width=2)
    assert len(results) == len(tasks)
    assert metrics.batch_quanta.value > before


def test_chunked_warm_worker_matches_serial():
    """_pool_init + _pool_run_chunk (the worker body) == serial runs.

    Runs the exact code a pool worker executes, in-process, so the
    equality holds on single-core hosts too; a true multi-process pool
    is exercised by TestParallelDeterminism when cores allow.
    """
    from repro.core import experiment as exp_mod

    tasks = _sweep_tasks(["stereo"], [None, 140.0, 120.0], 2)
    serial_runner = NodeRunner(slice_accesses=SLICE_ACCESSES, block_step=True)
    plain = [serial_runner.run(w, cap, rep=rep) for (w, cap, rep) in tasks]

    from repro.rng import DEFAULT_SEED

    saved = exp_mod._WORKER_RUNNER
    try:
        exp_mod._pool_init(None, DEFAULT_SEED, SLICE_ACCESSES, None, None, True)
        chunked = exp_mod._pool_run_chunk((tasks, True))
    finally:
        exp_mod._WORKER_RUNNER = saved

    assert len(chunked) == len(plain)
    for got, want in zip(chunked, plain):
        assert got == want
        assert _serialized(got) == _serialized(want)


def test_batch_env_escape_hatch(monkeypatch):
    from repro.core.batchstep import batch_enabled

    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert batch_enabled() is True
    for off in ("0", "false", "no", "off"):
        monkeypatch.setenv("REPRO_BATCH", off)
        assert batch_enabled() is False
    monkeypatch.setenv("REPRO_BATCH", "1")
    assert batch_enabled() is True
    # An explicit argument beats the environment.
    monkeypatch.setenv("REPRO_BATCH", "0")
    assert batch_enabled(True) is True
    monkeypatch.delenv("REPRO_BATCH")
    assert batch_enabled(False) is False


def test_batch_cli_escape_hatch():
    args = build_parser().parse_args(["--no-batch", "sweep"])
    assert args.no_batch is True
    args = build_parser().parse_args(["sweep"])
    assert args.no_batch is False
