"""Runner and experiment integration (scaled-down budgets for speed)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.experiment import PowerCapExperiment
from repro.core.runner import NodeRunner
from repro.errors import SimulationError
from repro.mem.reconfig import GatingState
from repro.perf.events import PapiEvent
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload


def scaled(workload, factor=0.02):
    """Clone a workload with a reduced instruction budget."""
    workload._spec = dataclasses.replace(
        workload.spec, total_instructions=workload.spec.total_instructions * factor
    )
    return workload


@pytest.fixture(scope="module")
def runner():
    return NodeRunner(slice_accesses=80_000)


@pytest.fixture(scope="module")
def stereo_baseline(runner):
    return runner.run(scaled(StereoMatchingWorkload()))


class TestRunnerBasics:
    def test_baseline_runs_at_p0(self, stereo_baseline):
        r = stereo_baseline
        assert r.cap_w is None
        assert r.avg_freq_mhz == pytest.approx(2701.0, abs=1.0)
        assert r.max_escalation_level == 0
        assert r.min_duty == 1.0

    def test_baseline_power_in_range(self, stereo_baseline):
        assert 150.0 < stereo_baseline.avg_power_w < 158.0

    def test_energy_consistent_with_power_and_time(self, stereo_baseline):
        r = stereo_baseline
        assert r.energy_j == pytest.approx(
            r.avg_power_w * r.execution_s, rel=0.02
        )

    def test_committed_instructions_exact(self, stereo_baseline):
        w = StereoMatchingWorkload()
        assert stereo_baseline.committed_instructions == pytest.approx(
            w.spec.total_instructions * 0.02
        )

    def test_speculation_wobble_bounded(self, stereo_baseline):
        r = stereo_baseline
        ratio = r.executed_instructions / r.committed_instructions
        assert 1.0 <= ratio <= 1.0036

    def test_counters_present_and_positive(self, stereo_baseline):
        c = stereo_baseline.counters
        for e in (
            PapiEvent.PAPI_L1_TCM,
            PapiEvent.PAPI_L2_TCM,
            PapiEvent.PAPI_L3_TCM,
            PapiEvent.PAPI_TLB_DM,
            PapiEvent.PAPI_TOT_CYC,
        ):
            assert c[e] > 0

    def test_determinism_per_rep(self, runner):
        a = runner.run(scaled(StereoMatchingWorkload()), 140.0, rep=3)
        b = runner.run(scaled(StereoMatchingWorkload()), 140.0, rep=3)
        assert a.execution_s == b.execution_s
        assert a.avg_power_w == b.avg_power_w

    def test_reps_differ_in_measurement_noise(self, runner):
        # Committed instructions are identical across runs (as in the
        # paper); meter noise and speculation wobble vary per rep.
        a = runner.run(scaled(StereoMatchingWorkload()), 140.0, rep=0)
        b = runner.run(scaled(StereoMatchingWorkload()), 140.0, rep=1)
        assert a.avg_power_w != b.avg_power_w
        assert a.executed_instructions != b.executed_instructions
        assert a.execution_s == pytest.approx(b.execution_s, rel=0.05)

    def test_rates_cache_shared_across_runs(self, runner):
        runner.run(scaled(StereoMatchingWorkload()), 125.0)
        key_count = len(runner._rates)
        runner.run(scaled(StereoMatchingWorkload()), 125.0, rep=1)
        assert len(runner._rates) == key_count  # no re-simulation

    def test_runaway_guard(self):
        tiny = NodeRunner(slice_accesses=80_000, max_sim_seconds=0.5)
        with pytest.raises(SimulationError, match="exceeded"):
            tiny.run(scaled(StereoMatchingWorkload()))

    def test_series_recording(self):
        r = NodeRunner(slice_accesses=80_000, record_series=True)
        res = r.run(scaled(StereoMatchingWorkload(), 0.005), 140.0)
        assert len(res.series) > 2
        t, p, f, d = res.series[-1]
        assert t == pytest.approx(res.execution_s, rel=0.01)
        assert 100.0 < p < 160.0


class TestCappedBehaviour:
    def test_moderate_cap_slows_moderately(self, runner, stereo_baseline):
        r = runner.run(scaled(StereoMatchingWorkload()), 140.0)
        slowdown = r.execution_s / stereo_baseline.execution_s
        assert 1.1 < slowdown < 1.6
        assert r.avg_power_w < 140.0

    def test_low_cap_forces_escalation(self, runner):
        r = runner.run(scaled(StereoMatchingWorkload()), 125.0)
        assert r.max_escalation_level >= 1
        assert r.avg_freq_mhz == pytest.approx(1200.0, abs=30.0)

    def test_cap_120_overruns_and_throttles(self, runner, stereo_baseline):
        r = runner.run(scaled(StereoMatchingWorkload()), 120.0)
        assert r.min_duty == pytest.approx(
            runner.config.bmc.ladder.duty_min
        )
        assert r.avg_power_w > 120.0  # cap not honoured
        assert r.execution_s > 15 * stereo_baseline.execution_s

    def test_cap_160_equivalent_to_baseline(self, runner, stereo_baseline):
        r = runner.run(scaled(StereoMatchingWorkload()), 160.0)
        assert r.execution_s == pytest.approx(
            stereo_baseline.execution_s, rel=0.02
        )

    def test_sel_trail_records_the_pathology(self, runner):
        r = runner.run(scaled(StereoMatchingWorkload()), 120.0)
        names = [name for _, name, _ in r.sel_events]
        assert "cap-set" in names
        assert "pstate-floor-reached" in names
        assert "escalated" in names
        assert "duty-pinned-at-minimum" in names

    def test_baseline_sel_has_no_cap_events(self, stereo_baseline):
        names = [name for _, name, _ in stereo_baseline.sel_events]
        assert "escalated" not in names
        assert "cap-set" not in names

    def test_counters_respond_to_gating(self, runner, stereo_baseline):
        r = runner.run(scaled(StereoMatchingWorkload()), 120.0)
        base_itlb = stereo_baseline.counters[PapiEvent.PAPI_TLB_IM]
        assert r.counters[PapiEvent.PAPI_TLB_IM] > 20 * base_itlb
        assert r.counters[PapiEvent.PAPI_L2_TCM] > 2 * stereo_baseline.counters[
            PapiEvent.PAPI_L2_TCM
        ]

    def test_sire_l2_l3_flat_under_gating(self, runner):
        base = runner.run(scaled(SireRsmWorkload(), 0.01))
        capped = runner.run(scaled(SireRsmWorkload(), 0.01), 125.0)
        for e in (PapiEvent.PAPI_L2_TCM, PapiEvent.PAPI_L3_TCM):
            assert capped.counters[e] == pytest.approx(
                base.counters[e], rel=0.10
            )


class TestRatesMeasurement:
    def test_rates_cached_by_config_key(self, runner):
        w = StereoMatchingWorkload()
        a = runner.rates_for(w, GatingState.ungated())
        b = runner.rates_for(w, GatingState(cache_latency_multiplier=2.0))
        assert a is b  # same miss-relevant key

    def test_gated_rates_differ(self, runner):
        w = StereoMatchingWorkload()
        a = runner.rates_for(w, GatingState.ungated())
        g = runner.rates_for(
            w, GatingState(l2_way_fraction=0.5, l3_way_fraction=0.5)
        )
        assert g.l2_misses > a.l2_misses


class TestExperiment:
    @pytest.fixture(scope="class")
    def experiment_result(self):
        exp = PowerCapExperiment(
            [scaled(StereoMatchingWorkload(), 0.01)],
            caps_w=(150.0, 130.0),
            repetitions=2,
            slice_accesses=80_000,
        )
        return exp.run_workload(scaled(StereoMatchingWorkload(), 0.01))

    def test_rows_ordering(self, experiment_result):
        rows = experiment_result.rows()
        assert rows[0].cap_label == "baseline"
        assert [r.cap_label for r in rows[1:]] == ["150", "130"]

    def test_averages_over_reps(self, experiment_result):
        assert experiment_result.baseline.n_runs == 2

    def test_slowdown_monotone(self, experiment_result):
        assert 1.0 <= experiment_result.slowdown(150.0) < experiment_result.slowdown(130.0)

    def test_row_lookup(self, experiment_result):
        assert experiment_result.row(None) is experiment_result.baseline
        assert experiment_result.row(130.0).cap_w == 130.0
        with pytest.raises(SimulationError):
            experiment_result.row(111.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            PowerCapExperiment([], caps_w=(130.0,))
        with pytest.raises(SimulationError):
            PowerCapExperiment(
                [StereoMatchingWorkload()], caps_w=(130.0,), repetitions=0
            )
