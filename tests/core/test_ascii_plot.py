"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.core.ascii_plot import line_chart, log_scatter_chart
from repro.errors import SimulationError


class TestLineChart:
    def test_basic_rendering(self):
        chart = line_chart(
            {"time": [0.1, 0.5, 1.0], "freq": [1.0, 0.5, 0.4]},
            labels=["a", "b", "c"],
            title="T",
        )
        assert chart.startswith("T\n")
        assert "o time" in chart and "+ freq" in chart
        for label in ("a", "b", "c"):
            assert label in chart

    def test_extremes_land_on_edge_rows(self):
        chart = line_chart({"s": [0.0, 1.0]}, labels=["lo", "hi"], height=8)
        rows = [l for l in chart.splitlines() if "|" in l]
        assert "o" in rows[0]      # the 1.0 point on the top row
        assert "o" in rows[-1]     # the 0.0 point on the bottom row

    def test_values_clamped(self):
        chart = line_chart({"s": [-0.5, 2.0]}, labels=["x", "y"])
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert sum(r.count("o") for r in plot_rows) == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            line_chart({}, labels=["a"])
        with pytest.raises(SimulationError):
            line_chart({"s": [1.0]}, labels=["a", "b"])
        with pytest.raises(SimulationError):
            line_chart({"s": [1.0]}, labels=["a"], height=2)

    def test_marker_rotation(self):
        series = {f"s{i}": [0.5] for i in range(10)}
        chart = line_chart(series, labels=["x"])
        # Ten series share eight markers without crashing.
        assert "s9" in chart


class TestLogScatter:
    def test_basic_rendering(self):
        chart = log_scatter_chart(
            {"4K": [(8, 1.5), (64, 1.5)], "64M": [(8, 7.0), (64, 46.0)]},
            title="Fig 3",
        )
        assert "Fig 3" in chart
        assert "o 4K" in chart and "+ 64M" in chart
        assert "log" in chart

    def test_higher_latency_plots_higher(self):
        chart = log_scatter_chart({"s": [(10, 1.0), (1000, 1000.0)]}, height=10)
        rows = [l for l in chart.splitlines() if "|" in l]
        first_marker_row = next(i for i, r in enumerate(rows) if "o" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "o" in r)
        assert first_marker_row < last_marker_row  # both points present

    def test_non_positive_points_skipped(self):
        chart = log_scatter_chart({"s": [(1, 1.0), (0, 5.0), (2, -1.0)]})
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert sum(r.count("o") for r in plot_rows) == 1

    def test_all_invalid_raises(self):
        with pytest.raises(SimulationError):
            log_scatter_chart({"s": [(0, 0)]})
