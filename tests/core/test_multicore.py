"""Multi-core power capping (the paper's future-work extension)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.multicore import MultiCoreRunner
from repro.errors import SimulationError
from repro.mem.reconfig import GatingState
from repro.workloads.stereo import StereoMatchingWorkload


def scaled(workload, factor=0.008):
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * factor,
    )
    return workload


@pytest.fixture(scope="module")
def runner():
    return MultiCoreRunner(slice_accesses=100_000)


@pytest.fixture(scope="module")
def uncapped(runner):
    return {
        n: runner.run(scaled(StereoMatchingWorkload()), n)
        for n in (1, 2, 4)
    }


class TestUncappedScaling:
    def test_throughput_scales_with_cores(self, uncapped):
        assert uncapped[2].throughput_ips > 1.8 * uncapped[1].throughput_ips
        assert uncapped[4].throughput_ips > 3.3 * uncapped[1].throughput_ips

    def test_l3_sharing_costs_some_per_core_throughput(self, uncapped):
        # The equal-partition approximation: per-core throughput drops
        # slightly as the shared L3 is divided.
        assert uncapped[4].per_core_ips <= uncapped[1].per_core_ips

    def test_power_grows_with_cores(self, uncapped):
        powers = [uncapped[n].avg_power_w for n in (1, 2, 4)]
        assert powers == sorted(powers)
        # Roughly +35 W per additional busy core at P0.
        assert 25 < powers[1] - powers[0] < 45


class TestCappedMultiCore:
    def test_same_cap_bites_harder_with_more_cores(self, runner):
        one = runner.run(scaled(StereoMatchingWorkload()), 1, 160.0)
        four = runner.run(scaled(StereoMatchingWorkload()), 4, 160.0)
        # One core fits under 160 W untouched; four cores must slow.
        assert one.avg_freq_mhz == pytest.approx(2701.0, abs=5)
        assert four.avg_freq_mhz < 1600.0
        assert four.execution_s > 1.5 * one.execution_s

    def test_infeasible_cap_collapses_throughput(self, runner):
        """Below the n-core floor the node escalates and duty-throttles;
        adding cores then *reduces* aggregate throughput — the headline
        multi-core capping hazard."""
        one = runner.run(scaled(StereoMatchingWorkload()), 1, 140.0)
        four = runner.run(scaled(StereoMatchingWorkload()), 4, 140.0)
        assert four.max_escalation_level > 0
        assert four.min_duty < 1.0
        assert four.throughput_ips < one.throughput_ips

    def test_cap_honoured_when_feasible(self, runner):
        res = runner.run(scaled(StereoMatchingWorkload()), 2, 170.0)
        assert res.avg_power_w < 170.5

    def test_determinism(self, runner):
        a = runner.run(scaled(StereoMatchingWorkload()), 2, 160.0, rep=1)
        b = runner.run(scaled(StereoMatchingWorkload()), 2, 160.0, rep=1)
        assert a.execution_s == b.execution_s


class TestSharedGating:
    def test_partition_composes_with_escalation(self, runner):
        base = GatingState(l3_way_fraction=0.5)
        shared = runner._shared_gating(base, 4)
        assert shared.l3_way_fraction == pytest.approx(0.125)

    def test_partition_floor_one_way(self, runner):
        base = GatingState(l3_way_fraction=0.25)
        shared = runner._shared_gating(base, 16)
        # Never below one way of the 20.
        assert shared.l3_way_fraction >= 1.0 / 20.0

    def test_single_core_unchanged(self, runner):
        base = GatingState(l2_way_fraction=0.5)
        assert runner._shared_gating(base, 1) is base


class TestValidation:
    def test_core_count_bounds(self, runner):
        with pytest.raises(SimulationError):
            runner.run(scaled(StereoMatchingWorkload()), 0)
        with pytest.raises(SimulationError):
            runner.run(scaled(StereoMatchingWorkload()), 17)

    def test_scaling_table(self, runner):
        table = runner.scaling_table(
            scaled(StereoMatchingWorkload()), core_counts=(1, 2)
        )
        assert set(table) == {1, 2}
        assert table[2].n_cores == 2
