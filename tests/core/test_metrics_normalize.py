"""Run metrics, averaging, percent diffs, and figure normalisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import AveragedResult, RunResult, percent_diff
from repro.core.normalize import normalize_series
from repro.errors import SimulationError
from repro.perf.events import PapiEvent


def make_run(time_s=91.0, power=153.1, cap=None, l2=69e6, **kw):
    counters = {e: 0.0 for e in PapiEvent}
    counters[PapiEvent.PAPI_L1_TCM] = 1.66e9
    counters[PapiEvent.PAPI_L2_TCM] = l2
    counters[PapiEvent.PAPI_L3_TCM] = 1.47e7
    counters[PapiEvent.PAPI_TLB_DM] = 1.34e8
    counters[PapiEvent.PAPI_TLB_IM] = 6.16e4
    defaults = dict(
        workload="StereoMatching",
        cap_w=cap,
        execution_s=time_s,
        avg_power_w=power,
        energy_j=power * time_s,
        avg_freq_mhz=2701.0,
        counters=counters,
        committed_instructions=2.6e11,
        executed_instructions=2.6e11 * 1.001,
        max_escalation_level=0,
        min_duty=1.0,
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestPercentDiff:
    def test_paper_examples(self):
        # A9: 3,467% time increase over the baseline's 89 s.
        assert percent_diff(3168.0, 89.0) == pytest.approx(3459.6, abs=15)
        # Frequency: 1,200 vs 2,701 -> -55%.
        assert percent_diff(1200.0, 2701.0) == pytest.approx(-55.6, abs=0.5)

    def test_zero_baseline_rejected(self):
        with pytest.raises(SimulationError):
            percent_diff(1.0, 0.0)


class TestRunResult:
    def test_cap_label(self):
        assert make_run().cap_label == "baseline"
        assert make_run(cap=120.0).cap_label == "120"

    def test_validation(self):
        with pytest.raises(SimulationError):
            make_run(time_s=0.0)
        with pytest.raises(SimulationError):
            make_run(power=-1.0)


class TestAveragedResult:
    def test_averaging(self):
        runs = [make_run(time_s=t) for t in (90.0, 92.0, 91.0)]
        avg = AveragedResult.from_runs(runs)
        assert avg.n_runs == 3
        assert avg.execution_s == pytest.approx(91.0)
        assert avg.execution_s_std > 0

    def test_mixed_caps_rejected(self):
        with pytest.raises(SimulationError):
            AveragedResult.from_runs([make_run(), make_run(cap=120.0)])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            AveragedResult.from_runs([])

    def test_diff_vs_baseline(self):
        base = AveragedResult.from_runs([make_run()])
        capped = AveragedResult.from_runs(
            [make_run(time_s=3168.0, power=124.9, cap=120.0, l2=237e6)]
        )
        d = capped.diff_vs(base)
        assert d["time"] == pytest.approx(3381.3, abs=5)
        assert d["power"] == pytest.approx(-18.4, abs=0.5)
        assert d[PapiEvent.PAPI_L2_TCM.value] == pytest.approx(243.5, abs=1)

    def test_diff_with_zero_baseline_counter(self):
        base_runs = [make_run()]
        base_runs[0].counters[PapiEvent.PAPI_TLB_IM] = 0.0
        base = AveragedResult.from_runs(base_runs)
        capped = AveragedResult.from_runs([make_run(cap=120.0)])
        assert capped.diff_vs(base)[PapiEvent.PAPI_TLB_IM.value] == 0.0


class TestNormalize:
    def test_max_becomes_one(self):
        out = normalize_series([1.0, 2.0, 4.0])
        assert list(out) == [0.25, 0.5, 1.0]

    def test_all_zero(self):
        assert list(normalize_series([0.0, 0.0])) == [0.0, 0.0]

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            normalize_series([])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_bounded_in_unit_interval(self, values):
        out = normalize_series(values)
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1e6),
            min_size=2,
            max_size=50,
        )
    )
    def test_order_preserved(self, values):
        out = normalize_series(values)
        order_in = np.argsort(values)
        order_out = np.argsort(out)
        assert np.array_equal(order_in, order_out)
