"""The ``trends`` and ``compare`` CLI commands."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.archive import ObsArchive


def sweep_doc(runs_per_s=100.0):
    return {
        "schema": 2,
        "benchmark": "table2-sweep",
        "machine": {"cpu_count": 4},
        "parameters": {},
        "sweep": {
            "jobs1": {"wall_s": 10.0, "runs_per_s": runs_per_s},
            "jobs4": {"wall_s": 4.0, "runs_per_s": 2.5 * runs_per_s},
            "parallel_speedup": 2.5,
        },
    }


@pytest.fixture()
def archive_path(tmp_path):
    """An archive holding an injected 25% runs/s regression."""
    path = tmp_path / "archive.sqlite3"
    archive = ObsArchive(path)
    for i, rate in enumerate([100.0] * 5 + [75.0] * 3):
        archive.ingest_bench(
            sweep_doc(runs_per_s=rate), ts=1000.0 + i, run_id=f"r{i}"
        )
    return str(path)


class TestParser:
    def test_trends_defaults(self):
        args = build_parser().parse_args(["trends"])
        assert args.archive == "repro-archive.sqlite3"
        assert args.window == 3 and not args.check
        assert args.format == "table"

    def test_compare_positional_runs(self):
        args = build_parser().parse_args(["compare", "r0", "r7"])
        assert args.a == "r0" and args.b == "r7"

    def test_serve_archive_flags(self):
        args = build_parser().parse_args(
            ["serve", "--archive", "a.sqlite3", "--archive-period", "2.5"]
        )
        assert args.archive == "a.sqlite3"
        assert args.archive_period == 2.5

    def test_fleet_archive_flag(self):
        args = build_parser().parse_args(
            ["fleet", "--archive", "a.sqlite3"]
        )
        assert args.archive == "a.sqlite3"


class TestTrendsCommand:
    def test_table_reports_regression(self, archive_path, capsys):
        code = main(["trends", "--archive", archive_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "runs_per_s" in out
        assert "regression" in out
        assert "↓25.0%" in out
        assert "3 regression(s)" in out  # jobs1, jobs4, and the headline

    def test_check_exits_nonzero_on_regression(self, archive_path, capsys):
        code = main(["trends", "--archive", archive_path, "--check"])
        captured = capsys.readouterr()
        assert code == 2
        assert "regression" in captured.out  # the report still prints
        assert "regressed beyond threshold" in captured.err

    def test_check_passes_on_healthy_history(self, tmp_path, capsys):
        path = tmp_path / "healthy.sqlite3"
        archive = ObsArchive(path)
        for i in range(6):
            archive.ingest_bench(
                sweep_doc(runs_per_s=100.0), ts=1000.0 + i, run_id=f"r{i}"
            )
        code = main(["trends", "--archive", str(path), "--check"])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_json_format(self, archive_path, capsys):
        code = main(
            ["trends", "--archive", archive_path, "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressions"] == [
            "jobs1.runs_per_s", "jobs4.runs_per_s", "runs_per_s"
        ]
        by_series = {t["series"]: t for t in doc["trends"]}
        assert by_series["runs_per_s"]["verdict"] == "regression"
        assert by_series["runs_per_s"]["shift"] == pytest.approx(-0.25)

    def test_series_filter(self, archive_path, capsys):
        code = main(
            ["trends", "--archive", archive_path, "--series", "jobs4.runs_per_s"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jobs4.runs_per_s" in out
        assert "parallel_speedup" not in out

    def test_ingest_creates_archive(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_sweep.json"
        bench.write_text(json.dumps(sweep_doc()))
        path = tmp_path / "fresh.sqlite3"
        code = main(
            ["trends", "--archive", str(path), "--ingest", str(bench)]
        )
        assert code == 0
        assert path.is_file()
        runs = ObsArchive(path).runs(kind="bench_sweep")
        assert len(runs) == 1

    def test_ingest_unreadable_file_fails(self, tmp_path, capsys):
        path = tmp_path / "fresh.sqlite3"
        code = main(
            ["trends", "--archive", str(path), "--ingest",
             str(tmp_path / "missing.json")]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_save_and_use_baseline(self, archive_path, capsys):
        code = main(
            ["trends", "--archive", archive_path, "--save-baseline",
             "golden"]
        )
        assert code == 0
        assert "baseline 'golden' saved" in capsys.readouterr().out
        code = main(
            ["trends", "--archive", archive_path, "--baseline", "golden"]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The baseline pins the regressed level, so history is stable
        # against it.
        assert "0 regression(s)" in out

    def test_missing_archive_is_a_clear_error(self, tmp_path, capsys):
        code = main(["trends", "--archive", str(tmp_path / "none.sqlite3")])
        assert code == 2
        assert "no archive at" in capsys.readouterr().err


class TestCompareCommand:
    def test_table_output(self, archive_path, capsys):
        code = main(["compare", "r0", "r7", "--archive", archive_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "compare r0 (bench_sweep) → r7 (bench_sweep)" in out
        assert "runs_per_s" in out
        assert "(-25.0%)" in out

    def test_json_output(self, archive_path, capsys):
        code = main(
            ["compare", "r0", "r7", "--archive", archive_path,
             "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["series"]["runs_per_s"]["delta"] == pytest.approx(-25.0)

    def test_unknown_run_is_an_error(self, archive_path, capsys):
        code = main(["compare", "r0", "ghost", "--archive", archive_path])
        assert code == 2
        assert "no archived run" in capsys.readouterr().err
