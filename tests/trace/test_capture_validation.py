"""Validate the synthetic trace models against the real algorithms.

The simulator consumes parametric traces (:mod:`repro.trace.synthetic`)
whose *shape* is supposed to match the real workloads' memory
behaviour.  These tests run the actual algorithm kernels at reduced
scale over :class:`~repro.trace.capture.TracedArray` wrappers, capture
the addresses they really touch, and check that the captured streams
have the same structural signatures the generators produce:

- stereo proposals: tight within-proposal locality, image-wide anchor
  spread (the `windowed_random_trace` model);
- SAR back-projection + RSM: long sequential sweeps over the returns
  matrix, repeated across iterations (the wrap-around
  `streaming_trace` model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.capture import TracedArray, TraceRecorder
from repro.trace.synthetic import streaming_trace, windowed_random_trace
from repro.workloads.wedding_cake import (
    render_stereo_pair,
    wedding_cake_disparity,
)


def locality_stats(addresses: np.ndarray, burst: int) -> dict:
    """Per-burst span and global spread of an address stream."""
    n_bursts = len(addresses) // burst
    trimmed = addresses[: n_bursts * burst].reshape(n_bursts, burst)
    spans = trimmed.max(axis=1) - trimmed.min(axis=1)
    anchors = trimmed.min(axis=1)
    return {
        "median_burst_span": float(np.median(spans)),
        "anchor_spread": float(anchors.max() - anchors.min()) if n_bursts else 0.0,
    }


class TestStereoCapture:
    """The annealer's proposal loop, executed for real over traced
    images."""

    @pytest.fixture(scope="class")
    def captured(self):
        rng = np.random.default_rng(3)
        h, w = 96, 128
        truth = wedding_cake_disparity(h, w)
        left_data, right_data = render_stereo_pair(truth, rng)
        rec = TraceRecorder()
        left = TracedArray(left_data.astype(np.float64), rec, "left")
        right = TracedArray(right_data.astype(np.float64), rec, "right")
        disparity = TracedArray(
            rng.integers(0, 12, size=(h, w)).astype(np.int32), rec, "disp"
        )
        k = 2  # 5x5 windows
        bursts = []
        for _ in range(300):
            y = int(rng.integers(k, h - k))
            x = int(rng.integers(k + 12, w - k))
            d = int(disparity[y, x])
            start = rec.count
            lw = left[y - k : y + k + 1, x - k : x + k + 1]
            rw = right[y - k : y + k + 1, x - k - d : x + k + 1 - d]
            _ = float(np.mean((lw - rw) ** 2))
            for dy, dx in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                _ = disparity[y + dy, x + dx]
            bursts.append((start, rec.count))
        return rec.addresses(), bursts, (left, right, disparity)

    def test_within_proposal_locality(self, captured):
        addresses, bursts, arrays = captured
        left = arrays[0]
        spans = [
            addresses[a:b].max() - addresses[a:b].min() for a, b in bursts
        ]
        # A proposal touches a handful of rows of each image plus four
        # neighbours — its span is far below the full arrays' extent.
        image_rows_bytes = 6 * 128 * 8
        assert np.median(spans) < 40 * image_rows_bytes

    def test_anchors_span_the_image(self, captured):
        addresses, bursts, arrays = captured
        left = arrays[0]
        anchors = np.array([addresses[a:b].min() for a, b in bursts])
        image_bytes = 96 * 128 * 8
        assert anchors.max() - anchors.min() > 0.5 * image_bytes

    def test_matches_windowed_model_shape(self, captured):
        """The synthetic generator shows the same two signatures."""
        addresses, bursts, _ = captured
        burst_len = int(np.median([b - a for a, b in bursts]))
        real = locality_stats(addresses, burst_len)
        rng = np.random.default_rng(0)
        synthetic = windowed_random_trace(
            96 * 128 * 8 * 3,  # three arrays' worth of footprint
            len(addresses),
            rng,
            window_bytes=5 * 8,
            burst=burst_len,
            row_bytes=128 * 8,
            window_rows=5,
            element_bytes=8,
        )
        model = locality_stats(synthetic, burst_len)
        # Same orders of magnitude: bursts are row-window local...
        assert 0.1 < real["median_burst_span"] / max(1, model["median_burst_span"]) < 50
        # ...and anchors cover most of the footprint in both.
        assert real["anchor_spread"] > 0.4 * model["anchor_spread"] * (
            (96 * 128 * 8) / (96 * 128 * 8 * 3)
        )


class TestSarCapture:
    """Back-projection's per-aperture row reads, captured for real."""

    @pytest.fixture(scope="class")
    def captured(self):
        rng = np.random.default_rng(1)
        rec = TraceRecorder()
        n_ap, n_samp = 12, 512
        returns = TracedArray(
            rng.normal(size=(n_ap, n_samp)).astype(np.float64), rec, "returns"
        )
        # Two RSM-style iterations, each sweeping every aperture row.
        for _iteration in range(2):
            for a in range(n_ap):
                row = returns[a]
                _ = row.sum()
        return rec.addresses(), returns

    def test_sequential_within_pass(self, captured):
        addresses, returns = captured
        one_pass = addresses[: returns.data.size]
        diffs = np.diff(one_pass)
        # Row-major sweep: overwhelmingly unit-stride (8-byte) steps.
        assert np.mean(diffs == 8) > 0.95

    def test_iterations_rewalk_the_array(self, captured):
        """The 'iteratively loops through the array' behaviour: the
        second pass revisits the same addresses — the wrap-around the
        streaming generator models."""
        addresses, returns = captured
        n = returns.data.size
        assert np.array_equal(addresses[:n], addresses[n : 2 * n])

    def test_matches_streaming_model_shape(self, captured):
        addresses, returns = captured
        n = returns.data.size
        model = streaming_trace(
            returns.data.nbytes, 2 * n, element_bytes=8, base=int(addresses[0])
        )
        assert np.array_equal(addresses[: 2 * n], model)
