"""Trace capture (TracedArray), sampling, interleaving, TraceSlice."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.trace.capture import TracedArray, TraceRecorder
from repro.trace.events import TraceSlice
from repro.trace.sampler import interleave, sample_slice


class TestTraceRecorder:
    def test_bases_do_not_overlap_pages(self):
        rec = TraceRecorder()
        a = rec.allocate_base(1000)
        b = rec.allocate_base(1000)
        assert b >= a + 4096
        assert a % 4096 == 0 or a == 1 << 20

    def test_record_caps_at_max(self):
        rec = TraceRecorder(max_addresses=10)
        rec.record(np.arange(8, dtype=np.int64))
        rec.record(np.arange(8, dtype=np.int64))
        assert rec.count == 10
        assert len(rec.addresses()) == 10

    def test_reset(self):
        rec = TraceRecorder()
        rec.record(np.arange(5, dtype=np.int64))
        rec.reset()
        assert rec.count == 0
        assert len(rec.addresses()) == 0


class TestTracedArray:
    def test_scalar_read_records_address(self):
        rec = TraceRecorder()
        arr = TracedArray(np.arange(10, dtype=np.int64), rec)
        value = arr[3]
        assert value == 3
        assert rec.addresses()[0] == arr.base + 3 * 8

    def test_2d_indexing(self):
        rec = TraceRecorder()
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        arr = TracedArray(data, rec)
        assert arr[1, 2] == 6.0
        assert rec.addresses()[-1] == arr.base + 6 * 8

    def test_slice_records_every_element(self):
        rec = TraceRecorder()
        arr = TracedArray(np.arange(10, dtype=np.int32), rec)
        _ = arr[2:5]
        assert list(rec.addresses()) == [arr.base + i * 4 for i in (2, 3, 4)]

    def test_write_records(self):
        rec = TraceRecorder()
        arr = TracedArray(np.zeros(4, dtype=np.int64), rec)
        arr[1] = 7
        assert arr.data[1] == 7
        assert rec.count == 1

    def test_fancy_indexing(self):
        rec = TraceRecorder()
        arr = TracedArray(np.arange(20, dtype=np.int8), rec)
        _ = arr[np.array([1, 5, 9])]
        assert list(rec.addresses()) == [arr.base + i for i in (1, 5, 9)]

    def test_window_read_matches_algorithm_shape(self):
        """Capture a 2-D window read like the stereo matcher's SSD."""
        rec = TraceRecorder()
        img = TracedArray(np.random.default_rng(0).random((64, 64)), rec)
        window = img[10:13, 20:23]
        assert window.shape == (3, 3)
        addrs = rec.addresses()
        assert len(addrs) == 9
        # Rows are 64*8 bytes apart.
        assert addrs[3] - addrs[0] == 64 * 8

    def test_properties(self):
        rec = TraceRecorder()
        arr = TracedArray(np.zeros((2, 3)), rec, name="img")
        assert arr.shape == (2, 3)
        assert arr.dtype == np.float64
        assert len(arr) == 2


class TestSampleSlice:
    def test_short_input_unchanged(self):
        a = np.arange(100, dtype=np.int64)
        assert sample_slice(a, 200) is a

    def test_windows_preserve_contiguity(self):
        a = np.arange(10_000, dtype=np.int64)
        s = sample_slice(a, 800, n_windows=8)
        assert len(s) == 800
        # Each 100-element window is contiguous (unit diffs).
        for w in range(8):
            window = s[w * 100 : (w + 1) * 100]
            assert np.all(np.diff(window) == 1)

    def test_windows_span_the_input(self):
        a = np.arange(10_000, dtype=np.int64)
        s = sample_slice(a, 800, n_windows=8)
        assert s[0] == 0
        assert s[-1] == 9999

    def test_validation(self):
        a = np.arange(100, dtype=np.int64)
        with pytest.raises(WorkloadError):
            sample_slice(a, 0)
        with pytest.raises(WorkloadError):
            sample_slice(np.arange(1000, dtype=np.int64), 4, n_windows=8)


class TestInterleave:
    def test_round_robin_with_weights(self):
        a = np.array([1, 2, 3, 4], dtype=np.int64)
        b = np.array([10, 20], dtype=np.int64)
        merged = interleave(a, b, weights=(2, 1))
        assert list(merged) == [1, 2, 10, 3, 4, 20]

    def test_equal_weights_default(self):
        a = np.array([1, 2], dtype=np.int64)
        b = np.array([3, 4], dtype=np.int64)
        assert list(interleave(a, b)) == [1, 3, 2, 4]

    def test_order_preserved_within_stream(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, 30)
        b = rng.integers(100, 200, 60)
        merged = interleave(a, b, weights=(1, 2))
        from_a = merged[merged < 100]
        assert np.array_equal(from_a, a[: len(from_a)])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            interleave()
        with pytest.raises(WorkloadError):
            interleave(np.array([1]), weights=(1, 2))
        with pytest.raises(WorkloadError):
            interleave(np.array([1]), np.array([2]), weights=(0, 1))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_length_conserved_pro_rata(self, na, nb, wa, wb):
        a = np.arange(na, dtype=np.int64)
        b = np.arange(nb, dtype=np.int64) + 1000
        merged = interleave(a, b, weights=(wa, wb))
        rounds = min(na // wa, nb // wb)
        if rounds:
            assert len(merged) == rounds * (wa + wb)


class TestDeterminismAndRoundTrip:
    """Fixed seed => identical traces; events round-trip losslessly."""

    def test_slice_build_deterministic_under_fixed_seed(self):
        from repro.rng import RngStreams
        from repro.workloads.stereo import StereoMatchingWorkload

        a = StereoMatchingWorkload().build_slice(
            RngStreams(7).fresh("trace:test"), 20_000
        )
        b = StereoMatchingWorkload().build_slice(
            RngStreams(7).fresh("trace:test"), 20_000
        )
        assert np.array_equal(a.data_addresses, b.data_addresses)
        assert np.array_equal(a.ifetch_addresses, b.ifetch_addresses)
        assert a.instructions == b.instructions

    def test_different_seeds_differ(self):
        from repro.rng import RngStreams
        from repro.workloads.stereo import StereoMatchingWorkload

        a = StereoMatchingWorkload().build_slice(
            RngStreams(7).fresh("trace:test"), 20_000
        )
        b = StereoMatchingWorkload().build_slice(
            RngStreams(8).fresh("trace:test"), 20_000
        )
        assert not np.array_equal(a.data_addresses, b.data_addresses)

    def test_sample_slice_is_pure_and_honours_target_length(self):
        a = np.arange(50_000, dtype=np.int64)
        s1 = sample_slice(a, 4000, n_windows=8)
        s2 = sample_slice(a, 4000, n_windows=8)
        assert np.array_equal(s1, s2)
        assert len(s1) == 4000

    def test_recorded_addresses_round_trip_through_trace_slice(self):
        rec = TraceRecorder()
        arr = TracedArray(np.arange(64, dtype=np.int64), rec, name="a")
        for i in (3, 9, 27, 11, 5):
            _ = arr[i]
        sl = TraceSlice(
            data_addresses=rec.addresses(),
            ifetch_addresses=np.arange(4, dtype=np.int64) * 64,
            instructions=100.0,
            warmup_fraction=0.2,
        )
        dw, dm, iw, im = sl.split_warmup()
        assert np.array_equal(
            np.concatenate([dw, dm]), rec.addresses()
        )
        assert np.array_equal(
            np.concatenate([iw, im]), sl.ifetch_addresses
        )
        assert sl.measured_instructions == pytest.approx(80.0)


class TestTraceSlice:
    def test_split_warmup(self):
        sl = TraceSlice(
            data_addresses=np.arange(100, dtype=np.int64),
            ifetch_addresses=np.arange(40, dtype=np.int64),
            instructions=1000.0,
            warmup_fraction=0.25,
        )
        dw, dm, iw, im = sl.split_warmup()
        assert len(dw) == 25 and len(dm) == 75
        assert len(iw) == 10 and len(im) == 30
        assert sl.measured_instructions == pytest.approx(750.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceSlice(
                data_addresses=np.zeros((2, 2), dtype=np.int64),
                ifetch_addresses=np.zeros(2, dtype=np.int64),
                instructions=10.0,
            )
        with pytest.raises(WorkloadError):
            TraceSlice(
                data_addresses=np.zeros(2, dtype=np.int64),
                ifetch_addresses=np.zeros(2, dtype=np.int64),
                instructions=0.0,
            )

    def test_preload_default_empty(self):
        sl = TraceSlice(
            data_addresses=np.arange(10, dtype=np.int64),
            ifetch_addresses=np.arange(10, dtype=np.int64),
            instructions=10.0,
        )
        assert len(sl.preload_addresses) == 0
