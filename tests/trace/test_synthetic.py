"""Synthetic trace generators: shapes, wrapping, locality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.trace.synthetic import (
    loop_ifetch_trace,
    random_trace,
    streaming_trace,
    strided_trace,
    windowed_random_trace,
)


class TestStreaming:
    def test_sequential(self):
        t = streaming_trace(1024, 10, element_bytes=4)
        assert list(t[:4]) == [0, 4, 8, 12]

    def test_wraps(self):
        t = streaming_trace(16, 8, element_bytes=4)
        assert list(t) == [0, 4, 8, 12, 0, 4, 8, 12]

    def test_base_and_offset(self):
        t = streaming_trace(1024, 4, element_bytes=4, base=1000, start_offset=2)
        assert t[0] == 1000 + 8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            streaming_trace(0, 10)
        with pytest.raises(WorkloadError):
            streaming_trace(2, 10, element_bytes=4)


class TestStrided:
    def test_wrapping_slots(self):
        t = strided_trace(256, 64, 8)
        assert list(t) == [0, 64, 128, 192, 0, 64, 128, 192]

    def test_stride_larger_than_array_rejected(self):
        with pytest.raises(WorkloadError):
            strided_trace(64, 128, 10)

    @given(
        st.integers(min_value=6, max_value=20),
        st.integers(min_value=3, max_value=12),
    )
    def test_touches_exactly_array_over_stride_slots(self, log_size, log_stride):
        size, stride = 1 << log_size, 1 << log_stride
        if stride > size:
            return
        t = strided_trace(size, stride, 4 * (size // stride))
        assert len(np.unique(t)) == size // stride


class TestRandom:
    def test_within_footprint(self, rng):
        t = random_trace(4096, 1000, rng, element_bytes=4)
        assert t.min() >= 0 and t.max() < 4096

    def test_aligned_to_elements(self, rng):
        t = random_trace(4096, 1000, rng, element_bytes=8)
        assert np.all(t % 8 == 0)


class TestWindowed:
    def test_burst_locality(self, rng):
        t = windowed_random_trace(
            1 << 24, 1280, rng, window_bytes=128, burst=128,
            row_bytes=4096, window_rows=4,
        )
        # Within a burst, the address span is a few rows, not the
        # footprint.
        burst = t[:128]
        assert burst.max() - burst.min() < 5 * 4096

    def test_anchors_span_footprint(self, rng):
        t = windowed_random_trace(1 << 24, 12800, rng, burst=128)
        assert t.max() - t.min() > (1 << 23)  # spread across > half

    def test_within_footprint(self, rng):
        t = windowed_random_trace(1 << 20, 5000, rng)
        assert t.min() >= 0 and t.max() < (1 << 20)


class TestIfetch:
    def test_hot_loop_page_set(self, rng):
        t = loop_ifetch_trace(
            50_000, rng, hot_pages=22, excursion_probability=0.0
        )
        pages = np.unique(t >> 12)
        assert len(pages) == 22

    def test_hot_lines_fit_l1i(self, rng):
        # The design constraint: hot code is L1I-resident.
        t = loop_ifetch_trace(
            50_000, rng, hot_pages=22, excursion_probability=0.0
        )
        lines = np.unique(t >> 6)
        assert len(lines) * 64 < 32 * 1024

    def test_hot_lines_spread_across_l1i_sets(self, rng):
        # Regression: naive page-relative offsets alias all pages into
        # a handful of L1I sets and thrash a cache the loop fits in.
        t = loop_ifetch_trace(
            50_000, rng, hot_pages=22, excursion_probability=0.0
        )
        sets = np.unique((t >> 6) & 63)
        assert len(sets) >= 16

    def test_excursions_add_pages(self, rng):
        t = loop_ifetch_trace(
            200_000, rng, hot_pages=22, cold_pages=300,
            excursion_probability=0.001,
        )
        pages = np.unique(t >> 12)
        assert len(pages) > 22

    def test_chunk_larger_than_page_rejected(self, rng):
        with pytest.raises(WorkloadError):
            loop_ifetch_trace(100, rng, chunk_bytes=8192)

    def test_deterministic_given_rng(self):
        a = loop_ifetch_trace(10_000, np.random.default_rng(5))
        b = loop_ifetch_trace(10_000, np.random.default_rng(5))
        assert np.array_equal(a, b)
