"""Deterministic RNG streams."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.rng import DEFAULT_SEED, RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "meter") == derive_seed(42, "meter")

    def test_name_sensitivity(self):
        assert derive_seed(42, "meter") != derive_seed(42, "meter2")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "meter") != derive_seed(43, "meter")

    def test_prefix_independence(self):
        # Additive schemes collide on shared prefixes; BLAKE2b must not.
        a = derive_seed(1, "ab")
        b = derive_seed(1, "a") + derive_seed(1, "b")
        assert a != b

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=40))
    def test_result_is_64_bit(self, seed, name):
        assert 0 <= derive_seed(seed, name) < 2**64


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(7).stream("x")
        b = RngStreams(7).stream("x")
        assert np.array_equal(a.normal(size=16), b.normal(size=16))

    def test_stream_caching(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_independent(self):
        streams = RngStreams(7)
        x = streams.stream("x").normal(size=16)
        # Drawing from y must not perturb x's continuation.
        fresh = RngStreams(7)
        fresh.stream("y").normal(size=100)
        x2 = fresh.stream("x").normal(size=16)
        assert np.array_equal(x, x2)

    def test_fresh_restarts(self):
        streams = RngStreams(7)
        first = streams.fresh("x").normal()
        streams.stream("x").normal(size=10)  # advance cached stream
        again = streams.fresh("x").normal()
        assert first == again

    def test_child_differs_from_parent(self):
        parent = RngStreams(7)
        child = parent.child("rep0")
        assert parent.stream("x").normal() != child.stream("x").normal()

    def test_children_deterministic(self):
        a = RngStreams(7).child("rep0").stream("x").normal()
        b = RngStreams(7).child("rep0").stream("x").normal()
        assert a == b

    def test_default_seed_is_stable_constant(self):
        assert DEFAULT_SEED == 20120910

    def test_seed_property(self):
        assert RngStreams(99).seed == 99
