"""DCMI commands, the lossy LAN transport, and the session layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import IpmiError, IpmiSessionError, IpmiTransportError
from repro.ipmi.commands import (
    ActivatePowerLimitRequest,
    CorrectionAction,
    GetPowerReadingRequest,
    GetPowerReadingResponse,
    PowerLimitResponse,
    SetPowerLimitRequest,
)
from repro.ipmi.messages import IpmiMessage, IpmiResponse, NetFn
from repro.ipmi.session import IpmiSession, SessionAuthenticator
from repro.ipmi.transport import LanTransport


class TestCommandPayloads:
    def test_set_power_limit_roundtrip(self):
        req = SetPowerLimitRequest(
            limit_w=130,
            correction_action=CorrectionAction.THROTTLE,
            correction_time_ms=2000,
            sampling_period_s=5,
        )
        assert SetPowerLimitRequest.from_payload(req.to_payload()) == req

    def test_set_power_limit_validation(self):
        with pytest.raises(IpmiError):
            SetPowerLimitRequest(limit_w=0)
        with pytest.raises(IpmiError):
            SetPowerLimitRequest(limit_w=70000)

    def test_power_reading_roundtrip(self):
        resp = GetPowerReadingResponse(
            current_w=154, minimum_w=101, maximum_w=158, average_w=153,
            timestamp_s=377,
        )
        assert GetPowerReadingResponse.from_payload(resp.to_payload()) == resp

    def test_power_limit_response_roundtrip(self):
        resp = PowerLimitResponse(limit_w=120, active=True)
        back = PowerLimitResponse.from_payload(resp.to_payload())
        assert back.limit_w == 120 and back.active

    def test_activate_roundtrip(self):
        for flag in (True, False):
            req = ActivatePowerLimitRequest(activate=flag)
            assert ActivatePowerLimitRequest.from_payload(req.to_payload()) == req

    def test_group_extension_id_enforced(self):
        bad = b"\x00" + SetPowerLimitRequest(limit_w=130).to_payload()[1:]
        with pytest.raises(IpmiError, match="DCMI"):
            SetPowerLimitRequest.from_payload(bad)

    def test_to_message_uses_group_netfn(self):
        msg = GetPowerReadingRequest().to_message(0x20, 0x81, 1)
        assert msg.net_fn == int(NetFn.GROUP_EXTENSION)

    @given(st.integers(min_value=1, max_value=0xFFFF))
    def test_limit_watts_roundtrip_property(self, watts):
        req = SetPowerLimitRequest(limit_w=watts)
        assert SetPowerLimitRequest.from_payload(req.to_payload()).limit_w == watts


def echo_bmc(frame: bytes) -> bytes:
    """A minimal endpoint: acknowledges any decodable request."""
    msg = IpmiMessage.decode(frame)
    return IpmiResponse.for_request(msg, data=b"\xdc").encode()


class TestTransport:
    def _transport(self, **kw) -> LanTransport:
        return LanTransport(np.random.default_rng(0), **kw)

    def test_clean_delivery(self):
        lan = self._transport(drop_probability=0.0, corruption_probability=0.0)
        lan.register("10.0.0.1", echo_bmc)
        msg = GetPowerReadingRequest().to_message(0x20, 0x81, 1)
        resp = IpmiResponse.decode(lan.request("10.0.0.1", msg.encode()))
        assert resp.ok

    def test_unknown_address(self):
        lan = self._transport()
        with pytest.raises(IpmiTransportError, match="no endpoint"):
            lan.request("10.9.9.9", b"\x00" * 8)

    def test_duplicate_registration(self):
        lan = self._transport()
        lan.register("a", echo_bmc)
        with pytest.raises(IpmiTransportError):
            lan.register("a", echo_bmc)

    def test_retries_recover_from_loss(self):
        lan = self._transport(drop_probability=0.4, max_retries=30)
        lan.register("a", echo_bmc)
        msg = GetPowerReadingRequest().to_message(0x20, 0x81, 1)
        for seq in range(20):
            resp = IpmiResponse.decode(lan.request("a", msg.encode()))
            assert resp.ok
        assert lan.stats.retries > 0
        assert lan.stats.dropped > 0

    def test_total_loss_raises_after_retries(self):
        lan = self._transport(drop_probability=0.999999, max_retries=2)
        lan.register("a", echo_bmc)
        msg = GetPowerReadingRequest().to_message(0x20, 0x81, 1)
        with pytest.raises(IpmiTransportError, match="failed after 3 attempts"):
            lan.request("a", msg.encode())

    def test_corruption_detected_and_retried(self):
        lan = self._transport(
            drop_probability=0.0, corruption_probability=0.3, max_retries=50
        )
        lan.register("a", echo_bmc)
        msg = GetPowerReadingRequest().to_message(0x20, 0x81, 1)
        for _ in range(10):
            assert IpmiResponse.decode(lan.request("a", msg.encode())).ok
        assert lan.stats.corrupted > 0

    def test_latency_accumulates(self):
        lan = self._transport(drop_probability=0.0, corruption_probability=0.0)
        lan.register("a", echo_bmc)
        msg = GetPowerReadingRequest().to_message(0x20, 0x81, 1)
        lan.request("a", msg.encode())
        assert lan.elapsed_ms > 0.0

    def test_unregister(self):
        lan = self._transport()
        lan.register("a", echo_bmc)
        lan.unregister("a")
        assert lan.addresses() == []


class TestSession:
    def test_open_with_correct_secret(self):
        auth = SessionAuthenticator("s3cret")
        session = auth.open("s3cret")
        assert auth.is_open(session.session_id)

    def test_wrong_secret_rejected(self):
        auth = SessionAuthenticator("s3cret")
        with pytest.raises(IpmiSessionError, match="bad secret"):
            auth.open("guess")

    def test_validate_accepts_fresh_sequence(self):
        auth = SessionAuthenticator("s")
        session = auth.open("s")
        frame = b"\x01\x02"
        seq = session.next_seq()
        auth.validate(session.session_id, seq, frame, session.tag(frame))

    def test_replay_rejected(self):
        auth = SessionAuthenticator("s")
        session = auth.open("s")
        frame = b"\x01\x02"
        seq = session.next_seq()
        tag = session.tag(frame)
        auth.validate(session.session_id, seq, frame, tag)
        with pytest.raises(IpmiSessionError, match="stale"):
            auth.validate(session.session_id, seq, frame, tag)

    def test_tag_mismatch_rejected(self):
        auth = SessionAuthenticator("s")
        session = auth.open("s")
        with pytest.raises(IpmiSessionError, match="tag mismatch"):
            auth.validate(session.session_id, 1, b"\x01", "bogus")

    def test_closed_session_rejected(self):
        auth = SessionAuthenticator("s")
        session = auth.open("s")
        auth.close(session)
        with pytest.raises(IpmiSessionError, match="no such session"):
            auth.validate(session.session_id, 1, b"", session.tag(b""))

    def test_seq_wraps_skipping_zero(self):
        session = IpmiSession(session_id=1, secret="s", seq=0x3E)
        assert session.next_seq() == 0x3F
        assert session.next_seq() == 1  # wraps past 0

    def test_validate_accepts_across_wrap(self):
        auth = SessionAuthenticator("s")
        session = auth.open("s")
        frame = b"\x00"
        auth.validate(session.session_id, 0x3F, frame, session.tag(frame))
        # Post-wrap small sequence numbers are within the window.
        auth.validate(session.session_id, 0x02, frame, session.tag(frame))
