"""IPMI wire format: checksums, round-trips, corruption detection."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import IpmiError
from repro.ipmi.messages import (
    CompletionCode,
    IpmiMessage,
    IpmiResponse,
    NetFn,
    checksum8,
)


class TestChecksum:
    def test_zero_sum_property(self):
        data = bytes([0x20, 0xB0, 0x04])
        assert (sum(data) + checksum8(data)) & 0xFF == 0

    @given(st.binary(max_size=64))
    def test_always_zero_sum(self, data):
        assert (sum(data) + checksum8(data)) & 0xFF == 0


class TestMessageRoundTrip:
    def test_encode_decode(self):
        msg = IpmiMessage(
            rs_addr=0x20,
            net_fn=int(NetFn.GROUP_EXTENSION),
            rq_addr=0x81,
            rq_seq=5,
            cmd=0x04,
            data=b"\xdc\x01\x02",
        )
        assert IpmiMessage.decode(msg.encode()) == msg

    def test_empty_payload(self):
        msg = IpmiMessage(rs_addr=0x20, net_fn=6, rq_addr=0x81, rq_seq=1, cmd=1)
        assert IpmiMessage.decode(msg.encode()) == msg

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=0x3F),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=32),
    )
    def test_roundtrip_property(self, rs, netfn, rq, seq, cmd, data):
        msg = IpmiMessage(
            rs_addr=rs, net_fn=netfn, rq_addr=rq, rq_seq=seq, cmd=cmd, data=data
        )
        assert IpmiMessage.decode(msg.encode()) == msg

    def test_field_validation(self):
        with pytest.raises(IpmiError):
            IpmiMessage(rs_addr=256, net_fn=6, rq_addr=0, rq_seq=0, cmd=0)
        with pytest.raises(IpmiError):
            IpmiMessage(rs_addr=0, net_fn=64, rq_addr=0, rq_seq=0, cmd=0)
        with pytest.raises(IpmiError):
            IpmiMessage(rs_addr=0, net_fn=6, rq_addr=0, rq_seq=0, cmd=0, lun=4)


class TestCorruptionDetection:
    def _frame(self) -> bytes:
        return IpmiMessage(
            rs_addr=0x20, net_fn=6, rq_addr=0x81, rq_seq=3, cmd=2, data=b"abc"
        ).encode()

    def test_every_single_byte_flip_detected_or_changes_fields(self):
        frame = self._frame()
        original = IpmiMessage.decode(frame)
        for i in range(len(frame)):
            corrupted = frame[:i] + bytes([frame[i] ^ 0xFF]) + frame[i + 1 :]
            try:
                decoded = IpmiMessage.decode(corrupted)
            except IpmiError:
                continue  # detected: good
            # A flip that decodes must not silently preserve the message.
            assert decoded != original

    def test_truncated_frame_rejected(self):
        with pytest.raises(IpmiError):
            IpmiMessage.decode(self._frame()[:4])

    def test_header_checksum_flip_rejected(self):
        frame = bytearray(self._frame())
        frame[2] ^= 0x01
        with pytest.raises(IpmiError, match="header checksum"):
            IpmiMessage.decode(bytes(frame))


class TestResponse:
    def test_for_request_mirrors_addressing(self):
        msg = IpmiMessage(
            rs_addr=0x20, net_fn=0x2C, rq_addr=0x81, rq_seq=9, cmd=4
        )
        resp = IpmiResponse.for_request(msg, data=b"\x01")
        assert resp.net_fn == 0x2D  # response NetFn = request + 1
        assert resp.rq_seq == 9
        assert resp.cmd == 4
        assert resp.ok

    def test_error_response_not_ok(self):
        msg = IpmiMessage(rs_addr=0x20, net_fn=6, rq_addr=0x81, rq_seq=1, cmd=1)
        resp = IpmiResponse.for_request(
            msg, completion_code=int(CompletionCode.INVALID_COMMAND)
        )
        assert not resp.ok

    def test_roundtrip(self):
        resp = IpmiResponse(
            rq_addr=0x81,
            net_fn=0x2D,
            rs_addr=0x20,
            rq_seq=7,
            cmd=2,
            completion_code=0,
            data=b"\xdc\x01",
        )
        assert IpmiResponse.decode(resp.encode()) == resp
