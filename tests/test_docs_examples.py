"""The documentation's claims stay true.

Lightweight executable checks of the code snippets and factual claims
in README.md and docs/API.md — so the docs cannot drift from the code.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_references_real_files(self, readme):
        for ref in ("DESIGN.md", "EXPERIMENTS.md", "examples/"):
            assert ref in readme
            assert (REPO / ref.rstrip("/")).exists()

    def test_example_scripts_exist(self, readme):
        for name in re.findall(r"`([a-z_]+\.py)`", readme):
            assert (REPO / "examples" / name).exists(), name

    def test_cli_subcommands_exist(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        available = set(sub.choices)
        for cmd in re.findall(r"repro-powercap [^\n]*?(\w+)(?= |\n)", readme):
            pass  # free-text; the structured check below is the real one
        for cmd in ("baseline", "sweep", "stride", "amenability"):
            assert cmd in available

    def test_quickstart_snippet_imports(self, readme):
        block = re.search(r"```python\n(.*?)```", readme, re.S).group(1)
        # The snippet must at least parse and its imports must resolve.
        tree = ast.parse(block)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro":
                import repro

                for alias in node.names:
                    assert hasattr(repro, alias.name)


class TestApiDoc:
    @pytest.fixture(scope="class")
    def api_doc(self):
        return (REPO / "docs" / "API.md").read_text()

    def test_every_python_block_parses(self, api_doc):
        for block in re.findall(r"```python\n(.*?)```", api_doc, re.S):
            ast.parse(block)

    def test_top_level_imports_resolve(self, api_doc):
        import repro

        for block in re.findall(r"```python\n(.*?)```", api_doc, re.S):
            for node in ast.walk(ast.parse(block)):
                if isinstance(node, ast.ImportFrom) and node.module == "repro":
                    for alias in node.names:
                        assert hasattr(repro, alias.name), alias.name

    def test_submodule_imports_resolve(self, api_doc):
        import importlib

        for block in re.findall(r"```python\n(.*?)```", api_doc, re.S):
            for node in ast.walk(ast.parse(block)):
                if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith(
                    "repro."
                ):
                    module = importlib.import_module(node.module)
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{node.module}.{alias.name}"
                        )


class TestGroupCapExample:
    """examples/datacenter_group_cap.py runs both stacks and they agree."""

    @pytest.fixture(scope="class")
    def example_output(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / "datacenter_group_cap.py")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO / "src")},
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_serial_sections_present(self, example_output):
        assert "== Equal division ==" in example_output
        assert "== Closed-loop rebalancing" in example_output

    def test_fleet_comparison_table(self, example_output):
        assert "Serial DCM stack vs repro.fleet" in example_output
        assert "parity: serial DCM stack vs repro.fleet" in example_output
        assert "max cap delta" in example_output

    def test_parity_contract_holds(self, example_output):
        # The table's verdict row — the example must never ship with a
        # violated contract.
        assert "OK" in example_output
        assert "VIOLATED" not in example_output


class TestDesignDoc:
    def test_design_mentions_every_subpackage(self):
        design = (REPO / "DESIGN.md").read_text()
        for pkg in ("repro.arch", "repro.mem", "repro.power", "repro.ipmi",
                    "repro.bmc", "repro.dcm", "repro.trace",
                    "repro.workloads", "repro.perf", "repro.core"):
            assert pkg.split(".")[-1] in design

    def test_experiments_doc_has_all_artifacts(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Table I", "Table II", "Figures 1", "Figures 3"):
            assert artifact in experiments
        assert "PASS" in experiments
