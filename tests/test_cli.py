"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import experiment_from_dict
from repro.errors import ConfigError
from repro.workloads import make_workload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workload == "stereo"
        assert args.scale == 0.05
        assert len(args.caps) == 9

    def test_sweep_custom_caps(self):
        args = build_parser().parse_args(
            ["sweep", "--workload", "sire", "--caps", "150", "130"]
        )
        assert args.caps == [150.0, 130.0]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workload", "linpack"])

    def test_stride_cap_optional(self):
        args = build_parser().parse_args(["stride"])
        assert args.cap is None
        args = build_parser().parse_args(["stride", "--cap", "120"])
        assert args.cap == 120.0


class TestCommands:
    def test_sweep_prints_table(self, capsys):
        code = main(
            ["--scale", "0.002", "sweep", "--workload", "stereo",
             "--caps", "150"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table II rows for StereoMatching" in out
        assert "baseline" in out
        assert "150" in out

    def test_baseline_prints_table1(self, capsys):
        code = main(["--scale", "0.002", "baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "StereoMatching" in out and "SIRE/RSM" in out

    def test_amenability_report(self, capsys):
        code = main(
            ["--scale", "0.002", "amenability", "--workload", "stereo",
             "--tolerance", "1.3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Amenability of StereoMatching" in out
        assert "slowdown" in out
        assert "score" in out

    def test_seed_changes_noise_not_shape(self, capsys):
        main(["--seed", "1", "--scale", "0.002", "sweep", "--caps", "150"])
        first = capsys.readouterr().out
        main(["--seed", "2", "--scale", "0.002", "sweep", "--caps", "150"])
        second = capsys.readouterr().out
        assert first != second  # noise differs
        assert first.splitlines()[0] == second.splitlines()[0]


class TestJsonFormat:
    def test_sweep_json_round_trips(self, capsys):
        code = main(
            ["--scale", "0.002", "sweep", "--caps", "150",
             "--format", "json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        result = experiment_from_dict(json.loads(out))
        assert result.workload == "StereoMatching"
        assert 150.0 in result.by_cap
        assert result.baseline.execution_s > 0

    def test_baseline_json_has_both_workloads(self, capsys):
        code = main(["--scale", "0.002", "baseline", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert set(doc) == {"StereoMatching", "SIRE/RSM"}
        for data in doc.values():
            assert experiment_from_dict(data).baseline.avg_power_w > 0

    def test_table_stays_default(self, capsys):
        main(["--scale", "0.002", "sweep", "--caps", "150"])
        out = capsys.readouterr().out
        assert "Table II" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)


class TestValidation:
    def test_empty_caps_is_a_clear_error(self, capsys):
        code = main(["--scale", "0.002", "sweep", "--caps"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "empty" in captured.err

    def test_nonpositive_cap_is_a_clear_error(self, capsys):
        code = main(["--scale", "0.002", "sweep", "--caps", "-5"])
        captured = capsys.readouterr()
        assert code == 2
        assert "finite and > 0" in captured.err

    def test_bad_scale_is_a_clear_error(self, capsys):
        code = main(["--scale", "0", "sweep", "--caps", "150"])
        captured = capsys.readouterr()
        assert code == 2
        assert "scale" in captured.err

    def test_make_workload_rejects_bad_scale(self):
        for scale in (0, -2.5, float("inf"), float("nan")):
            with pytest.raises(ConfigError):
                make_workload("stereo", scale)

    def test_make_workload_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            make_workload("linpack")

    def test_make_workload_scales_budget(self):
        full = make_workload("stereo", 1.0)
        half = make_workload("stereo", 0.5)
        assert half.spec.total_instructions == pytest.approx(
            full.spec.total_instructions * 0.5
        )


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 2
        assert args.db == "repro-service.sqlite3"
        assert args.max_attempts == 3

    def test_custom(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--db", "x.sqlite3"]
        )
        assert args.port == 0
        assert args.workers == 4
        assert args.db == "x.sqlite3"


class TestProfileFlags:
    def test_defaults_off(self):
        args = build_parser().parse_args(["sweep"])
        assert args.profile is False
        assert args.profile_hz is None
        assert args.profile_out is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["--profile", "--profile-hz", "251",
             "--profile-out", "prof.json", "sweep"]
        )
        assert args.profile is True
        assert args.profile_hz == 251.0
        assert args.profile_out == "prof.json"

    def test_profile_out_writes_report(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        code = main(
            ["--scale", "0.002", "--profile-out", str(out), "baseline"]
        )
        capsys.readouterr()
        assert code == 0
        report = json.loads(out.read_text())
        assert report["samples"] >= 0
        assert report["hz"] == 97.0
        assert "phase_seconds" in report
        assert "per_quantum_s" in report
        assert "top_functions" in report

    def test_profile_hz_flows_into_report(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        code = main(
            ["--scale", "0.002", "--profile-hz", "503",
             "--profile-out", str(out), "baseline"]
        )
        capsys.readouterr()
        assert code == 0
        report = json.loads(out.read_text())
        assert report["hz"] == 503.0
        # Sampling a real sweep at 503 Hz lands samples, and every
        # sample is attributed to some phase.
        assert report["samples"] > 0
        assert sum(report["phase_samples"].values()) == report["samples"]


class TestTopParser:
    def test_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url == "http://127.0.0.1:8080"
        assert args.interval == 2.0
        assert args.iterations is None
        assert args.once is False

    def test_custom(self):
        args = build_parser().parse_args(
            ["top", "--url", "http://10.0.0.2:9", "--interval", "0.5",
             "--iterations", "3", "--once"]
        )
        assert args.url == "http://10.0.0.2:9"
        assert args.interval == 0.5
        assert args.iterations == 3
        assert args.once is True
