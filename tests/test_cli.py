"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workload == "stereo"
        assert args.scale == 0.05
        assert len(args.caps) == 9

    def test_sweep_custom_caps(self):
        args = build_parser().parse_args(
            ["sweep", "--workload", "sire", "--caps", "150", "130"]
        )
        assert args.caps == [150.0, 130.0]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workload", "linpack"])

    def test_stride_cap_optional(self):
        args = build_parser().parse_args(["stride"])
        assert args.cap is None
        args = build_parser().parse_args(["stride", "--cap", "120"])
        assert args.cap == 120.0


class TestCommands:
    def test_sweep_prints_table(self, capsys):
        code = main(
            ["--scale", "0.002", "sweep", "--workload", "stereo",
             "--caps", "150"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table II rows for StereoMatching" in out
        assert "baseline" in out
        assert "150" in out

    def test_baseline_prints_table1(self, capsys):
        code = main(["--scale", "0.002", "baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "StereoMatching" in out and "SIRE/RSM" in out

    def test_amenability_report(self, capsys):
        code = main(
            ["--scale", "0.002", "amenability", "--workload", "stereo",
             "--tolerance", "1.3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Amenability of StereoMatching" in out
        assert "slowdown" in out
        assert "score" in out

    def test_seed_changes_noise_not_shape(self, capsys):
        main(["--seed", "1", "--scale", "0.002", "sweep", "--caps", "150"])
        first = capsys.readouterr().out
        main(["--seed", "2", "--scale", "0.002", "sweep", "--caps", "150"])
        second = capsys.readouterr().out
        assert first != second  # noise differs
        assert first.splitlines()[0] == second.splitlines()[0]
