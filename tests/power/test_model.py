"""Node power model: components, calibration, duty insensitivity."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.pstate import PStateTable
from repro.power.model import NodePowerModel, OperatingPoint


@pytest.fixture
def model(config):
    return NodePowerModel(config)


@pytest.fixture
def table(config):
    return PStateTable(config.pstates)


class TestComponents:
    def test_breakdown_sums(self, model, table):
        op = OperatingPoint(pstate=table.fastest, dram_traffic_bps=1e9)
        b = model.breakdown(op)
        assert b.total_w == pytest.approx(
            b.platform_w
            + b.dram_background_w
            + b.leakage_w
            + b.uncore_w
            + b.core_dynamic_w
            + b.dram_traffic_w
            - b.gating_saving_w
        )

    def test_idle_has_no_active_terms(self, model, table):
        op = OperatingPoint(pstate=table.fastest, busy_cores=0)
        b = model.breakdown(op)
        assert b.uncore_w == 0.0
        assert b.core_dynamic_w == 0.0
        assert model.node_power_w(op) == pytest.approx(
            model.idle_power_w(op.temperature_c)
        )

    def test_leakage_rises_with_temperature(self, model):
        assert model.leakage_w(60.0) > model.leakage_w(35.0) > model.leakage_w(25.0)

    def test_leakage_clamped_at_low_temperature(self, model):
        assert model.leakage_w(-200.0) == pytest.approx(model.leakage_w(-100.0))

    def test_gating_saving_cannot_exceed_active_power(self, model, table):
        op = OperatingPoint(
            pstate=table.slowest, gating_saving_w=1e6, busy_cores=1
        )
        b = model.breakdown(op)
        assert b.total_w >= model.idle_power_w(op.temperature_c) - 1e-9


class TestDutyAuthority:
    """Sub-floor throttling saves almost no power — the paper's
    central low-cap finding."""

    def test_duty_saving_is_small(self, model, table):
        full = model.power_of_pstate(table.slowest, duty=1.0)
        throttled = model.power_of_pstate(table.slowest, duty=0.15)
        # Less than 2 W of authority across the whole duty range.
        assert 0 < full - throttled < 2.0

    def test_high_halt_residual(self, config):
        # The constant behind the small authority.
        assert config.power.halt_residual_fraction >= 0.8


class TestPaperCalibration:
    def test_p0_busy_matches_table1(self, model, table):
        p = model.power_of_pstate(table.fastest, dram_traffic_bps=3e8)
        assert 150.0 < p < 158.0

    def test_floor_between_125_and_130(self, model, table):
        p = model.power_of_pstate(table.slowest)
        assert 125.0 < p < 130.0

    def test_floor_power_reports_deepest_mechanism(self, model, table, config):
        floor = model.floor_power_w(
            table.slowest,
            max(l.power_saving_w for l in config.bmc.ladder.levels),
            temperature_c=35.0,
        )
        # Above 120 W: the cap the paper could not honor.
        assert 120.0 < floor < 125.0

    def test_power_monotone_in_pstate(self, model, table):
        powers = [model.power_of_pstate(s) for s in table]
        assert all(a > b for a, b in zip(powers, powers[1:]))


class TestOperatingPointValidation:
    def test_rejects_bad_duty(self, table):
        with pytest.raises(Exception):
            OperatingPoint(pstate=table.fastest, duty=1.5)

    def test_rejects_negative_traffic(self, table):
        with pytest.raises(Exception):
            OperatingPoint(pstate=table.fastest, dram_traffic_bps=-1.0)

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=5e10),
    )
    def test_power_positive_everywhere(self, duty, activity, traffic):
        from repro.config import sandy_bridge_config

        cfg = sandy_bridge_config()
        model = NodePowerModel(cfg)
        table = PStateTable(cfg.pstates)
        p = model.node_power_w(
            OperatingPoint(
                pstate=table[7],
                duty=duty,
                activity=activity,
                dram_traffic_bps=traffic,
            )
        )
        assert p > 0
