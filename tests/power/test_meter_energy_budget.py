"""Watts Up! meter, energy accumulator, and fielded power budgets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import MeterConfig
from repro.errors import ConfigError, SimulationError
from repro.power.budget import BATTERY, GENERATOR, PowerBudget
from repro.power.energy import EnergyAccumulator
from repro.power.meter import WattsUpMeter


def make_meter(noise=0.0, period=1.0) -> WattsUpMeter:
    return WattsUpMeter(
        MeterConfig(sample_period_s=period, noise_sigma_w=noise),
        np.random.default_rng(0),
    )


class TestMeter:
    def test_sampling_grid(self):
        m = make_meter()
        m.advance(0.0, 5.0, lambda t: 150.0)
        assert len(m.readings) == 5
        assert [r.time_s for r in m.readings] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_sub_period_advances_accumulate(self):
        m = make_meter()
        for i in range(100):
            m.advance(i * 0.05, 0.05, lambda t: 150.0)
        assert len(m.readings) == 5

    def test_average_of_constant_power(self):
        m = make_meter()
        m.advance(0.0, 10.0, lambda t: 153.1)
        assert m.average_power_w() == pytest.approx(153.1, abs=0.05)

    def test_quantisation(self):
        m = make_meter()
        r = m.sample_now(0.0, 153.123456)
        assert r.power_w == pytest.approx(153.1)

    def test_noise_is_deterministic_per_rng(self):
        a = make_meter(noise=0.5)
        b = make_meter(noise=0.5)
        assert a.sample_now(0.0, 150.0).power_w == b.sample_now(0.0, 150.0).power_w

    def test_energy_integral(self):
        m = make_meter()
        m.advance(0.0, 10.0, lambda t: 150.0)
        assert m.energy_j == pytest.approx(1500.0)

    def test_no_samples_raises(self):
        with pytest.raises(SimulationError):
            make_meter().average_power_w()

    def test_reset(self):
        m = make_meter()
        m.advance(0.0, 3.0, lambda t: 100.0)
        m.reset()
        assert m.readings == [] and m.energy_j == 0.0

    def test_max_power(self):
        m = make_meter()
        m.advance(0.0, 4.0, lambda t: 100.0 + 10.0 * t)
        assert m.max_power_w() == pytest.approx(130.0, abs=0.1)


class TestMeterFastForwardCoverage:
    """The sample log must cover fast-forwarded time with no gaps."""

    def test_grid_covered_across_fast_forward(self):
        m = make_meter()
        m.advance(0.0, 2.0, lambda t: 150.0)
        m.advance(2.0, 60.0, lambda t: 120.0)  # steady-state fast-forward
        m.advance(62.0, 2.0, lambda t: 130.0)
        assert len(m.readings) == 64
        assert m.max_sample_gap_s() == pytest.approx(1.0)

    def test_max_gap_requires_samples(self):
        with pytest.raises(SimulationError):
            make_meter().max_sample_gap_s()

    def test_vectorized_draws_match_per_quantum_stream(self):
        # One advance() over a long slice must consume the rng exactly
        # as stepping through it quantum by quantum would — the sample
        # log is bit-identical either way.
        cfg = MeterConfig(sample_period_s=1.0, noise_sigma_w=0.5)
        a = WattsUpMeter(cfg, np.random.default_rng(3))
        a.advance(0.0, 50.0, lambda t: 140.0)
        b = WattsUpMeter(cfg, np.random.default_rng(3))
        for i in range(1000):
            b.advance(i * 0.05, 0.05, lambda t: 140.0)
        assert a.readings == b.readings

    def test_meter_average_tracks_energy_within_noise(self):
        # Constant power, noisy sampling: the log's mean may differ
        # from the energy-integral average only by sampling noise
        # (~4 sigma / sqrt(N)) plus half the quantisation step.
        sigma, n = 0.35, 400
        m = make_meter(noise=sigma)
        m.advance(0.0, float(n), lambda t: 151.3)
        energy_avg = m.energy_j / float(n)
        bound = 4.0 * sigma / np.sqrt(n) + m.config.resolution_w / 2.0
        assert abs(m.average_power_w() - energy_avg) <= bound

    def test_runner_meter_average_agrees_with_energy_integral(self):
        # End-to-end regression: in a capped run (which fast-forwards
        # its steady state) the meter-derived average power must agree
        # with energy / time to well within the meter's noise floor.
        from repro.core.runner import NodeRunner
        from repro.workloads import make_workload

        runner = NodeRunner(seed=0, slice_accesses=100_000)
        result = runner.run(make_workload("stereo", 0.02), cap_w=130.0)
        energy_avg = result.energy_j / result.execution_s
        assert result.avg_power_w == pytest.approx(energy_avg, abs=1.0)


class TestEnergyAccumulator:
    def test_power_times_time(self):
        e = EnergyAccumulator()
        e.add(153.1, 89.0)
        # Table II row A0: 153.1 W x 89 s ~ 13,626 J.
        assert e.energy_j == pytest.approx(13625.9)

    def test_average_power(self):
        e = EnergyAccumulator()
        e.add(100.0, 1.0)
        e.add(200.0, 3.0)
        assert e.average_power_w() == pytest.approx(175.0)

    def test_merge(self):
        a, b = EnergyAccumulator(), EnergyAccumulator()
        a.add(100.0, 1.0)
        b.add(50.0, 2.0)
        c = a.merge(b)
        assert c.energy_j == pytest.approx(200.0)
        assert c.elapsed_s == pytest.approx(3.0)

    def test_empty_average_raises(self):
        with pytest.raises(SimulationError):
            EnergyAccumulator().average_power_w()

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=500),
                st.floats(min_value=0, max_value=1000),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_energy_equals_sum_of_segments(self, segments):
        e = EnergyAccumulator()
        for p, d in segments:
            e.add(p, d)
        assert e.energy_j == pytest.approx(sum(p * d for p, d in segments))


class TestPowerBudget:
    def test_generator_admits_caps_within_allocation(self):
        b = PowerBudget(allocation_w=150.0)
        assert b.admits_cap(140.0)
        assert not b.admits_cap(160.0)

    def test_headroom(self):
        b = PowerBudget(allocation_w=150.0)
        assert b.headroom_w(130.0) == pytest.approx(20.0)
        assert b.headroom_w(160.0) == pytest.approx(-10.0)

    def test_battery_requires_capacity(self):
        with pytest.raises(ConfigError):
            PowerBudget(allocation_w=150.0, scenario=BATTERY)

    def test_battery_life(self):
        b = PowerBudget(allocation_w=150.0, scenario=BATTERY, battery_wh=300.0)
        # 300 Wh at 150 W = 2 hours.
        assert b.battery_life_s(150.0) == pytest.approx(7200.0)

    def test_battery_drains_slower_at_lower_draw_but_capping_wastes_energy(self):
        # Section IV-C: capping lowers draw but raises total energy, so
        # a capped run uses a larger battery fraction overall.
        b = PowerBudget(allocation_w=150.0, scenario=BATTERY, battery_wh=500.0)
        uncapped = b.battery_fraction_used(13_626.0)   # A0
        capped = b.battery_fraction_used(395_921.0)    # A9 (120 W cap)
        assert capped > 25 * uncapped

    def test_battery_accounting_rejected_for_generator(self):
        b = PowerBudget(allocation_w=150.0, scenario=GENERATOR)
        with pytest.raises(ConfigError):
            b.battery_life_s(100.0)

    def test_deadline_check(self):
        b = PowerBudget(allocation_w=150.0)
        assert b.deadline_met(execution_s=110.0, deadline_s=120.0)
        assert not b.deadline_met(execution_s=130.0, deadline_s=120.0)
