"""Core timing model: the CPI stack and throttling arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch.core import SPECULATION_WOBBLE_MAX, CoreTimingModel
from repro.errors import SimulationError
from repro.units import UnitsError


@pytest.fixture
def core():
    return CoreTimingModel(base_cpi=0.85)


class TestSecondsPerInstruction:
    def test_pure_compute(self, core):
        # No stalls, full duty: spi = CPI / f.
        assert core.seconds_per_instruction(2.7e9, 0.0) == pytest.approx(
            0.85 / 2.7e9
        )

    def test_stall_adds_linearly(self, core):
        base = core.seconds_per_instruction(2.7e9, 0.0)
        assert core.seconds_per_instruction(2.7e9, 1.0) == pytest.approx(
            base + 1e-9
        )

    def test_frequency_only_scales_compute(self, core):
        # Memory stalls do not speed up with the clock — the crux of
        # why capped performance is workload-dependent.
        slow = core.seconds_per_instruction(1.2e9, 10.0)
        fast = core.seconds_per_instruction(2.4e9, 10.0)
        assert slow - fast == pytest.approx(0.85 / 1.2e9 - 0.85 / 2.4e9)

    def test_duty_divides_wall_time(self, core):
        full = core.seconds_per_instruction(2.7e9, 1.0, duty=1.0)
        throttled = core.seconds_per_instruction(2.7e9, 1.0, duty=0.25)
        assert throttled == pytest.approx(4.0 * full)

    def test_duty_above_one_rejected(self, core):
        with pytest.raises(SimulationError):
            core.seconds_per_instruction(2.7e9, 0.0, duty=1.5)

    def test_zero_frequency_rejected(self, core):
        with pytest.raises(UnitsError):
            core.seconds_per_instruction(0.0, 0.0)


class TestTimeFor:
    def test_breakdown_sums_to_wall(self, core):
        b = core.time_for(1e9, 2.7e9, 0.5, duty=0.5)
        assert b.compute_s + b.stall_s + b.throttle_s == pytest.approx(b.wall_s)

    def test_no_throttle_at_full_duty(self, core):
        b = core.time_for(1e9, 2.7e9, 0.5, duty=1.0)
        assert b.throttle_s == pytest.approx(0.0, abs=1e-12)

    def test_instructions_roundtrip(self, core):
        b = core.time_for(1e9, 2.7e9, 0.5, duty=0.8)
        back = core.instructions_in(b.wall_s, 2.7e9, 0.5, duty=0.8)
        assert back == pytest.approx(1e9)

    def test_cycles_exclude_throttled_time(self, core):
        b = core.time_for(1e9, 2.0e9, 1.0, duty=0.5)
        cycles = core.cycles_for(b, 2.0e9)
        # Only compute + stall time accumulates cycles.
        assert cycles == pytest.approx((b.compute_s + b.stall_s) * 2.0e9)
        assert cycles < b.wall_s * 2.0e9

    def test_zero_instructions(self, core):
        b = core.time_for(0.0, 2.7e9, 1.0)
        assert b.wall_s == 0.0


class TestSpeculation:
    def test_wobble_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            f = CoreTimingModel.speculation_factor(rng)
            assert 1.0 <= f <= 1.0 + SPECULATION_WOBBLE_MAX

    def test_wobble_matches_paper_bound(self):
        # "these differences ... are small, i.e., at most 0.36%".
        assert SPECULATION_WOBBLE_MAX == pytest.approx(0.0036)


class TestProperties:
    @given(
        st.floats(min_value=1e9, max_value=4e9),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_spi_positive_and_monotone_in_duty(self, f, stall, duty):
        core = CoreTimingModel(0.85)
        spi = core.seconds_per_instruction(f, stall, duty)
        assert spi > 0
        assert spi >= core.seconds_per_instruction(f, stall, 1.0)

    @given(
        st.floats(min_value=1e6, max_value=1e12),
        st.floats(min_value=1e9, max_value=4e9),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_wall_time_linear_in_instructions(self, n, f, stall):
        core = CoreTimingModel(0.85)
        one = core.time_for(n, f, stall).wall_s
        two = core.time_for(2 * n, f, stall).wall_s
        assert two == pytest.approx(2 * one, rel=1e-9)
