"""Node assembly: power calibration against the paper's figures."""

from __future__ import annotations

import pytest

from repro.arch.node import Node
from repro.config import PAPER_IDLE_POWER_RANGE_W


@pytest.fixture
def node(config):
    return Node(config)


class TestPowerCalibration:
    def test_idle_power_in_paper_range(self, node):
        # "the idle power was between 100 and 103 Watts."
        lo, hi = PAPER_IDLE_POWER_RANGE_W
        assert lo <= node.idle_power_w() <= hi

    def test_busy_power_in_paper_range(self, node):
        # Table I: 153-157 W with one core busy, uncapped.
        node.thermal.reset(node.thermal.steady_state_c(155.0))
        p = node.power_w(dram_traffic_bps=1e8)
        assert 150.0 <= p <= 158.0

    def test_floor_power_above_lowest_caps(self, node):
        # The crux of the reproduction: the DVFS floor draws more than
        # the 120/125 W caps, forcing the BMC beyond DVFS.
        node.set_pstate(node.pstates.slowest)
        node.thermal.reset(node.thermal.steady_state_c(126.0))
        floor = node.power_w()
        assert floor > 125.0

    def test_deepest_mechanism_floor_above_120(self, node):
        # Even everything engaged cannot reach 120 W — which is why the
        # paper measures 124.0/124.9 W averages at the 120 W cap.
        node.set_pstate(node.pstates.slowest)
        node.set_duty(node.config.bmc.ladder.duty_min)
        node.thermal.reset(node.thermal.steady_state_c(122.0))
        deepest = node.power_w(gating_saving_w=2.6)
        assert deepest > 120.0

    def test_dvfs_saves_power_monotonically(self, node):
        node.thermal.reset(45.0)
        powers = []
        for st in node.pstates:
            node.set_pstate(st)
            powers.append(node.power_w())
        assert all(a > b for a, b in zip(powers, powers[1:]))

    def test_traffic_power_orders_the_workloads(self, node):
        # SIRE (streaming, ~GB/s) draws more than Stereo (cache
        # resident): Table I's 157 vs 153 W.
        sire_like = node.power_w(dram_traffic_bps=5e8)
        stereo_like = node.power_w(dram_traffic_bps=2e7)
        assert sire_like > stereo_like


class TestNodeState:
    def test_boot_state(self, node):
        assert node.pstate is node.pstates.fastest
        assert node.duty == 1.0

    def test_set_duty_validates(self, node):
        with pytest.raises(ValueError):
            node.set_duty(0.0)
        with pytest.raises(ValueError):
            node.set_duty(1.5)
        node.set_duty(0.5)
        assert node.duty == 0.5

    def test_reset_restores_boot_state(self, node):
        node.set_pstate(node.pstates.slowest)
        node.set_duty(0.2)
        node.thermal.step(155.0, 100.0)
        node.reset()
        assert node.pstate is node.pstates.fastest
        assert node.duty == 1.0
        assert node.thermal.temperature_c == pytest.approx(
            node.config.thermal.ambient_c
        )

    def test_operating_point_snapshot(self, node):
        node.set_duty(0.5)
        op = node.operating_point(dram_traffic_bps=1e9)
        assert op.duty == 0.5
        assert op.pstate is node.pstate
        assert op.dram_traffic_bps == 1e9
