"""C-state model: ordering, residency, race-to-idle accounting."""

from __future__ import annotations

import pytest

from repro.arch.cstate import CStateModel
from repro.config import CStateSpec
from repro.errors import ConfigError


@pytest.fixture
def model(config):
    return CStateModel(config.cstates)


class TestConstruction:
    def test_requires_c0_first(self):
        with pytest.raises(ConfigError):
            CStateModel(
                (CStateSpec(name="C1", power_fraction=0.5, wake_latency_us=1.0),)
            )

    def test_rejects_non_monotone_power(self):
        with pytest.raises(ConfigError):
            CStateModel(
                (
                    CStateSpec(name="C0", power_fraction=1.0, wake_latency_us=0.0),
                    CStateSpec(name="C1", power_fraction=0.2, wake_latency_us=1.0),
                    CStateSpec(name="C3", power_fraction=0.5, wake_latency_us=5.0),
                )
            )

    def test_deeper_states_wake_slower(self, model):
        lats = [s.wake_latency_us for s in model.specs]
        assert lats == sorted(lats)

    def test_deepest(self, model):
        assert model.deepest.name == "C6"


class TestLookupAndResidency:
    def test_unknown_state_raises(self, model):
        with pytest.raises(ConfigError):
            model.spec("C9")

    def test_idle_power_fraction(self, model):
        assert model.idle_power_fraction("C0") == 1.0
        assert model.idle_power_fraction("C6") < 0.1

    def test_residency_accumulates(self, model):
        model.record_residency("C6", 1.5)
        model.record_residency("C6", 0.5)
        assert model.residency_s("C6") == pytest.approx(2.0)
        assert model.residency_s("C0") == 0.0

    def test_reset_residency(self, model):
        model.record_residency("C1", 1.0)
        model.reset_residency()
        assert model.residency_s("C1") == 0.0

    def test_wake_overhead(self, model):
        one = model.wake_overhead_s("C6", 1)
        assert one == pytest.approx(model.spec("C6").wake_latency_us * 1e-6)
        assert model.wake_overhead_s("C6", 10) == pytest.approx(10 * one)

    def test_wake_overhead_rejects_negative(self, model):
        with pytest.raises(ConfigError):
            model.wake_overhead_s("C6", -1)


class TestRaceToIdle:
    """Section II-B: 'it is more efficient to run briefly at peak speed
    and stay in a deep idle state for a longer time'."""

    def test_energy_accounting(self, model):
        # 10 s busy at 155 W then park in C6 for the rest of 100 s.
        e = model.race_to_idle_energy_j(
            busy_power_w=155.0,
            idle_core_power_w=50.0,
            busy_s=10.0,
            period_s=100.0,
            park_state="C6",
        )
        wake = model.spec("C6").wake_latency_us * 1e-6
        expected = 155.0 * (10.0 + wake) + 50.0 * 0.03 * (90.0 - wake)
        assert e == pytest.approx(expected)

    def test_deeper_park_state_saves_energy(self, model):
        kwargs = dict(
            busy_power_w=155.0, idle_core_power_w=50.0, busy_s=10.0, period_s=100.0
        )
        e_c1 = model.race_to_idle_energy_j(park_state="C1", **kwargs)
        e_c6 = model.race_to_idle_energy_j(park_state="C6", **kwargs)
        assert e_c6 < e_c1

    def test_busy_exceeding_period_rejected(self, model):
        with pytest.raises(ConfigError):
            model.race_to_idle_energy_j(155.0, 50.0, 101.0, 100.0)

    def test_fully_busy_period(self, model):
        e = model.race_to_idle_energy_j(155.0, 50.0, 100.0, 100.0, park_state="C0")
        assert e == pytest.approx(155.0 * 100.0)
