"""Thermal model: equilibrium, relaxation, stability."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.thermal import ThermalModel
from repro.config import ThermalConfig


@pytest.fixture
def model():
    return ThermalModel(ThermalConfig(), idle_power_w=101.0)


class TestSteadyState:
    def test_idle_power_sits_at_ambient(self, model):
        assert model.steady_state_c(101.0) == pytest.approx(25.0)

    def test_excess_power_heats_linearly(self, model):
        t1 = model.steady_state_c(121.0)
        t2 = model.steady_state_c(141.0)
        assert t2 - t1 == pytest.approx(20.0 * 0.35)

    def test_below_idle_clamps_to_ambient(self, model):
        assert model.steady_state_c(50.0) == pytest.approx(25.0)


class TestDynamics:
    def test_relaxes_toward_target(self, model):
        target = model.steady_state_c(155.0)
        model.step(155.0, dt_s=1.0)
        assert 25.0 < model.temperature_c < target

    def test_converges_after_many_tau(self, model):
        target = model.steady_state_c(155.0)
        for _ in range(20):
            model.step(155.0, dt_s=30.0)  # 20 tau
        assert model.temperature_c == pytest.approx(target, abs=0.01)

    def test_exact_discretisation_is_stepsize_invariant(self):
        # One 10 s step must equal ten 1 s steps exactly (we use the
        # closed-form solution, not Euler).
        a = ThermalModel(ThermalConfig(), idle_power_w=101.0)
        b = ThermalModel(ThermalConfig(), idle_power_w=101.0)
        a.step(155.0, 10.0)
        for _ in range(10):
            b.step(155.0, 1.0)
        assert a.temperature_c == pytest.approx(b.temperature_c, rel=1e-12)

    def test_zero_dt_is_noop(self, model):
        before = model.temperature_c
        model.step(155.0, 0.0)
        assert model.temperature_c == before

    def test_reset(self, model):
        model.step(155.0, 100.0)
        model.reset()
        assert model.temperature_c == pytest.approx(25.0)
        model.reset(40.0)
        assert model.temperature_c == pytest.approx(40.0)

    @given(
        st.floats(min_value=90.0, max_value=300.0),
        st.floats(min_value=0.01, max_value=1000.0),
    )
    def test_never_overshoots_target(self, power, dt):
        model = ThermalModel(ThermalConfig(), idle_power_w=101.0)
        target = model.steady_state_c(power)
        lo, hi = sorted((25.0, target))
        model.step(power, dt)
        assert lo - 1e-9 <= model.temperature_c <= hi + 1e-9
