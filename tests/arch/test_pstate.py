"""P-state table: generation, ordering, bracketing, dithering."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.pstate import PState, PStateTable
from repro.config import PStateTableConfig
from repro.errors import ConfigError


@pytest.fixture
def table():
    return PStateTable()


class TestTableGeneration:
    def test_sixteen_states(self, table):
        assert len(table) == 16

    def test_p0_is_turbo_reading(self, table):
        # Table II reports 2,701 MHz at P0 (turbo-read artifact).
        assert table.fastest.freq_mhz == pytest.approx(2701.0)

    def test_floor_is_1200(self, table):
        # The frequency Table II pins at for caps <= 130 W.
        assert table.slowest.freq_mhz == pytest.approx(1200.0)
        assert table.floor_freq_hz == pytest.approx(1.2e9)

    def test_frequencies_strictly_decrease(self, table):
        freqs = [s.freq_hz for s in table]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_voltage_scales_with_frequency(self, table):
        volts = [s.voltage_v for s in table]
        assert all(a > b for a, b in zip(volts, volts[1:]))
        assert table.fastest.voltage_v == pytest.approx(1.20)
        assert table.slowest.voltage_v == pytest.approx(0.85)

    def test_indices_are_acpi_convention(self, table):
        assert [s.index for s in table] == list(range(16))

    def test_getitem_bounds(self, table):
        assert table[0] is table.fastest
        assert table[15] is table.slowest
        with pytest.raises(ConfigError):
            table[16]
        with pytest.raises(ConfigError):
            table[-1]

    def test_custom_state_count(self):
        t = PStateTable(PStateTableConfig(n_states=4))
        assert len(t) == 4
        assert t.fastest.freq_mhz == pytest.approx(2701.0)
        assert t.slowest.freq_mhz == pytest.approx(1200.0)


class TestNeighbours:
    def test_slower_faster_roundtrip(self, table):
        mid = table[7]
        assert table.faster(table.slower(mid)).index == mid.index

    def test_slower_clamps_at_floor(self, table):
        assert table.slower(table.slowest) is table.slowest

    def test_faster_clamps_at_p0(self, table):
        assert table.faster(table.fastest) is table.fastest

    def test_nearest_below_frequency(self, table):
        st_ = table.nearest_below_frequency(2.0e9)
        assert st_.freq_hz <= 2.0e9
        assert table.faster(st_).freq_hz > 2.0e9

    def test_nearest_below_frequency_clamps(self, table):
        assert table.nearest_below_frequency(1.0e9) is table.slowest


class TestDynamicPower:
    def test_cmos_equation(self, table):
        # P = C f V^2 (Section II-B, quoting Rabaey et al.).
        p0 = table.fastest
        assert p0.dynamic_power_w(1e-9) == pytest.approx(
            1e-9 * p0.freq_hz * p0.voltage_v**2
        )

    def test_activity_scales_linearly(self, table):
        p0 = table.fastest
        assert p0.dynamic_power_w(1e-9, activity=0.5) == pytest.approx(
            0.5 * p0.dynamic_power_w(1e-9)
        )

    def test_power_decreases_with_index(self, table):
        powers = [s.dynamic_power_w(9e-9) for s in table]
        assert all(a > b for a, b in zip(powers, powers[1:]))


class TestBracketing:
    """Section II-A: 'if the power cap falls between the power
    consumption associated with two P-states, the BMC switches between
    the two states'."""

    @staticmethod
    def _power_of(state: PState) -> float:
        return 100.0 + state.dynamic_power_w(9e-9)

    def test_bracket_straddles_budget(self, table):
        budget = 120.0
        fast, slow = table.bracketing_pair(self._power_of, budget)
        assert slow.index == fast.index + 1
        assert self._power_of(slow) <= budget <= self._power_of(fast)

    def test_bracket_clamps_high(self, table):
        fast, slow = table.bracketing_pair(self._power_of, 1e6)
        assert fast is table.fastest and slow is table.fastest

    def test_bracket_clamps_low(self, table):
        fast, slow = table.bracketing_pair(self._power_of, 0.0)
        assert fast is table.slowest and slow is table.slowest

    def test_dither_fraction_meets_budget_in_expectation(self, table):
        budget = 121.3
        fast, slow, alpha = table.dither_fraction(self._power_of, budget)
        blended = alpha * self._power_of(fast) + (1 - alpha) * self._power_of(slow)
        assert blended == pytest.approx(budget)

    def test_dither_alpha_bounds(self, table):
        for budget in (0.0, 110.0, 125.0, 1e9):
            _, _, alpha = table.dither_fraction(self._power_of, budget)
            assert 0.0 <= alpha <= 1.0

    @given(st.floats(min_value=90.0, max_value=200.0))
    def test_dither_never_exceeds_budget_when_reachable(self, budget):
        table = PStateTable()
        powers = [self._power_of(s) for s in table]
        fast, slow, alpha = table.dither_fraction(self._power_of, budget)
        blended = alpha * self._power_of(fast) + (1 - alpha) * self._power_of(slow)
        if powers[-1] <= budget <= powers[0]:
            assert blended == pytest.approx(budget, abs=1e-6)
        elif budget < powers[-1]:
            # Unreachable: clamped to the floor.
            assert fast is table.slowest
