"""Platform configuration: geometry validation and paper constants."""

from __future__ import annotations

import pytest

from repro.config import (
    PAPER_IDLE_POWER_RANGE_W,
    PAPER_POWER_CAPS_W,
    BmcConfig,
    CacheGeometry,
    CStateSpec,
    DramConfig,
    EscalationLadderConfig,
    EscalationLevelSpec,
    PStateTableConfig,
    TlbGeometry,
    default_escalation_ladder,
)
from repro.errors import ConfigError


class TestPaperConstants:
    def test_nine_caps_highest_first(self):
        assert len(PAPER_POWER_CAPS_W) == 9
        assert PAPER_POWER_CAPS_W[0] == 160.0
        assert PAPER_POWER_CAPS_W[-1] == 120.0
        assert list(PAPER_POWER_CAPS_W) == sorted(PAPER_POWER_CAPS_W, reverse=True)
        # 5 W steps throughout.
        diffs = {
            a - b for a, b in zip(PAPER_POWER_CAPS_W, PAPER_POWER_CAPS_W[1:])
        }
        assert diffs == {5.0}

    def test_idle_range(self):
        assert PAPER_IDLE_POWER_RANGE_W == (100.0, 103.0)


class TestSandyBridgeConfig:
    def test_section_iii_geometry(self, config):
        # Section III's bullet list, verbatim.
        assert config.n_sockets == 2
        assert config.cores_per_socket == 8
        assert config.l1d.capacity_bytes == 32 * 1024
        assert config.l1i.capacity_bytes == 32 * 1024
        assert config.l2.capacity_bytes == 256 * 1024
        assert config.l3.capacity_bytes == 20 * 1024 * 1024
        assert config.dram.capacity_bytes == 64 * 1024**3
        assert config.pstates.n_states == 16

    def test_figure3_inferences(self, config):
        # Section IV-B items 4-8: latencies, 64 B lines, associativity.
        assert config.l1d.hit_latency_ns == 1.5
        assert config.l1d.miss_penalty_ns == 2.0
        assert config.l2.miss_penalty_ns == 5.1
        assert config.l3.miss_penalty_ns == 37.1
        assert config.dram.access_latency_ns == 60.0
        assert config.l1d.line_bytes == config.l2.line_bytes == 64
        assert config.l3.line_bytes == 64
        assert config.l1d.ways == 8
        assert config.l2.ways == 8
        assert config.l3.ways == 20

    def test_dvfs_range(self, config):
        assert config.pstates.f_max_mhz == 2701.0
        assert config.pstates.f_min_mhz == 1200.0

    def test_n_cores(self, config):
        assert config.n_cores == 16

    def test_with_overrides(self, config):
        other = config.with_overrides(base_cpi=1.0)
        assert other.base_cpi == 1.0
        assert config.base_cpi != 1.0  # original untouched (frozen)

    def test_cache_levels_mapping(self, config):
        levels = config.cache_levels()
        assert list(levels) == ["L1D", "L1I", "L2", "L3"]


class TestGeometryValidation:
    def test_cache_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError, match="power of two"):
            CacheGeometry(
                name="bad", capacity_bytes=24 * 1024, line_bytes=64, ways=2,
                hit_latency_ns=1.0, miss_penalty_ns=1.0,
            )

    def test_cache_rejects_indivisible_capacity(self):
        with pytest.raises(ConfigError):
            CacheGeometry(
                name="bad", capacity_bytes=1000, line_bytes=64, ways=3,
                hit_latency_ns=1.0, miss_penalty_ns=1.0,
            )

    def test_cache_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError, match="line size"):
            CacheGeometry(
                name="bad", capacity_bytes=96 * 48, line_bytes=96, ways=3,
                hit_latency_ns=1.0, miss_penalty_ns=1.0,
            )

    def test_cache_n_sets(self):
        g = CacheGeometry(
            name="L1", capacity_bytes=32 * 1024, line_bytes=64, ways=8,
            hit_latency_ns=1.0, miss_penalty_ns=1.0,
        )
        assert g.n_sets == 64

    def test_tlb_rejects_bad_ways(self):
        with pytest.raises(ConfigError):
            TlbGeometry(
                name="bad", entries=100, ways=3, page_bytes=4096,
                miss_penalty_ns=45.0,
            )

    def test_tlb_n_sets(self):
        g = TlbGeometry(
            name="ITLB", entries=128, ways=8, page_bytes=4096,
            miss_penalty_ns=45.0,
        )
        assert g.n_sets == 16

    def test_dram_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            DramConfig(
                capacity_bytes=0, access_latency_ns=60, bandwidth_gbs=50,
                background_w=5, active_w_per_gbs=0.3,
            )

    def test_pstate_table_rejects_inverted_range(self):
        with pytest.raises(ConfigError):
            PStateTableConfig(f_max_mhz=1000, f_min_mhz=2000)

    def test_cstate_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            CStateSpec(name="C1", power_fraction=1.5, wake_latency_us=1.0)


class TestEscalationLadder:
    def test_default_ladder_ordering(self):
        ladder = default_escalation_ladder()
        assert len(ladder.levels) == 4
        # Savings must increase with depth (deeper rungs include the
        # shallower mechanisms).
        savings = [l.power_saving_w for l in ladder.levels]
        assert savings == sorted(savings)
        # Savings stay small: "small decreases in power consumption".
        assert max(savings) < 5.0

    def test_default_ladder_gates_progressively(self):
        ladder = default_escalation_ladder()
        l3_fracs = [l.l3_way_fraction for l in ladder.levels]
        assert l3_fracs == sorted(l3_fracs, reverse=True)
        # Deepest level quarters the outer caches and slows DRAM.
        deepest = ladder.levels[-1]
        assert deepest.l3_way_fraction == 0.25
        assert deepest.dram_latency_multiplier > 1.0

    def test_level_spec_validation(self):
        with pytest.raises(ConfigError):
            EscalationLevelSpec(name="bad", l3_way_fraction=0.0)
        with pytest.raises(ConfigError):
            EscalationLevelSpec(name="bad", dram_latency_multiplier=0.5)
        with pytest.raises(ConfigError):
            EscalationLevelSpec(name="bad", power_saving_w=-1.0)

    def test_ladder_requires_levels(self):
        with pytest.raises(ConfigError):
            EscalationLadderConfig(levels=())

    def test_bmc_config_gets_default_ladder(self):
        bmc = BmcConfig()
        assert bmc.ladder is not None
        assert len(bmc.ladder.levels) == 4
