"""TLB simulator: reach, gating, conflict behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TlbGeometry
from repro.errors import ConfigError
from repro.mem.tlb import Tlb


def make_tlb(entries=16, ways=4, page=4096) -> Tlb:
    return Tlb(
        TlbGeometry(
            name="T", entries=entries, ways=ways, page_bytes=page,
            miss_penalty_ns=45.0,
        )
    )


class TestBasics:
    def test_cold_miss_then_hit(self):
        t = make_tlb()
        assert t.access_page(7) is False
        assert t.access_page(7) is True

    def test_same_page_bytes_share_translation(self):
        t = make_tlb()
        t.access_bytes(np.array([100], dtype=np.int64))
        assert t.access_page(0) is True  # address 100 is page 0

    def test_reach(self):
        # 16 entries x 4 KiB = 64 KiB reach: accesses within it hit.
        t = make_tlb(entries=16)
        pages = list(range(16))
        for p in pages:
            t.access_page(p)
        t.stats.reset()
        for p in pages:
            assert t.access_page(p) is True

    def test_exceeding_reach_thrashes(self):
        t = make_tlb(entries=16, ways=4)
        for _ in range(3):
            for p in range(32):  # 2x reach, cyclic
                t.access_page(p)
        t.stats.reset()
        for p in range(32):
            t.access_page(p)
        assert t.stats.miss_ratio == 1.0


class TestEntryGating:
    """The paper's smoking gun: iTLB misses exploding at low caps."""

    def test_fraction_maps_to_ways(self):
        t = make_tlb(entries=128, ways=8)
        t.set_enabled_fraction(0.125)
        assert t.enabled_entries == 16

    def test_minimum_one_way(self):
        t = make_tlb(entries=16, ways=4)
        t.set_enabled_fraction(0.01)
        assert t.enabled_entries == 4  # 1 way x 4 sets

    def test_invalid_fraction(self):
        t = make_tlb()
        with pytest.raises(ConfigError):
            t.set_enabled_fraction(0.0)
        with pytest.raises(ConfigError):
            t.set_enabled_fraction(1.5)

    def test_gating_explodes_hot_loop_misses(self):
        # A 24-page hot loop fits a 128-entry iTLB (no steady misses)
        # but thrashes one gated to 16 entries — the Table II iTLB
        # explosion mechanism.
        full = make_tlb(entries=128, ways=8)
        gated = make_tlb(entries=128, ways=8)
        gated.set_enabled_fraction(0.125)
        loop = [p for _ in range(50) for p in range(24)]
        for t in (full, gated):
            for p in loop:
                t.access_page(p)
        assert full.stats.misses == 24  # compulsory only
        assert gated.stats.misses > 20 * full.stats.misses

    def test_regate_up(self):
        t = make_tlb(entries=16, ways=4)
        t.set_enabled_fraction(0.25)
        t.set_enabled_fraction(1.0)
        assert t.enabled_entries == 16


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 30), max_size=300))
    def test_counter_conservation(self, addresses):
        t = make_tlb()
        t.access_bytes(np.asarray(addresses, dtype=np.int64))
        assert t.stats.hits + t.stats.misses == t.stats.accesses

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 26), max_size=300)
    )
    def test_gating_never_reduces_misses(self, addresses):
        arr = np.asarray(addresses, dtype=np.int64)
        full = make_tlb(entries=64, ways=4)
        gated = make_tlb(entries=64, ways=4)
        gated.set_enabled_fraction(0.5)
        m_full = full.access_bytes(arr)
        m_gated = gated.access_bytes(arr)
        assert m_gated >= m_full
