"""Composed hierarchy: nesting invariants and workload signatures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.mem.hierarchy import AccessCounts, AccessRates, MemoryHierarchy
from repro.mem.reconfig import GatingState, ReconfigEngine
from repro.trace.synthetic import random_trace, streaming_trace


class TestAccessCounts:
    def test_addition(self):
        a = AccessCounts(data_accesses=10, l1d_misses=2)
        b = AccessCounts(data_accesses=5, l1d_misses=1, l2_misses=1)
        c = a + b
        assert c.data_accesses == 15
        assert c.l1d_misses == 3
        assert c.l2_misses == 1

    def test_scaling(self):
        a = AccessCounts(data_accesses=10, l1d_misses=4)
        s = a.scaled(2.5)
        assert s.data_accesses == 25 and s.l1d_misses == 10

    def test_negative_scale_rejected(self):
        with pytest.raises(SimulationError):
            AccessCounts().scaled(-1.0)

    def test_nesting_validation(self):
        with pytest.raises(SimulationError):
            AccessCounts(data_accesses=5, l1d_misses=6).validate_nesting()
        with pytest.raises(SimulationError):
            AccessCounts(
                data_accesses=10, l1d_misses=2, l2_misses=3
            ).validate_nesting()


class TestAccessRates:
    def test_roundtrip(self):
        counts = AccessCounts(
            data_accesses=1000, ifetches=500, l1d_misses=100,
            l1i_misses=10, l2_misses=20, l3_misses=5,
            itlb_misses=2, dtlb_misses=8,
        )
        rates = AccessRates.from_counts(counts, instructions=2000)
        back = rates.counts_for(2000)
        assert back == counts

    def test_requires_positive_instructions(self):
        with pytest.raises(SimulationError):
            AccessRates.from_counts(AccessCounts(), 0)


class TestHierarchySimulation:
    def test_streaming_signature(self, small_config):
        """A stream larger than every cache misses at every level at
        (roughly) the line rate — SIRE's Table II signature."""
        h = MemoryHierarchy(small_config)
        trace = streaming_trace(256 * 1024, 40_000, element_bytes=4)
        h.simulate_data_trace(trace)  # warm
        c = h.simulate_data_trace(streaming_trace(256 * 1024, 40_000, element_bytes=4))
        line_rate = 4 / 64
        assert c.l1d_misses / c.data_accesses == pytest.approx(line_rate, rel=0.2)
        # Streaming misses propagate: L2 and L3 miss counts track L1's.
        assert c.l2_misses == pytest.approx(c.l1d_misses, rel=0.05)
        assert c.l3_misses == pytest.approx(c.l2_misses, rel=0.05)

    def test_resident_signature(self, small_config):
        """A working set inside L1 generates no steady-state misses."""
        h = MemoryHierarchy(small_config)
        rng = np.random.default_rng(0)
        trace = random_trace(512, 20_000, rng, element_bytes=8)
        h.simulate_data_trace(trace[:2000])
        c = h.simulate_data_trace(trace[2000:])
        assert c.l1d_misses == 0

    def test_l2_resident_signature(self, small_config):
        """Between L1 and L2 capacity: L1 misses served by L2 —
        Stereo's baseline signature (L2 misses << L1 misses)."""
        h = MemoryHierarchy(small_config)
        rng = np.random.default_rng(0)
        trace = random_trace(3072, 30_000, rng, element_bytes=8)
        h.simulate_data_trace(trace[:10000])
        c = h.simulate_data_trace(trace[10000:])
        assert c.l1d_misses > 0
        assert c.l2_misses < 0.05 * c.l1d_misses

    def test_way_gating_hurts_resident_not_streaming(self, small_config):
        """The paper's central counter observation (Section IV-B)."""
        engine = ReconfigEngine(small_config)
        gated = GatingState(l2_way_fraction=0.25, l3_way_fraction=0.25)
        rng = np.random.default_rng(0)

        def measure(trace, gating):
            h = MemoryHierarchy(small_config)
            engine.apply(h, gating)
            h.simulate_data_trace(trace[: len(trace) // 3])
            return h.simulate_data_trace(trace[len(trace) // 3 :])

        resident = random_trace(8192, 30_000, rng, element_bytes=8)
        r_full = measure(resident, GatingState.ungated())
        r_gated = measure(resident, gated)
        assert r_gated.l3_misses > 2 * max(1, r_full.l3_misses)

        stream = streaming_trace(256 * 1024, 30_000, element_bytes=4)
        s_full = measure(stream, GatingState.ungated())
        s_gated = measure(stream, gated)
        assert s_gated.l3_misses == pytest.approx(s_full.l3_misses, rel=0.05)

    def test_ifetch_stream_uses_own_l1_and_itlb(self, small_config):
        h = MemoryHierarchy(small_config)
        trace = streaming_trace(64 * 1024, 5000, element_bytes=16, base=1 << 40)
        c = h.simulate_ifetch_trace(trace)
        assert c.ifetches == 5000
        assert c.l1i_misses > 0
        assert c.itlb_misses > 0
        assert c.data_accesses == 0 and c.l1d_misses == 0
        # Data-side components untouched.
        assert h.l1d.stats.accesses == 0
        assert h.dtlb.stats.accesses == 0

    def test_slice_combines_both_streams(self, small_config):
        h = MemoryHierarchy(small_config)
        data = streaming_trace(32 * 1024, 3000, element_bytes=4)
        ifetch = streaming_trace(8 * 1024, 1000, element_bytes=16, base=1 << 40)
        c = h.simulate_slice(data, ifetch)
        assert c.data_accesses == 3000 and c.ifetches == 1000
        c.validate_nesting()

    def test_flush_and_reset_stats(self, small_config):
        h = MemoryHierarchy(small_config)
        h.simulate_data_trace(streaming_trace(4096, 500, element_bytes=4))
        h.reset_stats()
        assert h.l1d.stats.accesses == 0
        h.flush_all()
        c = h.simulate_data_trace(np.array([0], dtype=np.int64))
        assert c.l1d_misses == 1  # cold again

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=2000))
    def test_nesting_invariant_random_traces(self, n):
        from repro.config import sandy_bridge_config

        cfg = sandy_bridge_config()
        h = MemoryHierarchy(cfg)
        rng = np.random.default_rng(n)
        trace = rng.integers(0, 1 << 28, size=n)
        c = h.simulate_data_trace(np.asarray(trace, dtype=np.int64))
        c.validate_nesting()
        assert c.data_accesses == n
