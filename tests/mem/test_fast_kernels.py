"""Vectorized cache/TLB kernels vs the scalar reference.

The fast engine is only admissible because it is *exact*: for any trace
and any geometry, `access_lines`/`access_vpns` must produce the same
per-access hit/miss sequence (and the same final LRU state) as the
one-at-a-time scalar walk.  These tests check that equivalence by
property, plus the trace-engine and nesting-clamp layers above it.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheGeometry, TlbGeometry, sandy_bridge_config
from repro.errors import SimulationError
from repro.mem.cache import SetAssociativeCache
from repro.mem.fastsim import TraceEngine
from repro.mem.hierarchy import AccessCounts, AccessRates, MemoryHierarchy
from repro.mem.reconfig import GatingState, ReconfigEngine
from repro.mem.tlb import Tlb
from repro.rng import RngStreams
from repro.workloads.stereo import StereoMatchingWorkload


def make_cache(n_sets=16, line=64, ways=2) -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheGeometry(
            name="T",
            capacity_bytes=n_sets * line * ways,
            line_bytes=line,
            ways=ways,
            hit_latency_ns=1.0,
            miss_penalty_ns=1.0,
        )
    )


def make_tlb(entries=64, ways=4) -> Tlb:
    return Tlb(
        TlbGeometry(
            name="T", entries=entries, ways=ways, page_bytes=4096,
            miss_penalty_ns=30.0,
        )
    )


geometries = st.tuples(
    st.sampled_from([2, 4, 16, 64]),   # sets
    st.sampled_from([1, 2, 4, 8]),     # ways
)


class TestCacheKernel:
    @settings(max_examples=60, deadline=None)
    @given(
        geom=geometries,
        data=st.lists(st.integers(min_value=0, max_value=255), max_size=300),
        enabled=st.integers(min_value=1, max_value=8),
        split=st.integers(min_value=0, max_value=300),
    )
    def test_matches_scalar_per_access(self, geom, data, enabled, split):
        sets, ways = geom
        enabled = min(enabled, ways)
        vec = make_cache(n_sets=sets, ways=ways)
        ref = make_cache(n_sets=sets, ways=ways)
        vec.set_enabled_ways(enabled)
        ref.set_enabled_ways(enabled)
        lines = np.asarray(data, dtype=np.int64)
        # Split into two batches: state must carry across kernel calls.
        miss = np.concatenate(
            [vec.access_lines(lines[:split]), vec.access_lines(lines[split:])]
        )
        expected = np.array(
            [not ref.access_line(int(l)) for l in data], dtype=bool
        )
        np.testing.assert_array_equal(miss, expected)
        assert vec.stats == ref.stats
        assert vec._sets == ref._sets  # identical final LRU state

    def test_access_bytes_equals_scalar_loop(self):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 20, size=2000)
        vec = make_cache(n_sets=64, ways=4)
        ref = make_cache(n_sets=64, ways=4)
        misses = vec.access_bytes(addrs)
        expected = sum(
            not ref.access_line(ref.line_address(int(a))) for a in addrs
        )
        assert misses == expected

    def test_rejects_2d_input(self):
        with pytest.raises(SimulationError):
            make_cache().access_lines(np.zeros((2, 2), dtype=np.int64))

    def test_empty_trace(self):
        c = make_cache()
        assert c.access_lines(np.array([], dtype=np.int64)).shape == (0,)
        assert c.stats.accesses == 0


class TestTlbKernel:
    @settings(max_examples=40, deadline=None)
    @given(
        ways=st.sampled_from([1, 2, 4, 8]),
        data=st.lists(st.integers(min_value=0, max_value=127), max_size=200),
        fraction=st.sampled_from([1.0, 0.5, 0.25]),
    )
    def test_matches_scalar_per_access(self, ways, data, fraction):
        vec = make_tlb(entries=16 * ways, ways=ways)
        ref = make_tlb(entries=16 * ways, ways=ways)
        vec.set_enabled_fraction(fraction)
        ref.set_enabled_fraction(fraction)
        vpns = np.asarray(data, dtype=np.int64)
        miss = vec.access_vpns(vpns)
        expected = np.array(
            [not ref.access_page(int(v)) for v in data], dtype=bool
        )
        np.testing.assert_array_equal(miss, expected)
        assert vec.stats == ref.stats


class TestHierarchyVectorized:
    @pytest.mark.parametrize("gating", [
        GatingState.ungated(),
        GatingState(l2_way_fraction=0.5, l3_way_fraction=0.5,
                    itlb_fraction=0.5),
    ])
    def test_data_trace_matches_scalar(self, gating):
        cfg = sandy_bridge_config()
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 24, size=5000)
        fast = MemoryHierarchy(cfg)
        slow = MemoryHierarchy(cfg)
        ReconfigEngine(cfg).apply(fast, gating)
        ReconfigEngine(cfg).apply(slow, gating)
        assert fast.simulate_data_trace(addrs) == slow.simulate_data_trace_scalar(addrs)

    def test_ifetch_trace_matches_scalar(self):
        cfg = sandy_bridge_config()
        rng = np.random.default_rng(4)
        addrs = np.cumsum(rng.integers(0, 32, size=5000)) % (1 << 22)
        fast = MemoryHierarchy(cfg)
        slow = MemoryHierarchy(cfg)
        assert fast.simulate_ifetch_trace(addrs) == slow.simulate_ifetch_trace_scalar(addrs)


class TestTraceEngine:
    def test_counts_match_gated_replay(self):
        cfg = sandy_bridge_config()
        wl = StereoMatchingWorkload()
        sl = wl.build_slice(RngStreams(11).fresh("slice:t"), 40_000)
        engine = TraceEngine(cfg, sl)
        gatings = [
            GatingState.ungated(),
            GatingState(l2_way_fraction=0.5, l3_way_fraction=0.5,
                        itlb_fraction=0.125),
            GatingState(l2_way_fraction=0.25, l3_way_fraction=0.25,
                        itlb_fraction=0.0625),
        ]
        d_warm, d_meas, i_warm, i_meas = sl.split_warmup()
        for gating in gatings:
            hierarchy = MemoryHierarchy(cfg)
            ReconfigEngine(cfg).apply(hierarchy, gating)
            if len(sl.preload_addresses):
                hierarchy.simulate_data_trace(sl.preload_addresses)
            hierarchy.simulate_slice(d_warm, i_warm)
            expected = hierarchy.simulate_slice(d_meas, i_meas)
            assert engine.counts(gating) == expected, gating

    def test_memoizes_across_equivalent_gatings(self):
        cfg = sandy_bridge_config()
        wl = StereoMatchingWorkload()
        sl = wl.build_slice(RngStreams(11).fresh("slice:t"), 20_000)
        engine = TraceEngine(cfg, sl)
        g = GatingState(l2_way_fraction=0.5, l3_way_fraction=0.5,
                        itlb_fraction=0.125)
        first = engine.counts(g)
        # Second call must come from the memo (same object contents).
        assert engine.counts(g) == first


class TestNestingClamp:
    def _counts(self) -> AccessCounts:
        return AccessCounts(
            data_accesses=400, ifetches=1000,
            l1d_misses=40, l1i_misses=10, l2_misses=25, l3_misses=25,
            dtlb_misses=3, itlb_misses=2,
        )

    def test_scaled_preserves_nesting_at_awkward_factors(self):
        base = self._counts()
        # Factors engineered so naive rounding would break l3 <= l2.
        for factor in (0.0613, 0.4999, 1.0 / 3.0, 0.001, 17.77):
            base.scaled(factor).validate_nesting()

    def test_counts_for_preserves_nesting(self):
        rates = AccessRates.from_counts(self._counts(), 1000.0)
        for n in (1, 7, 999, 123_456.78):
            rates.counts_for(n).validate_nesting()
