"""Stream prefetcher: detection, traffic accounting, counter inflation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.prefetch import StreamPrefetcher
from repro.trace.synthetic import random_trace, streaming_trace


class TestDetector:
    def test_confirms_ascending_run(self):
        pf = StreamPrefetcher(degree=2, confirm=2)
        assert pf.observe_demand_miss(100) == []
        fetched = pf.observe_demand_miss(101)
        assert fetched == [102, 103]
        assert pf.stats.streams_detected == 1

    def test_random_misses_never_confirm(self):
        pf = StreamPrefetcher(confirm=2)
        rng = np.random.default_rng(0)
        for line in rng.integers(0, 1 << 20, size=500):
            pf.observe_demand_miss(int(line) * 7 + 1)  # avoid runs
        assert pf.stats.issued == 0

    def test_no_duplicate_inflight(self):
        pf = StreamPrefetcher(degree=4, confirm=2)
        pf.observe_demand_miss(10)
        first = pf.observe_demand_miss(11)
        second = pf.observe_demand_miss(12)
        assert set(first) & set(second) == set()

    def test_usefulness_credit(self):
        pf = StreamPrefetcher(degree=2, confirm=2)
        pf.observe_demand_miss(10)
        fetched = pf.observe_demand_miss(11)
        for line in fetched:
            pf.observe_demand_access(line)
        assert pf.stats.useful_hits == len(fetched)
        assert pf.stats.accuracy == 1.0

    def test_table_eviction(self):
        pf = StreamPrefetcher(table_size=2, confirm=2)
        pf.observe_demand_miss(10)
        pf.observe_demand_miss(100)
        pf.observe_demand_miss(200)  # evicts the oldest (10)
        assert pf.observe_demand_miss(11) == []  # stream lost

    def test_validation(self):
        with pytest.raises(ConfigError):
            StreamPrefetcher(degree=0)


class TestHierarchyIntegration:
    def test_streaming_inflates_counter_visible_l2(self, config):
        """The SIRE anomaly, explained: for a pure stream the
        prefetcher fires on nearly every demand miss, so the
        counter-visible L2 misses far exceed the demand misses."""
        trace = streaming_trace(64 * 1024 * 1024, 120_000, element_bytes=4)
        plain = MemoryHierarchy(config)
        c_plain = plain.simulate_data_trace(trace)
        assert c_plain.prefetch_l2_requests == 0

        with_pf = MemoryHierarchy(config, prefetcher=StreamPrefetcher(degree=4))
        c_pf = with_pf.simulate_data_trace(trace)
        assert c_pf.prefetch_l2_misses > 0
        assert (
            c_pf.counter_visible_l2_misses
            > 1.5 * c_pf.l2_misses
        )

    def test_demand_misses_not_increased_by_prefetch(self, config):
        """Prefetching may only help (or be neutral) for demand misses
        on a pure stream — never hurt."""
        trace = streaming_trace(32 * 1024 * 1024, 80_000, element_bytes=4)
        plain = MemoryHierarchy(config).simulate_data_trace(trace)
        pf = MemoryHierarchy(
            config, prefetcher=StreamPrefetcher(degree=4)
        ).simulate_data_trace(trace)
        assert pf.l2_misses <= plain.l2_misses
        assert pf.l1d_misses == plain.l1d_misses  # L1 untouched

    def test_random_workload_unaffected(self, config):
        rng = np.random.default_rng(1)
        trace = random_trace(32 * 1024 * 1024, 40_000, rng, element_bytes=64)
        pf = MemoryHierarchy(
            config, prefetcher=StreamPrefetcher(degree=4)
        ).simulate_data_trace(trace)
        # Random lines never confirm a stream.
        assert pf.prefetch_l2_requests < 0.01 * pf.data_accesses

    def test_counts_arithmetic_carries_prefetch_fields(self, config):
        trace = streaming_trace(8 * 1024 * 1024, 30_000, element_bytes=4)
        h = MemoryHierarchy(config, prefetcher=StreamPrefetcher())
        c = h.simulate_data_trace(trace)
        doubled = c + c
        assert doubled.prefetch_l2_misses == 2 * c.prefetch_l2_misses
        scaled = c.scaled(3.0)
        assert scaled.prefetch_l2_requests == 3 * c.prefetch_l2_requests
