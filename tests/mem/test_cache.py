"""Set-associative cache: hits, LRU, capacity, way gating."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheGeometry
from repro.errors import ConfigError
from repro.mem.cache import SetAssociativeCache


def make_cache(capacity=1024, line=64, ways=2) -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheGeometry(
            name="T", capacity_bytes=capacity, line_bytes=line, ways=ways,
            hit_latency_ns=1.0, miss_penalty_ns=1.0,
        )
    )


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert c.access_line(5) is False
        assert c.access_line(5) is True
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_line_address(self):
        c = make_cache(line=64)
        assert c.line_address(0) == 0
        assert c.line_address(63) == 0
        assert c.line_address(64) == 1

    def test_within_capacity_no_steady_state_misses(self):
        c = make_cache(capacity=1024, line=64, ways=2)  # 16 lines
        lines = list(range(16))
        for l in lines:
            c.access_line(l)
        c.stats.reset()
        for _ in range(10):
            for l in lines:
                assert c.access_line(l) is True
        assert c.stats.misses == 0

    def test_capacity_thrash(self):
        # A cyclic sweep over 2x capacity with LRU misses every access.
        c = make_cache(capacity=1024, line=64, ways=2)
        lines = list(range(32))
        for _ in range(3):
            for l in lines:
                c.access_line(l)
        c.stats.reset()
        for l in lines:
            assert c.access_line(l) is False

    def test_lru_within_set(self):
        c = make_cache(capacity=1024, line=64, ways=2)  # 8 sets
        # Three lines mapping to set 0: 0, 8, 16.
        c.access_line(0)
        c.access_line(8)
        c.access_line(0)      # 0 is now MRU; 8 is LRU
        c.access_line(16)     # evicts 8
        assert c.access_line(0) is True
        assert c.access_line(8) is False

    def test_flush_preserves_counters(self):
        c = make_cache()
        c.access_line(1)
        c.flush()
        assert c.stats.accesses == 1
        assert c.access_line(1) is False
        assert c.resident_lines() == 1


class TestWayGating:
    def test_effective_capacity(self):
        c = make_cache(capacity=1024, ways=2)
        assert c.effective_capacity_bytes == 1024
        c.set_enabled_ways(1)
        assert c.effective_capacity_bytes == 512

    def test_gating_invalidates_lru_tail(self):
        c = make_cache(capacity=1024, ways=2)
        c.access_line(0)
        c.access_line(8)   # set 0 now holds [8, 0]
        c.set_enabled_ways(1)
        assert c.stats.gating_invalidations == 1
        assert c.access_line(8) is True    # MRU survived
        assert c.access_line(0) is False   # LRU was dropped

    def test_gating_raises_miss_rate(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 2048, size=4000) * 64  # 2x capacity
        full = make_cache(capacity=64 * 1024, ways=8)
        gated = make_cache(capacity=64 * 1024, ways=8)
        gated.set_enabled_ways(2)
        full.access_bytes(np.asarray(addrs))
        gated.access_bytes(np.asarray(addrs))
        assert gated.stats.misses > full.stats.misses

    def test_regating_up_restores_capacity(self):
        c = make_cache(capacity=1024, ways=2)
        c.set_enabled_ways(1)
        c.set_enabled_ways(2)
        assert c.enabled_ways == 2
        # 16 lines fit again.
        for l in range(16):
            c.access_line(l)
        c.stats.reset()
        for l in range(16):
            assert c.access_line(l) is True

    def test_invalid_way_counts(self):
        c = make_cache(ways=2)
        with pytest.raises(ConfigError):
            c.set_enabled_ways(0)
        with pytest.raises(ConfigError):
            c.set_enabled_ways(3)


class TestVectorInterface:
    def test_access_bytes_matches_scalar(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 20, size=3000)
        a = make_cache(capacity=4096, ways=4)
        b = make_cache(capacity=4096, ways=4)
        misses_vec = a.access_bytes(np.asarray(addrs))
        misses_scalar = sum(
            0 if b.access_line(int(x) >> 6) else 1 for x in addrs
        )
        assert misses_vec == misses_scalar

    def test_rejects_2d(self):
        c = make_cache()
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            c.access_bytes(np.zeros((2, 2), dtype=np.int64))


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=400))
    def test_counter_conservation(self, addresses):
        c = make_cache(capacity=2048, ways=2)
        c.access_bytes(np.asarray(addresses, dtype=np.int64))
        assert c.stats.hits + c.stats.misses == c.stats.accesses
        assert 0 <= c.stats.miss_ratio <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=400))
    def test_residency_bounded_by_enabled_capacity(self, addresses):
        c = make_cache(capacity=2048, ways=2)
        c.set_enabled_ways(1)
        c.access_bytes(np.asarray(addresses, dtype=np.int64))
        assert c.resident_lines() <= c.effective_capacity_bytes // 64

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1,
            max_size=300,
        )
    )
    def test_gating_never_reduces_misses(self, addresses):
        """Fewer ways can never produce fewer misses for the same trace
        (LRU is a stack algorithm: the inclusion property holds per set)."""
        arr = np.asarray(addresses, dtype=np.int64)
        full = make_cache(capacity=4096, ways=4)
        gated = make_cache(capacity=4096, ways=4)
        gated.set_enabled_ways(2)
        m_full = full.access_bytes(arr)
        m_gated = gated.access_bytes(arr)
        assert m_gated >= m_full
