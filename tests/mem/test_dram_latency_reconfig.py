"""DRAM model, access costs, and the reconfiguration engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, SimulationError
from repro.mem.dram import Dram
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.latency import AccessCosts, stall_ns_per_instruction
from repro.mem.reconfig import GatingState, ReconfigEngine


class TestDram:
    def test_gating_multiplies_latency(self, config):
        d = Dram(config.dram)
        assert d.access_latency_ns == 60.0
        d.set_latency_multiplier(3.0)
        assert d.access_latency_ns == 180.0

    def test_multiplier_below_one_rejected(self, config):
        with pytest.raises(ConfigError):
            Dram(config.dram).set_latency_multiplier(0.5)

    def test_traffic_power_clamps_at_bandwidth(self, config):
        d = Dram(config.dram)
        at_bw = d.traffic_power_w(config.dram.bandwidth_gbs * 1e9)
        beyond = d.traffic_power_w(10 * config.dram.bandwidth_gbs * 1e9)
        assert beyond == pytest.approx(at_bw)

    def test_traffic_from_miss_rate(self, config):
        d = Dram(config.dram)
        bps = d.traffic_bytes_per_second(1e-3, 3e9, line_bytes=64)
        assert bps == pytest.approx(1e-3 * 3e9 * 64)


class TestAccessCosts:
    def test_ungated_matches_figure3(self, config):
        c = AccessCosts.from_config(config)
        # Section IV-B items 4-6: 1.5 ns L1, 3.5 ns L2, 8.6 ns L3.
        assert c.l1_serve_ns == pytest.approx(1.5)
        assert c.l2_serve_ns == pytest.approx(3.5)
        assert c.l3_serve_ns == pytest.approx(8.6)
        assert c.dram_serve_ns == pytest.approx(8.6 + 37.1)

    def test_costs_monotone_outward(self, config):
        c = AccessCosts.from_config(config)
        assert c.l1_serve_ns < c.l2_serve_ns < c.l3_serve_ns < c.dram_serve_ns

    def test_dram_gating_inflates_outer_costs_only(self, config):
        gated = AccessCosts.from_config(
            config, GatingState(dram_latency_multiplier=4.0)
        )
        base = AccessCosts.from_config(config)
        assert gated.l1_serve_ns == base.l1_serve_ns
        assert gated.dram_serve_ns == pytest.approx(
            base.dram_serve_ns + 3 * config.dram.access_latency_ns
        )

    def test_cache_gating_inflates_all_levels(self, config):
        gated = AccessCosts.from_config(
            config, GatingState(cache_latency_multiplier=2.0)
        )
        base = AccessCosts.from_config(config)
        assert gated.l1_serve_ns == pytest.approx(2 * base.l1_serve_ns)
        assert gated.l3_serve_ns == pytest.approx(2 * base.l3_serve_ns)

    def test_average_access_time_weighted(self, config):
        c = AccessCosts.from_config(config)
        # All hits in L1:
        assert c.average_access_ns(100, 0, 0, 0) == pytest.approx(1.5)
        # All served by DRAM:
        assert c.average_access_ns(100, 100, 100, 100) == pytest.approx(
            c.dram_serve_ns
        )

    def test_average_rejects_non_nested_counts(self, config):
        c = AccessCosts.from_config(config)
        with pytest.raises(SimulationError):
            c.average_access_ns(100, 10, 20, 5)  # L2 > L1 misses

    def test_serve_ns_for_level(self, config):
        c = AccessCosts.from_config(config)
        assert c.serve_ns_for_level("L1") == c.l1_serve_ns
        assert c.serve_ns_for_level("DRAM") == c.dram_serve_ns
        with pytest.raises(SimulationError):
            c.serve_ns_for_level("L4")


class TestStallModel:
    def test_zero_rates_zero_stall(self, config):
        costs = AccessCosts.from_config(config)

        class Rates:
            l1d_misses = l1i_misses = l2_misses = l3_misses = 0.0
            itlb_misses = dtlb_misses = 0.0

        assert stall_ns_per_instruction(Rates(), costs) == 0.0

    def test_hierarchical_pricing(self, config):
        costs = AccessCosts.from_config(config)

        class Rates:
            l1d_misses = 1.0
            l1i_misses = 0.0
            l2_misses = 1.0
            l3_misses = 1.0
            itlb_misses = dtlb_misses = 0.0

        # One access missing everything pays the full DRAM - L1 delta.
        expected = costs.dram_serve_ns - costs.l1_serve_ns
        assert stall_ns_per_instruction(Rates(), costs) == pytest.approx(expected)


class TestReconfigEngine:
    def test_apply_sets_ways_and_fractions(self, config):
        h = MemoryHierarchy(config)
        engine = ReconfigEngine(config)
        state = GatingState(
            l3_way_fraction=0.5,
            l2_way_fraction=0.5,
            itlb_fraction=0.125,
            dram_latency_multiplier=2.0,
        )
        engine.apply(h, state)
        assert h.l3.enabled_ways == 10
        assert h.l2.enabled_ways == 4
        assert h.l1d.enabled_ways == 8  # untouched
        assert h.itlb.enabled_entries == 16
        assert h.dram.latency_multiplier == 2.0
        assert h.gating == state

    def test_apply_ungated_restores(self, config):
        h = MemoryHierarchy(config)
        engine = ReconfigEngine(config)
        engine.apply(h, GatingState(l3_way_fraction=0.25))
        engine.apply(h, GatingState.ungated())
        assert h.l3.enabled_ways == 20

    def test_savings_small_and_monotone(self, config):
        # "small decreases in power consumption at the cost of high
        # losses in execution time performance."
        engine = ReconfigEngine(config)
        ladder = config.bmc.ladder
        savings = [
            engine.leakage_saving_w(GatingState.from_level(l))
            for l in ladder.levels
        ]
        assert all(0 < s < 6.0 for s in savings)
        assert savings == sorted(savings)

    def test_firmware_table_close_to_physical_estimate(self, config):
        # The configured per-rung savings should be within ~1.5 W of
        # the engine's leakage-derived estimate (consistency check).
        engine = ReconfigEngine(config)
        for level in config.bmc.ladder.levels:
            est = engine.leakage_saving_w(GatingState.from_level(level))
            assert abs(est - level.power_saving_w) < 1.5


class TestGatingState:
    def test_ungated_singleton_semantics(self):
        assert GatingState.ungated().is_ungated
        assert not GatingState(l3_way_fraction=0.5).is_ungated

    def test_hashable_and_config_key(self):
        a = GatingState(l3_way_fraction=0.5, dram_latency_multiplier=2.0)
        b = GatingState(l3_way_fraction=0.5, dram_latency_multiplier=4.0)
        assert a != b
        # Latency multipliers are excluded from the miss-relevant key.
        assert a.config_key() == b.config_key()
        assert len({a, b}) == 2

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_valid_fractions_accepted(self, f):
        GatingState(l3_way_fraction=f)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            GatingState(l2_way_fraction=0.0)
        with pytest.raises(ConfigError):
            GatingState(cache_latency_multiplier=0.9)
