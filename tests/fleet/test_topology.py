"""Fleet topology construction and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fleet import DEFAULT_NODE_CLASS, FleetTopology, NodeClass


class TestNodeClass:
    def test_defaults_are_the_paper_node(self):
        assert DEFAULT_NODE_CLASS.idle_w == 110.0
        assert DEFAULT_NODE_CLASS.busy_w == 200.0
        assert DEFAULT_NODE_CLASS.min_cap_w == 110.0
        assert DEFAULT_NODE_CLASS.max_cap_w == 200.0

    def test_round_trip(self):
        original = NodeClass(name="gpu", idle_w=150, busy_w=450,
                             min_cap_w=160, max_cap_w=400, priority=3)
        assert NodeClass.from_dict(original.to_dict()) == original

    def test_validation(self):
        with pytest.raises(ConfigError):
            NodeClass(idle_w=200, busy_w=100)
        with pytest.raises(ConfigError):
            NodeClass(min_cap_w=0)
        with pytest.raises(ConfigError):
            NodeClass(priority=0)
        with pytest.raises(ConfigError):
            NodeClass.from_dict({"bogus_key": 1})


class TestFleetTopology:
    def test_build_shapes(self):
        topo = FleetTopology.build(rows=3, racks_per_row=4, nodes_per_rack=5)
        assert topo.n_rows == 3
        assert topo.n_racks == 12
        assert topo.n_nodes == 60
        assert topo.rack_ptr[-1] == 60
        assert topo.row_ptr[-1] == 12
        assert len(topo.rack_of_node) == 60
        assert len(topo.row_of_rack) == 12

    def test_class_interleaving(self):
        small = NodeClass(name="small", busy_w=150.0, max_cap_w=150.0)
        big = NodeClass(name="big", idle_w=150.0, busy_w=400.0,
                        min_cap_w=150.0, max_cap_w=400.0)
        topo = FleetTopology.build(
            rows=1, racks_per_row=1, nodes_per_rack=6,
            node_classes=(small, big),
        )
        np.testing.assert_array_equal(
            topo.busy_w, [150.0, 400.0] * 3
        )

    def test_from_spec_round_trip(self):
        spec = {
            "rows": 2,
            "racks_per_row": 3,
            "nodes_per_rack": 4,
            "node_classes": [NodeClass(name="x").to_dict()],
        }
        topo = FleetTopology.from_spec(spec)
        assert topo.n_nodes == 24
        assert topo.to_dict()["node_classes"][0]["name"] == "x"

    def test_from_spec_missing_keys(self):
        with pytest.raises(ConfigError):
            FleetTopology.from_spec({"rows": 2})

    def test_build_rejects_degenerate_shapes(self):
        with pytest.raises(ConfigError):
            FleetTopology.build(rows=0, racks_per_row=1, nodes_per_rack=1)
        with pytest.raises(ConfigError):
            FleetTopology.build(rows=1, racks_per_row=1, nodes_per_rack=1,
                                node_classes=())
