"""The tier-1 parity contract: repro.fleet vs the serial DCM stack.

A small fleet stepped through :class:`~repro.fleet.engine.FleetEngine`
must reproduce the :class:`~repro.dcm.manager.DataCenterManager` +
:class:`~repro.dcm.group.NodeGroup` +
:class:`~repro.dcm.balancer.GroupBalancer` loop on the same demand
schedule: identical rebalance decisions and times, caps and readings
within :data:`~repro.fleet.parity.CAP_TOLERANCE_W` (see docs/FLEET.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dcm.group import DivisionStrategy
from repro.errors import ConfigError
from repro.fleet import (
    CAP_TOLERANCE_W,
    FleetTopology,
    NodeClass,
    parity_topology,
    run_parity,
)


class TestParityContract:
    @pytest.mark.parametrize("strategy", list(DivisionStrategy))
    def test_all_strategies_match(self, strategy):
        result = run_parity(strategy=strategy, ticks=24)
        assert result.decisions_match, (
            f"{strategy}: {result.serial_decisions} != "
            f"{result.fleet_decisions}"
        )
        assert result.armed_states_match
        assert result.max_cap_delta_w <= CAP_TOLERANCE_W
        assert result.max_reading_delta_w <= CAP_TOLERANCE_W
        assert result.ok()

    def test_eight_nodes_heterogeneous_priorities(self):
        classes = (
            NodeClass(name="hi", priority=3),
            NodeClass(name="lo", priority=1),
        )
        topo = parity_topology(8, node_classes=classes)
        result = run_parity(
            topo,
            strategy=DivisionStrategy.PRIORITY,
            budget_w=1100.0,
            ticks=20,
        )
        assert result.ok()

    def test_heterogeneous_clamp_ranges(self):
        classes = (
            NodeClass(name="narrow", min_cap_w=130.0, max_cap_w=170.0),
            NodeClass(name="wide"),
        )
        topo = parity_topology(6, node_classes=classes)
        result = run_parity(
            topo,
            strategy=DivisionStrategy.PROPORTIONAL,
            budget_w=840.0,
            ticks=20,
        )
        assert result.ok()

    def test_tight_threshold_more_rebalances_still_match(self):
        result = run_parity(
            strategy=DivisionStrategy.PROPORTIONAL,
            rebalance_threshold_w=0.0,
            ticks=16,
        )
        applied = sum(1 for _, a in result.fleet_decisions if a)
        assert applied > 1  # threshold 0 reprograms on any movement
        assert result.ok()

    def test_explicit_demand_schedule(self):
        topo = parity_topology(4)
        schedule = np.tile(
            np.array([[120.0, 150.0, 180.0, 195.0]]), (12, 1)
        )
        schedule[6:] = schedule[6:, ::-1]  # demand flips mid-run
        result = run_parity(
            topo,
            demand_w_by_tick=schedule,
            strategy=DivisionStrategy.PROPORTIONAL,
            budget_w=600.0,
        )
        assert result.ok()
        applied = sum(1 for _, a in result.fleet_decisions if a)
        assert applied >= 2  # the flip forces a real reallocation

    def test_multi_rack_topology_rejected(self):
        topo = FleetTopology.build(rows=1, racks_per_row=2,
                                   nodes_per_rack=2)
        with pytest.raises(ConfigError):
            run_parity(topo)

    def test_report_document(self):
        doc = run_parity(ticks=8).to_dict()
        assert doc["ok"] is True
        assert doc["tolerance_w"] == CAP_TOLERANCE_W
        assert doc["rebalances_applied_serial"] == doc[
            "rebalances_applied_fleet"
        ]
