"""Fleet health rollups and the fleet-level detectors.

Unit-level: `FleetHealth.observe_tick` arithmetic, the per-rack
channel gate, and each detector against synthetic inputs pinned right
at its thresholds.  Integration: engine runs whose budgets are
constructed to trip (or provably not trip) each phenomenon, and the
no-perturbation contract — health rollups cannot change what the
simulation computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetEngine, FleetTopology, FlatTraffic, ReplayTraffic
from repro.fleet.engine import FleetRebalance
from repro.fleet.health import (
    HEALTH_CHANNELS,
    MAX_RACK_CHANNELS,
    STARVATION_MIN_FRACTION,
    THRASH_MIN_APPLIED,
    FleetHealth,
    detect_budget_thrash,
    detect_slo_debt_runaway,
    detect_waterfill_starvation,
)
from repro.obs.timeseries import SeriesChannel


def small_topo(nodes_per_rack=2, racks_per_row=2, rows=1):
    return FleetTopology.build(
        rows=rows, racks_per_row=racks_per_row,
        nodes_per_rack=nodes_per_rack,
    )


def observe(health, *, rack_alloc, rack_power, applied, shortfall,
            time_s=0.0, max_level=0):
    """One observe_tick call with the bookkeeping args filled in.

    Specified per rack for readability; node power is spread evenly
    within each rack (observe_tick reduces it back at flush time).
    """
    topo = health._topo
    applied = np.asarray(applied, dtype=np.float64)
    shortfall = np.asarray(shortfall, dtype=np.float64)
    rack_power = np.asarray(rack_power, dtype=np.float64)
    nodes_per_rack = np.diff(topo.rack_ptr)
    power = np.repeat(rack_power / nodes_per_rack, nodes_per_rack)
    return health.observe_tick(
        time_s=time_s,
        dt_s=1.0,
        power_sum=float(rack_power.sum()),
        power=power,
        applied_cap_w=applied,
        floor_w=topo.min_cap_w,
        shortfall=shortfall,
        shortfall_sum=float(shortfall.sum()),
        slo_slack_w=1.0,
        rack_alloc=(
            np.asarray(rack_alloc, dtype=np.float64)
            if rack_alloc is not None else None
        ),
        fleet_budget_w=500.0,
        max_level=max_level,
    )


class TestRollups:
    def test_observe_tick_rollup_values(self):
        topo = small_topo()  # 2 racks x 2 nodes, floors at 110 W
        health = FleetHealth(topo, capacity=64)
        rollup = observe(
            health,
            rack_alloc=[250.0, 250.0],
            rack_power=[240.0, 230.0],
            applied=[110.0, 150.0, 110.0, 150.0],  # 2 of 4 at the floor
            shortfall=[50.0, 0.0, 0.0, 0.0],
        )
        assert rollup["headroom_w"] == pytest.approx(30.0)
        assert rollup["capfloor_frac"] == pytest.approx(0.5)
        assert rollup["slo_debt_rate_w"] == pytest.approx(50.0)
        assert rollup["escalation_level"] == 0

    def test_headroom_falls_back_to_budget_before_first_division(self):
        health = FleetHealth(small_topo(), capacity=64)
        rollup = observe(
            health,
            rack_alloc=None,
            rack_power=[200.0, 200.0],
            applied=[np.inf] * 4,   # nothing armed yet
            shortfall=[0.0] * 4,
        )
        assert rollup["headroom_w"] == pytest.approx(500.0 - 400.0)
        assert rollup["capfloor_frac"] == 0.0  # unarmed caps never pin
        # Per-rack channels stayed silent for the unallocated tick.
        assert len(health.channels["rack0_headroom_w"].points()) == 0

    def test_summary_means_and_starved_fractions(self):
        topo = small_topo()
        health = FleetHealth(topo, capacity=64)
        # Node 0 starves (floor-pinned + shortfall) on 2 of 4 ticks.
        for i in range(4):
            observe(
                health,
                rack_alloc=[250.0, 250.0],
                rack_power=[200.0, 200.0],
                applied=[110.0, 150.0, 150.0, 150.0],
                shortfall=[30.0 if i < 2 else 0.0, 0.0, 0.0, 0.0],
                time_s=float(i),
                max_level=i,
            )
        s = health.summary()
        assert s["mean_headroom_w"] == pytest.approx(100.0)
        assert s["mean_capfloor_frac"] == pytest.approx(0.25)
        assert s["mean_slo_debt_rate_w"] == pytest.approx(15.0)
        assert s["max_escalation_level"] == 3
        np.testing.assert_allclose(
            health.starved_fractions(), [0.5, 0.0, 0.0, 0.0]
        )
        np.testing.assert_allclose(
            health.rack_headroom_means(), [50.0, 50.0]
        )

    def test_channels_record_every_tick(self):
        health = FleetHealth(small_topo(), capacity=64)
        for i in range(3):
            observe(
                health,
                rack_alloc=[250.0, 250.0],
                rack_power=[240.0, 230.0],
                applied=[150.0] * 4,
                shortfall=[0.0] * 4,
                time_s=float(i),
            )
        for name, _unit in HEALTH_CHANNELS:
            assert len(health.channels[name].points()) == 3
        assert health.channels["rack1_headroom_w"].points()[0].mean == 20.0

    def test_rack_channels_gated_above_64_racks(self):
        wide = FleetTopology.build(
            rows=1, racks_per_row=MAX_RACK_CHANNELS + 1, nodes_per_rack=1
        )
        health = FleetHealth(wide, capacity=16)
        assert not any(k.startswith("rack") for k in health.channels)
        # The four fleet-level channels are always present.
        assert len(health.channels) == len(HEALTH_CHANNELS)


def rebalances(applied, skipped, forced=0):
    recs = [
        FleetRebalance(float(i), True, 10.0)
        for i in range(applied - forced)
    ]
    recs += [
        FleetRebalance(float(100 + i), True, 0.0, forced_by_escalation=True)
        for i in range(forced)
    ]
    recs += [
        FleetRebalance(float(200 + i), False, 0.0) for i in range(skipped)
    ]
    return recs


class TestDetectBudgetThrash:
    def test_fires_on_high_apply_rate(self):
        det = detect_budget_thrash(rebalances(15, 5, forced=2), 1000.0)
        assert det is not None and det.phenomenon == "budget_thrash"
        assert det.detail["applied"] == 15.0
        assert det.detail["evaluated"] == 20.0
        assert det.detail["apply_rate"] == pytest.approx(0.75)
        assert det.detail["forced_by_escalation"] == 2.0

    def test_quiet_below_either_threshold(self):
        assert detect_budget_thrash([], 1000.0) is None
        # Rate high but too few applied to matter.
        few = rebalances(THRASH_MIN_APPLIED - 1, 0)
        assert detect_budget_thrash(few, 1000.0) is None
        # Plenty applied but the tree mostly settled.
        settled = rebalances(12, 20)
        assert detect_budget_thrash(settled, 1000.0) is None

    def test_exact_boundary_fires(self):
        det = detect_budget_thrash(rebalances(10, 10), 1000.0)
        assert det is not None  # >= on both thresholds


class TestDetectWaterfillStarvation:
    def test_fires_and_counts_starved_nodes(self):
        fracs = np.array([0.9, 0.5, 0.4, 0.0])
        det = detect_waterfill_starvation(fracs, 1000.0, ticks=100)
        assert det is not None and det.phenomenon == "waterfill_starvation"
        assert det.detail["starved_nodes"] == 2.0  # >= threshold counts
        assert det.detail["starved_node_frac"] == pytest.approx(0.5)
        assert det.detail["worst_starved_fraction"] == pytest.approx(0.9)

    def test_quiet_cases(self):
        below = np.full(8, STARVATION_MIN_FRACTION - 0.01)
        assert detect_waterfill_starvation(below, 1000.0, ticks=100) is None
        assert detect_waterfill_starvation(
            np.array([1.0]), 1000.0, ticks=0
        ) is None
        assert detect_waterfill_starvation(
            np.array([]), 1000.0, ticks=100
        ) is None


def debt_channel(rates):
    ch = SeriesChannel("health_slo_debt_rate_w", "W", capacity=256)
    for i, rate in enumerate(rates):
        ch.add(float(i), 1.0, float(rate))
    return ch


class TestDetectSloDebtRunaway:
    def test_fires_on_growing_rate(self):
        det = detect_slo_debt_runaway(
            debt_channel([10.0] * 4 + [20.0] * 8 + [30.0] * 4), 1000.0
        )
        assert det is not None and det.phenomenon == "slo_debt_runaway"
        assert det.detail["head_rate_w"] == pytest.approx(10.0)
        assert det.detail["tail_rate_w"] == pytest.approx(30.0)
        assert det.detail["growth"] == pytest.approx(3.0)

    def test_needs_at_least_eight_points(self):
        assert detect_slo_debt_runaway(
            debt_channel([0.0] * 3 + [100.0] * 4), 1000.0
        ) is None

    def test_settled_rate_is_quiet(self):
        assert detect_slo_debt_runaway(
            debt_channel([40.0] * 16), 1000.0
        ) is None
        # Falling debt is a healthy fleet, not a runaway.
        assert detect_slo_debt_runaway(
            debt_channel(list(range(50, 10, -2))), 1000.0
        ) is None

    def test_zero_head_rate_requires_real_tail_accrual(self):
        # Quiet start, real accrual late: fires with sentinel growth.
        det = detect_slo_debt_runaway(
            debt_channel([0.0] * 8 + [50.0] * 8), 1000.0
        )
        assert det is not None
        assert det.detail["growth"] == -1.0  # inf sentinel
        # Quiet start, negligible tail: noise, not a phenomenon.
        assert detect_slo_debt_runaway(
            debt_channel([0.0] * 8 + [0.5] * 8), 1000.0
        ) is None


class TestEngineIntegration:
    def test_health_summary_and_channels_on_by_default(self):
        engine = FleetEngine(
            small_topo(), FlatTraffic(), budget_w=600.0
        )
        result = engine.run(10.0)
        assert "health" in result.summary
        hs = result.summary["health"]
        assert set(hs) == {
            "mean_headroom_w", "mean_capfloor_frac",
            "mean_slo_debt_rate_w", "max_escalation_level",
        }
        for name, _unit in HEALTH_CHANNELS:
            assert name in result.timelines
        doc = result.to_dict()
        assert "health_headroom_w" in doc["timeline_channels"]
        assert isinstance(doc["phenomena"], list)

    def test_telemetry_off_means_no_health(self):
        engine = FleetEngine(
            small_topo(), FlatTraffic(), budget_w=600.0, telemetry=False
        )
        result = engine.run(10.0)
        assert "health" not in result.summary
        assert result.timelines == {}
        assert result.phenomena == []

    def test_health_pinned_on_with_telemetry_off(self):
        engine = FleetEngine(
            small_topo(), FlatTraffic(), budget_w=600.0,
            telemetry=False, health=True,
        )
        result = engine.run(10.0)
        assert "health" in result.summary
        assert "health_headroom_w" in result.timelines
        assert "fleet_power_w" not in result.timelines

    def test_health_cannot_perturb_the_simulation(self):
        def run(health):
            engine = FleetEngine(
                small_topo(), FlatTraffic(), budget_w=600.0,
                seed=7, health=health,
            )
            return engine.run(20.0)

        on, off = run(True), run(False)
        # Wall-clock throughput fields legitimately differ run to run.
        skip = {"health", "wall_s", "node_steps_per_s"}
        core_on = {k: v for k, v in on.summary.items() if k not in skip}
        core_off = {k: v for k, v in off.summary.items() if k not in skip}
        assert core_on == core_off
        assert len(on.rebalances) == len(off.rebalances)
        for a, b in zip(on.rebalances, off.rebalances):
            assert a == b

    def test_starvation_fires_on_infeasible_budget(self):
        topo = small_topo(nodes_per_rack=4)  # 8 nodes, floors 110 W
        demand = np.full((1, topo.n_nodes), 195.0)
        engine = FleetEngine(
            topo, ReplayTraffic(demand),
            budget_w=0.5 * float(topo.min_cap_w.sum()),  # infeasible
        )
        result = engine.run(30.0)
        names = {d.phenomenon for d in result.phenomena}
        assert "waterfill_starvation" in names
        det = next(
            d for d in result.phenomena
            if d.phenomenon == "waterfill_starvation"
        )
        assert det.workload == "fleet"
        assert det.detail["starved_node_frac"] == 1.0

    def test_runaway_fires_on_ramping_demand(self):
        topo = small_topo(nodes_per_rack=4)
        ramp = np.linspace(110.0, 200.0, 40)
        demand = np.repeat(ramp[:, None], topo.n_nodes, axis=1)
        engine = FleetEngine(
            topo, ReplayTraffic(demand),
            budget_w=0.9 * float(topo.min_cap_w.sum()),
        )
        result = engine.run(40.0)
        names = {d.phenomenon for d in result.phenomena}
        assert "slo_debt_runaway" in names

    def test_thrash_fires_with_zero_threshold_oscillation(self):
        topo = small_topo(nodes_per_rack=4)
        # Demand must keep *redistributing across nodes* — uniform
        # oscillation leaves the proportional shares identical and the
        # tree never moves.  Swap halves of the fleet every tick.
        rows = np.empty((30, topo.n_nodes))
        half = topo.n_nodes // 2
        rows[0::2, :half], rows[0::2, half:] = 120.0, 190.0
        rows[1::2, :half], rows[1::2, half:] = 190.0, 120.0
        engine = FleetEngine(
            topo, ReplayTraffic(rows),
            budget_w=0.8 * float(topo.max_cap_w.sum()),
            rebalance_threshold_w=0.0,
        )
        result = engine.run(30.0)
        names = {d.phenomenon for d in result.phenomena}
        assert "budget_thrash" in names

    def test_feasible_flat_fleet_stays_quiet(self):
        engine = FleetEngine(
            small_topo(), FlatTraffic(utilization=0.5),
            budget_w=float(small_topo().max_cap_w.sum()),
            seed=3,
        )
        result = engine.run(30.0)
        assert result.phenomena == []


class TestHealthSink:
    def test_sink_receives_each_flushed_window(self):
        topo = small_topo()
        windows = []
        health = FleetHealth(
            topo, capacity=64,
            sink=lambda t0, dt, rollup: windows.append((t0, dt, rollup)),
        )
        for i in range(3):
            observe(
                health,
                rack_alloc=[250.0, 250.0],
                rack_power=[240.0, 230.0],
                applied=[110.0, 150.0, 110.0, 150.0],
                shortfall=[50.0, 0.0, 0.0, 0.0],
                time_s=float(i),
            )
        health.finish()
        # The initial stride is one tick, so each observe flushes.
        assert len(windows) >= 3
        t0, dt, rollup = windows[0]
        assert t0 == 0.0 and dt == pytest.approx(1.0)
        assert set(rollup) == {
            "headroom_w", "capfloor_frac", "slo_debt_rate_w",
            "escalation_level",
        }
        # The sink sees the same values the channels record.
        assert rollup["headroom_w"] == pytest.approx(
            health.channels["health_headroom_w"].time_weighted_mean()
        )

    def test_engine_threads_sink_through_to_health(self):
        windows = []
        engine = FleetEngine(
            small_topo(), FlatTraffic(), budget_w=600.0,
            health_sink=lambda t0, dt, rollup: windows.append(rollup),
        )
        engine.run(10.0)
        assert windows
        assert all("headroom_w" in w for w in windows)

    def test_sink_does_not_perturb_results(self):
        def run(sink):
            engine = FleetEngine(
                small_topo(), FlatTraffic(), budget_w=600.0,
                health_sink=sink, seed=7,
            )
            return engine.run(20.0)

        with_sink = run(lambda *a: None)
        without = run(None)
        # Wall-clock rates legitimately jitter between runs.
        timing = {"wall_s", "node_steps_per_s"}
        assert {k: v for k, v in with_sink.summary.items()
                if k not in timing} == {
            k: v for k, v in without.summary.items() if k not in timing
        }

    def test_archive_health_sink_lands_windows(self, tmp_path):
        from repro.obs.archive import ObsArchive

        archive = ObsArchive(tmp_path / "a.sqlite3")
        engine = FleetEngine(
            small_topo(), FlatTraffic(), budget_w=600.0,
            health_sink=archive.health_sink("fleet-t"),
        )
        engine.run(10.0)
        windows = archive.health_windows("fleet-t")
        assert windows
        assert all(w["run_id"] == "fleet-t" for w in windows)
        assert all(w["dt_s"] > 0.0 for w in windows)
