"""Traffic models: bounds, shapes, determinism, factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fleet import (
    BurstyTraffic,
    DiurnalTraffic,
    FlatTraffic,
    FleetTopology,
    ReplayTraffic,
    make_traffic,
)


@pytest.fixture
def topo():
    return FleetTopology.build(rows=1, racks_per_row=2, nodes_per_rack=50)


def bound_model(model, topo, seed=1):
    model.bind(topo, np.random.default_rng(seed))
    return model


class TestFlat:
    def test_mean_tracks_utilization(self, topo):
        model = bound_model(FlatTraffic(utilization=0.5, noise_sigma=0.0),
                            topo)
        demand = model.demand_w(0, 0.0)
        assert demand.shape == (topo.n_nodes,)
        np.testing.assert_allclose(demand, 155.0)

    def test_noise_stays_in_node_range(self, topo):
        model = bound_model(FlatTraffic(utilization=0.9, noise_sigma=0.5),
                            topo)
        for step in range(5):
            demand = model.demand_w(step, float(step))
            assert np.all(demand >= topo.idle_w - 1e-9)
            assert np.all(demand <= topo.busy_w + 1e-9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FlatTraffic(utilization=1.5)


class TestDiurnal:
    def test_trough_and_peak(self, topo):
        model = bound_model(
            DiurnalTraffic(low=0.2, high=0.8, period_s=100.0,
                           jitter_frac=0.0, noise_sigma=0.0),
            topo,
        )
        trough = model.demand_w(0, 0.0).mean()
        peak = model.demand_w(50, 50.0).mean()
        assert trough == pytest.approx(110.0 + 0.2 * 90.0, abs=0.5)
        assert peak == pytest.approx(110.0 + 0.8 * 90.0, abs=0.5)

    def test_jitter_desynchronises_nodes(self, topo):
        model = bound_model(
            DiurnalTraffic(jitter_frac=0.5, noise_sigma=0.0), topo
        )
        demand = model.demand_w(0, 0.0)
        assert demand.std() > 0.1

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalTraffic(low=0.9, high=0.2)


class TestBursty:
    def test_duty_cycle_matches_phase_means(self, topo):
        model = bound_model(
            BurstyTraffic(mean_burst_s=30.0, mean_idle_s=90.0,
                          noise_sigma=0.0),
            topo,
        )
        fractions = []
        for step in range(400):
            demand = model.demand_w(step, float(step))
            fractions.append(np.mean(demand > 150.0))
        # Expected burst fraction 30/(30+90) = 0.25.
        assert np.mean(fractions) == pytest.approx(0.25, abs=0.06)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BurstyTraffic(mean_burst_s=0.0)


class TestReplay:
    def test_plays_back_and_repeats_last_row(self, topo):
        schedule = np.full((2, topo.n_nodes), 120.0)
        schedule[1] = 180.0
        model = bound_model(ReplayTraffic(schedule), topo)
        np.testing.assert_allclose(model.demand_w(0, 0.0), 120.0)
        np.testing.assert_allclose(model.demand_w(1, 1.0), 180.0)
        np.testing.assert_allclose(model.demand_w(9, 9.0), 180.0)

    def test_shape_checked_at_bind(self, topo):
        model = ReplayTraffic(np.full((3, 7), 150.0))
        with pytest.raises(ConfigError):
            model.bind(topo, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            ReplayTraffic(np.array([1.0, 2.0]))


class TestFactory:
    def test_bare_names(self):
        assert isinstance(make_traffic("flat"), FlatTraffic)
        assert isinstance(make_traffic("diurnal"), DiurnalTraffic)
        assert isinstance(make_traffic("bursty"), BurstyTraffic)

    def test_dict_spec_with_knobs(self):
        model = make_traffic({"type": "flat", "utilization": 0.3})
        assert model.utilization == 0.3

    def test_unknown_type_and_bad_knobs(self):
        with pytest.raises(ConfigError):
            make_traffic("lognormal")
        with pytest.raises(ConfigError):
            make_traffic({"type": "flat", "bogus": 1})

    def test_describe_round_trips_through_factory(self):
        model = make_traffic({"type": "bursty", "mean_burst_s": 12.0})
        desc = model.describe()
        again = make_traffic(desc)
        assert again.mean_burst_s == 12.0
