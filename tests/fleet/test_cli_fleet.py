"""The ``repro-powercap fleet`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.rows == 2
        assert args.strategy == "proportional"
        assert args.traffic == "diurnal"
        assert not args.escalation

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--strategy", "greedy"])


class TestCommand:
    def test_summary_table(self, capsys):
        code = main(
            ["fleet", "--rows", "1", "--racks-per-row", "2",
             "--nodes-per-rack", "4", "--duration", "20",
             "--traffic", "flat"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet: 8 nodes / 2 racks / 1 rows" in out
        assert "SLO attainment" in out
        assert "node-steps" in out

    def test_json_document(self, capsys):
        code = main(
            ["fleet", "--rows", "1", "--racks-per-row", "1",
             "--nodes-per-rack", "4", "--duration", "10",
             "--traffic", '{"type": "flat", "utilization": 0.5}',
             "--format", "json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["summary"]["nodes"] == 4
        assert doc["params"]["traffic"]["utilization"] == 0.5
        assert doc["provenance"]["engine"] == "repro.fleet"

    def test_parity_flag_appends_table(self, capsys):
        code = main(
            ["fleet", "--rows", "1", "--racks-per-row", "1",
             "--nodes-per-rack", "4", "--duration", "5",
             "--traffic", "flat", "--parity"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parity: serial DCM stack vs repro.fleet" in out
        assert "OK" in out

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "topo.json"
        spec.write_text(json.dumps(
            {"rows": 1, "racks_per_row": 1, "nodes_per_rack": 3}
        ))
        code = main(
            ["fleet", "--spec", str(spec), "--duration", "5",
             "--traffic", "flat"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet: 3 nodes" in out

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "broken.json"
        spec.write_text("{not json")
        code = main(["fleet", "--spec", str(spec)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_traffic_is_a_clean_error(self, capsys):
        code = main(["fleet", "--traffic", "lognormal", "--duration", "5"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


def fleet_doc_file(tmp_path, capsys):
    """Run a tiny fleet through the CLI and save its JSON document."""
    code = main(
        ["fleet", "--rows", "1", "--racks-per-row", "2",
         "--nodes-per-rack", "2", "--duration", "15",
         "--traffic", "flat", "--format", "json"]
    )
    assert code == 0
    path = tmp_path / "fleet_run.json"
    path.write_text(capsys.readouterr().out)
    return path


class TestFleetDocInspect:
    def test_table_renders_fleet_provenance(self, tmp_path, capsys):
        path = fleet_doc_file(tmp_path, capsys)
        code = main(["inspect", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine" in out and "repro.fleet" in out
        assert "4 nodes / 2 racks / 1 rows" in out
        assert "rebalances" in out
        assert "health" in out
        assert "phenomena" in out

    def test_json_includes_fleet_sections(self, tmp_path, capsys):
        path = fleet_doc_file(tmp_path, capsys)
        code = main(["inspect", str(path), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)["fleet"]
        assert doc["provenance"]["engine"] == "repro.fleet"
        assert set(doc["rebalances"]) == {
            "evaluated", "applied", "forced_by_escalation",
        }
        assert "health" in doc["summary"]
        assert "fleet_power_w" in doc["timelines"]


class TestFleetDocTimeline:
    def test_summary_lists_fleet_channels(self, tmp_path, capsys):
        path = fleet_doc_file(tmp_path, capsys)
        code = main(["timeline", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet @" in out
        assert "fleet_power_w" in out
        assert "health_headroom_w" in out

    def test_channel_filter_and_ascii(self, tmp_path, capsys):
        path = fleet_doc_file(tmp_path, capsys)
        code = main(
            ["timeline", str(path),
             "--channel", "health_headroom_w", "--ascii"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "health_headroom_w" in out
        assert "fleet_power_w" not in out

    def test_csv_rows(self, tmp_path, capsys):
        path = fleet_doc_file(tmp_path, capsys)
        code = main(
            ["timeline", str(path), "--channel", "fleet_power_w", "--csv"]
        )
        out = capsys.readouterr().out
        assert code == 0
        header, *rows = out.splitlines()
        assert header == "workload,cap,channel,t_s,dt_s,mean,min,max"
        assert rows and all(r.split(",")[2] == "fleet_power_w" for r in rows)

    def test_unknown_channel_lists_available(self, tmp_path, capsys):
        path = fleet_doc_file(tmp_path, capsys)
        code = main(["timeline", str(path), "--channel", "power_w"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no channel(s) ['power_w']" in err
        assert "fleet_power_w" in err
