"""The ``repro-powercap fleet`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.rows == 2
        assert args.strategy == "proportional"
        assert args.traffic == "diurnal"
        assert not args.escalation

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--strategy", "greedy"])


class TestCommand:
    def test_summary_table(self, capsys):
        code = main(
            ["fleet", "--rows", "1", "--racks-per-row", "2",
             "--nodes-per-rack", "4", "--duration", "20",
             "--traffic", "flat"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet: 8 nodes / 2 racks / 1 rows" in out
        assert "SLO attainment" in out
        assert "node-steps" in out

    def test_json_document(self, capsys):
        code = main(
            ["fleet", "--rows", "1", "--racks-per-row", "1",
             "--nodes-per-rack", "4", "--duration", "10",
             "--traffic", '{"type": "flat", "utilization": 0.5}',
             "--format", "json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["summary"]["nodes"] == 4
        assert doc["params"]["traffic"]["utilization"] == 0.5
        assert doc["provenance"]["engine"] == "repro.fleet"

    def test_parity_flag_appends_table(self, capsys):
        code = main(
            ["fleet", "--rows", "1", "--racks-per-row", "1",
             "--nodes-per-rack", "4", "--duration", "5",
             "--traffic", "flat", "--parity"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parity: serial DCM stack vs repro.fleet" in out
        assert "OK" in out

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "topo.json"
        spec.write_text(json.dumps(
            {"rows": 1, "racks_per_row": 1, "nodes_per_rack": 3}
        ))
        code = main(
            ["fleet", "--spec", str(spec), "--duration", "5",
             "--traffic", "flat"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet: 3 nodes" in out

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "broken.json"
        spec.write_text("{not json")
        code = main(["fleet", "--spec", str(spec)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_traffic_is_a_clean_error(self, capsys):
        code = main(["fleet", "--traffic", "lognormal", "--duration", "5"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
