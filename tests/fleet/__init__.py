"""Tests for the vectorized fleet-scale DCM simulation."""
