"""Vectorized division pinned against the scalar reference.

:func:`repro.fleet.division.divide_groups` must produce exactly what
:func:`repro.dcm.division.divide_budget` produces group by group —
these property tests run randomized instances of every strategy so the
two implementations cannot drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dcm.division import divide_budget
from repro.dcm.group import DivisionStrategy
from repro.errors import PolicyError
from repro.fleet.division import divide_groups, group_reduce, priority_fill_order


def random_instance(rng, n_groups):
    """Random budgets + member arrays with CSR group pointers."""
    counts = rng.integers(1, 9, n_groups)
    group_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    n = int(group_ptr[-1])
    mins = rng.uniform(80.0, 120.0, n)
    maxs = mins + rng.uniform(10.0, 90.0, n)
    demands = rng.uniform(70.0, 230.0, n)
    priorities = rng.integers(1, 6, n).astype(np.int64)
    sum_mins = group_reduce(mins, group_ptr)
    sum_maxs = group_reduce(maxs, group_ptr)
    # Budgets spanning infeasible to over-provisioned.
    budgets = rng.uniform(0.8 * sum_mins, 1.2 * sum_maxs)
    return budgets, demands, mins, maxs, priorities, group_ptr


def scalar_reference(budgets, strategy, demands, mins, maxs, priorities,
                     group_ptr):
    """Per-group calls into the scalar reference, re-flattened."""
    out = np.empty_like(demands)
    for g in range(len(budgets)):
        lo, hi = group_ptr[g], group_ptr[g + 1]
        out[lo:hi] = divide_budget(
            float(budgets[g]),
            strategy,
            list(demands[lo:hi]),
            list(mins[lo:hi]),
            list(maxs[lo:hi]),
            list(priorities[lo:hi]),
        )
    return out


class TestDivideGroups:
    @pytest.mark.parametrize("strategy", list(DivisionStrategy))
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_reference(self, strategy, seed):
        rng = np.random.default_rng(seed)
        budgets, demands, mins, maxs, prios, ptr = random_instance(rng, 12)
        vec = divide_groups(budgets, strategy, demands, mins, maxs, prios, ptr)
        ref = scalar_reference(budgets, strategy, demands, mins, maxs, prios,
                               ptr)
        np.testing.assert_allclose(vec, ref, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("strategy", list(DivisionStrategy))
    def test_single_group_single_member(self, strategy):
        caps = divide_groups(
            np.array([500.0]),
            strategy,
            np.array([150.0]),
            np.array([110.0]),
            np.array([200.0]),
            np.array([1]),
            np.array([0, 1], dtype=np.int64),
        )
        ref = divide_budget(500.0, strategy, [150.0], [110.0], [200.0], [1])
        assert caps[0] == pytest.approx(ref[0])

    def test_priority_precomputed_order_matches(self):
        rng = np.random.default_rng(7)
        budgets, demands, mins, maxs, prios, ptr = random_instance(rng, 8)
        order = priority_fill_order(prios, ptr)
        lazy = divide_groups(
            budgets, DivisionStrategy.PRIORITY, demands, mins, maxs, prios,
            ptr,
        )
        eager = divide_groups(
            budgets, DivisionStrategy.PRIORITY, demands, mins, maxs, prios,
            ptr, priority_order=order,
        )
        np.testing.assert_array_equal(lazy, eager)

    def test_priority_fill_order_is_stable_within_ties(self):
        prios = np.array([2, 2, 5, 1], dtype=np.int64)
        ptr = np.array([0, 4], dtype=np.int64)
        order = priority_fill_order(prios, ptr)
        # Highest priority first; equal priorities keep index order.
        assert list(order) == [2, 0, 1, 3]

    def test_caps_clamped_and_budget_respected(self):
        rng = np.random.default_rng(11)
        for strategy in DivisionStrategy:
            budgets, demands, mins, maxs, prios, ptr = random_instance(rng, 6)
            sum_mins = group_reduce(mins, ptr)
            budgets = np.maximum(budgets, sum_mins)  # feasible only
            caps = divide_groups(
                budgets, strategy, demands, mins, maxs, prios, ptr
            )
            assert np.all(caps >= mins - 1e-9)
            assert np.all(caps <= maxs + 1e-9)
            # The budget bounds the group sum except where a member's
            # share was clamped *up* to its minimum (the scalar
            # semantics allow that corner; parity matters more than
            # strict conservation here).
            counts = np.diff(ptr)
            at_min = np.isclose(caps, mins)
            group_has_min = np.add.reduceat(at_min, ptr[:-1]) > 0
            over = group_reduce(caps, ptr) > budgets + 1e-6
            assert np.all(~over | group_has_min)

    def test_empty_group_rejected(self):
        with pytest.raises(PolicyError):
            divide_groups(
                np.array([100.0]),
                DivisionStrategy.EQUAL,
                np.array([]),
                np.array([]),
                np.array([]),
                np.array([], dtype=np.int64),
                np.array([0, 0], dtype=np.int64),
            )

    def test_group_reduce(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        ptr = np.array([0, 2, 5], dtype=np.int64)
        np.testing.assert_array_equal(group_reduce(values, ptr), [3.0, 12.0])
