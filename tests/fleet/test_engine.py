"""The fleet engine: stepping, budget tree, hysteresis, escalation,
SLO accounting, telemetry, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dcm.group import DivisionStrategy
from repro.errors import ConfigError, PolicyError
from repro.fleet import (
    EscalationConfig,
    FlatTraffic,
    FleetEngine,
    FleetTopology,
    ReplayTraffic,
)
from repro.fleet.division import group_reduce


def small_topo(nodes_per_rack=4, racks_per_row=2, rows=2):
    return FleetTopology.build(
        rows=rows, racks_per_row=racks_per_row,
        nodes_per_rack=nodes_per_rack,
    )


def make_engine(topo=None, **kwargs):
    topo = topo or small_topo()
    kwargs.setdefault("budget_w", 0.8 * float(topo.max_cap_w.sum()))
    kwargs.setdefault("telemetry", True)
    return FleetEngine(topo, kwargs.pop("traffic", FlatTraffic()), **kwargs)


class TestValidation:
    def test_bad_parameters_rejected(self):
        topo = small_topo()
        with pytest.raises(PolicyError):
            make_engine(topo, budget_w=0.0)
        with pytest.raises(ConfigError):
            make_engine(topo, dt_s=0.0)
        with pytest.raises(ConfigError):
            make_engine(topo, rebalance_every=0)
        with pytest.raises(PolicyError):
            make_engine(topo, rebalance_threshold_w=-1.0)
        with pytest.raises(ConfigError):
            make_engine(topo).run(0.0)
        with pytest.raises(ConfigError):
            EscalationConfig(step_frac=0.0)
        with pytest.raises(ConfigError):
            EscalationConfig(step_frac=0.3, max_level=4)


class TestStepping:
    def test_caps_respect_budget_tree(self):
        topo = small_topo()
        engine = make_engine(topo, rebalance_every=1)
        result = engine.run(10.0)
        assert result.trajectory is None  # not requested
        # Re-run with trajectory to inspect the armed caps.
        engine = make_engine(topo, rebalance_every=1,
                             record_trajectory=True)
        result = engine.run(10.0)
        caps = result.trajectory["applied_w"][-1]
        assert np.isfinite(caps).all()
        assert caps.sum() <= engine.budget_w + 1e-6
        rack_caps = group_reduce(caps, topo.rack_ptr)
        assert np.all(rack_caps <= engine.budget_w)

    def test_power_never_exceeds_armed_cap(self):
        topo = small_topo()
        engine = make_engine(topo, rebalance_every=1,
                             record_trajectory=True)
        result = engine.run(10.0)
        # Power at tick k is served under the caps armed *before* the
        # tick (the trajectory stores post-rebalance caps), so compare
        # against the previous tick's entry.
        caps_before = result.trajectory["applied_w"][:-1]
        powers = result.trajectory["power_w"][1:]
        for caps, power in zip(caps_before, powers):
            assert np.all(power <= caps + 1e-9)

    def test_first_rebalance_always_applies(self):
        engine = make_engine(rebalance_every=1)
        result = engine.run(3.0)
        assert result.rebalances[0].applied
        assert result.rebalances[0].max_delta_w == float("inf")

    def test_hysteresis_skips_small_moves(self):
        topo = small_topo()
        # Constant demand: after the first division nothing moves.
        schedule = np.full((20, topo.n_nodes), 150.0)
        engine = make_engine(topo, traffic=ReplayTraffic(schedule),
                             rebalance_every=1, rebalance_threshold_w=5.0)
        result = engine.run(20.0)
        applied = [r for r in result.rebalances if r.applied]
        assert len(applied) == 1

    def test_rebalance_cadence(self):
        engine = make_engine(rebalance_every=5)
        result = engine.run(20.0)
        assert len(result.rebalances) == 4  # ticks 0, 5, 10, 15

    def test_reset_gives_a_fresh_run(self):
        engine = make_engine(rebalance_every=1, seed=9)
        first = engine.run(5.0)
        engine.reset()
        # Traffic RNG is not reset (it lives in the model), so compare
        # structural state only: the cap arrays start disarmed again.
        assert not np.isfinite(engine._applied_cap_w).any()
        second = engine.run(5.0)
        assert second.ticks == first.ticks

    def test_same_seed_same_result(self):
        r1 = make_engine(seed=42, rebalance_every=1).run(8.0)
        r2 = make_engine(seed=42, rebalance_every=1).run(8.0)
        assert r1.summary["served_wh"] == r2.summary["served_wh"]
        assert r1.summary["slo_attainment"] == r2.summary["slo_attainment"]


class TestSloAccounting:
    def test_ample_budget_full_attainment(self):
        topo = small_topo()
        engine = make_engine(topo, budget_w=float(topo.max_cap_w.sum()))
        result = engine.run(10.0)
        assert result.summary["slo_attainment"] == 1.0
        assert result.summary["throughput_attainment"] == pytest.approx(1.0)

    def test_starved_budget_builds_debt(self):
        topo = small_topo()
        n = topo.n_nodes
        schedule = np.full((10, n), 195.0)  # near-peak demand
        engine = make_engine(
            topo,
            traffic=ReplayTraffic(schedule),
            budget_w=float(topo.min_cap_w.sum()),  # bare minimum
            rebalance_every=1,
        )
        result = engine.run(10.0)
        assert result.summary["slo_attainment"] < 0.5
        assert result.summary["throughput_attainment"] < 0.85
        assert result.summary["worst_node_debt_wh"] > 0


class TestEscalation:
    def test_breach_escalates_and_forces_rebalance(self):
        topo = small_topo()
        n = topo.n_nodes
        # An infeasible budget: 93% of the sum of minimum caps.  Every
        # division floors the caps at the minima, so the fleet draws
        # the full minimum power — above the datacenter budget — until
        # escalation pushes the cap floors below the configured minimum
        # (emergency throttling).
        schedule = np.full((30, n), 200.0)
        budget = 0.93 * float(topo.min_cap_w.sum())
        engine = make_engine(
            topo,
            traffic=ReplayTraffic(schedule),
            budget_w=budget,
            rebalance_every=1,
            escalation=EscalationConfig(
                patience_ticks=2,
                over_tolerance_frac=0.01,
                release_ticks=50,  # no release inside this run
            ),
            record_trajectory=True,
        )
        result = engine.run(30.0)
        assert sum(result.summary["escalations"].values()) > 0
        forced = [r for r in result.rebalances if r.forced_by_escalation]
        assert forced
        assert max(result.summary["max_escalation_level"].values()) >= 1
        # Escalation actually restored compliance: the final tick's
        # fleet power fits the (tolerance-padded) budget.
        final_power = float(result.trajectory["power_w"][-1].sum())
        assert final_power <= budget * 1.01 + 1e-6
        # And the throttled caps dropped below the configured minimum.
        final_caps = result.trajectory["applied_w"][-1]
        assert float(final_caps.min()) < float(topo.min_cap_w.min())

    def test_no_escalation_without_config(self):
        engine = make_engine(rebalance_every=1)
        result = engine.run(10.0)
        assert sum(result.summary["escalations"].values()) == 0


class TestTelemetry:
    def test_fleet_and_row_channels_recorded(self):
        topo = small_topo(rows=2)
        engine = make_engine(topo, rebalance_every=1)
        result = engine.run(10.0)
        for name in ("fleet_power_w", "fleet_demand_w", "fleet_cap_w",
                     "fleet_shortfall_w", "slo_attainment",
                     "latency_inflation", "row0_power_w", "row1_power_w"):
            assert name in result.timelines
            assert len(result.timelines[name]) == 10
        rows_sum = (
            result.timelines["row0_power_w"].integral()
            + result.timelines["row1_power_w"].integral()
        )
        assert rows_sum == pytest.approx(
            result.timelines["fleet_power_w"].integral(), rel=1e-9
        )

    def test_telemetry_off_records_nothing(self):
        engine = make_engine(telemetry=False)
        result = engine.run(5.0)
        assert result.timelines == {}


class TestResultDocument:
    def test_to_dict_is_json_ready(self):
        import json

        result = make_engine(rebalance_every=2).run(6.0)
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["summary"]["nodes"] == 16
        assert doc["provenance"]["engine"] == "repro.fleet"
        assert doc["params"]["traffic"]["type"] == "flat"
        assert "fleet_power_w" in doc["timelines"]

    def test_metrics_panel_updated(self):
        from repro.obs.metrics import fleet_metrics

        metrics = fleet_metrics()
        runs_before = metrics.runs.value
        steps_before = metrics.node_steps.value
        make_engine().run(4.0)
        assert metrics.runs.value == runs_before + 1
        assert metrics.node_steps.value == steps_before + 4 * 16
        assert "repro_fleet_node_steps_total" in metrics.render()
