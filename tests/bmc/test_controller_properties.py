"""Property-based tests on the cap controller's invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.node import Node
from repro.bmc.controller import CapController
from repro.bmc.sensors import PowerSensor
from repro.config import sandy_bridge_config


def converge(cap_w: float, seed: int = 0, quanta: int = 700):
    config = sandy_bridge_config()
    node = Node(config)
    node.thermal.reset(38.0)
    sensor = PowerSensor(np.random.default_rng(seed), noise_sigma_w=0.2)
    controller = CapController(node, sensor)
    controller.set_cap(cap_w)
    power = node.power_w()
    cmd = None
    for _ in range(quanta):
        cmd = controller.update(power)
        p_fast = node.power_model.power_of_pstate(
            cmd.pstate_fast, duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            temperature_c=node.thermal.temperature_c,
        )
        p_slow = node.power_model.power_of_pstate(
            cmd.pstate_slow, duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            temperature_c=node.thermal.temperature_c,
        )
        power = cmd.alpha * p_fast + (1 - cmd.alpha) * p_slow
        node.thermal.step(power, config.bmc.control_quantum_s)
    return node, controller, cmd, power


class TestConvergenceProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.floats(min_value=126.0, max_value=200.0))
    def test_feasible_caps_are_met(self, cap):
        """Any cap above the DVFS floor converges to at most cap+1 W."""
        _, _, cmd, power = converge(cap)
        assert power <= cap + 1.0
        assert cmd.duty == 1.0

    @settings(max_examples=12, deadline=None)
    @given(st.floats(min_value=126.0, max_value=200.0))
    def test_command_is_always_well_formed(self, cap):
        node, _, cmd, _ = converge(cap, quanta=150)
        assert 0.0 <= cmd.alpha <= 1.0
        assert 0 < cmd.duty <= 1.0
        assert 0 <= cmd.pstate_fast.index <= cmd.pstate_slow.index
        assert cmd.pstate_slow.index - cmd.pstate_fast.index <= 1
        assert 1.2e9 <= cmd.effective_freq_hz <= 2.701e9 + 1

    @settings(max_examples=8, deadline=None)
    @given(st.floats(min_value=118.0, max_value=124.0))
    def test_sub_floor_caps_never_destabilise(self, cap):
        """Below the floor the controller exhausts its actuators but
        the closed loop stays bounded — power within a few watts of
        the achievable floor, actuators at (not past) their limits."""
        config = sandy_bridge_config()
        _, controller, cmd, power = converge(cap, quanta=1200)
        assert 115.0 < power < 127.0
        assert cmd.duty >= config.bmc.ladder.duty_min - 1e-12
        assert cmd.escalation_level <= controller.ladder.max_level

    @settings(max_examples=8, deadline=None)
    @given(
        st.floats(min_value=128.0, max_value=170.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_noise_seed_does_not_change_the_operating_regime(self, cap, seed):
        _, _, a_cmd, a_power = converge(cap, seed=seed)
        _, _, b_cmd, b_power = converge(cap, seed=seed + 1)
        assert a_cmd.escalation_level == b_cmd.escalation_level
        assert abs(a_power - b_power) < 3.0

    def test_monotone_cap_monotone_frequency(self):
        freqs = []
        for cap in (160.0, 150.0, 140.0, 132.0, 128.0):
            _, _, cmd, _ = converge(cap)
            freqs.append(cmd.effective_freq_hz)
        assert all(a >= b - 1e6 for a, b in zip(freqs, freqs[1:]))
