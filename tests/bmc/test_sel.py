"""System Event Log: bounded storage + controller event trail."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.controller import CapController
from repro.bmc.sel import SelEventType, SystemEventLog
from repro.bmc.sensors import PowerSensor
from repro.errors import SimulationError


class TestLogStorage:
    def test_append_and_ids(self):
        sel = SystemEventLog()
        a = sel.log(0.0, SelEventType.CAP_SET, "130 W")
        b = sel.log(1.0, SelEventType.OVER_CAP)
        assert a.record_id == 1 and b.record_id == 2
        assert len(sel) == 2
        assert sel.last() is b

    def test_bounded_with_overflow_count(self):
        sel = SystemEventLog(capacity=3)
        for i in range(5):
            sel.log(float(i), SelEventType.ESCALATED, str(i))
        assert len(sel) == 3
        assert sel.overflowed == 2
        # Oldest dropped: first retained detail is "2".
        assert sel.entries()[0].detail == "2"

    def test_by_type(self):
        sel = SystemEventLog()
        sel.log(0.0, SelEventType.CAP_SET)
        sel.log(1.0, SelEventType.ESCALATED)
        sel.log(2.0, SelEventType.ESCALATED)
        assert len(sel.by_type(SelEventType.ESCALATED)) == 2

    def test_clear_keeps_counting_ids(self):
        sel = SystemEventLog()
        sel.log(0.0, SelEventType.CAP_SET)
        sel.clear()
        entry = sel.log(1.0, SelEventType.CAP_CLEARED)
        assert entry.record_id == 2
        assert len(sel) == 1

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            SystemEventLog(capacity=0)


def run_capped(config, cap_w, quanta=1500):
    node = Node(config)
    node.thermal.reset(38.0)
    sensor = PowerSensor(np.random.default_rng(0), noise_sigma_w=0.2)
    controller = CapController(node, sensor)
    controller.set_cap(cap_w)
    power = node.power_w()
    for _ in range(quanta):
        cmd = controller.update(power)
        power = node.power_model.power_of_pstate(
            cmd.pstate_slow,
            duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            temperature_c=node.thermal.temperature_c,
        )
        node.thermal.step(power, config.bmc.control_quantum_s)
    return controller


class TestControllerEventTrail:
    def test_cap_set_logged(self, config):
        controller = run_capped(config, 150.0, quanta=10)
        events = controller.sel.by_type(SelEventType.CAP_SET)
        assert len(events) == 1
        assert "150" in events[0].detail

    def test_moderate_cap_leaves_a_quiet_log(self, config):
        controller = run_capped(config, 150.0)
        assert not controller.sel.by_type(SelEventType.ESCALATED)
        assert not controller.sel.by_type(SelEventType.DUTY_THROTTLED)
        assert not controller.sel.by_type(SelEventType.PSTATE_FLOOR_REACHED)

    def test_120w_leaves_the_full_pathology(self, config):
        """The SEL reconstructs the paper's low-cap story end to end."""
        controller = run_capped(config, 120.0)
        sel = controller.sel
        assert sel.by_type(SelEventType.PSTATE_FLOOR_REACHED)
        escalations = sel.by_type(SelEventType.ESCALATED)
        assert len(escalations) == controller.ladder.max_level
        assert "way-gate" in escalations[0].detail
        assert sel.by_type(SelEventType.OVER_CAP)
        assert sel.by_type(SelEventType.DUTY_PINNED_AT_MINIMUM)
        # Event ordering: floor before first escalation before pinning.
        order = [e.event for e in sel.entries()]
        assert order.index(SelEventType.PSTATE_FLOOR_REACHED) < order.index(
            SelEventType.ESCALATED
        )
        assert order.index(SelEventType.ESCALATED) < order.index(
            SelEventType.DUTY_PINNED_AT_MINIMUM
        )

    def test_clearing_the_cap_logged(self, config):
        controller = run_capped(config, 140.0, quanta=20)
        controller.set_cap(None)
        assert controller.sel.by_type(SelEventType.CAP_CLEARED)

    def test_timestamps_monotone(self, config):
        controller = run_capped(config, 120.0)
        times = [e.time_s for e in controller.sel.entries()]
        assert times == sorted(times)
