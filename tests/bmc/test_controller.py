"""Cap controller: dithering, escalation, duty collapse, de-escalation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.controller import CapController
from repro.bmc.sensors import PowerSensor
from repro.errors import CapInfeasibleError


def make_controller(config, noise=0.0, seed=0):
    node = Node(config)
    node.thermal.reset(38.0)
    sensor = PowerSensor(np.random.default_rng(seed), noise_sigma_w=noise)
    return node, CapController(node, sensor)


def converge(node, controller, quanta=400, traffic=0.0):
    """Drive the closed loop and return the last command."""
    power = node.power_w()
    cmd = None
    model = node.power_model
    for _ in range(quanta):
        cmd = controller.update(power, traffic_bps=traffic)
        p_fast = model.power_of_pstate(
            cmd.pstate_fast,
            duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            dram_traffic_bps=traffic,
            temperature_c=node.thermal.temperature_c,
        )
        p_slow = model.power_of_pstate(
            cmd.pstate_slow,
            duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            dram_traffic_bps=traffic,
            temperature_c=node.thermal.temperature_c,
        )
        power = cmd.alpha * p_fast + (1 - cmd.alpha) * p_slow
        node.thermal.step(power, node.config.bmc.control_quantum_s)
    return cmd, power


class TestUncapped:
    def test_no_cap_runs_at_p0(self, config):
        node, controller = make_controller(config)
        cmd, power = converge(node, controller, quanta=10)
        assert cmd.pstate_fast.index == 0
        assert cmd.duty == 1.0
        assert cmd.escalation_level == 0


class TestDvfsRegion:
    """Caps above the DVFS floor: pure P-state dithering."""

    @pytest.mark.parametrize("cap", [160.0, 150.0, 140.0, 135.0])
    def test_power_converges_under_cap(self, config, cap):
        node, controller = make_controller(config)
        controller.set_cap(cap)
        cmd, power = converge(node, controller)
        assert power <= cap + 0.5
        assert cmd.escalation_level == 0
        assert cmd.duty == 1.0

    def test_dither_pair_is_adjacent(self, config):
        node, controller = make_controller(config)
        controller.set_cap(140.0)
        cmd, _ = converge(node, controller)
        assert cmd.pstate_slow.index - cmd.pstate_fast.index in (0, 1)
        assert 0.0 <= cmd.alpha <= 1.0

    def test_frequency_decreases_with_cap(self, config):
        freqs = []
        for cap in (155.0, 145.0, 135.0):
            node, controller = make_controller(config)
            controller.set_cap(cap)
            cmd, _ = converge(node, controller)
            freqs.append(cmd.effective_freq_hz)
        assert freqs == sorted(freqs, reverse=True)

    def test_cap_above_busy_power_keeps_p0(self, config):
        node, controller = make_controller(config)
        controller.set_cap(160.0)
        cmd, _ = converge(node, controller)
        assert cmd.pstate_fast.index == 0
        assert cmd.effective_freq_hz == pytest.approx(2.701e9)


class TestEscalationRegion:
    """Caps at/below the DVFS floor: the paper's Section IV regime."""

    def test_cap_125_engages_way_gating(self, config):
        node, controller = make_controller(config)
        controller.set_cap(125.0)
        cmd, power = converge(node, controller)
        assert cmd.escalation_level >= 1
        assert cmd.gating.l3_way_fraction < 1.0
        assert cmd.gating.itlb_fraction < 1.0
        # Frequency pinned at the floor (Table II: 1,200 MHz).
        assert cmd.effective_freq_hz == pytest.approx(1.2e9)
        assert cmd.duty == 1.0  # duty not yet needed at 125 W

    def test_cap_120_exhausts_ladder_and_pins_duty(self, config):
        node, controller = make_controller(config)
        controller.set_cap(120.0)
        cmd, power = converge(node, controller, quanta=1500)
        assert cmd.escalation_level == controller.ladder.max_level
        assert cmd.duty == pytest.approx(config.bmc.ladder.duty_min)
        # The cap is NOT honoured — the paper's measured 124/124.9 W.
        assert power > 120.0

    def test_cap_130_needs_no_escalation(self, config):
        node, controller = make_controller(config)
        controller.set_cap(130.0)
        cmd, power = converge(node, controller)
        assert cmd.escalation_level == 0
        assert power < 130.0

    def test_deescalation_after_cap_raised(self, config):
        node, controller = make_controller(config)
        controller.set_cap(120.0)
        converge(node, controller, quanta=1500)
        assert controller.ladder.level > 0
        controller.set_cap(150.0)
        cmd, power = converge(node, controller, quanta=4000)
        assert controller.ladder.level == 0
        assert cmd.duty == 1.0
        assert power <= 150.5

    def test_clearing_cap_resets_actuators(self, config):
        node, controller = make_controller(config)
        controller.set_cap(120.0)
        converge(node, controller, quanta=1500)
        controller.set_cap(None)
        cmd, _ = converge(node, controller, quanta=5)
        assert cmd.duty == 1.0
        assert cmd.escalation_level == 0
        assert controller.cap_w is None


class TestStrictFeasibility:
    def test_infeasible_cap_raises_when_strict(self, config):
        node, controller = make_controller(config)
        with pytest.raises(CapInfeasibleError) as err:
            controller.set_cap(105.0, strict=True)
        assert err.value.cap_watts == 105.0
        assert err.value.floor_watts > 105.0

    def test_lenient_mode_accepts_and_overruns(self, config):
        node, controller = make_controller(config)
        controller.set_cap(110.0)  # accepted, like the real firmware
        cmd, power = converge(node, controller, quanta=1500)
        assert power > 110.0


class TestNoiseRobustness:
    def test_noisy_sensor_still_converges(self, config):
        node, controller = make_controller(config, noise=0.5, seed=3)
        controller.set_cap(140.0)
        _, power = converge(node, controller)
        assert abs(power - 137.0) < 3.0
