"""Power sensors, escalation ladder runtime, and the BMC IPMI device."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.bmc import Bmc
from repro.bmc.escalation import EscalationLadder
from repro.bmc.sensors import PowerSensor, TemperatureSensor
from repro.errors import SimulationError
from repro.ipmi.commands import (
    ActivatePowerLimitRequest,
    GetPowerLimitRequest,
    GetPowerReadingRequest,
    GetPowerReadingResponse,
    PowerLimitResponse,
    SetPowerLimitRequest,
)
from repro.ipmi.messages import CompletionCode, IpmiMessage, IpmiResponse
from repro.ipmi.transport import LanTransport


class TestPowerSensor:
    def test_noiseless_tracks_truth(self):
        s = PowerSensor(np.random.default_rng(0), noise_sigma_w=0.0, smoothing=1.0)
        assert s.sample(150.0) == pytest.approx(150.0)

    def test_smoothing_filters_steps(self):
        s = PowerSensor(np.random.default_rng(0), noise_sigma_w=0.0, smoothing=0.5)
        s.sample(100.0)
        after = s.sample(200.0)
        assert after == pytest.approx(150.0)

    def test_reading_before_sample_raises(self):
        s = PowerSensor(np.random.default_rng(0))
        with pytest.raises(SimulationError):
            _ = s.reading_w

    def test_reset(self):
        s = PowerSensor(np.random.default_rng(0), noise_sigma_w=0.0)
        s.sample(100.0)
        s.reset()
        assert s.sample(200.0) == pytest.approx(200.0)

    def test_temperature_sensor_noise(self):
        t = TemperatureSensor(np.random.default_rng(0), noise_sigma_c=0.0)
        assert t.sample(45.0) == 45.0


class TestEscalationLadder:
    def test_walk_up_and_down(self, config):
        ladder = EscalationLadder(config.bmc.ladder)
        assert ladder.level == 0
        assert ladder.gating_state().is_ungated
        assert ladder.power_saving_w() == 0.0
        levels_climbed = 0
        while ladder.escalate():
            levels_climbed += 1
        assert levels_climbed == ladder.max_level
        assert ladder.at_top
        assert not ladder.escalate()
        while ladder.deescalate():
            pass
        assert ladder.level == 0
        assert not ladder.deescalate()

    def test_gating_matches_spec(self, config):
        ladder = EscalationLadder(config.bmc.ladder)
        ladder.escalate()
        spec = config.bmc.ladder.levels[0]
        g = ladder.gating_state()
        assert g.l3_way_fraction == spec.l3_way_fraction
        assert g.itlb_fraction == spec.itlb_fraction
        assert ladder.power_saving_w() == spec.power_saving_w

    def test_set_level_bounds(self, config):
        ladder = EscalationLadder(config.bmc.ladder)
        ladder.set_level(ladder.max_level)
        assert ladder.at_top
        with pytest.raises(SimulationError):
            ladder.set_level(ladder.max_level + 1)
        ladder.reset()
        assert ladder.level == 0


@pytest.fixture
def rig(config):
    """A BMC on a LAN with a deterministic clean channel."""
    node = Node(config)
    lan = LanTransport(
        np.random.default_rng(0), drop_probability=0.0, corruption_probability=0.0
    )
    bmc = Bmc(
        node, np.random.default_rng(1), lan_address="10.0.0.5", transport=lan
    )
    return node, lan, bmc


def roundtrip(lan, request) -> IpmiResponse:
    return IpmiResponse.decode(lan.request("10.0.0.5", request.encode()))


class TestBmcIpmi:
    def test_set_then_activate_programs_controller(self, rig):
        node, lan, bmc = rig
        seq = iter(range(1, 60))
        resp = roundtrip(
            lan, SetPowerLimitRequest(limit_w=130).to_message(0x20, 0x81, next(seq))
        )
        assert resp.ok
        assert bmc.programmed_limit_w == 130
        assert bmc.controller.cap_w is None  # not yet armed
        resp = roundtrip(
            lan, ActivatePowerLimitRequest(True).to_message(0x20, 0x81, next(seq))
        )
        assert resp.ok
        assert bmc.controller.cap_w == 130.0

    def test_deactivate_clears_cap(self, rig):
        node, lan, bmc = rig
        roundtrip(lan, SetPowerLimitRequest(limit_w=130).to_message(0x20, 0x81, 1))
        roundtrip(lan, ActivatePowerLimitRequest(True).to_message(0x20, 0x81, 2))
        roundtrip(lan, ActivatePowerLimitRequest(False).to_message(0x20, 0x81, 3))
        assert bmc.controller.cap_w is None
        assert not bmc.limit_active

    def test_activate_without_limit_fails(self, rig):
        _, lan, _ = rig
        resp = roundtrip(
            lan, ActivatePowerLimitRequest(True).to_message(0x20, 0x81, 1)
        )
        assert resp.completion_code == int(CompletionCode.POWER_LIMIT_NOT_ACTIVE)

    def test_get_limit_roundtrip(self, rig):
        _, lan, bmc = rig
        roundtrip(lan, SetPowerLimitRequest(limit_w=145).to_message(0x20, 0x81, 1))
        resp = roundtrip(lan, GetPowerLimitRequest().to_message(0x20, 0x81, 2))
        limit = PowerLimitResponse.from_payload(resp.data)
        assert limit.limit_w == 145
        assert not limit.active

    def test_get_limit_before_set_fails(self, rig):
        _, lan, _ = rig
        resp = roundtrip(lan, GetPowerLimitRequest().to_message(0x20, 0x81, 1))
        assert not resp.ok

    def test_absurd_limit_rejected(self, rig):
        _, lan, bmc = rig
        resp = roundtrip(
            lan, SetPowerLimitRequest(limit_w=10).to_message(0x20, 0x81, 1)
        )
        assert resp.completion_code == int(
            CompletionCode.POWER_LIMIT_OUT_OF_RANGE
        )
        assert bmc.programmed_limit_w is None

    def test_power_reading_statistics(self, rig):
        _, lan, bmc = rig
        for p in (150.0, 155.0, 145.0):
            bmc.record_power(p, 0.05)
        resp = roundtrip(lan, GetPowerReadingRequest().to_message(0x20, 0x81, 1))
        reading = GetPowerReadingResponse.from_payload(resp.data)
        assert reading.current_w == 145
        assert reading.minimum_w == 145
        assert reading.maximum_w == 155
        assert reading.average_w == 150

    def test_unknown_command_rejected(self, rig):
        _, lan, _ = rig
        msg = IpmiMessage(
            rs_addr=0x20, net_fn=0x2C, rq_addr=0x81, rq_seq=1, cmd=0x7F
        )
        resp = roundtrip(lan, msg)
        assert resp.completion_code == int(CompletionCode.INVALID_COMMAND)

    def test_wrong_netfn_rejected(self, rig):
        _, lan, _ = rig
        msg = IpmiMessage(rs_addr=0x20, net_fn=0x06, rq_addr=0x81, rq_seq=1, cmd=2)
        resp = roundtrip(lan, msg)
        assert resp.completion_code == int(CompletionCode.INVALID_COMMAND)

    def test_malformed_payload_rejected(self, rig):
        _, lan, _ = rig
        msg = IpmiMessage(
            rs_addr=0x20, net_fn=0x2C, rq_addr=0x81, rq_seq=1, cmd=0x04,
            data=b"\x00",
        )
        resp = roundtrip(lan, msg)
        assert resp.completion_code == int(CompletionCode.REQUEST_DATA_INVALID)
