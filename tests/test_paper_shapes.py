"""Integration: the paper's qualitative findings, end to end.

These tests run the full methodology (scaled-down instruction budgets,
all nine caps) and assert the *shape* criteria from DESIGN.md §4 — the
claims the reproduction stands or falls on.  Absolute numbers are
checked loosely; orderings, knees, and factor relationships are checked
strictly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import PAPER_POWER_CAPS_W
from repro.core.experiment import PowerCapExperiment
from repro.core.amenability import characterize_amenability
from repro.perf.events import PapiEvent
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload

SCALE = 0.06


def scaled(workload):
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * SCALE,
    )
    return workload


@pytest.fixture(scope="module")
def sweeps():
    exp = PowerCapExperiment(
        [scaled(StereoMatchingWorkload()), scaled(SireRsmWorkload())],
        caps_w=PAPER_POWER_CAPS_W,
        repetitions=1,
        slice_accesses=250_000,
    )
    return exp.run_all()


@pytest.fixture(scope="module")
def stereo(sweeps):
    return sweeps["StereoMatching"]


@pytest.fixture(scope="module")
def sire(sweeps):
    return sweeps["SIRE/RSM"]


class TestTable1Shape:
    def test_sire_runs_about_4x_longer(self, stereo, sire):
        ratio = sire.baseline.execution_s / stereo.baseline.execution_s
        assert 3.0 < ratio < 5.5  # paper: 377/91 ~ 4.15

    def test_both_draw_150_to_160_watts(self, stereo, sire):
        for sweep in (stereo, sire):
            assert 150.0 < sweep.baseline.avg_power_w < 160.0

    def test_sire_draws_more_than_stereo(self, stereo, sire):
        # Table I: 157 vs 153 W (streaming DRAM traffic).
        assert sire.baseline.avg_power_w > stereo.baseline.avg_power_w


class TestTable2TimeAndEnergyShape:
    def test_time_monotone_in_cap(self, stereo, sire):
        for sweep in (stereo, sire):
            times = [sweep.row(c).execution_s for c in sorted(
                sweep.by_cap, reverse=True)]
            for a, b in zip(times, times[1:]):
                assert b >= a * 0.995  # monotone within noise

    def test_energy_minimal_at_high_caps(self, stereo, sire):
        # "total energy consumption is lowest at power caps of 155 and
        # 160 Watts."
        for sweep in (stereo, sire):
            high = min(
                sweep.row(160.0).energy_j, sweep.row(155.0).energy_j
            )
            for cap in (150.0, 140.0, 130.0, 120.0):
                assert sweep.row(cap).energy_j > high * 0.99

    def test_moderate_caps_cost_at_most_40_percent(self, stereo, sire):
        # "From 160 to 140 Watts this growth is relatively small, i.e.,
        # less than or equal to 40%."
        for sweep in (stereo, sire):
            for cap in (160.0, 155.0, 150.0, 145.0, 140.0):
                assert sweep.slowdown(cap) <= 1.45

    def test_blowup_at_120(self, stereo, sire):
        # Paper: +3,467% (Stereo) and +2,583% (SIRE) at 120 W.
        assert stereo.slowdown(120.0) > 15.0
        assert sire.slowdown(120.0) > 15.0

    def test_stereo_blowup_exceeds_sire(self, stereo, sire):
        assert stereo.slowdown(120.0) >= sire.slowdown(120.0)

    def test_energy_tracks_time(self, stereo):
        # "the increase in energy consumption always tracking the
        # increase in execution time."
        caps = sorted(stereo.by_cap, reverse=True)
        times = [stereo.row(c).execution_s for c in caps]
        energies = [stereo.row(c).energy_j for c in caps]
        order_t = sorted(range(len(caps)), key=lambda i: times[i])
        order_e = sorted(range(len(caps)), key=lambda i: energies[i])
        assert order_t == order_e

    def test_average_power_under_cap_except_lowest(self, stereo, sire):
        # "in general, the average node power consumption is under the
        # power cap; this is not the case ... at 120 Watts."
        for sweep in (stereo, sire):
            for cap in (150.0, 140.0, 130.0):
                assert sweep.row(cap).avg_power_w < cap + 1.0
            assert sweep.row(120.0).avg_power_w > 120.0


class TestFrequencyShape:
    def test_baseline_at_2701(self, stereo):
        assert stereo.baseline.avg_freq_mhz == pytest.approx(2701.0, abs=2)

    def test_frequency_decreases_with_cap(self, stereo):
        freqs = [
            stereo.row(c).avg_freq_mhz
            for c in sorted(stereo.by_cap, reverse=True)
        ]
        for a, b in zip(freqs, freqs[1:]):
            assert b <= a + 20.0

    def test_pinned_at_floor_for_low_caps(self, stereo, sire):
        # Table II: 1,200 MHz at caps <= 125 W -> DVFS exhausted.
        for sweep in (stereo, sire):
            for cap in (125.0, 120.0):
                assert sweep.row(cap).avg_freq_mhz == pytest.approx(
                    1200.0, abs=25.0
                )


class TestCounterShape:
    """Section IV-B: the memory-hierarchy reconfiguration evidence."""

    def test_stereo_l2_l3_jump_at_low_caps(self, stereo):
        base = stereo.baseline
        low = stereo.row(120.0)
        assert low.counters[PapiEvent.PAPI_L2_TCM] > 2.0 * base.counters[
            PapiEvent.PAPI_L2_TCM
        ]
        assert low.counters[PapiEvent.PAPI_L3_TCM] > 2.0 * base.counters[
            PapiEvent.PAPI_L3_TCM
        ]

    def test_sire_l2_l3_flat_at_low_caps(self, sire):
        # "For SIRE/RSM the number of L1, L2, and L3 cache misses are
        # essentially unchanged" — the streaming signature.
        base = sire.baseline
        for cap in (125.0, 120.0):
            row = sire.row(cap)
            for e in (PapiEvent.PAPI_L2_TCM, PapiEvent.PAPI_L3_TCM):
                assert row.counters[e] == pytest.approx(
                    base.counters[e], rel=0.10
                )

    def test_itlb_explodes_for_both(self, stereo, sire):
        # Paper: +6,395% (Stereo) and +8,481% (SIRE) at 120 W.
        for sweep in (stereo, sire):
            base = max(1.0, sweep.baseline.counters[PapiEvent.PAPI_TLB_IM])
            low = sweep.row(120.0).counters[PapiEvent.PAPI_TLB_IM]
            assert low > 10.0 * base

    def test_dtlb_stays_calm(self, stereo):
        # "the number of data TLB misses remain fairly constant
        # (bounded by an increase of 6.85%)" for Stereo.
        base = stereo.baseline.counters[PapiEvent.PAPI_TLB_DM]
        low = stereo.row(120.0).counters[PapiEvent.PAPI_TLB_DM]
        assert abs(low - base) / base < 0.35

    def test_l1_essentially_unchanged(self, stereo):
        # Table II: Stereo L1 misses at most +2% vs baseline.
        base = stereo.baseline.counters[PapiEvent.PAPI_L1_TCM]
        low = stereo.row(120.0).counters[PapiEvent.PAPI_L1_TCM]
        assert abs(low - base) / base < 0.10

    def test_no_miss_changes_at_moderate_caps(self, stereo):
        base = stereo.baseline
        for cap in (150.0, 140.0):
            row = stereo.row(cap)
            for e in (PapiEvent.PAPI_L2_TCM, PapiEvent.PAPI_L3_TCM):
                assert row.counters[e] == pytest.approx(
                    base.counters[e], rel=0.05
                )


class TestAmenabilityShape:
    def test_sire_more_amenable_than_stereo(self, stereo, sire):
        # The paper's conclusion: "SIRE/RSM is more amenable to power
        # capping than is Stereo Matching" (knee at 140 vs 145 W).
        st_report = characterize_amenability(stereo, tolerance_slowdown=1.25)
        si_report = characterize_amenability(sire, tolerance_slowdown=1.25)
        assert si_report.knee_cap_w is not None
        assert st_report.knee_cap_w is not None
        assert si_report.knee_cap_w <= st_report.knee_cap_w
        assert si_report.amenability_score >= st_report.amenability_score
