"""DCM: policies, manager over IPMI, group capping, alerts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.bmc import Bmc
from repro.dcm.events import AlertLog, AlertSeverity
from repro.dcm.group import DivisionStrategy, NodeGroup
from repro.dcm.manager import DataCenterManager
from repro.dcm.policy import (
    NoCapPolicy,
    ScheduledCapPolicy,
    StaticCapPolicy,
)
from repro.errors import PolicyError
from repro.ipmi.transport import LanTransport


class TestPolicies:
    def test_no_cap(self):
        assert NoCapPolicy().cap_at(123.0) is None

    def test_static(self):
        p = StaticCapPolicy(cap_w=130.0)
        assert p.cap_at(0.0) == 130.0
        assert p.cap_at(1e6) == 130.0

    def test_static_rejects_non_positive(self):
        with pytest.raises(PolicyError):
            StaticCapPolicy(cap_w=0.0)

    def test_scheduled_windows(self):
        p = ScheduledCapPolicy(
            [(0.0, 10.0, 150.0), (10.0, 20.0, 130.0), (30.0, 40.0, None)]
        )
        assert p.cap_at(5.0) == 150.0
        assert p.cap_at(10.0) == 130.0
        assert p.cap_at(25.0) is None  # between windows
        assert p.cap_at(35.0) is None  # explicit uncapped window

    def test_scheduled_rejects_overlap(self):
        with pytest.raises(PolicyError, match="overlap"):
            ScheduledCapPolicy([(0.0, 10.0, 150.0), (5.0, 15.0, 130.0)])

    def test_scheduled_rejects_empty_window(self):
        with pytest.raises(PolicyError):
            ScheduledCapPolicy([(5.0, 5.0, 150.0)])

    def test_describe(self):
        assert "130" in StaticCapPolicy(130.0).describe()
        assert "uncapped" in NoCapPolicy().describe()


@pytest.fixture
def datacenter(config):
    """Three BMC-managed nodes on one LAN plus a DCM."""
    lan = LanTransport(
        np.random.default_rng(0), drop_probability=0.0, corruption_probability=0.0
    )
    nodes = {}
    for i in range(3):
        node = Node(config)
        addr = f"10.0.0.{i + 1}"
        bmc = Bmc(node, np.random.default_rng(i), lan_address=addr, transport=lan)
        bmc.record_power(150.0 + i, 0.05)
        nodes[f"node{i}"] = (node, bmc, addr)
    dcm = DataCenterManager(lan)
    for name, (_, _, addr) in nodes.items():
        dcm.register_node(name, addr)
    return dcm, nodes, lan


class TestManager:
    def test_registry(self, datacenter):
        dcm, nodes, _ = datacenter
        assert dcm.node_ids() == ["node0", "node1", "node2"]
        with pytest.raises(PolicyError):
            dcm.register_node("node0", "10.0.0.1")
        with pytest.raises(PolicyError):
            dcm.node("ghost")

    def test_apply_cap_programs_bmc_over_the_wire(self, datacenter):
        dcm, nodes, _ = datacenter
        dcm.apply_cap("node1", 130.0)
        _, bmc, _ = nodes["node1"]
        assert bmc.programmed_limit_w == 130
        assert bmc.limit_active
        assert bmc.controller.cap_w == 130.0
        # Other nodes untouched.
        assert nodes["node0"][1].programmed_limit_w is None

    def test_apply_none_disarms(self, datacenter):
        dcm, nodes, _ = datacenter
        dcm.apply_cap("node1", 130.0)
        dcm.apply_cap("node1", None)
        assert not nodes["node1"][1].limit_active

    def test_read_power(self, datacenter):
        dcm, nodes, _ = datacenter
        reading = dcm.read_power("node2")
        assert reading.current_w == 152

    def test_read_limit(self, datacenter):
        dcm, _, _ = datacenter
        dcm.apply_cap("node0", 125.0)
        limit = dcm.read_limit("node0")
        assert limit.limit_w == 125 and limit.active

    def test_tick_applies_policies_and_records_history(self, datacenter):
        dcm, nodes, _ = datacenter
        dcm.set_policy("node0", StaticCapPolicy(135.0))
        dcm.tick(time_s=0.0)
        assert nodes["node0"][1].controller.cap_w == 135.0
        entry = dcm.node("node0")
        assert len(entry.history) == 1

    def test_tick_scheduled_policy_transitions(self, datacenter):
        dcm, nodes, _ = datacenter
        dcm.set_policy(
            "node0", ScheduledCapPolicy([(0.0, 10.0, 150.0), (10.0, 20.0, 125.0)])
        )
        dcm.tick(0.0)
        assert nodes["node0"][1].controller.cap_w == 150.0
        dcm.tick(12.0)
        assert nodes["node0"][1].controller.cap_w == 125.0
        dcm.tick(25.0)
        assert nodes["node0"][1].controller.cap_w is None

    def test_threshold_alert(self, datacenter):
        dcm, nodes, _ = datacenter
        dcm.node("node1").warn_threshold_w = 140.0
        dcm.tick(0.0)
        warnings = dcm.alerts.by_severity(AlertSeverity.WARNING)
        assert len(warnings) == 1
        assert warnings[0].node_id == "node1"

    def test_unreachable_node_raises_critical_alert(self, config):
        lan = LanTransport(
            np.random.default_rng(0),
            drop_probability=0.999999,
            corruption_probability=0.0,
            max_retries=1,
        )
        node = Node(config)
        Bmc(node, np.random.default_rng(1), lan_address="10.0.0.9", transport=lan)
        dcm = DataCenterManager(lan)
        dcm.register_node("flaky", "10.0.0.9")
        dcm.tick(0.0)
        critical = dcm.alerts.by_severity(AlertSeverity.CRITICAL)
        assert len(critical) == 1
        assert not dcm.node("flaky").reachable

    def test_total_power(self, datacenter):
        dcm, _, _ = datacenter
        dcm.tick(0.0)
        assert dcm.total_power_w() == pytest.approx(150 + 151 + 152, abs=3)


class TestNodeGroup:
    def test_equal_division(self, datacenter):
        dcm, _, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=420.0)
        for n in dcm.node_ids():
            group.add_member(n)
        caps = group.divide(DivisionStrategy.EQUAL)
        assert all(v == pytest.approx(140.0) for v in caps.values())

    def test_equal_clamps_to_member_range(self, datacenter):
        dcm, _, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=900.0)
        for n in dcm.node_ids():
            group.add_member(n, max_cap_w=160.0)
        caps = group.divide(DivisionStrategy.EQUAL)
        assert all(v == 160.0 for v in caps.values())

    def test_proportional_follows_demand(self, datacenter):
        dcm, _, _ = datacenter
        dcm.tick(0.0)  # record history: 150, 151, 152
        group = NodeGroup(dcm, "rack", budget_w=450.0)
        for n in dcm.node_ids():
            group.add_member(n)
        caps = group.divide(DivisionStrategy.PROPORTIONAL)
        assert caps["node0"] < caps["node1"] < caps["node2"]
        assert sum(caps.values()) <= 450.0 + 1e-9

    def test_priority_fills_high_priority_first(self, datacenter):
        dcm, _, _ = datacenter
        dcm.tick(0.0)
        group = NodeGroup(dcm, "rack", budget_w=400.0)
        group.add_member("node0", priority=10)
        group.add_member("node1", priority=1)
        group.add_member("node2", priority=1)
        caps = group.divide(DivisionStrategy.PRIORITY)
        # node0 gets filled to demand; others share the remainder.
        assert caps["node0"] == pytest.approx(150.0, abs=2)
        assert caps["node1"] < caps["node0"]

    def test_feasibility(self, datacenter):
        dcm, _, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=200.0)
        for n in dcm.node_ids():
            group.add_member(n, min_cap_w=110.0)
        assert not group.feasible()

    def test_apply_programs_all_members(self, datacenter):
        dcm, nodes, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=420.0)
        for n in dcm.node_ids():
            group.add_member(n)
        caps = group.apply(DivisionStrategy.EQUAL)
        for name, (_, bmc, _) in nodes.items():
            assert bmc.controller.cap_w == pytest.approx(caps[name])

    def test_membership_validation(self, datacenter):
        dcm, _, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=400.0)
        group.add_member("node0")
        with pytest.raises(PolicyError):
            group.add_member("node0")
        with pytest.raises(PolicyError):
            group.add_member("ghost")
        with pytest.raises(PolicyError):
            group.add_member("node1", priority=0)

    def test_empty_group_divide_rejected(self, datacenter):
        dcm, _, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=400.0)
        with pytest.raises(PolicyError):
            group.divide(DivisionStrategy.EQUAL)

    def test_member_clamps_default_to_group_defaults(self, datacenter):
        from repro.dcm.division import DEFAULT_MAX_CAP_W, DEFAULT_MIN_CAP_W

        dcm, _, _ = datacenter
        group = NodeGroup(dcm, "rack", budget_w=400.0)
        group.add_member("node0")
        member = group._members["node0"]
        assert member.min_cap_w == DEFAULT_MIN_CAP_W
        assert member.max_cap_w == DEFAULT_MAX_CAP_W
        assert group.default_min_cap_w == DEFAULT_MIN_CAP_W
        assert group.default_max_cap_w == DEFAULT_MAX_CAP_W

    def test_custom_group_defaults_flow_to_members(self, datacenter):
        dcm, _, _ = datacenter
        group = NodeGroup(
            dcm, "rack", budget_w=900.0,
            default_min_cap_w=120.0, default_max_cap_w=180.0,
        )
        group.add_member("node0")  # inherits the group defaults
        group.add_member("node1", min_cap_w=100.0, max_cap_w=250.0)
        caps = group.divide(DivisionStrategy.EQUAL)
        assert caps["node0"] == 180.0  # clamped to the group default
        assert caps["node1"] == 250.0  # explicit bounds win

    def test_group_default_validation(self, datacenter):
        dcm, _, _ = datacenter
        with pytest.raises(PolicyError):
            NodeGroup(dcm, "rack", budget_w=400.0,
                      default_min_cap_w=200.0, default_max_cap_w=150.0)
        with pytest.raises(PolicyError):
            NodeGroup(dcm, "rack", budget_w=400.0, default_min_cap_w=0.0)


class TestAlertLog:
    def test_subscribe(self):
        log = AlertLog()
        seen = []
        log.subscribe(seen.append)
        log.raise_alert(1.0, "n", AlertSeverity.INFO, "hello")
        assert len(seen) == 1 and len(log) == 1

    def test_filters(self):
        log = AlertLog()
        log.raise_alert(1.0, "a", AlertSeverity.INFO, "x")
        log.raise_alert(2.0, "b", AlertSeverity.CRITICAL, "y")
        assert len(log.by_severity(AlertSeverity.CRITICAL)) == 1
        assert len(log.for_node("a")) == 1
