"""Group balancer: hysteresis, reallocation, history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.bmc import Bmc
from repro.dcm.balancer import GroupBalancer
from repro.dcm.group import DivisionStrategy, NodeGroup
from repro.dcm.manager import DataCenterManager
from repro.errors import PolicyError
from repro.ipmi.transport import LanTransport


@pytest.fixture
def rig(config):
    lan = LanTransport(
        np.random.default_rng(0), drop_probability=0.0,
        corruption_probability=0.0,
    )
    dcm = DataCenterManager(lan)
    bmcs = {}
    for i in range(3):
        node = Node(config)
        addr = f"10.2.0.{i + 1}"
        bmc = Bmc(node, np.random.default_rng(i), lan_address=addr,
                  transport=lan)
        bmc.record_power(150.0, 0.05)
        bmcs[f"n{i}"] = bmc
        dcm.register_node(f"n{i}", addr)
    dcm.tick(0.0)
    group = NodeGroup(dcm, "rack", budget_w=420.0)
    for name in dcm.node_ids():
        group.add_member(name, min_cap_w=110.0, max_cap_w=165.0)
    return dcm, bmcs, group


class TestBalancer:
    def test_first_tick_always_applies(self, rig):
        dcm, bmcs, group = rig
        balancer = GroupBalancer(group)
        record = balancer.tick(0.0)
        assert record.applied
        assert balancer.rebalance_count == 1
        for bmc in bmcs.values():
            assert bmc.controller.cap_w is not None

    def test_stable_demand_no_thrash(self, rig):
        dcm, bmcs, group = rig
        balancer = GroupBalancer(group, rebalance_threshold_w=5.0)
        balancer.tick(0.0)
        # Small demand wobble: readings drift by a watt.
        for i, bmc in enumerate(bmcs.values()):
            bmc.record_power(150.5 + 0.2 * i, 0.05)
        dcm.tick(10.0)
        record = balancer.tick(10.0)
        assert not record.applied
        assert balancer.rebalance_count == 1

    def test_demand_shift_reallocates(self, rig):
        dcm, bmcs, group = rig
        balancer = GroupBalancer(
            group, DivisionStrategy.PROPORTIONAL, rebalance_threshold_w=5.0
        )
        balancer.tick(0.0)
        even = balancer.applied_caps_w
        # n0's workload surges; the others go quiet.
        bmcs["n0"].record_power(165.0, 0.05)
        bmcs["n1"].record_power(120.0, 0.05)
        bmcs["n2"].record_power(120.0, 0.05)
        dcm.tick(20.0)
        record = balancer.tick(20.0)
        assert record.applied
        caps = balancer.applied_caps_w
        assert caps["n0"] > even["n0"]
        assert caps["n1"] < even["n1"]
        # BMCs actually reprogrammed over IPMI.
        assert bmcs["n0"].controller.cap_w == pytest.approx(caps["n0"], abs=1)

    def test_budget_respected_through_rebalances(self, rig):
        dcm, bmcs, group = rig
        balancer = GroupBalancer(group)
        balancer.tick(0.0)
        bmcs["n0"].record_power(170.0, 0.05)
        dcm.tick(5.0)
        balancer.tick(5.0)
        assert sum(balancer.applied_caps_w.values()) <= group.budget_w + 1e-6

    def test_history_records_everything(self, rig):
        dcm, bmcs, group = rig
        balancer = GroupBalancer(group)
        balancer.tick(0.0)
        balancer.tick(1.0)
        history = balancer.history
        assert len(history) == 2
        assert history[0].applied and not history[1].applied
        assert history[1].max_delta_w < 5.0

    def test_threshold_validation(self, rig):
        _, _, group = rig
        with pytest.raises(PolicyError):
            GroupBalancer(group, rebalance_threshold_w=-1.0)


class TestHysteresisBoundary:
    """The documented boundary semantics: delta == threshold is quiet.

    The comparison is strictly ``max_delta > threshold`` (see
    :meth:`GroupBalancer.tick`); a cap movement of exactly the
    threshold must NOT reprogram the BMCs, and the hysteresis reference
    stays the last *applied* division.
    """

    def test_delta_exactly_at_threshold_does_not_trigger(self, rig, monkeypatch):
        _, _, group = rig
        balancer = GroupBalancer(group, rebalance_threshold_w=5.0)
        base = {name: 140.0 for name in group.member_ids()}
        monkeypatch.setattr(group, "divide", lambda strategy: dict(base))
        assert balancer.tick(0.0).applied  # first tick always applies

        moved = dict(base)
        moved["n0"] = 145.0  # delta == threshold, exactly
        monkeypatch.setattr(group, "divide", lambda strategy: dict(moved))
        record = balancer.tick(1.0)
        assert record.max_delta_w == 5.0
        assert not record.applied
        assert balancer.rebalance_count == 1

    def test_delta_just_above_threshold_triggers(self, rig, monkeypatch):
        _, _, group = rig
        balancer = GroupBalancer(group, rebalance_threshold_w=5.0)
        base = {name: 140.0 for name in group.member_ids()}
        monkeypatch.setattr(group, "divide", lambda strategy: dict(base))
        balancer.tick(0.0)

        moved = dict(base)
        moved["n0"] = 145.0 + 1e-9
        monkeypatch.setattr(group, "divide", lambda strategy: dict(moved))
        record = balancer.tick(1.0)
        assert record.applied
        assert balancer.rebalance_count == 2

    def test_reference_is_last_applied_division(self, rig, monkeypatch):
        _, _, group = rig
        balancer = GroupBalancer(group, rebalance_threshold_w=5.0)
        base = {name: 140.0 for name in group.member_ids()}
        monkeypatch.setattr(group, "divide", lambda strategy: dict(base))
        balancer.tick(0.0)

        # Two quiet ticks drifting by the threshold each: deltas are
        # measured against the applied 140 W, not the previous wanted,
        # so the second drift (total 6 W from the reference) fires.
        for t, cap in ((1.0, 145.0), (2.0, 146.0)):
            moved = dict(base)
            moved["n0"] = cap
            monkeypatch.setattr(group, "divide", lambda strategy, m=moved: dict(m))
            record = balancer.tick(t)
        assert record.applied
        assert record.max_delta_w == pytest.approx(6.0)
        assert balancer.rebalance_count == 2

    def test_threshold_zero_fires_on_any_movement(self, rig, monkeypatch):
        _, _, group = rig
        balancer = GroupBalancer(group, rebalance_threshold_w=0.0)
        base = {name: 140.0 for name in group.member_ids()}
        monkeypatch.setattr(group, "divide", lambda strategy: dict(base))
        balancer.tick(0.0)
        record = balancer.tick(1.0)
        assert not record.applied  # identical caps: delta 0 is quiet
        moved = dict(base)
        moved["n1"] = 140.0 + 1e-9
        monkeypatch.setattr(group, "divide", lambda strategy: dict(moved))
        assert balancer.tick(2.0).applied
