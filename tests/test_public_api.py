"""Public-API hygiene: exports resolve, docstrings exist.

A library is adoptable only if its public surface is discoverable and
documented; these tests enforce that mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.arch",
    "repro.mem",
    "repro.power",
    "repro.ipmi",
    "repro.bmc",
    "repro.dcm",
    "repro.fleet",
    "repro.trace",
    "repro.workloads",
    "repro.perf",
    "repro.core",
    "repro.obs",
]


def walk_public_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        for info in pkgutil.iter_modules(module.__path__):
            if not info.name.startswith("_"):
                yield importlib.import_module(f"{name}.{info.name}")


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_top_level_covers_the_headline_api(self):
        for name in (
            "NodeRunner",
            "PowerCapExperiment",
            "SireRsmWorkload",
            "StereoMatchingWorkload",
            "StrideBenchmark",
            "DataCenterManager",
            "MultiCoreRunner",
            "TechniqueDetector",
            "PhasedRunner",
            "CapImpactPredictor",
            "characterize_amenability",
        ):
            assert name in repro.__all__


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in walk_public_modules() if not m.__doc__
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in walk_public_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_documented(self):
        missing = []
        for module in walk_public_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj):
                    continue
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not inspect.getdoc(attr):
                        missing.append(
                            f"{module.__name__}.{name}.{attr_name}"
                        )
        assert missing == []
