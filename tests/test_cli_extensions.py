"""CLI subcommands for the future-work extensions."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParserExtensions:
    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.workload == "stereo"
        assert len(args.caps) == 9

    def test_multicore_args(self):
        args = build_parser().parse_args(
            ["multicore", "--cores", "1", "4", "--cap", "150"]
        )
        assert args.cores == [1, 4]
        assert args.cap == 150.0

    def test_detect_requires_cap(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect"])


class TestCommands:
    def test_predict_output(self, capsys):
        code = main(["predict", "--workload", "stereo", "--caps", "150", "120"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Predicted cap impact" in out
        assert "dvfs" in out
        assert "infeasible" in out
        assert "knee" in out.lower()

    def test_multicore_output(self, capsys):
        code = main(
            ["--scale", "0.003", "multicore", "--cores", "1", "2",
             "--cap", "160"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Multi-core scaling" in out
        lines = [l for l in out.splitlines() if l.strip().startswith(("1 ", "2 "))]
        assert len(lines) == 2

    def test_figures_output(self, capsys):
        code = main(["--scale", "0.002", "figures", "--workload", "stereo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 2" in out
        assert "baseline" in out
        assert "frequency" in out

    def test_detect_output(self, capsys):
        code = main(["detect", "--cap", "125"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Mechanisms at a 125 W cap" in out
        assert "DVFS" in out
        # 125 W engages way/iTLB gating at the floor.
        assert "ACTIVE" in out
