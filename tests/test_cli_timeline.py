"""The ``timeline`` subcommand, ``inspect --format json``, telemetry flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def result_file(tmp_path_factory):
    """A small sweep result file produced through the real CLI."""
    import contextlib
    import io

    path = tmp_path_factory.mktemp("timeline") / "sweep.json"
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        code = main(
            ["--scale", "0.002", "sweep", "--workload", "stereo",
             "--caps", "150", "120", "--format", "json"]
        )
    assert code == 0
    path.write_text(buf.getvalue())
    return path


class TestParser:
    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline", "r.json"])
        assert args.target == "r.json"
        assert args.channel is None
        assert args.cap is None
        assert not args.csv and not args.ascii

    def test_global_telemetry_flags(self):
        args = build_parser().parse_args(
            ["--telemetry-period", "0.5", "sweep"]
        )
        assert args.telemetry_period == 0.5
        args = build_parser().parse_args(["--no-telemetry", "sweep"])
        assert args.no_telemetry

    def test_inspect_format_choices(self):
        args = build_parser().parse_args(
            ["inspect", "r.json", "--format", "json"]
        )
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect", "r.json", "--format", "xml"])


class TestTimelineCommand:
    def test_summary_output(self, result_file, capsys):
        assert main(["timeline", str(result_file)]) == 0
        out = capsys.readouterr().out
        assert "StereoMatching @ uncapped" in out
        assert "StereoMatching @ 120 W cap" in out
        assert "power_w" in out and "freq_mhz" in out

    def test_ascii_sparklines(self, result_file, capsys):
        assert main(
            ["timeline", str(result_file), "--ascii",
             "--channel", "power_w", "--channel", "freq_mhz",
             "--cap", "120"]
        ) == 0
        out = capsys.readouterr().out
        assert "StereoMatching @ 120 W" in out
        assert "power_w |" in out and "freq_mhz |" in out
        assert "uncapped" not in out  # --cap filtered the rest away

    def test_csv_output(self, result_file, capsys):
        assert main(
            ["timeline", str(result_file), "--csv", "--channel", "power_w"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "workload,cap,channel,t_s,dt_s,mean,min,max"
        assert all(",power_w," in l for l in lines[1:])
        assert any(l.split(",")[1] == "baseline" for l in lines[1:])
        assert any(l.split(",")[1] == "120" for l in lines[1:])

    def test_baseline_cap_filter(self, result_file, capsys):
        assert main(
            ["timeline", str(result_file), "--cap", "baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "uncapped" in out and "120 W cap" not in out

    def test_unknown_channel_fails_clearly(self, result_file, capsys):
        assert main(
            ["timeline", str(result_file), "--channel", "bogus"]
        ) == 2
        assert "unknown channel" in capsys.readouterr().err

    def test_bad_cap_fails_clearly(self, result_file, capsys):
        assert main(["timeline", str(result_file), "--cap", "soon"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_unswept_cap_fails_clearly(self, result_file, capsys):
        assert main(["timeline", str(result_file), "--cap", "95"]) == 2
        assert "no matching" in capsys.readouterr().err

    def test_missing_target_fails_clearly(self, tmp_path, capsys):
        assert main(
            ["timeline", "ghost", "--db", str(tmp_path / "none.sqlite3")]
        ) == 2
        assert "not a result file" in capsys.readouterr().err


class TestInspectJson:
    def test_machine_readable_provenance_and_timelines(
        self, result_file, capsys
    ):
        assert main(["inspect", str(result_file), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        entry = doc["StereoMatching"]
        assert entry["provenance"]["caps_w"] == [150.0, 120.0]
        assert set(entry["timelines"]) == {"baseline", "150", "120"}
        summary = entry["timelines"]["120"]
        assert summary["channels"]["power_w"]["points"] > 0
        assert summary["channels"]["freq_mhz"]["unit"] == "MHz"

    def test_phenomena_annotated_in_provenance(self, result_file, capsys):
        assert main(["inspect", str(result_file), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        phenomena = doc["StereoMatching"]["provenance"]["phenomena"]
        floors = {
            d["cap_w"] for d in phenomena if d["phenomenon"] == "freq_floor"
        }
        assert 120.0 in floors
        assert 150.0 not in floors

    def test_table_stays_default(self, result_file, capsys):
        assert main(["inspect", str(result_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("result file")


class TestTelemetryFlags:
    def test_no_telemetry_omits_timelines_and_keeps_results_identical(
        self, result_file, capsys
    ):
        assert main(
            ["--scale", "0.002", "--no-telemetry", "sweep",
             "--workload", "stereo", "--caps", "150", "120",
             "--format", "json"]
        ) == 0
        bare = json.loads(capsys.readouterr().out)
        rich = json.loads(result_file.read_text())
        assert "timeline" not in bare["by_cap"]["120"]
        assert "timeline" in rich["by_cap"]["120"]
        # Telemetry is pure observation: stripping the timeline (and
        # run-specific provenance) must leave bit-identical results.
        for doc in (bare, rich):
            doc.pop("provenance")
            for row in [doc["baseline"], *doc["by_cap"].values()]:
                row.pop("timeline", None)
        assert bare == rich

    def test_custom_period_changes_resolution(self, capsys):
        assert main(
            ["--scale", "0.002", "--telemetry-period", "2.0", "sweep",
             "--workload", "stereo", "--caps", "120", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        timeline = doc["by_cap"]["120"]["timeline"]
        assert timeline["period_s"] == 2.0
