#!/usr/bin/env python3
"""Quickstart: cap a node, run an Army workload, read the cost.

This is the paper's core experiment in miniature: run Stereo Matching
uncapped to establish the Table I baseline, then under a moderate and a
harsh cap, and print the execution-time / energy / counter response.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import dataclasses

from repro import NodeRunner, PapiEvent, StereoMatchingWorkload
from repro.units import format_duration


def scaled_stereo(factor: float = 0.02) -> StereoMatchingWorkload:
    """The paper-calibrated workload with a reduced instruction budget
    so the example finishes in seconds (the shape is identical)."""
    workload = StereoMatchingWorkload()
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * factor,
    )
    return workload


def main() -> None:
    runner = NodeRunner(slice_accesses=150_000)

    print("== Baseline (no cap) ==")
    baseline = runner.run(scaled_stereo())
    print(
        f"  time {format_duration(baseline.execution_s)}  "
        f"power {baseline.avg_power_w:.1f} W  "
        f"energy {baseline.energy_j:,.0f} J  "
        f"freq {baseline.avg_freq_mhz:.0f} MHz"
    )

    for cap in (140.0, 120.0):
        print(f"\n== Cap {cap:.0f} W ==")
        result = runner.run(scaled_stereo(), cap_w=cap)
        slowdown = result.execution_s / baseline.execution_s
        print(
            f"  time {format_duration(result.execution_s)} "
            f"(x{slowdown:.2f})  power {result.avg_power_w:.1f} W  "
            f"energy {result.energy_j:,.0f} J  "
            f"freq {result.avg_freq_mhz:.0f} MHz"
        )
        print(
            f"  escalation level {result.max_escalation_level}, "
            f"min duty {result.min_duty:.2f}"
        )
        for event in (
            PapiEvent.PAPI_L2_TCM,
            PapiEvent.PAPI_L3_TCM,
            PapiEvent.PAPI_TLB_IM,
        ):
            ratio = result.counters[event] / max(1.0, baseline.counters[event])
            print(f"  {event.value}: x{ratio:.2f} vs baseline")
        if cap == 120.0:
            print("  BMC System Event Log (first 8 records):")
            for t, event_name, detail in result.sel_events[:8]:
                print(f"    {t:7.2f}s  {event_name}: {detail}")

    print(
        "\nNote how the 140 W cap costs ~1.3x (pure DVFS) while 120 W"
        "\nblows execution time up by an order of magnitude, pins the"
        "\nfrequency at the 1,200 MHz floor, and inflates L2/L3/iTLB"
        "\nmisses — the paper's Table II in miniature."
    )


if __name__ == "__main__":
    main()
