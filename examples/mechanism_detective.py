#!/usr/bin/env python3
"""Answer the paper's open question with microbenchmarks.

Section V: "we would like to ... (2) determine, using microbenchmarks,
what techniques other than DVFS are being used to manage power
consumption."  This example does it: for each cap, it lets the BMC
controller converge, freezes the operating point it chose, and turns
the mechanism-isolating probe suite loose on the resulting machine —
without letting the detector peek at the hidden state.

Run:
    python examples/mechanism_detective.py
"""

from __future__ import annotations

import numpy as np

from repro import Node
from repro.bmc import CapController, PowerSensor
from repro.core.detector import TechniqueDetector
from repro.workloads.microbench import MachineUnderTest

CAPS = (150.0, 135.0, 125.0, 120.0)

# Compact probe grids keep each detection to a couple of seconds.
L2_GRID = (48 * 1024, 96 * 1024, 160 * 1024, 224 * 1024, 384 * 1024)
L3_GRID = tuple(m * 1024 * 1024 for m in (3, 6, 10, 16))
ITLB_GRID = (8, 16, 32, 96, 128, 192)


def converge_controller(cap_w: float) -> tuple:
    """Drive the closed loop to steady state; return (gating, f, duty)."""
    node = Node()
    node.thermal.reset(38.0)
    sensor = PowerSensor(np.random.default_rng(0), noise_sigma_w=0.2)
    controller = CapController(node, sensor)
    controller.set_cap(cap_w)
    power = node.power_w()
    cmd = None
    for _ in range(1500):
        cmd = controller.update(power)
        p_fast = node.power_model.power_of_pstate(
            cmd.pstate_fast, duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            temperature_c=node.thermal.temperature_c,
        )
        p_slow = node.power_model.power_of_pstate(
            cmd.pstate_slow, duty=cmd.duty,
            gating_saving_w=cmd.gating_saving_w,
            temperature_c=node.thermal.temperature_c,
        )
        power = cmd.alpha * p_fast + (1 - cmd.alpha) * p_slow
        node.thermal.step(power, 0.05)
    return cmd.gating, cmd.effective_freq_hz, cmd.duty, power


def main() -> None:
    for cap in CAPS:
        gating, freq, duty, power = converge_controller(cap)
        machine = MachineUnderTest(gating=gating, freq_hz=freq, duty=duty)
        report = TechniqueDetector(machine).detect(
            l2_footprints=L2_GRID,
            l3_footprints=L3_GRID,
            itlb_page_counts=ITLB_GRID,
        )
        print(f"\n=== Cap {cap:.0f} W (node settled at {power:.1f} W) ===")
        print(report.summary())

    print(
        "\nReading: at 150/135 W only DVFS is active (the paper's"
        "\nTable II region of graceful slowdown).  At 125 W the ladder"
        "\nhas engaged — way gating and iTLB gating light up at the"
        "\npinned 1,200 MHz floor.  At 120 W everything is active at"
        "\nonce, including clock modulation at the minimum duty: the"
        "\nmechanisms the paper could only infer from counter artifacts,"
        "\nidentified and quantified by user-space probes."
    )


if __name__ == "__main__":
    main()
