#!/usr/bin/env python3
"""Stride microbenchmark explorer (the paper's Figures 3 and 4).

Runs the Hennessy-Patterson size x stride sweep against the simulated
memory hierarchy twice — uncapped, and while a BMC enforces a 120 W cap
— and prints both access-time tables.  The uncapped run exposes the
hierarchy's geometry exactly as Section IV-B reads it off Figure 3
(32 KB / 256 KB / 20 MB capacity edges, ~1.5 / 3.5 / 8.6 / ~46 ns
levels); the capped run reproduces Figure 4's inflated, erratic times.

Run:
    python examples/stride_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro.core.report import render_stride_figure
from repro.workloads.stride import StrideBenchmark

# A compact grid spanning every regime (full grid: see the benchmark
# suite, benchmarks/test_bench_fig3_stride_nocap.py).
SIZES = tuple(4 * 1024 * 4**i for i in range(7))  # 4K .. 16M
STRIDES = tuple(8 * 4**i for i in range(8))       # 8B .. 128K


def infer_geometry(result) -> None:
    """Mimic the paper's Section IV-B inference from the curves."""
    line64 = {s: result.series_for_size(s).get(64) for s in SIZES}
    print("\nInference (64 B stride column):")
    prev = None
    for size, t in line64.items():
        if t is None:
            continue
        note = ""
        if prev is not None and t > prev * 1.7:
            note = "  <-- capacity edge crossed"
        label = (
            f"{size // 1024}K" if size < 1 << 20 else f"{size >> 20}M"
        )
        print(f"  {label:>5}: {t:6.1f} ns{note}")
        prev = t


def main() -> None:
    bench = StrideBenchmark(
        sizes=SIZES, strides=STRIDES, accesses_per_cell=4000
    )

    print("Running the uncapped sweep (Figure 3)...")
    uncapped = bench.run()
    print(render_stride_figure(uncapped, "Figure 3: no power cap (ns)"))
    infer_geometry(uncapped)

    print("\nRunning the 120 W capped sweep (Figure 4)...")
    capped = bench.run_capped(
        120.0, np.random.default_rng(11), cell_duration_s=0.75, settle_s=15.0
    )
    print(render_stride_figure(capped, "Figure 4: 120 W cap (ns)"))

    valid = ~np.isnan(uncapped.access_time_ns)
    inflation = capped.access_time_ns[valid] / uncapped.access_time_ns[valid]
    print(
        f"\nUnder the 120 W cap, access times inflate by "
        f"x{inflation.min():.1f} to x{inflation.max():.1f} "
        f"(median x{np.median(inflation):.1f}) — the paper's Figure 4: "
        "'the average access time associated with each level of the "
        "memory hierarchy increases in the 120 Watt power capped "
        "execution environment.'"
    )


if __name__ == "__main__":
    main()
