#!/usr/bin/env python3
"""Fielded-platform scenario: pick a power cap that meets a deadline.

The paper's motivation (Section I): a UAV's payload computer gets a
power allocation from the heavy-fuel generator, and SAR image formation
has a soft real-time deadline — "a specific range of delay in
time-to-solution ... are tolerable".  This example sweeps the caps,
characterises SIRE/RSM's amenability to capping, and answers the
integrator's question: *what is the lowest cap that still meets the
deadline, and what does it cost in energy?*

Run:
    python examples/fielded_uav_budget.py
"""

from __future__ import annotations

import dataclasses

from repro import (
    NodeRunner,
    PowerBudget,
    SireRsmWorkload,
    characterize_amenability,
)
from repro.core.experiment import ExperimentResult
from repro.core.metrics import AveragedResult
from repro.units import format_duration

#: Scale factor so the example runs in seconds; shapes are unchanged.
SCALE = 0.02
#: The UAV gives the payload computer this allocation (Watts).
ALLOCATION_W = 145.0
#: Soft real-time deadline for one image: 1.5x the uncapped runtime.
DEADLINE_FACTOR = 1.5


def scaled_sire() -> SireRsmWorkload:
    workload = SireRsmWorkload()
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * SCALE,
    )
    return workload


def main() -> None:
    budget = PowerBudget(allocation_w=ALLOCATION_W)
    runner = NodeRunner(slice_accesses=150_000)

    baseline = runner.run(scaled_sire())
    deadline_s = baseline.execution_s * DEADLINE_FACTOR
    print(
        f"Uncapped SIRE/RSM: {format_duration(baseline.execution_s)} at "
        f"{baseline.avg_power_w:.1f} W "
        f"(deadline {format_duration(deadline_s)})"
    )
    print(f"Payload allocation: {ALLOCATION_W:.0f} W\n")

    # Sweep the candidate caps inside the allocation.
    result = ExperimentResult(
        workload=baseline.workload,
        baseline=AveragedResult.from_runs([baseline]),
    )
    print(f"{'cap (W)':>8} {'fits?':>6} {'time':>9} {'deadline?':>10} "
          f"{'energy (J)':>12}")
    for cap in (145.0, 140.0, 135.0, 130.0, 125.0):
        run = runner.run(scaled_sire(), cap_w=cap)
        result.by_cap[cap] = AveragedResult.from_runs([run])
        fits = budget.admits_cap(cap)
        meets = budget.deadline_met(run.execution_s, deadline_s)
        print(
            f"{cap:>8.0f} {'yes' if fits else 'NO':>6} "
            f"{format_duration(run.execution_s):>9} "
            f"{'yes' if meets else 'NO':>10} {run.energy_j:>12,.0f}"
        )

    report = characterize_amenability(result, tolerance_slowdown=DEADLINE_FACTOR)
    print(
        f"\nAmenability: knee at "
        f"{report.knee_cap_w:.0f} W"
        if report.knee_cap_w
        else "\nAmenability: no studied cap meets the tolerance"
    )
    if report.knee_cap_w:
        print(
            f"Usable caps within the deadline: "
            f"{', '.join(f'{c:.0f}' for c in report.usable_caps_w)} W"
        )
        print(
            f"Headroom below uncapped draw: {report.headroom_w:.1f} W — "
            "power the generator can reallocate to other payloads while "
            "SAR products still arrive on time."
        )


if __name__ == "__main__":
    main()
