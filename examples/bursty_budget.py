#!/usr/bin/env python3
"""Hold a power budget under unpredictable demand (Section IV-C).

"Power capping is best used when the workload is unpredictable in
terms of its power consumption."  A ground-station generator gives the
payload node a 135 W allocation; data bursts arrive at random (stereo
products to match between idle waits).  Uncapped, every burst spikes
the node to ~152 W — a budget violation the generator integrator
cannot accept.  Capped at the allocation, the node never exceeds it
and the question becomes: how much throughput did the guarantee cost?

Run:
    python examples/bursty_budget.py
"""

from __future__ import annotations

from repro import BurstyWorkload, PhaseSpec, PhasedRunner, StereoMatchingWorkload

BUDGET_W = 135.0
HORIZON_S = 90.0


def main() -> None:
    demand = BurstyWorkload(
        [
            PhaseSpec("idle-wait", None, mean_duration_s=4.0, weight=1.0),
            PhaseSpec(
                "match-burst",
                StereoMatchingWorkload(),
                mean_duration_s=2.0,
                weight=1.0,
            ),
        ],
        name="ground-station",
    )
    runner = PhasedRunner(slice_accesses=120_000)
    comparison = runner.compare(demand, HORIZON_S, BUDGET_W)
    u, c = comparison.uncapped, comparison.capped

    print(f"Budget: {BUDGET_W:.0f} W over a {HORIZON_S:.0f} s horizon "
          f"(busy fraction {u.busy_fraction:.0%})\n")
    print(f"{'':<12} {'avg W':>7} {'peak W':>7} {'over-budget':>12} "
          f"{'held?':>6} {'Ginstr':>8}")
    for label, r in (("uncapped", u), ("capped", c)):
        print(
            f"{label:<12} {r.avg_power_w:>7.1f} {r.peak_power_w:>7.1f} "
            f"{r.over_budget_s:>10.1f} s {'yes' if r.budget_held else 'NO':>6} "
            f"{r.instructions / 1e9:>8.1f}"
        )

    print(
        f"\nCapping eliminated {comparison.violation_reduction_s:.1f} s of "
        f"budget violations while retaining "
        f"{comparison.throughput_retained:.0%} of the throughput."
    )
    print(
        "That is the paper's Section IV-C point: for a constant, "
        "predictable load you would size the budget exactly and never "
        "cap; for unpredictable demand the cap converts hard violations "
        "into a bounded, graceful slowdown."
    )


if __name__ == "__main__":
    main()
