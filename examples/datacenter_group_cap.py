#!/usr/bin/env python3
"""Data-centre scenario: DCM managing a rack over IPMI.

"To realize economy of scale, Intel DCM with Intel Node Manager is
meant to be used to manage a system comprised of a large number of
servers with varying workloads" (Section I-A).  This example builds a
six-node rack on a (lossy) out-of-band management LAN, gives the rack
one power budget, and lets the Data Center Manager divide it across the
nodes — first equally, then priority-weighted after two nodes are
promoted — while polling readings and raising threshold alerts.

Every interaction travels as real IPMI/DCMI frames with checksums over
the simulated transport; nothing touches node internals directly.

Run:
    python examples/datacenter_group_cap.py
"""

from __future__ import annotations

from repro import DataCenterManager, Node, NodeGroup
from repro.bmc import Bmc
from repro.dcm import DivisionStrategy, GroupBalancer
from repro.ipmi import LanTransport
from repro.rng import RngStreams

N_NODES = 6
RACK_BUDGET_W = 780.0  # tight: ~130 W per node against ~154 W demand


def main() -> None:
    streams = RngStreams(seed=7)
    lan = LanTransport(
        streams.stream("lan"),
        drop_probability=0.01,  # a mildly lossy management network
        corruption_probability=0.002,
    )
    dcm = DataCenterManager(lan)

    bmcs = {}
    for i in range(N_NODES):
        node = Node()
        address = f"10.1.0.{i + 1}"
        bmc = Bmc(node, streams.stream(f"bmc{i}"), lan_address=address,
                  transport=lan)
        # Each node reports a busy power demand (varying workloads).
        demand = 148.0 + 2.5 * i
        bmc.record_power(demand, 0.05)
        bmcs[f"node{i}"] = bmc
        dcm.register_node(f"node{i}", address, warn_threshold_w=158.0)

    dcm.tick(time_s=0.0)  # poll everyone once
    print(f"Rack demand (sum of readings): {dcm.total_power_w():.0f} W")
    print(f"Rack budget:                   {RACK_BUDGET_W:.0f} W\n")

    rack = NodeGroup(dcm, "rack-A", budget_w=RACK_BUDGET_W)
    for i, node_id in enumerate(dcm.node_ids()):
        rack.add_member(node_id, priority=1, min_cap_w=115.0, max_cap_w=165.0)

    print("== Equal division ==")
    caps = rack.apply(DivisionStrategy.EQUAL)
    for node_id in sorted(caps):
        limit = dcm.read_limit(node_id)
        print(f"  {node_id}: cap {caps[node_id]:6.1f} W "
              f"(BMC confirms {limit.limit_w} W, active={limit.active})")

    # Mission change: node0/node1 run the time-critical SAR pipeline.
    print("\n== Priority division (node0, node1 promoted) ==")
    rack2 = NodeGroup(dcm, "rack-A-prio", budget_w=RACK_BUDGET_W)
    for i, node_id in enumerate(dcm.node_ids()):
        rack2.add_member(
            node_id,
            priority=10 if node_id in ("node0", "node1") else 1,
            min_cap_w=115.0,
            max_cap_w=165.0,
        )
    caps = rack2.apply(DivisionStrategy.PRIORITY)
    for node_id in sorted(caps):
        print(f"  {node_id}: cap {caps[node_id]:6.1f} W")

    print("\n== Closed-loop rebalancing (demand shifts at runtime) ==")
    balancer = GroupBalancer(
        rack2, DivisionStrategy.PROPORTIONAL, rebalance_threshold_w=5.0
    )
    balancer.tick(0.0)
    # node5's batch job ends; node2 ramps up.
    bmcs["node5"].record_power(118.0, 0.05)
    bmcs["node2"].record_power(163.0, 0.05)
    dcm.tick(time_s=60.0)
    record = balancer.tick(60.0)
    print(f"  rebalance applied: {record.applied} "
          f"(max cap movement {record.max_delta_w:.1f} W)")
    for node_id in sorted(record.caps_w):
        print(f"    {node_id}: cap {record.caps_w[node_id]:6.1f} W")

    print("\n== Management-plane health ==")
    print(f"  frames sent {lan.stats.sent}, retries {lan.stats.retries}, "
          f"dropped {lan.stats.dropped}, corrupted {lan.stats.corrupted}")
    print(f"  alerts raised: {len(dcm.alerts)}")
    for alert in dcm.alerts.all():
        print(f"    [{alert.severity.value}] {alert.node_id}: {alert.message}")

    fleet_comparison()


def fleet_comparison() -> None:
    """Run the same rack through ``repro.fleet`` and compare.

    The serial stack above is the ground truth; the vectorized fleet
    engine must make identical rebalance decisions and program identical
    caps on the same topology and demand schedule (the parity contract,
    see docs/FLEET.md).  At six nodes both take microseconds — the fleet
    path matters because the *same arrays* scale to 10^5 nodes.
    """
    import numpy as np

    from repro.fleet import NodeClass, parity_topology, run_parity
    from repro.fleet.report import format_parity_table

    print("\n== Serial DCM stack vs repro.fleet (same rack, same demand) ==")
    rack_node = NodeClass(name="rack-node", min_cap_w=115.0, max_cap_w=165.0)
    topo = parity_topology(N_NODES, node_classes=(rack_node,))
    # The same varying workloads as above: node i demands 148 + 2.5i W,
    # then node5's batch job ends and node2 ramps up.
    demand = 148.0 + 2.5 * np.arange(N_NODES)
    schedule = np.tile(demand, (12, 1))
    schedule[6:, 5] = 118.0
    schedule[6:, 2] = 163.0
    parity = run_parity(
        topo,
        demand_w_by_tick=schedule,
        budget_w=RACK_BUDGET_W,
        strategy=DivisionStrategy.PROPORTIONAL,
        rebalance_threshold_w=5.0,
    )
    print(format_parity_table(parity))


if __name__ == "__main__":
    main()
