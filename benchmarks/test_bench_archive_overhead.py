"""Archive overhead: recorder scrapes + run records under 2% of a sweep.

The observability archive rides along with live work in two places:
the :class:`~repro.obs.archive.MetricsRecorder` scraping ``/metrics``
every ``DEFAULT_SNAPSHOT_PERIOD_S`` seconds while the service runs,
and the scheduler's completion hook distilling each finished job into
a run record.  Both are timed here against the unit of work they tax —
a cap sweep's wall clock — and their combined budget is 2%.

Comparing two whole sweeps head-to-head would drown the budget in
machine noise, so the guard is built from stable measurements instead
(the same construction as the telemetry-overhead guard): the
per-scrape archive cost amortized over the scrape period, plus the
one-time distill+record cost amortized over the sweep it records.
"""

from __future__ import annotations

import time

from repro.core.experiment import PowerCapExperiment
from repro.core.serialize import experiment_to_dict
from repro.obs.archive import (
    DEFAULT_SNAPSHOT_PERIOD_S,
    MetricsRecorder,
    ObsArchive,
    distill_experiment_doc,
)
from repro.obs.metrics import ServiceMetrics
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import scaled

#: Combined archive budget as a fraction of sweep wall clock.
BUDGET = 0.02


def best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_archive_overhead(benchmark, tmp_path):
    """Recorder + run-record writes cost < 2% of a sweep's wall clock."""
    # The taxed unit of work: one scaled single-workload cap sweep,
    # cold (trace simulation + run loop), exactly what the scheduler
    # wraps with the archive hook.
    experiment = PowerCapExperiment(
        [scaled(StereoMatchingWorkload())],
        caps_w=[150.0, 120.0],
        repetitions=1,
        slice_accesses=300_000,
    )
    t0 = time.perf_counter()
    sweeps = experiment.run_all()
    sweep_wall_s = time.perf_counter() - t0

    archive = ObsArchive(tmp_path / "bench.sqlite3")
    metrics = ServiceMetrics()
    recorder = MetricsRecorder(archive, metrics.sample_all)
    recorder.snapshot_once()  # warm: schema exists, page cache primed

    # Steady-state recorder cost: one scrape, amortized over the
    # period between scrapes.  Best-of-7 to shed scheduler noise.
    scrape_s = best_of(7, recorder.snapshot_once)
    recorder_frac = scrape_s / DEFAULT_SNAPSHOT_PERIOD_S

    # Completion-hook cost: distill the sweep's documents and land the
    # run record, amortized over the sweep that produced them.
    docs = {
        name: experiment_to_dict(result) for name, result in sweeps.items()
    }

    def record():
        series, meta = distill_experiment_doc(docs, wall_s=sweep_wall_s)
        archive.record_run("bench-run", "job", series, meta=meta)

    record_s = best_of(7, record)
    record_frac = record_s / sweep_wall_s

    overhead = recorder_frac + record_frac
    benchmark.extra_info["sweep_wall_s"] = round(sweep_wall_s, 4)
    benchmark.extra_info["scrape_s"] = round(scrape_s, 6)
    benchmark.extra_info["record_s"] = round(record_s, 6)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 3)
    # Keep the fixture satisfied without re-running the heavy path.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert overhead < BUDGET, (
        f"archive overhead {overhead:.2%} exceeds the {BUDGET:.0%} budget "
        f"(scrape {scrape_s * 1e3:.2f}ms / {DEFAULT_SNAPSHOT_PERIOD_S}s "
        f"period, record {record_s * 1e3:.2f}ms / {sweep_wall_s:.2f}s sweep)"
    )
