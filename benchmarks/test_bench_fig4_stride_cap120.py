"""Figure 4: the stride microbenchmark under a 120 W cap.

"A comparison of Figure 4 ... with Figure 3 ... reveals that the
average access time associated with each level of the memory hierarchy
increases in the 120 Watt power capped execution environment.  However,
due to the dynamic nature of how the power cap is enforced, the average
access time behaviors are not consistent with what we would expect."

Shape criteria: every valid cell is slower than its Figure 3
counterpart, and the *relative* inflation varies across cells (the
erratic behaviour the paper calls out) rather than being one uniform
factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.report import render_stride_figure
from repro.workloads.stride import StrideBenchmark

SIZES = (
    16 * 1024,
    128 * 1024,
    1024 * 1024,
    8 * 1024 * 1024,
    48 * 1024 * 1024,
)
STRIDES = (8, 64, 512, 4096, 32768)


@pytest.fixture(scope="module")
def grids():
    bench = StrideBenchmark(sizes=SIZES, strides=STRIDES, accesses_per_cell=2500)
    uncapped = bench.run()
    capped = bench.run_capped(
        120.0, np.random.default_rng(42), cell_duration_s=1.0, settle_s=15.0
    )
    return bench, uncapped, capped


def test_bench_fig4_stride_cap120(benchmark, grids):
    bench, uncapped, capped = grids

    rendered = benchmark(
        render_stride_figure, capped, "Figure 4: 120 W cap"
    )
    assert "120 W cap" in rendered

    valid = np.isfinite(uncapped.access_time_ns)
    inflation = capped.access_time_ns[valid] / uncapped.access_time_ns[valid]

    # Every level's access time increases (the Figure 3 vs 4 headline).
    assert np.all(inflation > 2.0)
    # And not uniformly: the dynamic enforcement makes some cells far
    # worse than others ("not consistent with what we would expect").
    assert inflation.max() / inflation.min() > 1.3

    # The capped grid's absolute values reach the 10^2-10^3 ns decades
    # Figure 4's y-axis shows (vs Figure 3's 10^0-10^2).
    assert np.nanmax(capped.access_time_ns) > 200.0
    assert np.nanmax(uncapped.access_time_ns) < 200.0

    benchmark.extra_info["min_inflation_x"] = round(float(inflation.min()), 1)
    benchmark.extra_info["max_inflation_x"] = round(float(inflation.max()), 1)
    benchmark.extra_info["median_inflation_x"] = round(
        float(np.median(inflation)), 1
    )
