"""Table I: baseline power consumption and execution time.

Paper values: SIRE/RSM 157 W / 6 m 17 s; Stereo Matching 153 W / 1 m 31 s
(the Table I power/time columns are swapped in the original text; the
Table II baselines — 153.1 W / 1:29 Stereo, 156.7 W / 6:18 SIRE — are
the consistent readings we compare against).
"""

from __future__ import annotations

from repro.core.report import render_table1
from repro.core.runner import NodeRunner
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import SCALE, scaled

#: Paper baselines (Table II rows A0/B0), seconds and Watts.
PAPER_BASELINES = {
    "StereoMatching": {"time_s": 89.0, "power_w": 153.1},
    "SIRE/RSM": {"time_s": 378.0, "power_w": 156.7},
}


def test_bench_table1_baseline(benchmark, paper_sweeps):
    """Regenerate Table I and compare against the paper's baselines."""

    def regenerate() -> str:
        return render_table1(list(paper_sweeps.values()))

    table = benchmark(regenerate)
    assert "StereoMatching" in table and "SIRE/RSM" in table

    for name, expected in PAPER_BASELINES.items():
        row = paper_sweeps[name].baseline
        measured_time = row.execution_s / SCALE  # undo the bench scaling
        measured_power = row.avg_power_w
        benchmark.extra_info[f"{name} paper_time_s"] = expected["time_s"]
        benchmark.extra_info[f"{name} measured_time_s"] = round(measured_time, 1)
        benchmark.extra_info[f"{name} paper_power_w"] = expected["power_w"]
        benchmark.extra_info[f"{name} measured_power_w"] = round(
            measured_power, 1
        )
        # Shape criteria: times within 15 %, powers within 5 W.
        assert abs(measured_time - expected["time_s"]) / expected["time_s"] < 0.15
        assert abs(measured_power - expected["power_w"]) < 5.0

    # Ordering criteria from DESIGN.md §4 (T1).
    stereo = paper_sweeps["StereoMatching"].baseline
    sire = paper_sweeps["SIRE/RSM"].baseline
    assert 3.0 < sire.execution_s / stereo.execution_s < 5.5
    assert sire.avg_power_w > stereo.avg_power_w


def test_bench_table1_single_run_cost(benchmark):
    """Time one end-to-end baseline run (the unit of all sweeps)."""
    runner = NodeRunner(slice_accesses=120_000)
    workload = scaled(StereoMatchingWorkload())
    runner.run(workload)  # warm the rate cache outside the timing loop

    def one_run():
        return runner.run(workload)

    result = benchmark(one_run)
    assert result.execution_s > 0
