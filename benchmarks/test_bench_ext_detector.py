"""Extension bench: the microbenchmark mechanism detector
(paper future work #2).

At each cap the BMC controller converges, and the probe suite must
identify exactly the mechanisms the firmware is using — the experiment
the paper proposed but never ran.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import Node
from repro.bmc.controller import CapController
from repro.bmc.sensors import PowerSensor
from repro.core.detector import TechniqueDetector
from repro.workloads.microbench import MachineUnderTest

L2_GRID = (48 * 1024, 96 * 1024, 160 * 1024, 224 * 1024, 384 * 1024)
L3_GRID = tuple(m * 1024 * 1024 for m in (3, 6, 10, 16))
ITLB_GRID = (8, 16, 32, 96, 128, 192)


def converge(cap_w: float):
    node = Node()
    node.thermal.reset(38.0)
    controller = CapController(
        node, PowerSensor(np.random.default_rng(0), noise_sigma_w=0.2)
    )
    controller.set_cap(cap_w)
    power = node.power_w()
    cmd = None
    for _ in range(1500):
        cmd = controller.update(power)
        p = [
            node.power_model.power_of_pstate(
                st, duty=cmd.duty, gating_saving_w=cmd.gating_saving_w,
                temperature_c=node.thermal.temperature_c,
            )
            for st in (cmd.pstate_fast, cmd.pstate_slow)
        ]
        power = cmd.alpha * p[0] + (1 - cmd.alpha) * p[1]
        node.thermal.step(power, 0.05)
    return cmd


@pytest.fixture(scope="module")
def reports():
    out = {}
    for cap in (150.0, 125.0, 120.0):
        cmd = converge(cap)
        machine = MachineUnderTest(
            gating=cmd.gating, freq_hz=cmd.effective_freq_hz, duty=cmd.duty
        )
        out[cap] = TechniqueDetector(machine).detect(
            l2_footprints=L2_GRID,
            l3_footprints=L3_GRID,
            itlb_page_counts=ITLB_GRID,
        )
    return out


def test_bench_ext_detector(benchmark, reports):
    def verdict_matrix():
        return {
            cap: (r.dvfs_active, r.clock_modulation_active,
                  r.l2_way_gating_active, r.itlb_gating_active,
                  r.dram_gating_active)
            for cap, r in reports.items()
        }

    matrix = benchmark(verdict_matrix)

    # 150 W: DVFS only.
    assert matrix[150.0] == (True, False, False, False, False)
    # 125 W: floor DVFS + way/iTLB gating, no modulation, no DRAM gating.
    assert matrix[125.0][0] and matrix[125.0][2] and matrix[125.0][3]
    assert not matrix[125.0][1]
    # 120 W: everything at once.
    assert all(matrix[120.0])

    assert reports[120.0].duty == pytest.approx(0.15, abs=0.02)
    assert reports[125.0].effective_freq_hz == pytest.approx(1.2e9, rel=0.01)

    for cap, r in reports.items():
        benchmark.extra_info[f"cap{cap:.0f}_freq_MHz"] = round(
            r.effective_freq_hz / 1e6
        )
        benchmark.extra_info[f"cap{cap:.0f}_duty"] = round(r.duty, 2)
