"""Engine throughput: vectorized kernels and the end-to-end sweep.

Unlike the other benchmarks (which regenerate a paper artifact), this
one measures the fast-engine machinery itself:

* raw kernel throughput — accesses/second through the vectorized
  hierarchy walk, with the scalar reference timed alongside so the
  speedup lands in ``extra_info``;
* the full Table II cap sweep (both applications, all nine caps plus
  baseline) through the parallel-capable experiment driver, i.e. the
  wall clock that ``scripts/reproduce.py`` reports.

The assertions are deliberately loose (they guard against the fast
path silently falling back to the scalar one, not against machine
noise); the interesting numbers are recorded in ``extra_info``.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.config import PAPER_POWER_CAPS_W, sandy_bridge_config
from repro.core.experiment import PowerCapExperiment
from repro.core.runner import NodeRunner
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.logging import ROOT_LOGGER_NAME, configure_logging
from repro.obs.timeseries import TelemetryConfig
from repro.obs.tracing import set_enabled
from repro.rng import RngStreams
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import REPETITIONS, scaled

#: Addresses per timed kernel round (large enough to amortize setup).
TRACE_LEN = 200_000


def _trace() -> np.ndarray:
    # A real workload slice, not uniform-random addresses: the elision
    # kernel's win comes from the locality the generators produce.
    sl = StereoMatchingWorkload().build_slice(
        RngStreams(17).fresh("bench:kernel"), TRACE_LEN
    )
    return np.asarray(sl.data_addresses)


def test_bench_kernel_throughput(benchmark):
    """Vectorized data-trace walk, in accesses per second."""
    cfg = sandy_bridge_config()
    addrs = _trace()

    def run():
        return MemoryHierarchy(cfg).simulate_data_trace(addrs)

    t0 = time.perf_counter()
    benchmark(run)
    fallback_s = time.perf_counter() - t0
    stats = getattr(benchmark, "stats", None)
    # Under --benchmark-disable the fixture records no stats; the
    # wall-clock of the single pass stands in.
    vec_s = stats.stats.mean if stats is not None else fallback_s
    benchmark.extra_info["accesses_per_s"] = round(TRACE_LEN / vec_s)

    # Time the scalar reference once (it is far too slow to round-trip
    # through the benchmark fixture) and record the speedup.
    t0 = time.perf_counter()
    scalar = MemoryHierarchy(cfg).simulate_data_trace_scalar(addrs)
    scalar_s = time.perf_counter() - t0
    assert scalar == MemoryHierarchy(cfg).simulate_data_trace(addrs)
    speedup = scalar_s / vec_s
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    # A loose floor: the per-walk kernel win is modest (the sweep-level
    # speedup comes from elision *plus* the trace engine's cross-gating
    # memoization); this guards against the fast path regressing below
    # the scalar reference, not against machine noise.
    assert speedup > 1.1


def test_bench_table2_sweep_wall_clock(benchmark):
    """End-to-end Table II sweep wall clock through the fast engine.

    One round, one iteration: the sweep is the unit of work users wait
    on, and a fresh experiment per round keeps the rate memo cold so
    the measurement includes trace simulation, not just the run loop.
    """

    def sweep():
        experiment = PowerCapExperiment(
            [scaled(StereoMatchingWorkload()), scaled(SireRsmWorkload())],
            caps_w=PAPER_POWER_CAPS_W,
            repetitions=REPETITIONS,
            slice_accesses=300_000,
        )
        return experiment.run_all()

    t0 = time.perf_counter()
    sweeps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fallback_s = time.perf_counter() - t0
    stats = getattr(benchmark, "stats", None)
    wall_s = stats.stats.mean if stats is not None else fallback_s
    benchmark.extra_info["sweep_wall_s"] = round(wall_s, 2)
    # Sanity: both halves of the table came back with every cap row.
    assert set(sweeps) == {"StereoMatching", "SIRE/RSM"}
    for sweep_result in sweeps.values():
        assert len(sweep_result.by_cap) == len(PAPER_POWER_CAPS_W)
    # The fast engine turned this sweep from minutes-scale into
    # seconds-scale; 60 s leaves an order of magnitude of headroom for
    # slow CI machines while still catching a fallback to scalar replay.
    assert wall_s < 60.0


def test_bench_instrumentation_overhead(benchmark):
    """Default instrumentation costs < 5% of the run-loop wall clock.

    Compares the shipping configuration (spans on, logging at WARNING,
    no trace collector — exactly what a library consumer gets) against
    a true baseline with span bookkeeping globally disabled via
    ``set_enabled(False)``.  The runner is shared and warmed so the
    comparison covers only the control loop, where the instrumentation
    lives — best-of-3 on both sides to shed scheduler noise.
    Telemetry is off on both sides here; its budget is checked against
    the end-to-end sweep below, the unit of work it actually rides in.
    """
    configure_logging(level="warning", json_mode=False)
    workload = scaled(StereoMatchingWorkload())
    runner = NodeRunner(slice_accesses=150_000, telemetry=False)
    runner.run(workload)  # warm the per-runner rate memo

    def best_of_3() -> float:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            runner.run(workload)
            best = min(best, time.perf_counter() - t0)
        return best

    try:
        set_enabled(False)
        logging.getLogger(ROOT_LOGGER_NAME).setLevel(logging.CRITICAL)
        baseline_s = best_of_3()
    finally:
        set_enabled(True)
        configure_logging(level="warning")
    instrumented_s = best_of_3()

    overhead = instrumented_s / baseline_s - 1.0
    benchmark.extra_info["baseline_s"] = round(baseline_s, 4)
    benchmark.extra_info["instrumented_s"] = round(instrumented_s, 4)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    # Keep the fixture satisfied without re-running the heavy path.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert overhead < 0.05, (
        f"instrumentation overhead {overhead:.1%} exceeds the 5% budget "
        f"(baseline {baseline_s:.4f}s, instrumented {instrumented_s:.4f}s)"
    )


def test_bench_telemetry_overhead(benchmark):
    """Telemetry at the default period costs < 5% of a full run.

    Comparing whole cold runs head-to-head would put the 5% budget far
    below this machine's wall-clock noise, so the guard is built from
    two stable measurements instead: the sampler's per-run cost delta
    on the warmed control loop (where every telemetry instruction
    lives, best-of-7 per side), divided by the cold single-run wall
    clock — trace simulation plus run loop, the unit of work telemetry
    actually rides in.
    """
    configure_logging(level="warning", json_mode=False)
    workload = scaled(StereoMatchingWorkload())

    # Cold run: a fresh runner pays the trace-simulation cost.
    t0 = time.perf_counter()
    NodeRunner(slice_accesses=300_000, telemetry=False).run(workload)
    cold_run_s = time.perf_counter() - t0

    bare = NodeRunner(slice_accesses=300_000, telemetry=False)
    sampled = NodeRunner(
        slice_accesses=300_000, telemetry=TelemetryConfig()
    )
    bare.run(workload)  # warm the per-runner rate memos
    sampled.run(workload)

    def best_of_7(runner) -> float:
        best = float("inf")
        for _ in range(7):
            t0 = time.perf_counter()
            runner.run(workload)
            best = min(best, time.perf_counter() - t0)
        return best

    delta_s = max(0.0, best_of_7(sampled) - best_of_7(bare))
    overhead = delta_s / cold_run_s
    benchmark.extra_info["cold_run_s"] = round(cold_run_s, 4)
    benchmark.extra_info["telemetry_delta_s"] = round(delta_s, 5)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert overhead < 0.05, (
        f"telemetry overhead {overhead:.1%} exceeds the 5% budget "
        f"(delta {delta_s * 1e3:.2f} ms on a {cold_run_s:.3f} s run)"
    )


def test_bench_observability_overhead(benchmark):
    """Profiler + live streaming cost < 5% of a full run together.

    The live observability plane is two always-optional attachments:
    the 97 Hz sampling profiler and the event-bus publish path that
    feeds SSE subscribers.  Both are advertised as safe to leave on in
    production, so their *combined* cost is guarded the same way as
    telemetry: the warmed control-loop delta (best-of-7 per side, with
    a real subscriber attached so every flush actually publishes)
    divided by the cold single-run wall clock.
    """
    from repro.obs.profile import ProfileConfig, SamplingProfiler
    from repro.obs.stream import event_bus, stream_context

    configure_logging(level="warning", json_mode=False)
    workload = scaled(StereoMatchingWorkload())

    t0 = time.perf_counter()
    NodeRunner(slice_accesses=300_000, telemetry=False).run(workload)
    cold_run_s = time.perf_counter() - t0

    runner = NodeRunner(slice_accesses=300_000, telemetry=TelemetryConfig())
    runner.run(workload)  # warm the per-runner rate memo

    def best_of_7(run_once) -> float:
        best = float("inf")
        for _ in range(7):
            t0 = time.perf_counter()
            run_once()
            best = min(best, time.perf_counter() - t0)
        return best

    plain_s = best_of_7(lambda: runner.run(workload))

    bus = event_bus()
    sub = bus.subscribe("bench:obs", queue_size=4096)
    profiler = SamplingProfiler(ProfileConfig()).start()
    try:

        def observed_once():
            with stream_context("bench:obs"):
                runner.run(workload)
            while sub.get(timeout=0.0) is not None:
                pass  # drain between runs, like an SSE reader thread

        observed_s = best_of_7(observed_once)
    finally:
        report = profiler.stop()
        bus.unsubscribe(sub)

    delta_s = max(0.0, observed_s - plain_s)
    overhead = delta_s / cold_run_s
    benchmark.extra_info["cold_run_s"] = round(cold_run_s, 4)
    benchmark.extra_info["obs_delta_s"] = round(delta_s, 5)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    benchmark.extra_info["profile_samples"] = report.samples
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sub.dropped == 0  # the queue was sized to lose nothing
    assert overhead < 0.05, (
        f"profiler+streaming overhead {overhead:.1%} exceeds the 5% "
        f"budget (delta {delta_s * 1e3:.2f} ms on a {cold_run_s:.3f} s run)"
    )


def test_bench_fleet_health_overhead(benchmark):
    """Health rollups cost < 10% of the fleet engine's node-steps/s.

    The BENCH_fleet baseline runs with telemetry off; health rollups
    are the one observability feature meant to be turnable-on at fleet
    scale, so their cost is guarded against that same configuration:
    the identical topology/traffic stepped with ``health=True`` must
    retain >= 90% of the bare engine's node-steps/s.

    Shared runners make back-to-back throughput numbers noisy, so the
    two configurations are stepped in *interleaved blocks* of ~25 ms:
    ambient load bursts land on both sides nearly equally and cancel
    in the ratio.  The collector is paused while timing (the side
    that allocates more otherwise pays for collecting the whole
    session's object graph).
    """
    import gc

    from repro.fleet import DiurnalTraffic, FleetEngine, FleetTopology

    topo = FleetTopology.build(rows=2, racks_per_row=4, nodes_per_rack=32)
    ticks, block = 10_000, 250

    def make(health: bool) -> "FleetEngine":
        return FleetEngine(
            topo,
            DiurnalTraffic(),
            budget_w=0.8 * float(topo.max_cap_w.sum()),
            seed=5,
            telemetry=False,
            health=health,
        )

    eng_bare, eng_health = make(False), make(True)
    eng_health._health.begin_run(ticks)
    bare_s = health_s = 0.0
    gc.collect()
    gc.disable()
    try:
        for start in range(0, ticks, block):
            warmup = start == 0  # first block pair warms caches/memos
            t0 = time.perf_counter()
            for _ in range(block):
                eng_bare.step()
            t1 = time.perf_counter()
            for _ in range(block):
                eng_health.step()
            t2 = time.perf_counter()
            if not warmup:
                bare_s += t1 - t0
                health_s += t2 - t1
    finally:
        gc.enable()
    node_ticks = (ticks - block) * topo.n_nodes
    bare = round(node_ticks / bare_s)
    with_health = round(node_ticks / health_s)
    retained = bare_s / health_s
    benchmark.extra_info["bare_node_steps_per_s"] = round(bare)
    benchmark.extra_info["health_node_steps_per_s"] = round(with_health)
    benchmark.extra_info["retained_frac"] = round(retained, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert retained >= 0.90, (
        f"health rollups retain only {retained:.1%} of fleet "
        f"throughput ({with_health:.0f} vs {bare:.0f} node-steps/s)"
    )


def test_bench_telemetry_off_is_bit_identical(benchmark):
    """Samplers off ⇒ every engine output matches the sampled run.

    Telemetry is pure observation (no RNG, no model state), so a capped
    run with sampling enabled must produce bit-for-bit the numbers the
    seed engine produced without it.
    """
    workload = scaled(StereoMatchingWorkload())
    on = NodeRunner(seed=11, slice_accesses=150_000,
                    telemetry=TelemetryConfig())
    off = NodeRunner(seed=11, slice_accesses=150_000, telemetry=False)

    def pair():
        return on.run(workload, cap_w=130.0), off.run(workload, cap_w=130.0)

    a, b = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert a.timeline is not None and b.timeline is None
    assert a.execution_s == b.execution_s
    assert a.energy_j == b.energy_j
    assert a.avg_power_w == b.avg_power_w
    assert a.avg_freq_mhz == b.avg_freq_mhz
    assert a.counters == b.counters
    # The frozen dataclass compares every field except the timeline
    # (marked compare=False) — the strongest identity statement.
    assert a == b
