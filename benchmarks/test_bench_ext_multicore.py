"""Extension bench: multi-core power capping (paper future work #1).

Sweeps core count x cap and records the scaling table.  Headline
assertions: uncapped scaling is near-linear; a cap that is generous for
one core strangles four; below the n-core power floor, adding cores
*reduces* aggregate throughput.
"""

from __future__ import annotations

import pytest

from repro.core.multicore import MultiCoreRunner
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import scaled


@pytest.fixture(scope="module")
def scaling():
    runner = MultiCoreRunner(slice_accesses=150_000)
    out = {}
    for cap in (None, 160.0, 140.0):
        out[cap] = {
            n: runner.run(scaled(StereoMatchingWorkload()), n, cap)
            for n in (1, 2, 4)
        }
    return out


def test_bench_ext_multicore(benchmark, scaling):
    def collect():
        return {
            (cap, n): r.throughput_ips
            for cap, by_n in scaling.items()
            for n, r in by_n.items()
        }

    throughput = benchmark(collect)

    # Uncapped: near-linear scaling.
    assert throughput[(None, 4)] > 3.3 * throughput[(None, 1)]
    # 160 W: one core unaffected, four cores forced far down the table.
    assert scaling[160.0][1].avg_freq_mhz == pytest.approx(2701, abs=5)
    assert scaling[160.0][4].avg_freq_mhz < 1600
    # 140 W: below the 4-core floor — throughput *collapses* below the
    # single-core figure (escalation + duty).
    assert throughput[(140.0, 4)] < throughput[(140.0, 1)]
    assert scaling[140.0][4].min_duty < 1.0

    for (cap, n), ips in sorted(throughput.items(), key=lambda kv: str(kv)):
        benchmark.extra_info[f"cap={cap} cores={n} Gips"] = round(ips / 1e9, 2)
    benchmark.extra_info["headline"] = (
        "under a 140 W cap, 4 cores deliver less aggregate throughput "
        "than 1 core"
    )
