"""Ablation A3: controller quantum sensitivity.

The BMC samples and acts once per control quantum.  Does the cap-sweep
shape depend on that choice?  It should not (beyond transient length) —
otherwise the reproduction's conclusions would hinge on an arbitrary
simulator constant.  We compare 10 ms vs 100 ms quanta at a moderate
cap and at the 120 W cap.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import sandy_bridge_config
from repro.core.runner import NodeRunner
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import scaled


def config_with_quantum(quantum_s: float):
    base = sandy_bridge_config()
    return base.with_overrides(
        bmc=dataclasses.replace(base.bmc, control_quantum_s=quantum_s)
    )


@pytest.fixture(scope="module")
def runs():
    out = {}
    for quantum in (0.01, 0.1):
        runner = NodeRunner(
            config=config_with_quantum(quantum), slice_accesses=150_000
        )
        out[quantum] = {
            cap: runner.run(scaled(StereoMatchingWorkload()), cap)
            for cap in (140.0, 120.0)
        }
    return out


def test_bench_ablation_quantum(benchmark, runs):
    def collect():
        return {
            (q, cap): r.execution_s
            for q, by_cap in runs.items()
            for cap, r in by_cap.items()
        }

    times = benchmark(collect)

    for cap in (140.0, 120.0):
        fast = times[(0.01, cap)]
        slow = times[(0.1, cap)]
        # Same steady state: execution times agree within 15 %.
        assert fast == pytest.approx(slow, rel=0.15)
        benchmark.extra_info[f"cap{cap:.0f}_t_10ms"] = round(fast, 2)
        benchmark.extra_info[f"cap{cap:.0f}_t_100ms"] = round(slow, 2)

    # Power control quality also invariant.
    for q in (0.01, 0.1):
        assert runs[q][140.0].avg_power_w < 140.0
        assert runs[q][120.0].avg_power_w > 120.0
