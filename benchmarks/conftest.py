"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures.  The
expensive artifacts (full cap sweeps, stride grids) are produced once
per session and shared; the ``benchmark`` fixture then times the
cheap(er) regeneration path and the assertions check the reproduced
*shape* against the paper's published values.

Instruction budgets are scaled by :data:`SCALE` so the suite finishes
in minutes; DESIGN.md §5 explains why the shape is scale-invariant
(rates, powers and the controller trajectory do not depend on the
budget; only total time/energy scale linearly).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import PAPER_POWER_CAPS_W
from repro.core.experiment import PowerCapExperiment
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload

#: Fraction of the paper-calibrated instruction budgets the bench runs.
SCALE = 0.06
#: Repetitions per cap (the paper uses five; two keep the suite quick
#: while still exercising the averaging path).
REPETITIONS = 2


def scaled(workload):
    """Clone a workload with the benchmark-scaled instruction budget."""
    workload._spec = dataclasses.replace(
        workload.spec,
        total_instructions=workload.spec.total_instructions * SCALE,
    )
    return workload


@pytest.fixture(scope="session")
def paper_experiment():
    return PowerCapExperiment(
        [scaled(StereoMatchingWorkload()), scaled(SireRsmWorkload())],
        caps_w=PAPER_POWER_CAPS_W,
        repetitions=REPETITIONS,
        slice_accesses=300_000,
    )


@pytest.fixture(scope="session")
def paper_sweeps(paper_experiment):
    """Both workloads' full cap sweeps (the Table II dataset)."""
    return paper_experiment.run_all()


@pytest.fixture(scope="session")
def stereo_sweep(paper_sweeps):
    return paper_sweeps["StereoMatching"]


@pytest.fixture(scope="session")
def sire_sweep(paper_sweeps):
    return paper_sweeps["SIRE/RSM"]
