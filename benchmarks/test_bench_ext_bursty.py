"""Extension bench: budgets under unpredictable demand
(paper future work #3, Section IV-C).

Same demand process, with and without a cap at the budget: the cap
must eliminate budget violations while keeping most of the throughput.
"""

from __future__ import annotations

import pytest

from repro.core.phased import PhasedRunner
from repro.workloads.bursty import BurstyWorkload, PhaseSpec
from repro.workloads.stereo import StereoMatchingWorkload


@pytest.fixture(scope="module")
def comparison():
    demand = BurstyWorkload(
        [
            PhaseSpec("idle", None, mean_duration_s=4.0),
            PhaseSpec("burst", StereoMatchingWorkload(), mean_duration_s=2.0),
        ]
    )
    runner = PhasedRunner(slice_accesses=150_000)
    return runner.compare(demand, horizon_s=90.0, budget_w=135.0)


def test_bench_ext_bursty(benchmark, comparison):
    def collect():
        return (
            comparison.uncapped.over_budget_s,
            comparison.capped.over_budget_s,
            comparison.throughput_retained,
        )

    over_u, over_c, retained = benchmark(collect)

    # Uncapped demand violates the budget; the cap holds it.
    assert over_u > 2.0
    assert comparison.uncapped.peak_power_w > 145.0
    assert comparison.capped.budget_held
    assert comparison.capped.peak_power_w <= 136.0
    # At a cost bounded by the DVFS ratio during bursts.
    assert 0.45 < retained < 1.0

    benchmark.extra_info["uncapped_violation_s"] = round(over_u, 1)
    benchmark.extra_info["capped_violation_s"] = round(over_c, 1)
    benchmark.extra_info["throughput_retained"] = round(retained, 2)
