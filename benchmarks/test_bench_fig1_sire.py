"""Figure 1: SIRE/RSM normalised series across the cap sweep.

The paper plots, normalised to each series' maximum: instruction-TLB
misses, frequency, time, power consumption, and energy consumption for
baseline + nine caps.  Shape criteria: frequency is maximal at the
baseline and falls toward the floor; time and energy are maximal at the
120 W cap and hockey-stick below 135 W; iTLB misses step up only at the
escalated caps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.report import figure1_series


def test_bench_fig1_sire(benchmark, sire_sweep):
    series = benchmark(figure1_series, sire_sweep)

    n_rows = 10  # baseline + 9 caps, highest first
    for key in ("frequency", "time", "power", "energy", "PAPI_TLB_IM"):
        assert len(series[key]) == n_rows
        assert np.nanmax(series[key]) == pytest.approx(1.0)

    freq = series["frequency"]
    time = series["time"]
    energy = series["energy"]
    power = series["power"]
    itlb = series["PAPI_TLB_IM"]

    # Frequency: maximal at baseline, minimal at the lowest caps.
    assert freq[0] == pytest.approx(1.0)
    assert freq[-1] == pytest.approx(1200.0 / 2701.0, abs=0.02)
    # Time/energy: maximal at 120 W, tiny at the baseline end.
    assert time[-1] == pytest.approx(1.0)
    assert energy[-1] == pytest.approx(1.0)
    assert time[0] < 0.1
    # Power: gently decreasing toward the cap floor, never below ~75 %.
    assert power[0] == pytest.approx(1.0, abs=0.02)
    assert power[-1] > 0.75
    # iTLB misses: negligible until escalation engages, then a step.
    assert np.all(itlb[:5] < 0.05)
    assert itlb[-1] == pytest.approx(1.0)

    benchmark.extra_info["freq_floor_ratio_paper"] = round(1200 / 2701, 3)
    benchmark.extra_info["freq_floor_ratio_measured"] = round(float(freq[-1]), 3)
    benchmark.extra_info["time_peak_row"] = "120W"
