"""Figure 2: Stereo Matching normalised series across the cap sweep.

Beyond Figure 1's series, Figure 2 adds the L2 and L3 miss rates —
which for Stereo Matching step up dramatically at the two lowest caps
(the dynamic-cache-reconfiguration signature), unlike SIRE's flat
curves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.report import figure2_series


def test_bench_fig2_stereo(benchmark, stereo_sweep):
    series = benchmark(figure2_series, stereo_sweep)

    n_rows = 10
    keys = (
        "frequency", "time", "power", "energy",
        "PAPI_L2_TCM", "PAPI_L3_TCM", "PAPI_TLB_IM",
    )
    for key in keys:
        assert len(series[key]) == n_rows
        assert np.nanmax(series[key]) == pytest.approx(1.0)

    l2 = series["PAPI_L2_TCM"]
    l3 = series["PAPI_L3_TCM"]
    time = series["time"]
    freq = series["frequency"]

    # L2/L3 miss rates: flat plateau through the DVFS region (rows
    # 0..6 = baseline..130 W), then the step at 125/120 W.
    assert np.ptp(l2[:6]) < 0.12
    assert l2[-1] == pytest.approx(1.0)
    assert l2[-1] > 2.0 * l2[0]
    assert l3[-1] > 1.8 * l3[0]
    # Time hockey stick: the last row dwarfs everything before 130 W.
    assert time[-1] == pytest.approx(1.0)
    assert np.all(time[:6] < 0.1)
    # Frequency pinned at the floor for the last rows.
    assert freq[-1] == pytest.approx(1200.0 / 2701.0, abs=0.02)
    assert freq[-2] == pytest.approx(freq[-1], abs=0.02)

    benchmark.extra_info["L2_step_ratio_paper"] = 3.4   # +244 % at 120 W
    benchmark.extra_info["L2_step_ratio_measured"] = round(
        float(l2[-1] / l2[0]), 2
    )
    benchmark.extra_info["L3_step_ratio_paper"] = 4.5   # +350 % at 120 W
    benchmark.extra_info["L3_step_ratio_measured"] = round(
        float(l3[-1] / l3[0]), 2
    )
