"""Ablation A4: race-to-idle vs capped execution (Section IV-C).

Section II-B notes that "DVFS-driven race-to-idle may not always
produce the best energy efficiency", and Section IV-C ends with "One
might come to a different conclusion in such situations.  This needs
further investigation."  This ablation does that investigation on the
simulated node for a periodic workload (one Stereo job per period):

- **race-to-idle**: run uncapped at P0, then idle for the rest of the
  period at the node's ~100 W floor;
- **capped**: run under a cap; the job takes longer, idle time shrinks.

Finding (and the assertion below): with a ~100 W idle floor, a *mild*
cap (130 W) actually beats race-to-idle — the fixed floor integrates
over the whole period either way, and capping shaves real watts off
the busy phase at a modest time cost.  But at a *deep* cap (120 W) the
execution-time explosion swamps everything and race-to-idle wins by an
order of magnitude.  Capping is an energy win only on the DVFS side of
the knee.
"""

from __future__ import annotations

import pytest

from repro.core.runner import NodeRunner
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import scaled


@pytest.fixture(scope="module")
def scenario():
    runner = NodeRunner(slice_accesses=150_000)
    uncapped = runner.run(scaled(StereoMatchingWorkload()))
    capped = {
        cap: runner.run(scaled(StereoMatchingWorkload()), cap)
        for cap in (130.0, 120.0)
    }
    idle_w = runner.config.power.platform_floor_w + 6.0 + 12.5  # ~100.5 W
    # Period long enough for every option to fit.
    period_s = max(r.execution_s for r in capped.values()) * 1.05

    def total_energy(run) -> float:
        return run.energy_j + idle_w * (period_s - run.execution_s)

    def marginal_energy(run) -> float:
        # Energy above the always-on floor: the part a scheduler can
        # actually influence.
        return run.energy_j - idle_w * run.execution_s

    return {
        "race_j": total_energy(uncapped),
        "capped_j": {cap: total_energy(r) for cap, r in capped.items()},
        "race_marginal_j": marginal_energy(uncapped),
        "capped_marginal_j": {
            cap: marginal_energy(r) for cap, r in capped.items()
        },
        "period_s": period_s,
    }


def test_bench_ablation_race_to_idle(benchmark, scenario):
    def collect():
        return scenario["race_j"], dict(scenario["capped_j"])

    race, capped = benchmark(collect)

    # Mild cap: continuing to run capped beats sprint-then-idle,
    # because the ~100 W floor burns either way and the cap trims the
    # busy phase's marginal power more than it stretches it.
    assert capped[130.0] < race

    # Deep cap: the time explosion dominates; race-to-idle wins, and on
    # the marginal (above-floor) energy a scheduler controls the gap is
    # enormous.
    assert race < capped[120.0]
    assert scenario["race_marginal_j"] < 0.5 * scenario["capped_marginal_j"][120.0]

    benchmark.extra_info["race_to_idle_j"] = round(race)
    benchmark.extra_info["capped_130_j"] = round(capped[130.0])
    benchmark.extra_info["capped_120_j"] = round(capped[120.0])
    benchmark.extra_info["verdict"] = (
        "capping saves energy only above the knee; below it race-to-idle "
        "wins by >2x"
    )
