"""Ablation A1: DVFS-only enforcement (escalation ladder disabled).

Question: can the low caps be met at all with pure P-state control?
The paper's premise is that they cannot ("pure DVFS may not be
sufficient", Section II-B), which is why the firmware reaches for
memory-hierarchy techniques.  We disable the ladder's gating by making
every rung a no-op with zero savings and compare against the full
controller at 120 W.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    EscalationLadderConfig,
    EscalationLevelSpec,
    sandy_bridge_config,
)
from repro.core.runner import NodeRunner
from repro.workloads.stereo import StereoMatchingWorkload

from .conftest import scaled


def dvfs_only_config():
    """A node whose BMC has no sub-floor mechanisms worth the name."""
    base = sandy_bridge_config()
    noop_ladder = EscalationLadderConfig(
        levels=(EscalationLevelSpec(name="noop", power_saving_w=0.0),),
        duty_min=1.0,  # clock modulation disabled
        duty_step=0.05,
    )
    return base.with_overrides(
        bmc=dataclasses.replace(base.bmc, ladder=noop_ladder)
    )


@pytest.fixture(scope="module")
def runs():
    full = NodeRunner(slice_accesses=150_000).run(
        scaled(StereoMatchingWorkload()), 120.0
    )
    dvfs = NodeRunner(config=dvfs_only_config(), slice_accesses=150_000).run(
        scaled(StereoMatchingWorkload()), 120.0
    )
    return full, dvfs


def test_bench_ablation_dvfs_only(benchmark, runs):
    full, dvfs = runs

    def summarize():
        return {
            "full_power_w": full.avg_power_w,
            "dvfs_power_w": dvfs.avg_power_w,
            "full_time_s": full.execution_s,
            "dvfs_time_s": dvfs.execution_s,
        }

    summary = benchmark(summarize)

    # DVFS-only: the node simply runs over the cap at the floor
    # frequency, with no catastrophic slowdown...
    assert dvfs.avg_power_w > 123.0
    assert dvfs.avg_freq_mhz == pytest.approx(1200.0, abs=20.0)
    assert dvfs.execution_s < 0.2 * full.execution_s
    # ...and no counter artifacts (nothing was gated).
    assert dvfs.max_escalation_level <= 1  # the no-op rung at most
    assert dvfs.min_duty == 1.0
    # The full mechanism trades a little power for a lot of time:
    assert full.avg_power_w < dvfs.avg_power_w
    assert full.avg_power_w - 120.0 < dvfs.avg_power_w - 120.0

    benchmark.extra_info["dvfs_only_overrun_w"] = round(
        summary["dvfs_power_w"] - 120.0, 2
    )
    benchmark.extra_info["full_overrun_w"] = round(
        summary["full_power_w"] - 120.0, 2
    )
    benchmark.extra_info["time_cost_of_last_watts_x"] = round(
        summary["full_time_s"] / summary["dvfs_time_s"], 1
    )
