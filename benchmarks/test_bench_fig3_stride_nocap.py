"""Figure 3: the stride microbenchmark with no power cap.

The paper reads the entire memory-hierarchy geometry off this figure
(Section IV-B items 1-8): L1 between 32 K and 64 K, L2 between 256 K
and 512 K, L3 between 16 M and 32 M; 1.5 ns L1 access, 2.0 / 5.1 /
37.1 ns miss penalties, ~60 ns main memory; 64 B lines.  The benchmark
regenerates the sweep and repeats those inferences programmatically.
"""

from __future__ import annotations

import pytest

from repro.core.report import render_stride_figure
from repro.workloads.stride import StrideBenchmark

SIZES = tuple(4 * 1024 * 2**i for i in range(13))  # 4K .. 16M
SIZES = SIZES + (48 * 1024 * 1024,)
STRIDES = tuple(8 * 2**i for i in range(14))  # 8B .. 64K


@pytest.fixture(scope="module")
def fig3():
    bench = StrideBenchmark(sizes=SIZES, strides=STRIDES, accesses_per_cell=3000)
    return bench.run()


def test_bench_fig3_stride_nocap(benchmark, fig3):
    rendered = benchmark(render_stride_figure, fig3, "Figure 3")
    assert "Figure 3" in rendered

    col64 = {s: fig3.series_for_size(s)[64] for s in SIZES}

    # Inference 4: L1 access time 1.5 ns (arrays within 32 K).
    for size in (4096, 8192, 16384, 32768):
        assert col64[size] == pytest.approx(1.5, abs=0.2)
    # Inference 1: the L1 edge between 32 K and 64 K.
    assert col64[65536] > 1.5 * col64[32768]
    # L2-resident plateau ~3.5 ns (L1 hit + 2.0 ns penalty).
    assert col64[131072] == pytest.approx(3.5, abs=0.7)
    # Inference 2: the L2 edge between 256 K and 512 K.
    assert col64[524288] > 1.5 * col64[262144]
    # L3-resident plateau ~8.6 ns.
    assert col64[4 * 1024 * 1024] == pytest.approx(8.6, abs=2.0)
    # Inference 3: the L3 edge between 16 M and 32 M.
    assert col64[48 * 1024 * 1024] > 2.5 * col64[16 * 1024 * 1024]
    # Main-memory plateau: tens of ns (paper reads ~60 ns).
    assert 30.0 < col64[48 * 1024 * 1024] < 75.0

    # Inference 7: 64 B lines — sub-line strides amortise.
    big = fig3.series_for_size(48 * 1024 * 1024)
    assert big[8] < 0.35 * big[64]
    assert big[32] < 0.85 * big[64]

    benchmark.extra_info["L1_plateau_ns (paper 1.5)"] = round(col64[16384], 2)
    benchmark.extra_info["L2_plateau_ns (paper 3.5)"] = round(col64[131072], 2)
    benchmark.extra_info["L3_plateau_ns (paper 8.6)"] = round(
        col64[4 * 1024 * 1024], 2
    )
    benchmark.extra_info["DRAM_plateau_ns (paper ~60)"] = round(
        col64[48 * 1024 * 1024], 1
    )
