"""Extension bench: the amenability predictor (paper future work #4).

Validates the baseline-counters-only prediction against the simulated
sweep across the DVFS region and records its error per cap.
"""

from __future__ import annotations

import pytest

from repro.core.predictor import CapImpactPredictor, CapRegime
from repro.mem.reconfig import GatingState
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload


@pytest.fixture(scope="module")
def predictions(paper_experiment, paper_sweeps):
    predictor = CapImpactPredictor(paper_experiment.runner.config)
    out = {}
    for workload in (StereoMatchingWorkload(), SireRsmWorkload()):
        rates = paper_experiment.runner.rates_for(
            workload, GatingState.ungated()
        )
        out[workload.name] = predictor.predict_curve(
            rates, (150.0, 145.0, 140.0, 135.0, 130.0, 120.0)
        )
    return out


def test_bench_ext_predictor(benchmark, predictions, paper_sweeps):
    def collect():
        return {
            (name, cap): impact.predicted_slowdown
            for name, curve in predictions.items()
            for cap, impact in curve.items()
        }

    predicted = benchmark(collect)

    max_err = 0.0
    for name, sweep in paper_sweeps.items():
        for cap in (150.0, 145.0, 140.0, 135.0, 130.0):
            simulated = sweep.slowdown(cap)
            p = predicted[(name, cap)]
            err = abs(p - simulated) / simulated
            max_err = max(max_err, err)
            benchmark.extra_info[f"{name}@{cap:.0f} pred"] = round(p, 3)
            benchmark.extra_info[f"{name}@{cap:.0f} sim"] = round(simulated, 3)
            # DVFS-region predictions within 15 %.
            assert err < 0.15
        # The 120 W prediction is a declared lower bound and must hold.
        impact = predictions[name][120.0]
        assert impact.regime is CapRegime.INFEASIBLE
        assert impact.is_lower_bound
        assert sweep.slowdown(120.0) >= 0.9 * impact.predicted_slowdown

    benchmark.extra_info["max_dvfs_region_error"] = round(max_err, 3)
