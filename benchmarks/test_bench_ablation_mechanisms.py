"""Ablation A2: which mechanism causes which artifact?

The paper observes two distinct low-cap effects: miss-count blow-ups
(L2/L3/iTLB) and execution-time explosion.  This ablation separates
the controller's mechanisms by measuring the workload under each
gating in isolation (no controller in the loop):

- way/TLB gating alone -> miss counts jump, modest time cost;
- DRAM gating alone    -> no miss change, per-miss cost rises;
- duty throttling alone -> no miss change, uniform time stretch.
"""

from __future__ import annotations

import pytest

from repro.arch.core import CoreTimingModel
from repro.config import sandy_bridge_config
from repro.core.runner import NodeRunner
from repro.mem.latency import AccessCosts, stall_ns_per_instruction
from repro.mem.reconfig import GatingState
from repro.workloads.stereo import StereoMatchingWorkload

WAY_GATING = GatingState(
    l2_way_fraction=0.5, l3_way_fraction=0.5, itlb_fraction=0.125
)
DRAM_GATING = GatingState(dram_latency_multiplier=3.0)


@pytest.fixture(scope="module")
def measurements():
    cfg = sandy_bridge_config()
    runner = NodeRunner(slice_accesses=200_000)
    workload = StereoMatchingWorkload()
    core = CoreTimingModel(cfg.base_cpi)
    out = {}
    for name, gating, duty in (
        ("baseline", GatingState.ungated(), 1.0),
        ("way-gating", WAY_GATING, 1.0),
        ("dram-gating", DRAM_GATING, 1.0),
        ("duty-0.25", GatingState.ungated(), 0.25),
    ):
        rates = runner.rates_for(workload, gating)
        costs = AccessCosts.from_config(cfg, gating)
        stall = stall_ns_per_instruction(rates, costs)
        spi = core.seconds_per_instruction(1.2e9, stall, duty)
        out[name] = {"rates": rates, "spi": spi}
    return out


def test_bench_ablation_mechanisms(benchmark, measurements):
    def collect():
        return {
            name: m["spi"] / measurements["baseline"]["spi"]
            for name, m in measurements.items()
        }

    slowdowns = benchmark(collect)
    base = measurements["baseline"]["rates"]
    way = measurements["way-gating"]["rates"]
    dram = measurements["dram-gating"]["rates"]

    # Way gating: misses jump, time cost modest (< 3x at the floor).
    assert way.l2_misses > 2.0 * base.l2_misses
    assert way.itlb_misses > 10.0 * base.itlb_misses
    assert slowdowns["way-gating"] < 3.0

    # DRAM gating: miss counts identical (same config key), time rises.
    assert dram.l2_misses == base.l2_misses
    assert dram.l3_misses == base.l3_misses
    assert slowdowns["dram-gating"] > 1.0

    # Duty throttling: pure time stretch by exactly 1/duty.
    assert slowdowns["duty-0.25"] == pytest.approx(4.0, rel=1e-6)

    # The time explosion is dominated by duty, not by gating — matching
    # the paper's "small decreases in power consumption at the cost of
    # high losses in execution time performance".
    assert slowdowns["duty-0.25"] > slowdowns["way-gating"]
    assert slowdowns["duty-0.25"] > slowdowns["dram-gating"]

    for name, x in slowdowns.items():
        benchmark.extra_info[f"slowdown_{name}"] = round(float(x), 2)
