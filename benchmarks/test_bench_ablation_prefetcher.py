"""Ablation A5: the prefetcher explains the paper's L2 anomaly.

Table II reports 6x10^11 L2 misses for SIRE/RSM — ~200x its L1 miss
count, impossible for demand traffic.  With the L2 streamer modelled,
the *counter-visible* L2 number (demand + prefetch) for the streaming
workload inflates by a large factor over demand-only, while the
cache-resident Stereo workload's counters barely move — matching the
paper's asymmetry (SIRE's L2 column is astronomically larger than
Stereo's despite similar demand-miss rates).
"""

from __future__ import annotations

import pytest

from repro.config import sandy_bridge_config
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.prefetch import StreamPrefetcher
from repro.workloads.sar import SireRsmWorkload
from repro.workloads.stereo import StereoMatchingWorkload

import numpy as np


@pytest.fixture(scope="module")
def traffic():
    cfg = sandy_bridge_config()
    out = {}
    for workload in (SireRsmWorkload(), StereoMatchingWorkload()):
        rng = np.random.default_rng(0)
        sl = workload.build_slice(rng, 200_000)
        h = MemoryHierarchy(cfg, prefetcher=StreamPrefetcher(degree=4, confirm=3))
        if len(sl.preload_addresses):
            h.simulate_data_trace(sl.preload_addresses)
        d_warm, d_meas, _, _ = sl.split_warmup()
        h.simulate_data_trace(d_warm)
        out[workload.name] = h.simulate_data_trace(d_meas)
    return out


def test_bench_ablation_prefetcher(benchmark, traffic):
    def collect():
        return {
            name: (
                c.l2_misses,
                c.counter_visible_l2_misses,
                c.prefetch_l2_requests,
            )
            for name, c in traffic.items()
        }

    numbers = benchmark(collect)

    sire = traffic["SIRE/RSM"]
    stereo = traffic["StereoMatching"]

    # The streamer rides SIRE's sequential passes hard...
    sire_inflation = sire.counter_visible_l2_misses / max(1, sire.l2_misses)
    assert sire_inflation > 1.5
    # ...but finds nothing to ride in Stereo's scattered accesses.
    stereo_inflation = stereo.counter_visible_l2_misses / max(
        1, stereo.l2_misses
    )
    assert stereo_inflation < 1.2
    # The asymmetry the paper's Table II shows between the columns.
    assert sire_inflation > 1.5 * stereo_inflation

    benchmark.extra_info["sire_counter_vs_demand_x"] = round(sire_inflation, 2)
    benchmark.extra_info["stereo_counter_vs_demand_x"] = round(
        stereo_inflation, 2
    )
    benchmark.extra_info["note"] = (
        "hardware prefetch traffic inflates the streaming workload's "
        "L2 counter, explaining the paper's 6e11 anomaly in kind"
    )
