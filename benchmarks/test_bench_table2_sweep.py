"""Table II: the full cap sweep for both applications.

For every (application, cap) row the paper reports average node power,
computed energy, average frequency, execution time, and the five miss
counters, each with its percent difference from the baseline.  This
benchmark regenerates the whole table and checks the shape criteria
(DESIGN.md §4, T2-a..T2-d) against the published percent differences.
"""

from __future__ import annotations

import pytest

from repro.core.report import render_table2
from repro.perf.events import PapiEvent

#: Paper Table II percent time increases (rounded) per cap.
PAPER_TIME_DIFF = {
    "StereoMatching": {160: 3, 155: 0, 150: 9, 145: 21, 140: 40, 135: 107,
                       130: 444, 125: 1104, 120: 3467},
    "SIRE/RSM": {160: 0, 155: 2, 150: 7, 145: 14, 140: 21, 135: 58,
                 130: 93, 125: 193, 120: 2583},
}


def test_bench_table2_sweep(benchmark, paper_sweeps):
    """Regenerate both Table II halves and verify the shape."""

    def regenerate():
        return {
            name: render_table2(sweep) for name, sweep in paper_sweeps.items()
        }

    tables = benchmark(regenerate)
    for name, text in tables.items():
        assert "baseline" in text
        assert "L1 Misses" in text

    for name, sweep in paper_sweeps.items():
        base = sweep.baseline
        # T2-a: energy minimal at caps >= the uncapped draw.
        high = min(sweep.row(160.0).energy_j, sweep.row(155.0).energy_j)
        for cap in (145.0, 135.0, 125.0, 120.0):
            assert sweep.row(cap).energy_j > 0.99 * high
        # T2-b: <= ~40 % down to 140 W; super-linear below 135 W.
        for cap in (160.0, 155.0, 150.0, 145.0, 140.0):
            measured = sweep.slowdown(cap)
            benchmark.extra_info[f"{name}@{cap:.0f} slowdown"] = round(
                measured, 2
            )
            assert measured <= 1.45
        assert sweep.slowdown(120.0) > 15.0
        # T2-c: frequency pinned at the floor for the lowest caps.
        for cap in (125.0, 120.0):
            assert sweep.row(cap).avg_freq_mhz == pytest.approx(1200.0, abs=25)
        # Record paper-vs-measured for the report.
        for cap, paper_pct in PAPER_TIME_DIFF[name].items():
            measured_pct = (sweep.slowdown(float(cap)) - 1.0) * 100.0
            benchmark.extra_info[f"{name}@{cap} paper_time_pct"] = paper_pct
            benchmark.extra_info[f"{name}@{cap} measured_time_pct"] = round(
                measured_pct
            )

    # T2-d: counter signatures.
    stereo, sire = paper_sweeps["StereoMatching"], paper_sweeps["SIRE/RSM"]
    st_base, st_low = stereo.baseline, stereo.row(120.0)
    assert st_low.counters[PapiEvent.PAPI_L2_TCM] > 2.0 * st_base.counters[
        PapiEvent.PAPI_L2_TCM
    ]
    assert st_low.counters[PapiEvent.PAPI_L3_TCM] > 2.0 * st_base.counters[
        PapiEvent.PAPI_L3_TCM
    ]
    si_base, si_low = sire.baseline, sire.row(120.0)
    for e in (PapiEvent.PAPI_L2_TCM, PapiEvent.PAPI_L3_TCM):
        assert si_low.counters[e] == pytest.approx(si_base.counters[e], rel=0.1)
    for sweep in (stereo, sire):
        itlb_base = max(1.0, sweep.baseline.counters[PapiEvent.PAPI_TLB_IM])
        assert sweep.row(120.0).counters[PapiEvent.PAPI_TLB_IM] > 10 * itlb_base
