"""Multi-run batch stepping: march many stable runs as one numpy batch.

A cap sweep is dozens of near-identical runs, and PR 5's block-step
kernel made each one so cheap that the *per-run* Python loop became the
sweep's dominant cost.  This module adds the missing axis: once several
runs are simultaneously parked in their *pinned long-step march* — a
non-dithering command (``fi == si``, alpha exactly 1.0), the 10x stable
step engaged, every telemetry quantum flushing its own bucket — their
per-quantum recurrences are identical scalar chains, so the whole
cohort advances as numpy vectors with **one axis per run**.

The exactness contract is the repo's established one, per run:

- elementwise float64 numpy arithmetic is IEEE-identical to the scalar
  chain, so evolving ``R`` runs' states as length-``R`` vectors (one
  op per quantum) is bitwise equal to evolving each run alone;
- each lane's sensor noise comes from its *own* RNG stream in chunks
  (``Generator.normal(size=n)`` consumes exactly what ``n`` scalar
  draws would) and the stream is rewound to the quanta that committed;
- all sequential folds (energy, meter cursor, telemetry bucket clock,
  the time axis) are evolved **in the march** as vectors — never
  reassociated, never ``cumsum``-ed — and committed through the same
  ``*_block`` methods the per-run kernel uses;
- a lane drops out of the batch one quantum *before* anything the
  march does not model — a bracket flip, an escalation or de-escalation
  patience expiry, a duty-throttle step, the final partial quantum, a
  steady-state fast-forward opportunity — and replays that boundary
  through the per-run kernel/scalar path from identical state.

Dithering caps (a command pair straddling the cap, alpha < 1) never
pin and therefore never batch: they stay on the per-run kernel, which
already handles them optimally.  The batch axis pays off on the pinned
majority of a sweep grid — the uncapped baselines, the loose caps
parked at P0, and the floor caps marching at a pinned duty.

``tests/core/test_blockstep.py`` extends the scalar-vs-block matrix
with a batched axis: batch-of-N results serialize byte-equal to the
same runs executed serially.  ``--no-batch`` / ``REPRO_BATCH=0`` keep
the per-run path selectable at runtime.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.logging import get_logger
from ..obs.metrics import engine_metrics
from ..obs.timeseries import SeriesPoint
from ..obs.tracing import span
from ..workloads.base import Workload
from .metrics import RunResult
from .runner import NodeRunner, RunState, export_counter_tracks

__all__ = ["march", "run_sweep", "batch_enabled"]

_log = get_logger("core.batchstep")

#: Correctness floor: a batch needs at least two lanes to be a batch.
_MIN_LANES = 2
#: Efficiency floor: below this width the scalar kernel retires quanta
#: cheaper than ~50 small-vector numpy ops per step, so the march exits
#: and the per-run path takes the tail.  Tests narrow it to exercise
#: small cohorts.
_MIN_WIDTH = 6
#: Sensor-noise chunk schedule (mirrors blockstep; any schedule is
#: correct because lanes rewind to their committed count).
_CHUNK0 = 16
_CHUNK_MAX = 4096


def batch_enabled(flag: "bool | None" = None) -> bool:
    """Resolve the batch-engine switch (argument beats environment)."""
    if flag is not None:
        return bool(flag)
    env = os.environ.get("REPRO_BATCH", "").strip().lower()
    return env not in ("0", "false", "no", "off")


def _structural_key(kernel) -> tuple:
    """Constants that must agree for lanes to share one march."""
    return (
        kernel._q,
        kernel._q10,
        kernel._decay_q10,
        kernel._m_period,
        kernel._nref_leak,
        kernel._leak_coeff,
        kernel._leak_ref_t,
        kernel._ambient,
        kernel._r_th,
        kernel._duty_min,
        kernel._duty_step,
        kernel._n_states,
    )


def march(
    states: "Sequence[RunState]", min_width: int = _MIN_WIDTH
) -> int:
    """Advance a cohort of batch-eligible runs as one numpy batch.

    Every state should currently satisfy :meth:`RunState.batch_eligible`
    (lanes that fail the cheap re-screen here are simply left
    untouched).  Each lane marches until it hits a boundary the batch
    does not model, at which point its folds, history, and RNG streams
    are committed through the same ``*_block`` substrate methods the
    per-run kernel uses, bit-identically.  The march ends when fewer
    than ``min_width`` lanes remain (the survivors are finalized at the
    current step and handed back to the per-run path).  Returns the
    total quanta retired across all lanes.
    """
    min_width = max(int(min_width), _MIN_LANES)
    lanes: List[RunState] = []
    snaps: List[tuple] = []
    consts: List[tuple] = []
    ref = None
    for st in states:
        kern = st.kernel
        if kern is None or kern.disabled:
            continue
        pk = st.prev_cmd_key
        if pk is None or kern._n_states < 2:
            continue
        if st.sampler is not None and st.mpki_by_gating.get(st.key) is None:
            continue
        key = _structural_key(kern)
        if ref is None:
            ref = key
        elif key != ref:
            continue
        snap = st.controller.block_state()
        if pk[3] != snap[5] or pk[4] != snap[6]:
            continue
        capped = st.cap_w is not None
        table = st.model.power_table(
            st.node.pstates,
            duty=snap[5],
            activity=1.0,
            gating_saving_w=snap[8],
            dram_traffic_bps=0.0,
            busy_cores=snap[11],
        )
        ok, tc = kern._table_constants(
            table, st.thermal.temperature_c, capped
        )
        if not ok:
            continue
        lanes.append(st)
        snaps.append(snap)
        consts.append(tc)
    R = len(lanes)
    if R < min_width:
        return 0

    k0 = lanes[0].kernel
    q = k0._q
    dt = k0._q10
    decay = k0._decay_q10
    m_period = k0._m_period
    nref = k0._nref_leak
    coeff = k0._leak_coeff
    ref_t = k0._leak_ref_t
    ambient = k0._ambient
    r_th = k0._r_th
    duty_min = k0._duty_min
    duty_step = k0._duty_step
    n_last = k0._n_states - 1

    arr = lambda vals: np.array(vals, dtype=np.float64)

    ki = np.array([st.prev_cmd_key[0] for st in lanes], dtype=np.int64)
    K0 = ki == 0
    KFLOOR = ki == n_last
    CAPPED = np.array([st.cap_w is not None for st in lanes], dtype=bool)
    cap_or0 = [st.cap_w if st.cap_w is not None else 0.0 for st in lanes]
    TARGET = arr([c - st.kernel._target_margin
                  for c, st in zip(cap_or0, lanes)])
    CAP_HYST = arr([c + st.kernel._hyst for c, st in zip(cap_or0, lanes)])
    CAP_MHYST = arr([c - st.kernel._hyst for c, st in zip(cap_or0, lanes)])
    CAP_MDEESC = arr([c - st.kernel._deesc_margin
                      for c, st in zip(cap_or0, lanes)])
    PB = arr([tc[0] for tc in consts])
    UNC = arr([tc[1] for tc in consts])
    DYNK = arr([tc[3][k] for tc, k in zip(consts, ki)])
    GATEK = arr([tc[4][k] for tc, k in zip(consts, ki)])
    DUTY = arr([st.prev_cmd_key[3] for st in lanes])
    LEVEL = np.array([st.prev_cmd_key[4] for st in lanes], dtype=np.int64)
    OVERLOG = np.array([s[4] for s in snaps], dtype=bool)
    FLOORLOG = np.array([s[3] for s in snaps], dtype=bool)
    AT_TOP = np.array([s[7] for s in snaps], dtype=bool)
    ESC_PAT = np.array([s[9] for s in snaps], dtype=np.int64)
    DEESC_PAT = np.array([s[10] for s in snaps], dtype=np.int64)
    S_ALPHA = arr([st.sensor.smoothing for st in lanes])
    BAND = arr([st.kernel._band for st in lanes])
    IDLE = arr([st.kernel._idle_w for st in lanes])
    SPI = arr([st.spi for st in lanes])
    FREQ = arr([st.freq for st in lanes])
    TRW = arr([st.traffic_w for st in lanes])
    TOTAL = arr([st.total_instr for st in lanes])
    MAXSIM = arr([st.kernel._max_sim for st in lanes])
    FFON = np.array([st.kernel._ff for st in lanes], dtype=bool)
    EPS = arr([st.kernel._eps_pinned for st in lanes])
    # A duty-throttle step is a drop for the whole march; whether the
    # ladder can still step is a per-lane constant (duty never changes
    # in-batch), as is the pure-bookkeeping alternative.
    dn = DUTY - duty_step
    dn = np.where(dn < duty_min, duty_min, dn)
    CAN_STEP = dn < DUTY
    # Per-quantum per-lane constants of the pinned march.
    INSTR_Q = dt / SPI
    FD = FREQ * dt
    CYQ = FD * DUTY

    TELEM = np.array([st.sampler is not None for st in lanes], dtype=bool)
    SERIES = np.array([st.record_series for st in lanes], dtype=bool)
    any_telem = bool(TELEM.any())
    any_series = bool(SERIES.any())

    # ---- fold vectors (elementwise == the scalar sequential folds) ---
    POWER = arr([st.power for st in lanes])
    T = arr([st.t for st in lanes])
    DONE = arr([st.done for st in lanes])
    FT = arr([st.freq_time for st in lanes])
    CY = arr([st.cycles for st in lanes])
    STBL = np.array([st.stable_quanta for st in lanes], dtype=np.int64)
    FILT = arr([st.sensor.reading_w for st in lanes])
    TEMP = arr([st.thermal.temperature_c for st in lanes])
    CTIME = arr([s[0] for s in snaps])
    OC = np.array([s[1] for s in snaps], dtype=np.int64)
    UC = np.array([s[2] for s in snaps], dtype=np.int64)
    SEG = arr([st.instr_by_gating.get(st.key, 0.0) for st in lanes])
    EJ = arr([st.energy.energy_j for st in lanes])
    ELS = arr([st.energy.elapsed_s for st in lanes])
    MEJ = arr([st.meter.energy_j for st in lanes])
    NEXTS = arr([st.meter.next_sample_s for st in lanes])
    BT0 = arr([
        st.sampler.block_state()[0] if st.sampler is not None else 0.0
        for st in lanes
    ])
    # An uncapped lane's counters are controller constants; the capped
    # reset targets are therefore per-lane constants too.
    ZOC = np.where(CAPPED, 0, OC)
    ZUC = np.where(CAPPED, 0, UC)

    state0 = [st.sensor.rng_state() for st in lanes]
    # Histories keep every original lane's column for the whole march
    # (only the *fold vectors* are compressed when lanes drop), so a
    # drop event costs ~40 small-vector copies, never a history copy.
    cols = np.arange(R)
    DRAWN = np.zeros(R, dtype=np.int64)

    rows = 512
    hist_pw = np.empty((rows, R))
    hist_mt = np.empty((rows, R))
    hist_t = np.empty((rows, R)) if any_series else None
    hist_bt0 = np.empty((rows, R)) if any_telem else None
    hist_tmp = np.empty((rows, R)) if any_telem else None
    noise = np.empty((0, R))
    extras: Dict[int, List[Tuple[int, float, float]]] = {}

    def _finalize(slot: int, n: int) -> None:
        """Commit lane ``cols[slot]``'s ``n`` marched quanta."""
        li = int(cols[slot])
        st = lanes[li]
        if int(DRAWN[li]) != n:
            st.sensor.rewind(state0[li], n)
        if n == 0:
            return
        st.sensor.commit_block(float(FILT[slot]))
        st.controller.commit_block(
            float(CTIME[slot]), int(OC[slot]), int(UC[slot]),
            float(DUTY[slot]),
        )
        st.thermal.set_temperature(float(TEMP[slot]))
        pw_col = hist_pw[:n, li]
        pw_list = pw_col.tolist()
        mt_col = hist_mt[:n, li]
        exl = extras.get(li)
        if exl:
            by_row: Dict[int, List[float]] = {}
            for r, ts, _pv in exl:
                by_row.setdefault(r, []).append(ts)
            samples = []
            for r in range(n):
                mt = mt_col[r]
                if not math.isnan(mt):
                    samples.append((float(mt), pw_list[r]))
                for ts in by_row.get(r, ()):
                    samples.append((ts, pw_list[r]))
        else:
            mask = ~np.isnan(mt_col)
            samples = list(zip(mt_col[mask].tolist(), pw_col[mask].tolist()))
        st.meter.advance_block(samples, float(NEXTS[slot]), float(MEJ[slot]))
        st.energy.add_block(
            list(zip(pw_list, [dt] * n)), float(EJ[slot]), float(ELS[slot])
        )
        if st.sampler is not None:
            # Every batch quantum is a fused single-quantum bucket:
            # same seed-fold-flush arithmetic as the kernel's drain().
            kern = st.kernel
            SP = SeriesPoint
            sp = tuple.__new__
            el_b = 0.0 + dt
            bt = hist_bt0[:n, li].tolist()
            tc_col = hist_tmp[:n, li]
            fmv = float(FREQ[slot] / 1e6)
            psv = 1.0 * int(ki[slot]) + 0.0 * int(ki[slot])
            dv = float(DUTY[slot])
            m1, m2, m3, m4, m5 = st.mpki_by_gating[st.key]
            pw_mean = ((pw_col * dt) / el_b).tolist()
            tc_mean = ((tc_col * dt) / el_b).tolist()
            tc_list = tc_col.tolist()
            fm_mean = (fmv * dt) / el_b
            ps_mean = (psv * dt) / el_b
            d_mean = (dv * dt) / el_b
            mm1 = (m1 * dt) / el_b
            mm2 = (m2 * dt) / el_b
            mm3 = (m3 * dt) / el_b
            mm4 = (m4 * dt) / el_b
            mm5 = (m5 * dt) / el_b
            pts = (
                [sp(SP, (b, el_b, m, v, v))
                 for b, m, v in zip(bt, pw_mean, pw_list)],
                [sp(SP, (b, el_b, fm_mean, fmv, fmv)) for b in bt],
                [sp(SP, (b, el_b, ps_mean, psv, psv)) for b in bt],
                [sp(SP, (b, el_b, d_mean, dv, dv)) for b in bt],
                [sp(SP, (b, el_b, d_mean, dv, dv)) for b in bt],
                [sp(SP, (b, el_b, m, v, v))
                 for b, m, v in zip(bt, tc_mean, tc_list)],
                [sp(SP, (b, el_b, mm1, m1, m1)) for b in bt],
                [sp(SP, (b, el_b, mm2, m2, m2)) for b in bt],
                [sp(SP, (b, el_b, mm3, m3, m3)) for b in bt],
                [sp(SP, (b, el_b, mm4, m4, m4)) for b in bt],
                [sp(SP, (b, el_b, mm5, m5, m5)) for b in bt],
            )
            for ch, p in zip(kern._channels, pts):
                ch.add_block(p)
            st.sampler.commit_block(n, float(BT0[slot]), 0.0, {}, pts)
        if st.record_series:
            fmv = float(FREQ[slot] / 1e6)
            dv = float(DUTY[slot])
            st.series.extend(
                (tv, pv, fmv, dv)
                for tv, pv in zip(hist_t[:n, li].tolist(), pw_list)
            )
        st.power = float(POWER[slot])
        st.t = float(T[slot])
        st.done = float(DONE[slot])
        st.freq_time = float(FT[slot])
        st.cycles = float(CY[slot])
        st.stable_quanta = int(STBL[slot])
        st.quanta += n
        st.batch_steps += 1
        st.batch_quanta += n
        st.instr_by_gating[st.key] = float(SEG[slot])
        # Force one scalar quantum before the kernel/batch re-engages —
        # the same memo-validity invariant the kernel's exit preserves.
        st.block_after = st.quanta + 1

    j = 0
    drawn = 0
    chunk = _CHUNK0
    total_quanta = 0
    while True:
        if j == drawn:
            if drawn and chunk < _CHUNK_MAX:
                chunk *= 4
            grown = np.empty((drawn + chunk, noise.shape[1]))
            grown[:drawn] = noise[:drawn]
            for li in cols:
                grown[drawn:, li] = lanes[int(li)].sensor.noise_block(chunk)
            noise = grown
            DRAWN[cols] += chunk
            drawn += chunk
        if j == rows:
            rows *= 2

            def _grow(a):
                if a is None:
                    return None
                new = np.empty((rows, a.shape[1]))
                new[: a.shape[0]] = a
                return new

            hist_pw = _grow(hist_pw)
            hist_mt = _grow(hist_mt)
            hist_t = _grow(hist_t)
            hist_bt0 = _grow(hist_bt0)
            hist_tmp = _grow(hist_tmp)

        # ---- controller.update, replayed tentatively (vectorized) ----
        noisy = POWER + noise[j, cols]
        filt_new = FILT + S_ALPHA * (noisy - FILT)
        scale = 1.0 + coeff * (TEMP - ref_t)
        scale = np.where(scale < 0.4, 0.4, scale)
        base = PB + (nref * scale) + UNC
        s = base + DYNK
        pk_w = s - GATEK
        # A pinned bracket holds only while target >= p0 (top lanes) /
        # target <= p_last (floor lanes); a flip is a boundary.
        flip = CAPPED & np.where(K0, TARGET < pk_w, TARGET > pk_w)

        over = CAPPED & (filt_new > CAP_HYST)
        oc_n = np.where(over, OC + 1, ZOC)
        can_raise = (DUTY < 1.0) & (filt_new < CAP_MHYST)
        can_deesc = (LEVEL > 0) & (~KFLOOR | (filt_new < CAP_MDEESC))
        under_cnt = CAPPED & ~over & (can_raise | can_deesc)
        uc_n = np.where(over, 0, np.where(under_cnt, UC + 1, ZUC))
        d1 = over & ~OVERLOG & (oc_n >= ESC_PAT)
        esc_hit = over & KFLOOR & (oc_n >= ESC_PAT) & ~d1
        d2 = esc_hit & ~AT_TOP
        book = esc_hit & AT_TOP
        d3 = book & CAN_STEP
        oc_n = np.where(book & ~CAN_STEP, 0, oc_n)
        d4 = under_cnt & (uc_n >= DEESC_PAT)

        pw = (s + TRW) - GATEK
        d5 = ~(pw >= 0.0)
        ex = pw - IDLE
        ex = np.where(ex < 0.0, 0.0, ex)
        ss = ambient + r_th * ex
        remaining = (TOTAL - DONE) * SPI
        d6 = remaining <= dt
        t_new = T + dt
        d8 = t_new > MAXSIM
        # Fast-forward screen: a converged quiescent lane must replay
        # its next quantum scalar so the closed-form skip can engage.
        ffm = FFON & (T + remaining <= MAXSIM) & (np.abs(TEMP - ss) <= EPS)
        drop = flip | d1 | d2 | d3 | d4 | d5 | d6 | d8
        if ffm.any():
            lo = pw - BAND
            hi = pw + BAND
            lo = np.where(filt_new < lo, filt_new, lo)
            hi = np.where(filt_new > hi, filt_new, hi)
            quiet = ~(KFLOOR & ~FLOORLOG)
            c_hi = hi > CAP_HYST
            quiet &= ~(c_hi & ~OVERLOG)
            quiet &= ~(
                c_hi & OVERLOG & KFLOOR & (~AT_TOP | (DUTY > duty_min))
            )
            c_lo = lo <= CAP_HYST
            quiet &= ~(
                c_lo
                & (
                    ((DUTY < 1.0) & (lo < CAP_MHYST))
                    | ((LEVEL > 0) & (~KFLOOR | (lo < CAP_MDEESC)))
                )
            )
            drop = drop | (ffm & (quiet | ~CAPPED))
        dropping = bool(drop.any())
        if dropping:
            for slot in np.nonzero(drop)[0]:
                _finalize(int(slot), j)
            total_quanta += j * int(drop.sum())

        # ---- every break check passed: commit the quantum ------------
        CTIME = CTIME + q
        OC = oc_n
        UC = uc_n
        FILT = filt_new
        STBL = STBL + 1
        DONE = DONE + INSTR_Q
        SEG = SEG + INSTR_Q
        FT = FT + FD
        CY = CY + CYQ
        pd = pw * dt
        EJ = EJ + pd
        MEJ = MEJ + pd
        ELS = ELS + dt
        hist_pw[j, cols] = pw
        adv = NEXTS < t_new
        rec = adv & (NEXTS >= T)
        hist_mt[j, cols] = np.where(rec, NEXTS, np.nan)
        NEXTS = np.where(adv, NEXTS + m_period, NEXTS)
        if (NEXTS < t_new).any():
            # Sampling period shorter than the long step: walk the
            # remaining grid instants lane by lane (none in the shipped
            # configs, where the meter period exceeds the 10x quantum).
            for slot in np.nonzero(NEXTS < t_new)[0]:
                while NEXTS[slot] < t_new[slot]:
                    if NEXTS[slot] >= T[slot]:
                        extras.setdefault(int(cols[slot]), []).append(
                            (j, float(NEXTS[slot]), float(pw[slot]))
                        )
                    NEXTS[slot] += m_period
        if any_telem:
            hist_bt0[j, cols] = BT0
            hist_tmp[j, cols] = TEMP
            BT0 = BT0 + dt
        if any_series:
            hist_t[j, cols] = t_new
        TEMP = ss + (TEMP - ss) * decay
        T = t_new
        POWER = pw
        j += 1

        if dropping:
            keep = ~drop
            R = int(keep.sum())
            (POWER, T, DONE, FT, CY, FILT, TEMP, CTIME, SEG, EJ, ELS,
             MEJ, NEXTS, BT0, TARGET, CAP_HYST, CAP_MHYST, CAP_MDEESC,
             PB, UNC, DYNK, GATEK, DUTY, S_ALPHA, BAND, IDLE, SPI, FREQ,
             TRW, TOTAL, MAXSIM, EPS, INSTR_Q, FD, CYQ) = (
                v[keep]
                for v in (
                    POWER, T, DONE, FT, CY, FILT, TEMP, CTIME, SEG, EJ,
                    ELS, MEJ, NEXTS, BT0, TARGET, CAP_HYST, CAP_MHYST,
                    CAP_MDEESC, PB, UNC, DYNK, GATEK, DUTY, S_ALPHA,
                    BAND, IDLE, SPI, FREQ, TRW, TOTAL, MAXSIM, EPS,
                    INSTR_Q, FD, CYQ,
                )
            )
            (STBL, OC, UC, LEVEL, ESC_PAT, DEESC_PAT, ki, ZOC, ZUC,
             cols) = (
                v[keep]
                for v in (STBL, OC, UC, LEVEL, ESC_PAT, DEESC_PAT, ki,
                          ZOC, ZUC, cols)
            )
            (CAPPED, K0, KFLOOR, OVERLOG, FLOORLOG, AT_TOP, CAN_STEP,
             FFON, TELEM, SERIES) = (
                v[keep]
                for v in (CAPPED, K0, KFLOOR, OVERLOG, FLOORLOG, AT_TOP,
                          CAN_STEP, FFON, TELEM, SERIES)
            )
            any_telem = bool(TELEM.any())
            any_series = bool(SERIES.any())
            if R < min_width:
                break

    for slot in range(len(cols)):
        _finalize(slot, j)
    total_quanta += j * len(cols)
    return total_quanta


def _finish_run(st: RunState) -> RunResult:
    """``RunState.finish`` plus the per-run metrics/logging bookkeeping."""
    result, quanta, ffed, bsteps, bquanta = st.finish()
    export_counter_tracks(
        result, st.wall0, time.perf_counter() - st.wall0
    )
    metrics = engine_metrics()
    metrics.runs.inc()
    metrics.quanta.inc(quanta)
    if ffed:
        metrics.fast_forwards.inc()
    if bsteps:
        metrics.block_steps.inc(bsteps)
        metrics.block_quanta.inc(bquanta)
    if st.batch_quanta:
        metrics.batch_runs.inc()
        metrics.batch_quanta.inc(st.batch_quanta)
    _log.info(
        "run_done",
        workload=st.workload.name,
        cap_w=st.cap_w,
        rep=st.rep,
        sim_s=round(result.execution_s, 6),
        avg_power_w=round(result.avg_power_w, 3),
        quanta=quanta,
        fast_forwarded=ffed,
        block_steps=bsteps,
        block_quanta=bquanta,
        batch_steps=st.batch_steps,
        batch_quanta=st.batch_quanta,
    )
    return result


def run_sweep(
    runner: NodeRunner,
    tasks: "Sequence[Tuple[Workload, Optional[float], int]]",
    *,
    batch: "bool | None" = None,
    min_width: int = _MIN_WIDTH,
) -> List[RunResult]:
    """Execute a task list, batching stable segments across runs.

    Results are returned in task order and are bit-identical to
    ``[runner.run(w, c, rep=r) for w, c, r in tasks]`` — the batch
    engine only takes segments whose per-run evolution it reproduces
    exactly, and every run draws from its own named RNG streams.  With
    ``batch`` false (or ``REPRO_BATCH=0``, or fewer than two tasks)
    this *is* that serial loop.
    """
    if (
        not batch_enabled(batch)
        or not runner.block_step
        or len(tasks) < _MIN_LANES
    ):
        return [runner.run(w, cap, rep=rep) for (w, cap, rep) in tasks]
    results: List[Optional[RunResult]] = [None] * len(tasks)
    with span("sweep_batch", runs=len(tasks)):
        states = [
            RunState(runner, w, cap, rep) for (w, cap, rep) in tasks
        ]
        pending = list(range(len(states)))
        while pending:
            parked: List[int] = []
            for i in pending:
                st = states[i]
                # Advance to the next park point (always >= 1 quantum
                # of progress, so drop-outs cannot loop in place).
                # The scalar-driven stretch is a "run" phase segment;
                # the lockstep march accrues under "sweep_batch".
                with span("run", workload=st.workload.name, cap_w=st.cap_w):
                    while not st.finished:
                        st.try_kernel(stop_batchable=True)
                        if st.finished:
                            break
                        st.step_quantum()
                        if st.batch_eligible():
                            break
                if st.finished:
                    results[i] = _finish_run(st)
                else:
                    parked.append(i)
            if len(parked) >= max(min_width, _MIN_LANES):
                retired = march(
                    [states[i] for i in parked], min_width=min_width
                )
                if retired:
                    pending = parked
                    continue
            # Too narrow for the batch to pay off (or no lane passed
            # the cohort screen): the per-run kernel takes the tails.
            for i in parked:
                st = states[i]
                with span("run", workload=st.workload.name, cap_w=st.cap_w):
                    while not st.finished:
                        st.try_kernel()
                        if not st.finished:
                            st.step_quantum()
                results[i] = _finish_run(st)
            pending = []
    if runner.rate_cache is not None:
        runner.rate_cache.save()
    return results  # type: ignore[return-value]
