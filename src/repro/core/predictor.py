"""Predict cap impact from baseline measurements only.

The paper's final future-work item: "we would like to develop a
methodology for characterizing applications with regard to their
amenability to power capped execution" (Section V).  The empirical side
of that methodology is :mod:`repro.core.amenability` (run the sweep,
find the knee).  This module is the *predictive* side: given only what
one uncapped, instrumented run provides — per-instruction event rates
from the PAPI counters and the average draw — predict the slowdown at
any cap without running capped at all.

The prediction inverts the same CPI-stack reasoning the simulator runs
forward:

1. classify the cap's **regime** against the power model: ``DVFS``
   (reachable by frequency scaling), ``BEYOND_DVFS`` (below the floor
   P-state's draw: gating and clock modulation will engage), or
   ``INFEASIBLE`` (below the deepest-mechanism floor: the cap will be
   missed *and* performance will be destroyed);
2. in the DVFS regime, solve for the dither frequency the BMC will
   settle at and scale only the compute component of the CPI stack —
   memory stalls do not speed up with the clock, which is exactly why
   memory-bound codes (SIRE) tolerate capping better than compute-bound
   ones (Stereo);
3. beyond DVFS, return a *lower bound* built from the floor frequency
   and the duty implied by the remaining power gap (gating-induced miss
   inflation comes on top, and a baseline-only predictor cannot see
   it — the honest limit of counter-based characterisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Sequence

from ..arch.core import CoreTimingModel
from ..arch.pstate import PStateTable
from ..config import NodeConfig, sandy_bridge_config
from ..errors import SimulationError
from ..mem.hierarchy import AccessRates
from ..mem.latency import AccessCosts, stall_ns_per_instruction
from ..power.model import NodePowerModel

__all__ = ["CapRegime", "PredictedImpact", "CapImpactPredictor"]


class CapRegime(Enum):
    """Where a cap lands relative to the node's mechanisms."""

    #: No capping needed: the cap exceeds the uncapped draw.
    UNCONSTRAINED = "unconstrained"
    #: Reachable by P-state dithering alone.
    DVFS = "dvfs"
    #: Below the floor P-state: gating/modulation will engage.
    BEYOND_DVFS = "beyond-dvfs"
    #: Below the deepest achievable floor: will run over the cap.
    INFEASIBLE = "infeasible"


@dataclass(frozen=True)
class PredictedImpact:
    """Prediction for one cap."""

    cap_w: float
    regime: CapRegime
    predicted_freq_mhz: float
    #: Execution-time ratio vs baseline.  Exact in the DVFS regime; a
    #: lower bound beyond it (``is_lower_bound``).
    predicted_slowdown: float
    is_lower_bound: bool

    def tolerable(self, tolerance_slowdown: float) -> Optional[bool]:
        """Whether the cap stays within a slowdown tolerance.

        Returns None when the prediction is only a lower bound that
        does not already exceed the tolerance (undecidable from
        baseline data alone).
        """
        if self.predicted_slowdown > tolerance_slowdown:
            return False
        if self.is_lower_bound:
            return None
        return True


class CapImpactPredictor:
    """Baseline-counters-in, slowdown-curve-out."""

    def __init__(self, config: NodeConfig | None = None) -> None:
        self._config = config or sandy_bridge_config()
        self._pstates = PStateTable(self._config.pstates)
        self._model = NodePowerModel(self._config)
        self._core = CoreTimingModel(self._config.base_cpi)
        self._costs = AccessCosts.from_config(self._config)

    @property
    def config(self) -> NodeConfig:
        """The node the prediction targets."""
        return self._config

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _spi_at(self, rates: AccessRates, freq_hz: float, duty: float = 1.0) -> float:
        stall = stall_ns_per_instruction(rates, self._costs)
        return self._core.seconds_per_instruction(freq_hz, stall, duty)

    def _power_of(self, state, rates: AccessRates, freq_hint_hz: float) -> float:
        # DRAM traffic scales with the instruction rate at the state.
        spi = self._spi_at(rates, state.freq_hz)
        traffic = rates.l3_misses / spi * self._config.l3.line_bytes
        return self._model.power_of_pstate(
            state,
            dram_traffic_bps=traffic,
            temperature_c=self._config.power.leakage_ref_temp_c,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def baseline_power_w(self, rates: AccessRates) -> float:
        """The uncapped draw the model predicts for these rates."""
        return self._power_of(self._pstates.fastest, rates, 2.701e9)

    def predict(self, rates: AccessRates, cap_w: float) -> PredictedImpact:
        """Predict the impact of one cap from baseline rates."""
        if cap_w <= 0:
            raise SimulationError("cap must be positive")
        cfg = self._config
        base_spi = self._spi_at(rates, self._pstates.fastest.freq_hz)
        uncapped = self.baseline_power_w(rates)
        target = cap_w - cfg.bmc.target_margin_w

        if cap_w >= uncapped:
            return PredictedImpact(
                cap_w=cap_w,
                regime=CapRegime.UNCONSTRAINED,
                predicted_freq_mhz=self._pstates.fastest.freq_mhz,
                predicted_slowdown=1.0,
                is_lower_bound=False,
            )

        floor_state = self._pstates.slowest
        floor_power = self._power_of(floor_state, rates, floor_state.freq_hz)
        if target >= floor_power:
            # DVFS regime: the dither frequency solves the power model.
            fast, slow, alpha = self._pstates.dither_fraction(
                lambda st: self._power_of(st, rates, st.freq_hz), target
            )
            freq = alpha * fast.freq_hz + (1 - alpha) * slow.freq_hz
            slowdown = self._spi_at(rates, freq) / base_spi
            return PredictedImpact(
                cap_w=cap_w,
                regime=CapRegime.DVFS,
                predicted_freq_mhz=freq / 1e6,
                predicted_slowdown=slowdown,
                is_lower_bound=False,
            )

        # Beyond DVFS: estimate the duty the power gap forces.
        ladder = cfg.bmc.ladder
        deepest_saving = max(l.power_saving_w for l in ladder.levels)
        escalated_floor = floor_power - deepest_saving
        duty_floor_power = self._model.power_of_pstate(
            floor_state,
            duty=ladder.duty_min,
            gating_saving_w=deepest_saving,
            temperature_c=cfg.power.leakage_ref_temp_c,
        )
        regime = (
            CapRegime.INFEASIBLE if cap_w < duty_floor_power
            else CapRegime.BEYOND_DVFS
        )
        if regime is CapRegime.INFEASIBLE:
            duty = ladder.duty_min
        else:
            # Linear interpolation of the duty response between the
            # escalated floor (duty 1) and the duty floor (duty_min).
            span = max(1e-9, escalated_floor - duty_floor_power)
            frac = (cap_w - duty_floor_power) / span
            duty = ladder.duty_min + (1.0 - ladder.duty_min) * min(
                1.0, max(0.0, frac)
            )
        slowdown = self._spi_at(rates, floor_state.freq_hz, duty) / base_spi
        return PredictedImpact(
            cap_w=cap_w,
            regime=regime,
            predicted_freq_mhz=floor_state.freq_mhz,
            predicted_slowdown=slowdown,
            is_lower_bound=True,
        )

    def predict_curve(
        self, rates: AccessRates, caps_w: Sequence[float]
    ) -> Dict[float, PredictedImpact]:
        """Predictions for a whole cap sweep."""
        return {float(c): self.predict(rates, float(c)) for c in caps_w}

    def knee_cap_w(
        self,
        rates: AccessRates,
        tolerance_slowdown: float = 1.25,
        caps_w: Sequence[float] | None = None,
    ) -> Optional[float]:
        """Lowest cap predicted to stay within a slowdown tolerance."""
        if tolerance_slowdown <= 1.0:
            raise SimulationError("tolerance must exceed 1.0")
        caps = sorted(
            caps_w
            or [160.0, 155.0, 150.0, 145.0, 140.0, 135.0, 130.0, 125.0, 120.0],
            reverse=True,
        )
        knee = None
        for cap in caps:
            impact = self.predict(rates, cap)
            if impact.tolerable(tolerance_slowdown):
                knee = cap
            else:
                break
        return knee
