"""The paper's experiment: a cap sweep with repetitions.

Section III: "we studied their performance at nine different power
caps: 160 ..., 155, 150, 145, 140, 135, 130, 125, and 120 Watts.  Each
application, given the same input, was executed five times under each
power cap and the results ... were averaged."

Every (workload, cap, repetition) run is independent — all coupling
between runs goes through per-run RNG streams derived by name from the
experiment seed — so the sweep fans out over a process pool with
``jobs > 1`` and reassembles in deterministic task order.  A parallel
sweep is run-for-run bit-identical to the serial one.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import PAPER_POWER_CAPS_W, NodeConfig
from ..errors import ConfigError, SimulationError
from ..obs.detect import scan_experiment
from ..obs.logging import get_logger
from ..obs.provenance import build_provenance
from ..obs.timeseries import TelemetryConfig
from ..obs.tracing import phase_totals, span
from ..obs.metrics import engine_metrics
from ..rng import DEFAULT_SEED
from ..workloads.base import Workload
from .batchstep import batch_enabled, run_sweep
from .metrics import AveragedResult, RunResult
from .ratecache import RateCache
from .runner import NodeRunner

__all__ = ["PowerCapExperiment", "ExperimentResult", "validate_caps"]

_log = get_logger("core.experiment")


def _phase_delta(before: dict, after: dict) -> Dict[str, float]:
    """Per-span seconds accumulated between two phase snapshots."""
    delta = {}
    for name, acc in after.items():
        seconds = acc["seconds"] - before.get(name, {}).get("seconds", 0.0)
        if seconds > 0.0:
            delta[name] = seconds
    return delta


def validate_caps(
    caps_w: Sequence[float], *, allow_empty: bool = False
) -> List[float]:
    """Validate a cap sweep; returns the caps as floats.

    An empty sweep is rejected unless ``allow_empty`` (a baseline-only
    experiment legitimately sweeps no caps); every cap must be a
    finite positive number of Watts.  Raises
    :class:`~repro.errors.ConfigError` — previously a bad ``--caps``
    list produced an empty sweep (or a hung run) silently.
    """
    try:
        caps = [float(c) for c in caps_w]
    except (TypeError, ValueError):
        raise ConfigError(f"caps must be numbers, got {list(caps_w)!r}")
    if not caps and not allow_empty:
        raise ConfigError(
            "cap sweep is empty — give at least one power cap in Watts"
        )
    for cap in caps:
        if not math.isfinite(cap) or cap <= 0:
            raise ConfigError(
                f"power caps must be finite and > 0 W, got {cap!r}"
            )
    return caps

# One NodeRunner per worker process, created by the pool initializer so
# trace slices and rates are measured once per worker, not once per run.
_WORKER_RUNNER: NodeRunner | None = None


def _pool_init(
    config: NodeConfig | None,
    seed: int,
    slice_accesses: int,
    rate_cache_path: "str | None",
    telemetry: "TelemetryConfig | None" = None,
    block_step: "bool | None" = None,
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = NodeRunner(
        config=config,
        seed=seed,
        slice_accesses=slice_accesses,
        rate_cache=rate_cache_path,
        telemetry=telemetry,
        block_step=block_step,
    )


def _cost_rank(cap_w: Optional[float]) -> int:
    """Expected relative cost of one run under ``cap_w``.

    Uncapped baselines go quiescent almost immediately (rank 0); loose
    caps settle after a short DVFS search (1); very tight caps walk the
    escalation ladder once and then pin (2); caps just under the DVFS
    knee dither longest before the steady-state fast-forward can engage
    (3).  Only scheduling efficiency depends on this ranking — results
    are bit-identical under any submission order because every run
    draws from its own named RNG streams.
    """
    if cap_w is None:
        return 0
    if cap_w >= 150.0:
        return 1
    if cap_w > 125.0:
        return 3
    return 2


def _pool_run(task: "Tuple[Workload, Optional[float], int]") -> RunResult:
    workload, cap_w, rep = task
    assert _WORKER_RUNNER is not None
    return _WORKER_RUNNER.run(workload, cap_w, rep=rep)


def _pool_run_chunk(
    payload: "Tuple[List[Tuple[Workload, Optional[float], int]], bool | None]",
) -> List[RunResult]:
    """One warm worker's share of a sweep: a whole task chunk.

    The worker's persistent :class:`NodeRunner` (created once by
    ``_pool_init``) carries its measured rates, trace slices, and rate
    cache across every run of the chunk, and the chunk goes through
    :func:`repro.core.batchstep.run_sweep` so stable segments of the
    chunk's runs march as one numpy batch.  Results come back in chunk
    order; the parent reassembles them by original task index.
    """
    tasks, batch = payload
    assert _WORKER_RUNNER is not None
    return run_sweep(_WORKER_RUNNER, tasks, batch=batch)


@dataclass
class ExperimentResult:
    """All averaged rows for one workload: baseline + each cap."""

    workload: str
    baseline: AveragedResult
    by_cap: Dict[float, AveragedResult] = field(default_factory=dict)
    #: Run provenance manifest (see :mod:`repro.obs.provenance`):
    #: config digest, workload spec, seed, code version, rate-cache
    #: stats, and per-phase span seconds.  None for hand-built results.
    provenance: Optional[dict] = None

    def rows(self) -> List[AveragedResult]:
        """Baseline first, then caps from highest to lowest."""
        return [self.baseline] + [
            self.by_cap[c] for c in sorted(self.by_cap, reverse=True)
        ]

    def row(self, cap_w: float | None) -> AveragedResult:
        """One row by cap (None = baseline)."""
        if cap_w is None:
            return self.baseline
        try:
            return self.by_cap[float(cap_w)]
        except KeyError:
            raise SimulationError(f"no result for cap {cap_w}") from None

    def slowdown(self, cap_w: float) -> float:
        """Execution-time ratio vs the baseline at one cap."""
        return self.row(cap_w).execution_s / self.baseline.execution_s


class PowerCapExperiment:
    """Run the full methodology for a set of workloads."""

    def __init__(
        self,
        workloads: Sequence[Workload],
        caps_w: Sequence[float] = PAPER_POWER_CAPS_W,
        repetitions: int = 5,
        seed: int = DEFAULT_SEED,
        config: NodeConfig | None = None,
        slice_accesses: int = 320_000,
        rate_cache: "RateCache | str | os.PathLike | None" = None,
        telemetry: "TelemetryConfig | bool | None" = None,
        block_step: bool | None = None,
        batch: bool | None = None,
    ) -> None:
        if not workloads:
            raise SimulationError("need at least one workload")
        if repetitions < 1:
            raise SimulationError("need at least one repetition")
        self._workloads = list(workloads)
        self._batch = batch
        #: Worker count the last ``_run_tasks`` actually used, after
        #: the single-core / tiny-chunk fallbacks (bench provenance).
        self.last_effective_jobs: int = 1
        #: How the last ``_run_tasks`` executed (jobs, batch-engine
        #: engagement, warm-worker reuse) — recorded into provenance.
        self.last_execution: "dict | None" = None
        self._caps = validate_caps(caps_w, allow_empty=True)
        self._reps = int(repetitions)
        self._config = config
        self._seed = int(seed)
        self._slice_accesses = int(slice_accesses)
        if isinstance(rate_cache, RateCache):
            self._rate_cache_path = str(rate_cache.path)
        elif rate_cache is not None:
            self._rate_cache_path = str(rate_cache)
        else:
            self._rate_cache_path = None
        self._runner = NodeRunner(
            config=config,
            seed=seed,
            slice_accesses=slice_accesses,
            rate_cache=rate_cache,
            telemetry=telemetry,
            block_step=block_step,
        )

    @property
    def runner(self) -> NodeRunner:
        """The shared runner (exposes rate caches for inspection)."""
        return self._runner

    @property
    def caps_w(self) -> List[float]:
        """The caps this experiment sweeps."""
        return list(self._caps)

    def _tasks_for(
        self, workloads: Sequence[Workload]
    ) -> List[Tuple[Workload, Optional[float], int]]:
        return [
            (w, cap, rep)
            for w in workloads
            for cap in [None, *self._caps]
            for rep in range(self._reps)
        ]

    def _effective_jobs(self, jobs: int, n_tasks: int) -> int:
        """Worker count after the in-process fallbacks.

        A single-core host gains nothing from process fan-out (the seed
        benchmark's jobs=4 "regression" was exactly this), and a chunk
        of fewer than two runs per worker cannot amortize the spawn and
        warm-up cost it pays for.  Both cases fall back toward
        in-process execution, with a logged warning so sweep provenance
        explains the effective parallelism.
        """
        jobs = max(1, int(jobs))
        if jobs <= 1:
            return 1
        if os.environ.get("REPRO_POOL_FORCE", "") == "1":
            return jobs
        cpus = os.cpu_count() or 1
        if cpus < 2:
            _log.warning(
                "pool_fallback",
                reason="single_core",
                cpu_count=cpus,
                requested_jobs=jobs,
            )
            return 1
        fit = max(1, min(jobs, n_tasks // 2))
        if fit < jobs:
            _log.warning(
                "pool_shrunk",
                reason="tiny_chunks",
                runs=n_tasks,
                requested_jobs=jobs,
                effective_jobs=fit,
            )
        return fit

    def _run_tasks(
        self,
        tasks: Sequence[Tuple[Workload, Optional[float], int]],
        jobs: int,
    ) -> List[RunResult]:
        requested = max(1, int(jobs))
        jobs = self._effective_jobs(jobs, len(tasks))
        self.last_effective_jobs = jobs
        metrics = engine_metrics()
        counters0 = (
            metrics.batch_runs.value,
            metrics.batch_quanta.value,
        )

        def _record_execution(worker_reuse: int) -> None:
            # With jobs > 1 the batch counters accumulate inside the
            # workers; the parent-side deltas then read 0 by design.
            metrics.effective_jobs.set(float(jobs))
            self.last_execution = {
                "requested_jobs": requested,
                "effective_jobs": jobs,
                "batch": batch_enabled(self._batch),
                "batch_runs": int(metrics.batch_runs.value - counters0[0]),
                "batch_quanta": int(
                    metrics.batch_quanta.value - counters0[1]
                ),
                "worker_reuse": worker_reuse,
            }

        if jobs <= 1:
            results = run_sweep(self._runner, tasks, batch=self._batch)
            _record_execution(0)
            return results
        # Skew-aware chunking: a sweep's wall clock is set by whichever
        # worker drains the slowest tail, and the knee-cap runs are an
        # order of magnitude longer than baselines.  Sorting
        # longest-expected-first (stable, so equal ranks keep task
        # order) and dealing round-robin gives every worker one chunk
        # of near-equal expected cost — and a whole chunk per worker is
        # what lets the warm runner and the batch engine amortize
        # across runs instead of paying per-task future overhead.
        order = sorted(
            range(len(tasks)),
            key=lambda i: _cost_rank(tasks[i][1]),
            reverse=True,
        )
        chunks = [order[k::jobs] for k in range(jobs)]
        chunks = [c for c in chunks if c]
        batch = batch_enabled(self._batch)
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_pool_init,
            initargs=(
                self._config,
                self._seed,
                self._slice_accesses,
                self._rate_cache_path,
                self._runner.telemetry,
                self._runner.block_step,
            ),
        ) as pool:
            futures = [
                pool.submit(_pool_run_chunk, ([tasks[i] for i in c], batch))
                for c in chunks
            ]
            results: List[Optional[RunResult]] = [None] * len(tasks)
            for chunk, future in zip(chunks, futures):
                for i, res in zip(chunk, future.result()):
                    results[i] = res
        # Every run beyond each chunk's first was served by a worker
        # whose runner was already warm (rates measured, slices built).
        metrics.worker_reuse.inc(len(tasks) - len(chunks))
        _record_execution(len(tasks) - len(chunks))
        return results  # type: ignore[return-value]

    def _assemble(
        self, workload: Workload, runs: List[RunResult]
    ) -> ExperimentResult:
        reps = self._reps
        result = ExperimentResult(
            workload=workload.name,
            baseline=AveragedResult.from_runs(runs[:reps]),
        )
        for i, cap in enumerate(self._caps):
            chunk = runs[(i + 1) * reps : (i + 2) * reps]
            result.by_cap[cap] = AveragedResult.from_runs(chunk)
        return result

    def _provenance_for(
        self, workload: Workload, phase_seconds: Dict[str, float]
    ) -> dict:
        return build_provenance(
            config=self._runner.config,
            workload=workload,
            seed=self._seed,
            caps_w=self._caps,
            repetitions=self._reps,
            slice_accesses=self._slice_accesses,
            rate_cache=self._runner.rate_cache,
            phase_seconds=phase_seconds,
            execution=self.last_execution,
        )

    def _annotate_phenomena(self, result: ExperimentResult) -> None:
        """Scan the sweep's timelines and annotate provenance.

        Detections (frequency-floor pinning, cap overshoot/settling,
        energy-knee onset) are logged, counted in the telemetry metrics
        panel, and recorded under ``provenance["phenomena"]`` so they
        travel with the result through serialize/store/API.
        """
        floor_mhz = self._runner.config.pstates.f_min_mhz
        detections = scan_experiment(result, floor_mhz)
        if result.provenance is not None:
            result.provenance["phenomena"] = [
                d.to_dict() for d in detections
            ]

    def run_workload(self, workload: Workload, jobs: int = 1) -> ExperimentResult:
        """Baseline plus the full cap sweep for one workload.

        ``jobs > 1`` fans the (cap, repetition) grid out over a process
        pool; results are bit-identical to the serial sweep because
        every run draws from its own named RNG streams.  The result
        carries a provenance manifest; with ``jobs > 1`` the per-phase
        timings in it cover this process only (workers accumulate their
        own), so attribute parallel sweeps via ``--trace-out`` instead.
        """
        tasks = self._tasks_for([workload])
        _log.info(
            "sweep_start",
            workload=workload.name,
            caps=len(self._caps),
            repetitions=self._reps,
            runs=len(tasks),
            jobs=jobs,
        )
        wall0 = time.perf_counter()
        phases0 = phase_totals()
        with span("sweep", workload=workload.name, runs=len(tasks), jobs=jobs):
            runs = self._run_tasks(tasks, jobs)
            result = self._assemble(workload, runs)
        result.provenance = self._provenance_for(
            workload, _phase_delta(phases0, phase_totals())
        )
        self._annotate_phenomena(result)
        _log.info(
            "sweep_done",
            workload=workload.name,
            runs=len(tasks),
            wall_s=round(time.perf_counter() - wall0, 3),
        )
        return result

    def run_all(self, jobs: int = 1) -> Dict[str, ExperimentResult]:
        """Every workload's sweep, keyed by workload name."""
        if jobs <= 1:
            return {w.name: self.run_workload(w) for w in self._workloads}
        tasks = self._tasks_for(self._workloads)
        _log.info(
            "sweep_start",
            workloads=len(self._workloads),
            runs=len(tasks),
            jobs=jobs,
        )
        phases0 = phase_totals()
        with span("sweep", workloads=len(self._workloads), runs=len(tasks),
                  jobs=jobs):
            runs = self._run_tasks(tasks, jobs)
        # One phase delta spans the whole parallel batch; per-workload
        # attribution needs a trace (`--trace-out`), not the manifest.
        phase_seconds = _phase_delta(phases0, phase_totals())
        per = (len(self._caps) + 1) * self._reps
        results = {}
        for i, w in enumerate(self._workloads):
            result = self._assemble(w, runs[i * per : (i + 1) * per])
            result.provenance = self._provenance_for(w, phase_seconds)
            self._annotate_phenomena(result)
            results[w.name] = result
        return results
