"""The paper's experiment: a cap sweep with repetitions.

Section III: "we studied their performance at nine different power
caps: 160 ..., 155, 150, 145, 140, 135, 130, 125, and 120 Watts.  Each
application, given the same input, was executed five times under each
power cap and the results ... were averaged."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..config import PAPER_POWER_CAPS_W, NodeConfig
from ..errors import SimulationError
from ..rng import DEFAULT_SEED
from ..workloads.base import Workload
from .metrics import AveragedResult, RunResult
from .runner import NodeRunner

__all__ = ["PowerCapExperiment", "ExperimentResult"]


@dataclass
class ExperimentResult:
    """All averaged rows for one workload: baseline + each cap."""

    workload: str
    baseline: AveragedResult
    by_cap: Dict[float, AveragedResult] = field(default_factory=dict)

    def rows(self) -> List[AveragedResult]:
        """Baseline first, then caps from highest to lowest."""
        return [self.baseline] + [
            self.by_cap[c] for c in sorted(self.by_cap, reverse=True)
        ]

    def row(self, cap_w: float | None) -> AveragedResult:
        """One row by cap (None = baseline)."""
        if cap_w is None:
            return self.baseline
        try:
            return self.by_cap[float(cap_w)]
        except KeyError:
            raise SimulationError(f"no result for cap {cap_w}") from None

    def slowdown(self, cap_w: float) -> float:
        """Execution-time ratio vs the baseline at one cap."""
        return self.row(cap_w).execution_s / self.baseline.execution_s


class PowerCapExperiment:
    """Run the full methodology for a set of workloads."""

    def __init__(
        self,
        workloads: Sequence[Workload],
        caps_w: Sequence[float] = PAPER_POWER_CAPS_W,
        repetitions: int = 5,
        seed: int = DEFAULT_SEED,
        config: NodeConfig | None = None,
        slice_accesses: int = 320_000,
    ) -> None:
        if not workloads:
            raise SimulationError("need at least one workload")
        if repetitions < 1:
            raise SimulationError("need at least one repetition")
        self._workloads = list(workloads)
        self._caps = [float(c) for c in caps_w]
        self._reps = int(repetitions)
        self._runner = NodeRunner(
            config=config, seed=seed, slice_accesses=slice_accesses
        )

    @property
    def runner(self) -> NodeRunner:
        """The shared runner (exposes rate caches for inspection)."""
        return self._runner

    @property
    def caps_w(self) -> List[float]:
        """The caps this experiment sweeps."""
        return list(self._caps)

    def _average(
        self, workload: Workload, cap_w: float | None
    ) -> AveragedResult:
        runs: List[RunResult] = [
            self._runner.run(workload, cap_w, rep=r) for r in range(self._reps)
        ]
        return AveragedResult.from_runs(runs)

    def run_workload(self, workload: Workload) -> ExperimentResult:
        """Baseline plus the full cap sweep for one workload."""
        result = ExperimentResult(
            workload=workload.name,
            baseline=self._average(workload, None),
        )
        for cap in self._caps:
            result.by_cap[cap] = self._average(workload, cap)
        return result

    def run_all(self) -> Dict[str, ExperimentResult]:
        """Every workload's sweep, keyed by workload name."""
        return {w.name: self.run_workload(w) for w in self._workloads}
