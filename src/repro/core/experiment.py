"""The paper's experiment: a cap sweep with repetitions.

Section III: "we studied their performance at nine different power
caps: 160 ..., 155, 150, 145, 140, 135, 130, 125, and 120 Watts.  Each
application, given the same input, was executed five times under each
power cap and the results ... were averaged."

Every (workload, cap, repetition) run is independent — all coupling
between runs goes through per-run RNG streams derived by name from the
experiment seed — so the sweep fans out over a process pool with
``jobs > 1`` and reassembles in deterministic task order.  A parallel
sweep is run-for-run bit-identical to the serial one.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import PAPER_POWER_CAPS_W, NodeConfig
from ..errors import ConfigError, SimulationError
from ..rng import DEFAULT_SEED
from ..workloads.base import Workload
from .metrics import AveragedResult, RunResult
from .ratecache import RateCache
from .runner import NodeRunner

__all__ = ["PowerCapExperiment", "ExperimentResult", "validate_caps"]


def validate_caps(
    caps_w: Sequence[float], *, allow_empty: bool = False
) -> List[float]:
    """Validate a cap sweep; returns the caps as floats.

    An empty sweep is rejected unless ``allow_empty`` (a baseline-only
    experiment legitimately sweeps no caps); every cap must be a
    finite positive number of Watts.  Raises
    :class:`~repro.errors.ConfigError` — previously a bad ``--caps``
    list produced an empty sweep (or a hung run) silently.
    """
    try:
        caps = [float(c) for c in caps_w]
    except (TypeError, ValueError):
        raise ConfigError(f"caps must be numbers, got {list(caps_w)!r}")
    if not caps and not allow_empty:
        raise ConfigError(
            "cap sweep is empty — give at least one power cap in Watts"
        )
    for cap in caps:
        if not math.isfinite(cap) or cap <= 0:
            raise ConfigError(
                f"power caps must be finite and > 0 W, got {cap!r}"
            )
    return caps

# One NodeRunner per worker process, created by the pool initializer so
# trace slices and rates are measured once per worker, not once per run.
_WORKER_RUNNER: NodeRunner | None = None


def _pool_init(
    config: NodeConfig | None,
    seed: int,
    slice_accesses: int,
    rate_cache_path: "str | None",
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = NodeRunner(
        config=config,
        seed=seed,
        slice_accesses=slice_accesses,
        rate_cache=rate_cache_path,
    )


def _pool_run(task: "Tuple[Workload, Optional[float], int]") -> RunResult:
    workload, cap_w, rep = task
    assert _WORKER_RUNNER is not None
    return _WORKER_RUNNER.run(workload, cap_w, rep=rep)


@dataclass
class ExperimentResult:
    """All averaged rows for one workload: baseline + each cap."""

    workload: str
    baseline: AveragedResult
    by_cap: Dict[float, AveragedResult] = field(default_factory=dict)

    def rows(self) -> List[AveragedResult]:
        """Baseline first, then caps from highest to lowest."""
        return [self.baseline] + [
            self.by_cap[c] for c in sorted(self.by_cap, reverse=True)
        ]

    def row(self, cap_w: float | None) -> AveragedResult:
        """One row by cap (None = baseline)."""
        if cap_w is None:
            return self.baseline
        try:
            return self.by_cap[float(cap_w)]
        except KeyError:
            raise SimulationError(f"no result for cap {cap_w}") from None

    def slowdown(self, cap_w: float) -> float:
        """Execution-time ratio vs the baseline at one cap."""
        return self.row(cap_w).execution_s / self.baseline.execution_s


class PowerCapExperiment:
    """Run the full methodology for a set of workloads."""

    def __init__(
        self,
        workloads: Sequence[Workload],
        caps_w: Sequence[float] = PAPER_POWER_CAPS_W,
        repetitions: int = 5,
        seed: int = DEFAULT_SEED,
        config: NodeConfig | None = None,
        slice_accesses: int = 320_000,
        rate_cache: "RateCache | str | os.PathLike | None" = None,
    ) -> None:
        if not workloads:
            raise SimulationError("need at least one workload")
        if repetitions < 1:
            raise SimulationError("need at least one repetition")
        self._workloads = list(workloads)
        self._caps = validate_caps(caps_w, allow_empty=True)
        self._reps = int(repetitions)
        self._config = config
        self._seed = int(seed)
        self._slice_accesses = int(slice_accesses)
        if isinstance(rate_cache, RateCache):
            self._rate_cache_path = str(rate_cache.path)
        elif rate_cache is not None:
            self._rate_cache_path = str(rate_cache)
        else:
            self._rate_cache_path = None
        self._runner = NodeRunner(
            config=config,
            seed=seed,
            slice_accesses=slice_accesses,
            rate_cache=rate_cache,
        )

    @property
    def runner(self) -> NodeRunner:
        """The shared runner (exposes rate caches for inspection)."""
        return self._runner

    @property
    def caps_w(self) -> List[float]:
        """The caps this experiment sweeps."""
        return list(self._caps)

    def _average(
        self, workload: Workload, cap_w: float | None
    ) -> AveragedResult:
        runs: List[RunResult] = [
            self._runner.run(workload, cap_w, rep=r) for r in range(self._reps)
        ]
        return AveragedResult.from_runs(runs)

    def _tasks_for(
        self, workloads: Sequence[Workload]
    ) -> List[Tuple[Workload, Optional[float], int]]:
        return [
            (w, cap, rep)
            for w in workloads
            for cap in [None, *self._caps]
            for rep in range(self._reps)
        ]

    def _run_tasks(
        self,
        tasks: Sequence[Tuple[Workload, Optional[float], int]],
        jobs: int,
    ) -> List[RunResult]:
        if jobs <= 1:
            return [
                self._runner.run(w, cap, rep=rep) for (w, cap, rep) in tasks
            ]
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_pool_init,
            initargs=(
                self._config,
                self._seed,
                self._slice_accesses,
                self._rate_cache_path,
            ),
        ) as pool:
            # map() preserves task order, so reassembly below does not
            # depend on completion order — a parallel sweep yields the
            # same result list as the serial loop, run for run.
            return list(pool.map(_pool_run, tasks))

    def _assemble(
        self, workload: Workload, runs: List[RunResult]
    ) -> ExperimentResult:
        reps = self._reps
        result = ExperimentResult(
            workload=workload.name,
            baseline=AveragedResult.from_runs(runs[:reps]),
        )
        for i, cap in enumerate(self._caps):
            chunk = runs[(i + 1) * reps : (i + 2) * reps]
            result.by_cap[cap] = AveragedResult.from_runs(chunk)
        return result

    def run_workload(self, workload: Workload, jobs: int = 1) -> ExperimentResult:
        """Baseline plus the full cap sweep for one workload.

        ``jobs > 1`` fans the (cap, repetition) grid out over a process
        pool; results are bit-identical to the serial sweep because
        every run draws from its own named RNG streams.
        """
        runs = self._run_tasks(self._tasks_for([workload]), jobs)
        return self._assemble(workload, runs)

    def run_all(self, jobs: int = 1) -> Dict[str, ExperimentResult]:
        """Every workload's sweep, keyed by workload name."""
        if jobs <= 1:
            return {w.name: self.run_workload(w) for w in self._workloads}
        runs = self._run_tasks(self._tasks_for(self._workloads), jobs)
        per = (len(self._caps) + 1) * self._reps
        return {
            w.name: self._assemble(w, runs[i * per : (i + 1) * per])
            for i, w in enumerate(self._workloads)
        }
