"""Render the paper's tables and figure series.

- :func:`render_table1` — Table I: baseline power and execution time;
- :func:`render_table2` — Table II: the full sweep with percent diffs;
- :func:`figure1_series` / :func:`figure2_series` — the normalised
  series behind Figures 1 and 2 (SIRE/RSM and Stereo Matching);
- :func:`render_stride_figure` — text rendering of a stride sweep
  (Figures 3 and 4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..perf.events import PapiEvent
from ..units import format_duration
from ..workloads.stride import StrideResult
from .experiment import ExperimentResult
from .normalize import normalize_series

__all__ = [
    "render_table1",
    "render_table2",
    "figure1_series",
    "figure2_series",
    "render_stride_figure",
]


def render_table1(results: Sequence[ExperimentResult]) -> str:
    """Table I: baseline power consumption and execution time."""
    lines = [
        "Table I: baseline power consumption and execution time",
        f"{'Code':<16} {'Avg node power (W)':>20} {'Execution time':>16}",
    ]
    for result in results:
        b = result.baseline
        lines.append(
            f"{result.workload:<16} {b.avg_power_w:>20.1f} "
            f"{format_duration(b.execution_s):>16}"
        )
    return "\n".join(lines)


_TABLE2_COUNTERS = (
    ("L1 Misses", PapiEvent.PAPI_L1_TCM),
    ("L2 Misses", PapiEvent.PAPI_L2_TCM),
    ("L3 Misses", PapiEvent.PAPI_L3_TCM),
    ("TLB Data", PapiEvent.PAPI_TLB_DM),
    ("TLB Instr", PapiEvent.PAPI_TLB_IM),
)


def render_table2(result: ExperimentResult) -> str:
    """Table II for one workload: all rows with percent diffs."""
    base = result.baseline
    header = (
        f"{'Cap':>9} {'Power(W)':>9} {'%':>6} {'Energy(J)':>13} {'%':>7} "
        f"{'Freq(MHz)':>10} {'%':>5} {'Time':>9} {'%':>7}"
    )
    lines = [f"Table II rows for {result.workload}", header]
    counter_header = "".join(
        f"{name:>16} {'%':>7}" for name, _ in _TABLE2_COUNTERS
    )
    lines_counters = [f"{'Cap':>9}" + counter_header]
    for row in result.rows():
        d = row.diff_vs(base)
        lines.append(
            f"{row.cap_label:>9} {row.avg_power_w:>9.1f} {d['power']:>6.0f} "
            f"{row.energy_j:>13,.1f} {d['energy']:>7.0f} "
            f"{row.avg_freq_mhz:>10.0f} {d['frequency']:>5.0f} "
            f"{format_duration(row.execution_s):>9} {d['time']:>7.0f}"
        )
        counter_cells = []
        for _, event in _TABLE2_COUNTERS:
            counter_cells.append(
                f"{row.counters[event]:>16,.0f} {d[event.value]:>7.0f}"
            )
        lines_counters.append(f"{row.cap_label:>9}" + "".join(counter_cells))
    return "\n".join(lines + [""] + lines_counters)


def _figure_series(
    result: ExperimentResult, events: Sequence[PapiEvent]
) -> Dict[str, np.ndarray]:
    """Normalised series over [baseline, caps high->low]."""
    rows = result.rows()
    series: Dict[str, List[float]] = {
        "labels": [r.cap_label for r in rows],  # type: ignore[dict-item]
    }
    out: Dict[str, np.ndarray] = {}
    out["labels"] = np.array([r.cap_label for r in rows])
    out["frequency"] = normalize_series([r.avg_freq_mhz for r in rows])
    out["time"] = normalize_series([r.execution_s for r in rows])
    out["power"] = normalize_series([r.avg_power_w for r in rows])
    out["energy"] = normalize_series([r.energy_j for r in rows])
    for event in events:
        out[event.value] = normalize_series([r.counters[event] for r in rows])
    return out


def figure1_series(sire_result: ExperimentResult) -> Dict[str, np.ndarray]:
    """Figure 1: SIRE/RSM normalised series.

    Series: iTLB misses, frequency, time, power, energy.
    """
    return _figure_series(sire_result, [PapiEvent.PAPI_TLB_IM])


def figure2_series(stereo_result: ExperimentResult) -> Dict[str, np.ndarray]:
    """Figure 2: Stereo Matching normalised series.

    Series: L2 and L3 miss rates, iTLB misses, frequency, time, power,
    energy.
    """
    return _figure_series(
        stereo_result,
        [PapiEvent.PAPI_L2_TCM, PapiEvent.PAPI_L3_TCM, PapiEvent.PAPI_TLB_IM],
    )


def render_stride_figure(result: StrideResult, title: str) -> str:
    """Text rendering of a stride sweep: one row per array size."""
    lines = [title]
    header = f"{'size':>8} " + " ".join(
        f"{_fmt_bytes(s):>8}" for s in result.strides
    )
    lines.append(header)
    for i, size in enumerate(result.sizes):
        cells = []
        for j in range(len(result.strides)):
            v = result.access_time_ns[i, j]
            cells.append(f"{v:>8.1f}" if np.isfinite(v) else f"{'-':>8}")
        lines.append(f"{_fmt_bytes(size):>8} " + " ".join(cells))
    return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}M"
    if n >= 1 << 10 and n % (1 << 10) == 0:
        return f"{n >> 10}K"
    return f"{n}B"
