"""Amenability-to-power-capping characterisation.

The paper's closing future-work item: "we would like to develop a
methodology for characterizing applications with regard to their
amenability to power capped execution."  This module implements that
methodology over sweep results:

- find the **knee**: the highest cap at which slowdown first exceeds a
  tolerance (the paper uses 25 % as its working bound: "the increase in
  execution time for SIRE/RSM is bounded by 25% all the way down to a
  power cap of 140 Watts ... for Stereo Matching ... down to ... 145");
- report the **usable cap range** for a given tolerable delay;
- compute an **amenability score**: how much of the cap range between
  idle and uncapped draw stays within tolerance (1.0 = fully cappable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import SimulationError
from .experiment import ExperimentResult

__all__ = ["AmenabilityReport", "characterize_amenability"]


@dataclass(frozen=True)
class AmenabilityReport:
    """Outcome of the characterisation for one workload."""

    workload: str
    tolerance_slowdown: float
    #: Lowest studied cap still within tolerance (None if none are).
    knee_cap_w: Optional[float]
    #: Caps within tolerance, highest to lowest.
    usable_caps_w: Tuple[float, ...]
    #: (cap, slowdown) pairs, highest cap first.
    slowdown_curve: Tuple[Tuple[float, float], ...]
    #: Fraction of the studied cap range that stays within tolerance.
    amenability_score: float
    #: Watts of headroom the knee gives below the uncapped draw.
    headroom_w: float

    def tolerates(self, cap_w: float) -> bool:
        """Whether a cap is within the tolerated slowdown."""
        return cap_w in self.usable_caps_w


def characterize_amenability(
    result: ExperimentResult,
    tolerance_slowdown: float = 1.25,
) -> AmenabilityReport:
    """Characterise one workload's amenability from its sweep result.

    ``tolerance_slowdown`` is the acceptable execution-time ratio vs
    baseline (1.25 = the paper's 25 % bound).
    """
    if tolerance_slowdown <= 1.0:
        raise SimulationError("tolerance must exceed 1.0 (no slowdown at all)")
    caps = sorted(result.by_cap, reverse=True)
    if not caps:
        raise SimulationError("sweep has no capped rows")
    curve: List[Tuple[float, float]] = [
        (cap, result.slowdown(cap)) for cap in caps
    ]
    usable: List[float] = []
    for cap, slowdown in curve:
        if slowdown <= tolerance_slowdown:
            usable.append(cap)
        else:
            # Slowdown curves are monotone in the cap for a sane
            # controller; stop at the first violation so an isolated
            # noisy dip below tolerance cannot extend the range.
            break
    knee = usable[-1] if usable else None
    score = len(usable) / len(caps)
    headroom = (
        result.baseline.avg_power_w - knee if knee is not None else 0.0
    )
    return AmenabilityReport(
        workload=result.workload,
        tolerance_slowdown=tolerance_slowdown,
        knee_cap_w=knee,
        usable_caps_w=tuple(usable),
        slowdown_curve=tuple(curve),
        amenability_score=score,
        headroom_w=max(0.0, headroom),
    )
