"""Execute a workload on the simulated node under a power cap.

The runner is a discrete-time coupling of every substrate:

- per control quantum, the BMC controller reads its (noisy) power
  sensor and issues an :class:`~repro.bmc.controller.OperatingCommand`
  (P-state dither pair, duty factor, escalation gating);
- the workload's steady-state per-instruction event rates under the
  commanded gating come from the trace-driven cache/TLB simulators
  (measured once per distinct gating and cached — miss behaviour does
  not depend on frequency or duty);
- the CPI-stack timing model converts rates + level costs + frequency +
  duty into instructions retired this quantum;
- the power model produces the quantum's true node power (dither-
  blended across the two P-states), which feeds the thermal model, the
  wall meter, the energy integral, and the next control decision.

The run ends when the workload's committed-instruction budget retires.
Counters accumulate per gating segment, so Table II's miss columns
reflect exactly the mix of configurations the run actually visited.
"""

from __future__ import annotations

from typing import Dict, Tuple

import os
import time

from ..arch.node import Node
from ..arch.core import CoreTimingModel
from ..config import NodeConfig, sandy_bridge_config
from ..bmc.controller import CapController
from ..bmc.sensors import PowerSensor
from ..errors import SimulationError
from ..mem.fastsim import TraceEngine
from ..mem.hierarchy import AccessRates, MemoryHierarchy
from ..mem.latency import AccessCosts, stall_ns_per_instruction
from ..mem.reconfig import GatingState, ReconfigEngine
from ..obs.logging import get_logger
from ..obs.metrics import engine_metrics, telemetry_metrics
from ..obs.timeseries import TelemetryConfig, TelemetrySampler
from ..obs.tracing import current_collector, span
from ..perf.counters import CounterBank
from ..perf.events import PapiEvent
from ..power.energy import EnergyAccumulator
from ..power.meter import WattsUpMeter
from ..rng import DEFAULT_SEED, RngStreams
from ..trace.events import TraceSlice
from ..workloads.base import Workload
from .blockstep import BlockStepKernel
from .metrics import RunResult
from .ratecache import RateCache, rate_key

__all__ = ["NodeRunner", "RunState", "export_counter_tracks"]

_log = get_logger("core.runner")


def export_counter_tracks(
    result: RunResult, wall0: float, wall_s: float
) -> None:
    """Ride a run's telemetry channels into the active trace collector.

    Each sample's *simulated* time maps proportionally onto the run's
    wall-clock interval, so counter curves line up with the run's span
    in chrome://tracing / Perfetto.  No-op without a collector or a
    timeline.  Shared by the scalar run loop and the batch sweep
    engine's per-run finish path.
    """
    collector = current_collector()
    if collector is None or result.timeline is None:
        return
    scale = wall_s / result.execution_s if result.execution_s else 0.0
    for channel, t_s, value in result.timeline.counter_samples(
        max_points=48
    ):
        collector.add_counter(
            f"telemetry:{channel}",
            wall0 + t_s * scale,
            {channel: value},
        )

#: Consecutive identical commands before the long-step / fast-forward
#: machinery may engage (matches the historical adaptive threshold).
_STABLE_QUANTA = 40
#: Thermal convergence (deg C from steady state) required before the
#: closed-form fast-forward of a *pinned* (non-dithering) command; the
#: residual power drift is then < 0.06 W, under the meter's quantisation.
_FF_TEMP_EPS_PINNED_C = 0.3
#: Much tighter bound for dithering commands, whose alpha tracks the
#: temperature through the leakage term.
_FF_TEMP_EPS_DITHER_C = 0.05


class NodeRunner:
    """Runs workloads under caps; reusable across runs (rate caching)."""

    def __init__(
        self,
        config: NodeConfig | None = None,
        seed: int = DEFAULT_SEED,
        slice_accesses: int = 320_000,
        record_series: bool = False,
        max_sim_seconds: float = 250_000.0,
        fast_engine: bool = True,
        fast_forward: bool = True,
        rate_cache: "RateCache | str | os.PathLike | None" = None,
        telemetry: "TelemetryConfig | bool | None" = None,
        block_step: bool | None = None,
    ) -> None:
        self._config = config or sandy_bridge_config()
        self._seed = int(seed)
        self._streams = RngStreams(seed)
        self._slice_accesses = int(slice_accesses)
        self._record_series = record_series
        self._max_sim_seconds = float(max_sim_seconds)
        self._fast_engine = bool(fast_engine)
        self._fast_forward = bool(fast_forward)
        if rate_cache is not None and not isinstance(rate_cache, RateCache):
            rate_cache = RateCache(rate_cache)
        self._rate_cache: RateCache | None = rate_cache
        self._telemetry = TelemetryConfig.resolve(telemetry)
        # Block-stepped stable segments (bit-identical; see blockstep.py).
        # Default on; ``False`` / ``REPRO_BLOCK_STEP=0`` restores the
        # pure scalar loop.
        if block_step is None:
            env = os.environ.get("REPRO_BLOCK_STEP", "").strip().lower()
            block_step = env not in ("0", "false", "no", "off")
        self._block_step = bool(block_step)
        self._slices: Dict[str, TraceSlice] = {}
        self._engines: Dict[str, TraceEngine] = {}
        self._rates: Dict[Tuple[str, tuple], AccessRates] = {}

    @property
    def config(self) -> NodeConfig:
        """The node configuration all runs use."""
        return self._config

    @property
    def rate_cache(self) -> "RateCache | None":
        """The persistent rate cache (None when disabled)."""
        return self._rate_cache

    @property
    def telemetry(self) -> TelemetryConfig:
        """The in-run telemetry sampling configuration."""
        return self._telemetry

    @property
    def block_step(self) -> bool:
        """Whether stable segments run through the block-step kernel."""
        return self._block_step

    # ------------------------------------------------------------------
    # Rate measurement (trace-driven cache simulation)
    # ------------------------------------------------------------------

    def _slice_for(self, workload: Workload) -> TraceSlice:
        if workload.name not in self._slices:
            rng = self._streams.fresh(f"slice:{workload.name}")
            self._slices[workload.name] = workload.build_slice(
                rng, self._slice_accesses
            )
        return self._slices[workload.name]

    def rates_for(self, workload: Workload, gating: GatingState) -> AccessRates:
        """Steady-state per-instruction event rates under a gating.

        Measured by pushing the workload's representative slice through
        a fresh hierarchy configured to ``gating`` and discarding the
        warmup region.  Cached per (workload, miss-relevant config).
        """
        key = (workload.name, gating.config_key())
        if key not in self._rates:
            cache_key = None
            if self._rate_cache is not None:
                cache_key = rate_key(
                    self._config,
                    workload,
                    self._seed,
                    self._slice_accesses,
                    gating,
                )
                cached = self._rate_cache.get(cache_key)
                if cached is not None:
                    self._rates[key] = cached
                    _log.debug(
                        "rates_cache_hit",
                        workload=workload.name,
                        gating=str(gating.config_key()),
                    )
                    return cached
            with span(
                "simulate_trace",
                workload=workload.name,
                gating=str(gating.config_key()),
            ):
                sl = self._slice_for(workload)
                if self._fast_engine:
                    engine = self._engines.get(workload.name)
                    if engine is None:
                        engine = TraceEngine(self._config, sl)
                        self._engines[workload.name] = engine
                    counts = engine.counts(gating)
                else:
                    hierarchy = MemoryHierarchy(self._config)
                    ReconfigEngine(self._config).apply(hierarchy, gating)
                    d_warm, d_meas, i_warm, i_meas = sl.split_warmup()
                    if len(sl.preload_addresses):
                        hierarchy.simulate_data_trace(sl.preload_addresses)
                    hierarchy.simulate_slice(d_warm, i_warm)
                    counts = hierarchy.simulate_slice(d_meas, i_meas)
            engine_metrics().traces_simulated.inc()
            _log.debug(
                "trace_simulated",
                workload=workload.name,
                gating=str(gating.config_key()),
                fast_engine=self._fast_engine,
            )
            self._rates[key] = AccessRates.from_counts(
                counts, sl.measured_instructions
            )
            if self._rate_cache is not None:
                # Batched: put() marks the cache dirty; run()/the sweep
                # flushes once at the boundary instead of rewriting the
                # JSON file after every measurement.
                self._rate_cache.put(cache_key, self._rates[key])
        return self._rates[key]

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        cap_w: float | None = None,
        rep: int = 0,
    ) -> RunResult:
        """Execute one full run; repetitions differ in their noise draws.

        Instrumented: the whole run executes inside a ``run`` span, and
        run counts, control-quantum counts, fast-forward activations,
        and wall-clock land in :func:`repro.obs.metrics.engine_metrics`.
        """
        wall0 = time.perf_counter()
        with span("run", workload=workload.name, cap_w=cap_w, rep=rep):
            result, quanta, fast_forwarded, block_steps, block_quanta = (
                self._run(workload, cap_w, rep)
            )
        if self._rate_cache is not None:
            self._rate_cache.save()
        wall_s = time.perf_counter() - wall0
        export_counter_tracks(result, wall0, wall_s)
        metrics = engine_metrics()
        metrics.runs.inc()
        metrics.quanta.inc(quanta)
        if fast_forwarded:
            metrics.fast_forwards.inc()
        if block_steps:
            metrics.block_steps.inc(block_steps)
            metrics.block_quanta.inc(block_quanta)
        metrics.run_seconds.observe(wall_s)
        _log.info(
            "run_done",
            workload=workload.name,
            cap_w=cap_w,
            rep=rep,
            sim_s=round(result.execution_s, 6),
            wall_s=round(wall_s, 6),
            avg_power_w=round(result.avg_power_w, 3),
            avg_freq_mhz=round(result.avg_freq_mhz, 1),
            quanta=quanta,
            fast_forwarded=fast_forwarded,
            block_steps=block_steps,
            block_quanta=block_quanta,
        )
        return result

    def _run(
        self,
        workload: Workload,
        cap_w: float | None,
        rep: int,
    ) -> "Tuple[RunResult, int, bool, int, int]":
        state = RunState(self, workload, cap_w, rep)
        while not state.finished:
            state.try_kernel()
            state.step_quantum()
        return state.finish()


class RunState:
    """All live state of one in-flight run, steppable from outside.

    The historical ``NodeRunner._run`` held its entire loop in local
    variables; this class is a verbatim move of that code — the setup
    section into ``__init__``, the kernel gate into :meth:`try_kernel`,
    one scalar control quantum into :meth:`step_quantum`, and the result
    assembly into :meth:`finish` — so results stay bit-identical.  The
    split exists so an external driver can interleave *many* runs:
    :mod:`repro.core.batchstep` parks runs at batch-eligible points
    (pinned command, long-step stable, fresh telemetry bucket) and
    advances them as one numpy batch with one axis per run.
    """

    def __init__(
        self,
        runner: "NodeRunner",
        workload: Workload,
        cap_w: float | None,
        rep: int,
    ) -> None:
        self.runner = runner
        self.workload = workload
        self.cap_w = cap_w
        self.rep = rep
        #: Wall-clock start, so external drivers (the batch engine) can
        #: anchor this run's telemetry counter tracks in the trace.
        self.wall0 = time.perf_counter()
        cfg = runner._config
        self.cfg = cfg
        tag = f"{workload.name}:cap={cap_w}:rep={rep}"
        self.tag = tag
        node = Node(cfg)
        self.node = node
        self.sensor = PowerSensor(runner._streams.fresh(f"bmc-sensor:{tag}"))
        self.controller = CapController(node, self.sensor)
        self.controller.set_cap(cap_w)
        self.meter = WattsUpMeter(
            cfg.meter, runner._streams.fresh(f"meter:{tag}")
        )
        self.energy = EnergyAccumulator()
        self.core = CoreTimingModel(cfg.base_cpi)
        self.quantum = cfg.bmc.control_quantum_s

        self.total_instr = workload.spec.total_instructions
        self.done = 0.0
        self.t = 0.0
        self.freq_time = 0.0
        self.cycles = 0.0
        self.max_escalation = 0
        self.min_duty = 1.0
        # Instructions executed per gating config, for counter scaling.
        self.instr_by_gating: Dict[tuple, float] = {}
        self.gating_by_key: Dict[tuple, GatingState] = {}
        self.series: list = []
        # In-run telemetry: pure observation (no RNG, no model state), so
        # results are bit-identical with the sampler on or off.  A fast-
        # forwarded remainder arrives as one wide sample — timelines stay
        # gap-free and the power channel's integral matches the energy path.
        self.sampler = (
            TelemetrySampler(runner._telemetry)
            if runner._telemetry.enabled
            else None
        )
        self.mpki_by_gating: Dict[tuple, tuple] = {}

        # Initial condition: one quantum at P0, unthrottled, ungated.
        self.gating = GatingState.ungated()
        self.rates = runner.rates_for(workload, self.gating)
        self.power = node.power_w(dram_traffic_bps=0.0)
        self.model = node.power_model
        self.thermal = node.thermal
        self.record_series = runner._record_series
        self.fast_forward = runner._fast_forward
        # Adaptive stepping: once the controller's command has been
        # stable for a while (e.g. duty pinned at its minimum during a
        # 120 W run), quanta are lengthened 10x — the dynamics are in
        # steady state and per-quantum resolution buys nothing.  With
        # ``fast_forward`` the long-step mode is itself superseded: once
        # the command is provably frozen (controller quiescent) and the
        # thermal state has converged, the whole remaining stable
        # segment collapses into a single closed-form step.
        self.stable_quanta = 0
        self.prev_cmd_key: "tuple | None" = None
        self.quanta = 0
        self.fast_forwarded = False
        # Per-gating timing inputs (rates and the CPI-stack stall term
        # are frequency/duty independent), and one-slot memos for the
        # derived per-quantum quantities — a stable command makes every
        # iteration of the hot loop a pure dictionary-free replay.
        self.gate_cache: Dict[tuple, tuple] = {}
        self.spi_sig = None
        self.spi = self.instr_rate = self.traffic = 0.0
        # Constants of the power decomposition (DESIGN.md §5) hoisted so
        # the per-quantum blend needs only the two commanded P-states.
        # Arithmetic below follows PowerBreakdown.total_w term by term,
        # in the same association order, so the blend is bit-identical
        # to power_of_pstate with busy_cores=1 / activity=1.
        pcfg = cfg.power
        self.platform_plus_bg = pcfg.platform_floor_w + cfg.dram.background_w
        self.uncore_w = pcfg.uncore_active_w
        self.ceff = pcfg.core_ceff_f
        self.act = 1.0 * pcfg.busy_activity
        self.halt_residual = pcfg.halt_residual_fraction
        self.bw_gbs = cfg.dram.bandwidth_gbs
        self.w_per_gbs = cfg.dram.active_w_per_gbs
        self.pw_sig = None
        self.dyn_fast = self.gate_fast = 0.0
        self.dyn_slow = self.gate_slow = self.traffic_w = 0.0
        # Block-step kernel: retires stretches of stable command in
        # bulk, bit-identically (see blockstep.py).  At least one scalar
        # quantum always executes between kernel calls — the entry gate
        # in ``try_kernel`` only opens at ``quanta >= block_after`` and
        # every kernel attempt pushes ``block_after`` past the current
        # count — so the one-slot memos (spi/traffic/traffic_w) the
        # kernel seeds from are always valid for ``prev_cmd_key``.
        self.kernel = None
        if runner._block_step:
            self.kernel = BlockStepKernel(
                controller=self.controller,
                sensor=self.sensor,
                meter=self.meter,
                energy=self.energy,
                thermal=self.thermal,
                model=self.model,
                pstates=node.pstates,
                cfg=cfg,
                sampler=self.sampler,
                series=self.series if self.record_series else None,
                total_instr=self.total_instr,
                max_sim_seconds=runner._max_sim_seconds,
                fast_forward=self.fast_forward,
                stable_threshold=_STABLE_QUANTA,
                eps_pinned=_FF_TEMP_EPS_PINNED_C,
                eps_dither=_FF_TEMP_EPS_DITHER_C,
            )
        self.block_after = 1
        self.block_steps = 0
        self.block_quanta = 0
        self.batch_steps = 0
        self.batch_quanta = 0
        self.key = None
        self.stall_ns = 0.0
        self.freq = 0.0
        self.max_sim_seconds = runner._max_sim_seconds

    @property
    def finished(self) -> bool:
        """Whether the instruction budget has retired."""
        return not self.done < self.total_instr

    def try_kernel(self, stop_batchable: bool = False) -> None:
        """The block-step kernel gate (one iteration's worth).

        With ``stop_batchable`` the kernel additionally exits at the
        first batch-eligible committed state (see
        :meth:`batch_eligible`), leaving the stable pinned tail for the
        multi-run batch engine instead of consuming it per-run.
        """
        kernel = self.kernel
        if kernel is None or self.quanta < self.block_after:
            return
        adv = kernel.advance(
            power=self.power,
            t=self.t,
            done=self.done,
            freq_time=self.freq_time,
            cycles=self.cycles,
            stable_quanta=self.stable_quanta,
            prev_cmd_key=self.prev_cmd_key,
            stall_ns=self.stall_ns,
            l3_misses=self.rates.l3_misses,
            freq=self.freq,
            spi=self.spi,
            traffic=self.traffic,
            traffic_w=self.traffic_w,
            mpki=self.mpki_by_gating.get(self.key),
            instr_seg=self.instr_by_gating.get(self.key, 0.0),
            stop_batchable=stop_batchable,
        )
        if kernel.disabled:
            self.kernel = None
        elif adv is not None:
            (bn, self.power, self.t, self.done, self.freq_time,
             self.cycles, self.stable_quanta, fi, si, ra, bduty,
             seg) = adv
            self.quanta += bn
            self.block_steps += 1
            self.block_quanta += bn
            self.prev_cmd_key = (
                fi, si, ra, bduty, self.prev_cmd_key[4]
            )
            # Duty is non-increasing inside a block (restores
            # are boundaries), so the committed duty is the
            # block's minimum.
            if bduty < self.min_duty:
                self.min_duty = bduty
            self.instr_by_gating[self.key] = seg
            # The command's frequency may have drifted in-block
            # (dither alpha tracks leakage): the boundary
            # quantum recomputes the memoized quantities.
            self.spi_sig = None
            self.pw_sig = None
        self.block_after = self.quanta + 1

    def step_quantum(self) -> None:
        """One scalar control quantum — the historical loop body."""
        controller = self.controller
        cfg = self.cfg
        self.quanta += 1
        power = self.power
        cmd = controller.update(power, activity=1.0, traffic_bps=0.0)
        cmd_key = (
            cmd.pstate_fast.index,
            cmd.pstate_slow.index,
            round(cmd.alpha, 2),
            cmd.duty,
            cmd.escalation_level,
        )
        self.stable_quanta = (
            self.stable_quanta + 1 if cmd_key == self.prev_cmd_key else 0
        )
        self.prev_cmd_key = cmd_key
        step_s = self.quantum * (
            10.0 if self.stable_quanta > _STABLE_QUANTA else 1.0
        )
        if cmd.gating != self.gating:
            self.gating = cmd.gating
        key = self.gating.config_key()
        self.key = key
        cached = self.gate_cache.get(key)
        if cached is None:
            seg_rates = self.runner.rates_for(self.workload, self.gating)
            costs = AccessCosts.from_config(cfg, self.gating)
            cached = (seg_rates, stall_ns_per_instruction(seg_rates, costs))
            self.gate_cache[key] = cached
        rates, stall_ns = cached
        self.rates = rates
        self.stall_ns = stall_ns
        freq = cmd.effective_freq_hz
        self.freq = freq
        sig = (key, freq, cmd.duty)
        if sig != self.spi_sig:
            self.spi = self.core.seconds_per_instruction(
                freq, stall_ns, cmd.duty
            )
            self.instr_rate = 1.0 / self.spi
            self.traffic = rates.l3_misses * self.instr_rate * cfg.l3.line_bytes
            self.spi_sig = sig
        spi = self.spi

        # True node power this quantum: dither-blended P-states.
        # Only leakage depends on the (moving) temperature; the rest
        # of each state's power changes when the command or traffic
        # does, so it is memoized on that signature.
        thermal = self.thermal
        temp = thermal.temperature_c
        sig = (cmd_key[0], cmd_key[1], cmd.duty, cmd.gating_saving_w, self.traffic)
        if sig != self.pw_sig:
            halt_residual = self.halt_residual
            duty_scale = halt_residual + (1.0 - halt_residual) * cmd.duty
            self.traffic_w = (
                min(self.traffic / 1e9, self.bw_gbs) * self.w_per_gbs
            )
            saving = cmd.gating_saving_w
            ceff = self.ceff
            act = self.act
            uncore_w = self.uncore_w
            st = cmd.pstate_fast
            self.dyn_fast = (
                ceff * st.freq_hz * st.voltage_v**2 * act
            ) * duty_scale
            self.gate_fast = min(saving, uncore_w + self.dyn_fast)
            st = cmd.pstate_slow
            self.dyn_slow = (
                ceff * st.freq_hz * st.voltage_v**2 * act
            ) * duty_scale
            self.gate_slow = min(saving, uncore_w + self.dyn_slow)
            self.pw_sig = sig
        base = self.platform_plus_bg + self.model.leakage_w(temp) + self.uncore_w
        traffic_w = self.traffic_w
        power = cmd.alpha * (
            base + self.dyn_fast + traffic_w - self.gate_fast
        ) + (1.0 - cmd.alpha) * (
            base + self.dyn_slow + traffic_w - self.gate_slow
        )
        self.power = power

        total_instr = self.total_instr
        remaining_s = (total_instr - self.done) * spi
        if (
            self.fast_forward
            and self.stable_quanta > _STABLE_QUANTA
            and remaining_s > step_s
            and self.t + remaining_s <= self.max_sim_seconds
            and abs(temp - thermal.steady_state_c(power))
            <= (
                _FF_TEMP_EPS_PINNED_C
                if cmd.pstate_fast.index == cmd.pstate_slow.index
                else _FF_TEMP_EPS_DITHER_C
            )
            and controller.is_quiescent(power)
        ):
            # Steady-state fast-forward: the command is frozen (no
            # plausible sensor reading can move an actuator) and the
            # node is thermally converged, so every remaining
            # quantum would replay this one.  Retire the rest of the
            # instruction budget in a single exact step.
            dt = remaining_s
            instr_now = total_instr - self.done
            self.done = total_instr
            controller.advance_time(dt - self.quantum)
            self.fast_forwarded = True
            _log.debug(
                "fast_forward",
                workload=self.workload.name,
                cap_w=self.cap_w,
                skipped_s=round(dt, 3),
                at_quantum=self.quanta,
            )
        else:
            dt = min(step_s, remaining_s)
            instr_now = dt / spi
            self.done += instr_now
        self.instr_by_gating[key] = (
            self.instr_by_gating.get(key, 0.0) + instr_now
        )
        self.gating_by_key[key] = self.gating
        self.freq_time += freq * dt
        self.cycles += freq * dt * cmd.duty
        self.max_escalation = max(self.max_escalation, cmd.escalation_level)
        self.min_duty = min(self.min_duty, cmd.duty)

        sampler = self.sampler
        if sampler is not None:
            mpki = self.mpki_by_gating.get(key)
            if mpki is None:
                mpki = self.mpki_by_gating[key] = (
                    (rates.l1d_misses + rates.l1i_misses) * 1e3,
                    rates.l2_misses * 1e3,
                    rates.l3_misses * 1e3,
                    rates.dtlb_misses * 1e3,
                    rates.itlb_misses * 1e3,
                )
            sampler.record(
                dt,
                {
                    "power_w": power,
                    "freq_mhz": freq / 1e6,
                    "pstate": cmd.alpha * cmd.pstate_fast.index
                    + (1.0 - cmd.alpha) * cmd.pstate_slow.index,
                    "duty": cmd.duty,
                    # Duty modulation forces the core out of C0 for
                    # the halted fraction of each quantum.
                    "c0_frac": cmd.duty,
                    "temp_c": temp,
                    "l1_mpki": mpki[0],
                    "l2_mpki": mpki[1],
                    "l3_mpki": mpki[2],
                    "dtlb_mpki": mpki[3],
                    "itlb_mpki": mpki[4],
                },
            )
        thermal.step(power, dt)
        self.meter.advance_const(self.t, dt, power)
        self.energy.add(power, dt)
        self.t += dt
        if self.record_series:
            self.series.append((self.t, power, freq / 1e6, cmd.duty))
        if self.t > self.max_sim_seconds:
            raise SimulationError(
                f"run exceeded {self.max_sim_seconds:.0f} simulated "
                f"seconds ({self.done:.3g}/{total_instr:.3g} instructions) — "
                "check the cap against the node's achievable floor"
            )

    def batch_eligible(self) -> bool:
        """Whether the multi-run batch engine can take over right now.

        True only at a state from which the per-run kernel's next block
        would be a *pinned long-step march*: the committed command is
        non-dithering (``fi == si``, rounded alpha exactly 1.0), the
        stability counter has the 10x step engaged, the controller's
        committed duty/level agree with the key, a floor-pinned command
        has already logged its SEL entry, and the telemetry bucket (if
        sampling) is empty with every long-step quantum flushing its own
        bucket.  Everything else — dithering caps, escalation walks,
        partial buckets — stays with the per-run kernel.
        """
        kernel = self.kernel
        if kernel is None or kernel.disabled:
            return False
        if self.quanta < self.block_after or self.finished:
            return False
        pk = self.prev_cmd_key
        if pk is None:
            return False
        fi, si, ra, duty, level = pk
        if fi != si or ra != 1.0:
            return False
        if self.stable_quanta <= kernel._stable_thr:
            return False
        if self.sampler is not None:
            if kernel._q10 < kernel._t_period:
                return False
            _bt0, el, _acc = self.sampler.block_state()
            if el > 0.0:
                return False
        (ctime, oc, uc, floor_logged, over_logged, cduty, clevel,
         at_top, saving, esc_pat, deesc_pat, busy) = (
            self.controller.block_state()
        )
        if cduty != duty or clevel != level:
            return False
        if self.cap_w is None:
            # The kernel's uncapped precondition: P0, unthrottled.
            return (fi, si, ra, duty, level) == (0, 0, 1.0, 1.0, 0)
        if fi == kernel._n_states - 1 and not floor_logged:
            # The first floor quantum's SEL entry is a scalar-path side
            # effect; the march would drop out immediately.
            return False
        return True

    def finish(self) -> "Tuple[RunResult, int, bool, int, int]":
        """Assemble counters scaled to the full run, and the result."""
        bank = CounterBank()
        total_instr = self.total_instr
        for key, n_instr in self.instr_by_gating.items():
            seg_rates = self.runner.rates_for(
                self.workload, self.gating_by_key[key]
            )
            bank.add_access_counts(seg_rates.counts_for(n_instr))
        spec_rng = self.runner._streams.fresh(f"speculation:{self.tag}")
        speculation = CoreTimingModel.speculation_factor(spec_rng)
        bank.add(PapiEvent.PAPI_TOT_INS, total_instr)
        bank.add(PapiEvent.PAPI_TOT_IIS, total_instr * speculation)
        bank.add(PapiEvent.PAPI_TOT_CYC, self.cycles)

        timeline = None
        if self.sampler is not None:
            timeline = self.sampler.finish(self.workload.name, self.cap_w)
            telemetry_metrics().observe_run(self.sampler, timeline)

        meter = self.meter
        avg_power = (
            meter.average_power_w()
            if meter.sample_count
            else self.energy.average_power_w()
        )
        sel_events = tuple(
            (e.time_s, e.event.value, e.detail)
            for e in self.controller.sel.entries()
        )
        result = RunResult(
            workload=self.workload.name,
            cap_w=self.cap_w,
            execution_s=self.t,
            avg_power_w=avg_power,
            energy_j=self.energy.energy_j,
            avg_freq_mhz=self.freq_time / self.t / 1e6,
            counters=dict(bank.snapshot()),
            committed_instructions=total_instr,
            executed_instructions=total_instr * speculation,
            max_escalation_level=self.max_escalation,
            min_duty=self.min_duty,
            series=tuple(self.series),
            sel_events=sel_events,
            timeline=timeline,
        )
        return (
            result, self.quanta, self.fast_forwarded,
            self.block_steps, self.block_quanta,
        )
