"""Execute a workload on the simulated node under a power cap.

The runner is a discrete-time coupling of every substrate:

- per control quantum, the BMC controller reads its (noisy) power
  sensor and issues an :class:`~repro.bmc.controller.OperatingCommand`
  (P-state dither pair, duty factor, escalation gating);
- the workload's steady-state per-instruction event rates under the
  commanded gating come from the trace-driven cache/TLB simulators
  (measured once per distinct gating and cached — miss behaviour does
  not depend on frequency or duty);
- the CPI-stack timing model converts rates + level costs + frequency +
  duty into instructions retired this quantum;
- the power model produces the quantum's true node power (dither-
  blended across the two P-states), which feeds the thermal model, the
  wall meter, the energy integral, and the next control decision.

The run ends when the workload's committed-instruction budget retires.
Counters accumulate per gating segment, so Table II's miss columns
reflect exactly the mix of configurations the run actually visited.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..arch.node import Node
from ..arch.core import CoreTimingModel
from ..config import NodeConfig, sandy_bridge_config
from ..bmc.controller import CapController
from ..bmc.sensors import PowerSensor
from ..errors import SimulationError
from ..mem.hierarchy import AccessRates, MemoryHierarchy
from ..mem.latency import AccessCosts, stall_ns_per_instruction
from ..mem.reconfig import GatingState, ReconfigEngine
from ..perf.counters import CounterBank
from ..perf.events import PapiEvent
from ..power.energy import EnergyAccumulator
from ..power.meter import WattsUpMeter
from ..rng import DEFAULT_SEED, RngStreams
from ..trace.events import TraceSlice
from ..workloads.base import Workload
from .metrics import RunResult

__all__ = ["NodeRunner"]


class NodeRunner:
    """Runs workloads under caps; reusable across runs (rate caching)."""

    def __init__(
        self,
        config: NodeConfig | None = None,
        seed: int = DEFAULT_SEED,
        slice_accesses: int = 320_000,
        record_series: bool = False,
        max_sim_seconds: float = 250_000.0,
    ) -> None:
        self._config = config or sandy_bridge_config()
        self._streams = RngStreams(seed)
        self._slice_accesses = int(slice_accesses)
        self._record_series = record_series
        self._max_sim_seconds = float(max_sim_seconds)
        self._slices: Dict[str, TraceSlice] = {}
        self._rates: Dict[Tuple[str, tuple], AccessRates] = {}

    @property
    def config(self) -> NodeConfig:
        """The node configuration all runs use."""
        return self._config

    # ------------------------------------------------------------------
    # Rate measurement (trace-driven cache simulation)
    # ------------------------------------------------------------------

    def _slice_for(self, workload: Workload) -> TraceSlice:
        if workload.name not in self._slices:
            rng = self._streams.fresh(f"slice:{workload.name}")
            self._slices[workload.name] = workload.build_slice(
                rng, self._slice_accesses
            )
        return self._slices[workload.name]

    def rates_for(self, workload: Workload, gating: GatingState) -> AccessRates:
        """Steady-state per-instruction event rates under a gating.

        Measured by pushing the workload's representative slice through
        a fresh hierarchy configured to ``gating`` and discarding the
        warmup region.  Cached per (workload, miss-relevant config).
        """
        key = (workload.name, gating.config_key())
        if key not in self._rates:
            sl = self._slice_for(workload)
            hierarchy = MemoryHierarchy(self._config)
            ReconfigEngine(self._config).apply(hierarchy, gating)
            d_warm, d_meas, i_warm, i_meas = sl.split_warmup()
            if len(sl.preload_addresses):
                hierarchy.simulate_data_trace(sl.preload_addresses)
            hierarchy.simulate_slice(d_warm, i_warm)
            counts = hierarchy.simulate_slice(d_meas, i_meas)
            self._rates[key] = AccessRates.from_counts(
                counts, sl.measured_instructions
            )
        return self._rates[key]

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        cap_w: float | None = None,
        rep: int = 0,
    ) -> RunResult:
        """Execute one full run; repetitions differ in their noise draws."""
        cfg = self._config
        tag = f"{workload.name}:cap={cap_w}:rep={rep}"
        node = Node(cfg)
        sensor = PowerSensor(self._streams.fresh(f"bmc-sensor:{tag}"))
        controller = CapController(node, sensor)
        controller.set_cap(cap_w)
        meter = WattsUpMeter(cfg.meter, self._streams.fresh(f"meter:{tag}"))
        energy = EnergyAccumulator()
        core = CoreTimingModel(cfg.base_cpi)
        quantum = cfg.bmc.control_quantum_s

        total_instr = workload.spec.total_instructions
        done = 0.0
        t = 0.0
        freq_time = 0.0
        cycles = 0.0
        max_escalation = 0
        min_duty = 1.0
        # Instructions executed per gating config, for counter scaling.
        instr_by_gating: Dict[tuple, float] = {}
        gating_by_key: Dict[tuple, GatingState] = {}
        series = []

        # Initial condition: one quantum at P0, unthrottled, ungated.
        gating = GatingState.ungated()
        rates = self.rates_for(workload, gating)
        power = node.power_w(dram_traffic_bps=0.0)
        # Adaptive stepping: once the controller's command has been
        # stable for a while (e.g. duty pinned at its minimum during a
        # 120 W run), quanta are lengthened 10x — the dynamics are in
        # steady state and per-quantum resolution buys nothing.
        stable_quanta = 0
        prev_cmd_key = None

        while done < total_instr:
            cmd = controller.update(power, activity=1.0, traffic_bps=0.0)
            cmd_key = (
                cmd.pstate_fast.index,
                cmd.pstate_slow.index,
                round(cmd.alpha, 2),
                cmd.duty,
                cmd.escalation_level,
            )
            stable_quanta = stable_quanta + 1 if cmd_key == prev_cmd_key else 0
            prev_cmd_key = cmd_key
            step_s = quantum * (10.0 if stable_quanta > 40 else 1.0)
            if cmd.gating != gating:
                gating = cmd.gating
            rates = self.rates_for(workload, gating)
            costs = AccessCosts.from_config(cfg, gating)
            stall_ns = stall_ns_per_instruction(rates, costs)
            freq = cmd.effective_freq_hz
            spi = core.seconds_per_instruction(freq, stall_ns, cmd.duty)
            instr_rate = 1.0 / spi
            traffic = rates.l3_misses * instr_rate * cfg.l3.line_bytes

            # True node power this quantum: dither-blended P-states.
            model = node.power_model
            temp = node.thermal.temperature_c

            def p_of(state) -> float:
                return model.power_of_pstate(
                    state,
                    duty=cmd.duty,
                    activity=1.0,
                    gating_saving_w=cmd.gating_saving_w,
                    dram_traffic_bps=traffic,
                    temperature_c=temp,
                )

            power = cmd.alpha * p_of(cmd.pstate_fast) + (1.0 - cmd.alpha) * p_of(
                cmd.pstate_slow
            )

            remaining_s = (total_instr - done) * spi
            dt = min(step_s, remaining_s)
            instr_now = dt / spi
            done += instr_now
            key = gating.config_key()
            instr_by_gating[key] = instr_by_gating.get(key, 0.0) + instr_now
            gating_by_key[key] = gating
            freq_time += freq * dt
            cycles += freq * dt * cmd.duty
            max_escalation = max(max_escalation, cmd.escalation_level)
            min_duty = min(min_duty, cmd.duty)

            node.thermal.step(power, dt)
            meter.advance(t, dt, lambda _t, p=power: p)
            energy.add(power, dt)
            t += dt
            if self._record_series:
                series.append((t, power, freq / 1e6, cmd.duty))
            if t > self._max_sim_seconds:
                raise SimulationError(
                    f"run exceeded {self._max_sim_seconds:.0f} simulated "
                    f"seconds ({done:.3g}/{total_instr:.3g} instructions) — "
                    "check the cap against the node's achievable floor"
                )

        # ------------------------------------------------------------------
        # Assemble counters scaled to the full run.
        # ------------------------------------------------------------------
        bank = CounterBank()
        for key, n_instr in instr_by_gating.items():
            seg_rates = self.rates_for(workload, gating_by_key[key])
            bank.add_access_counts(seg_rates.counts_for(n_instr))
        spec_rng = self._streams.fresh(f"speculation:{tag}")
        speculation = CoreTimingModel.speculation_factor(spec_rng)
        bank.add(PapiEvent.PAPI_TOT_INS, total_instr)
        bank.add(PapiEvent.PAPI_TOT_IIS, total_instr * speculation)
        bank.add(PapiEvent.PAPI_TOT_CYC, cycles)

        avg_power = meter.average_power_w() if meter.readings else energy.average_power_w()
        sel_events = tuple(
            (e.time_s, e.event.value, e.detail)
            for e in controller.sel.entries()
        )
        return RunResult(
            workload=workload.name,
            cap_w=cap_w,
            execution_s=t,
            avg_power_w=avg_power,
            energy_j=energy.energy_j,
            avg_freq_mhz=freq_time / t / 1e6,
            counters=dict(bank.snapshot()),
            committed_instructions=total_instr,
            executed_instructions=total_instr * speculation,
            max_escalation_level=max_escalation,
            min_duty=min_duty,
            series=tuple(series),
            sel_events=sel_events,
        )
