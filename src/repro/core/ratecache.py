"""Persistent on-disk cache of measured access rates.

Trace simulation is the dominant fixed cost of a sweep: every
(workload, gating) pair costs a full slice replay even though the
result is a pure function of the node geometry, the workload slice,
and the gating.  :class:`RateCache` memoizes those results across
*processes and sessions* — repeated sweeps, the benchmark suite, and
parallel workers all skip redundant trace simulation.

Keys are ``blake2b`` digests over everything the rates depend on:

- the miss-relevant node geometry (cache/TLB geometries, repr of the
  frozen dataclasses),
- the slice identity (workload spec minus ``total_instructions`` —
  the slice is built from the behavioural parameters only — plus the
  trace seed and requested access count),
- the gating's :meth:`~repro.mem.reconfig.GatingState.config_key`.

The store is a single JSON file.  Saves are atomic (write-to-temp +
``os.replace``) and merge with any entries written concurrently by
another process, so parallel sweep workers can share one cache file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from ..config import NodeConfig
from ..errors import SimulationError
from ..mem.hierarchy import AccessRates
from ..mem.reconfig import GatingState
from ..workloads.base import Workload

__all__ = ["RateCache"]

#: Bump when the simulation semantics of the kernels change.
_SCHEMA_VERSION = 1


def rate_key(
    config: NodeConfig,
    workload: Workload,
    seed: int,
    slice_accesses: int,
    gating: GatingState,
) -> str:
    """Stable digest identifying one (geometry, slice, gating) rate."""
    spec = asdict(workload.spec)
    # The slice is built from the behavioural spec fields only; the
    # instruction budget just scales how long the run loop executes.
    spec.pop("total_instructions", None)
    spec.pop("description", None)
    payload = {
        "v": _SCHEMA_VERSION,
        "geometry": repr(
            (config.l1d, config.l1i, config.l2, config.l3, config.itlb, config.dtlb)
        ),
        "workload": (type(workload).__name__, sorted(spec.items())),
        "seed": int(seed),
        "slice_accesses": int(slice_accesses),
        "gating": gating.config_key(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


class RateCache:
    """JSON-file-backed store of :class:`AccessRates` keyed by digest."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        # Fail before the sweep, not at the post-sweep save.
        if self._path.is_dir():
            raise SimulationError(
                f"rate cache path is a directory: {self._path}"
            )
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    @property
    def path(self) -> Path:
        """Location of the backing file."""
        return self._path

    def __len__(self) -> int:
        return len(self._entries)

    def _load(self) -> None:
        try:
            with open(self._path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return
        if isinstance(data, dict):
            self._entries.update(
                {k: v for k, v in data.items() if isinstance(v, dict)}
            )

    def get(self, key: str) -> Optional[AccessRates]:
        """Look one digest up; None on miss or malformed entry."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            return AccessRates(**{k: float(v) for k, v in entry.items()})
        except TypeError:
            return None

    def put(self, key: str, rates: AccessRates) -> None:
        """Record one result (persisted on the next :meth:`save`)."""
        self._entries[key] = asdict(rates)
        self._dirty = True

    def save(self) -> None:
        """Atomically persist, merging concurrent writers' entries."""
        if not self._dirty:
            return
        on_disk: Dict[str, dict] = {}
        try:
            with open(self._path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict):
                on_disk = data
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        on_disk.update(self._entries)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._path.parent), prefix=self._path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(on_disk, fh)
            os.replace(tmp, self._path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._entries = on_disk
        self._dirty = False
