"""Persistent on-disk cache of measured access rates.

Trace simulation is the dominant fixed cost of a sweep: every
(workload, gating) pair costs a full slice replay even though the
result is a pure function of the node geometry, the workload slice,
and the gating.  :class:`RateCache` memoizes those results across
*processes and sessions* — repeated sweeps, the benchmark suite, and
parallel workers all skip redundant trace simulation.

Keys are ``blake2b`` digests over everything the rates depend on:

- the miss-relevant node geometry (cache/TLB geometries, repr of the
  frozen dataclasses),
- the slice identity (workload spec minus ``total_instructions`` —
  the slice is built from the behavioural parameters only — plus the
  trace seed and requested access count),
- the gating's :meth:`~repro.mem.reconfig.GatingState.config_key`.

The store is a single JSON file.  Saves are atomic (write-to-temp +
``os.replace``) and merge with any entries written concurrently by
another process, so parallel sweep workers can share one cache file.

Writers batch their saves (:meth:`put` only marks the cache dirty;
:meth:`save` flushes at run/sweep boundaries), and every flush is a
single atomic ``os.replace`` — so a concurrent reader never observes a
partially written file.  Readers that only want to *observe* a shared
cache (dashboards, benchmarks, inspection tooling) open it with
``mode="ro"``: a read-only snapshot of the file at open time that can
never dirty or rewrite the backing store, with :meth:`reload` to adopt
whatever a concurrent writer has flushed since.

The file is bounded: every entry carries a last-used timestamp, and
:meth:`save` evicts the least-recently-used entries beyond
``max_entries`` (default :data:`RateCache.DEFAULT_MAX_ENTRIES`, or the
``REPRO_RATE_CACHE_MAX`` environment variable), so long-lived service
deployments that sweep many distinct (workload, geometry, gating)
combinations never grow the cache without bound.  The cache also keeps
:attr:`hits` / :attr:`misses` counters for telemetry; all public
methods are thread-safe, so one instance can back a whole worker pool.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import tempfile
import threading
import time
import weakref
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..config import NodeConfig
from ..errors import SimulationError
from ..mem.hierarchy import AccessRates
from ..mem.reconfig import GatingState
from ..obs.logging import get_logger
from ..obs.metrics import engine_metrics
from ..workloads.base import Workload

__all__ = ["RateCache"]

_log = get_logger("core.ratecache")

#: Bump when the simulation semantics of the kernels change.
_SCHEMA_VERSION = 1


def rate_key(
    config: NodeConfig,
    workload: Workload,
    seed: int,
    slice_accesses: int,
    gating: GatingState,
) -> str:
    """Stable digest identifying one (geometry, slice, gating) rate."""
    spec = asdict(workload.spec)
    # The slice is built from the behavioural spec fields only; the
    # instruction budget just scales how long the run loop executes.
    spec.pop("total_instructions", None)
    spec.pop("description", None)
    payload = {
        "v": _SCHEMA_VERSION,
        "geometry": repr(
            (config.l1d, config.l1i, config.l2, config.l3, config.itlb, config.dtlb)
        ),
        "workload": (type(workload).__name__, sorted(spec.items())),
        "seed": int(seed),
        "slice_accesses": int(slice_accesses),
        "gating": gating.config_key(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _split_entry(value: dict) -> "Tuple[dict, float] | None":
    """(rates-dict, last-used ts) from either on-disk layout.

    Historical files store the rates dict directly; current files wrap
    it as ``{"rates": {...}, "ts": <last-used>}``.
    """
    if not isinstance(value, dict):
        return None
    inner = value.get("rates")
    if isinstance(inner, dict):
        try:
            return inner, float(value.get("ts", 0.0))
        except (TypeError, ValueError):
            return inner, 0.0
    return value, 0.0


class RateCache:
    """JSON-file-backed store of :class:`AccessRates` keyed by digest."""

    #: Default LRU bound on the number of persisted entries.
    DEFAULT_MAX_ENTRIES = 4096

    def __init__(
        self,
        path: str | os.PathLike,
        max_entries: int | None = None,
        mode: str = "rw",
    ) -> None:
        if mode not in ("rw", "ro"):
            raise SimulationError(
                f"rate cache mode must be 'rw' or 'ro', got {mode!r}"
            )
        self._mode = mode
        self._path = Path(path)
        # Fail before the sweep, not at the post-sweep save.
        if self._path.is_dir():
            raise SimulationError(
                f"rate cache path is a directory: {self._path}"
            )
        if max_entries is None:
            max_entries = int(
                os.environ.get("REPRO_RATE_CACHE_MAX", self.DEFAULT_MAX_ENTRIES)
            )
        if max_entries < 1:
            raise SimulationError(
                f"rate cache max_entries must be >= 1, got {max_entries}"
            )
        self._max_entries = int(max_entries)
        self._entries: Dict[str, dict] = {}
        self._stamps: Dict[str, float] = {}
        self._dirty = False
        self._lock = threading.RLock()
        #: Lookup telemetry (served-from-cache vs simulated).
        self.hits = 0
        self.misses = 0
        self._last_stamp = 0.0
        self._load()
        if self._stamps:
            self._last_stamp = max(self._stamps.values())
        if self._mode == "ro":
            return  # snapshots never flush — nothing to hook at exit
        # Saves are batched (put() only marks dirty); a weakly-bound
        # atexit hook flushes anything still pending if the process
        # exits before the owning runner/experiment/scheduler does.
        ref = weakref.ref(self)

        def _flush_at_exit() -> None:
            cache = ref()
            if cache is not None:
                cache.close()

        atexit.register(_flush_at_exit)

    @property
    def path(self) -> Path:
        """Location of the backing file."""
        return self._path

    @property
    def max_entries(self) -> int:
        """The LRU bound enforced at :meth:`save` time."""
        return self._max_entries

    @property
    def mode(self) -> str:
        """``"rw"`` (writer, default) or ``"ro"`` (snapshot reader)."""
        return self._mode

    @property
    def readonly(self) -> bool:
        """True for ``mode="ro"`` snapshot instances."""
        return self._mode == "ro"

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _read_disk(
        self,
    ) -> "Tuple[Dict[str, dict], Dict[str, float]] | None":
        """Parse the backing file; None when missing or unusable."""
        try:
            with open(self._path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        try:
            data = json.loads(raw.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as exc:
            # A corrupt (or poisoned) cache file is ignored, never
            # fatal — but it must be *visible*: log the path and the
            # content digest so the bad bytes can be identified.
            _log.warning(
                "rate_cache_corrupt",
                path=str(self._path),
                bytes=len(raw),
                content_digest=hashlib.blake2b(raw, digest_size=16).hexdigest(),
                error=str(exc),
            )
            return None
        if not isinstance(data, dict):
            _log.warning(
                "rate_cache_malformed",
                path=str(self._path),
                content_digest=hashlib.blake2b(raw, digest_size=16).hexdigest(),
                error=f"expected a JSON object, got {type(data).__name__}",
            )
            return None
        entries: Dict[str, dict] = {}
        stamps: Dict[str, float] = {}
        for key, value in data.items():
            split = _split_entry(value)
            if split is None:
                _log.warning(
                    "rate_cache_entry_malformed",
                    path=str(self._path),
                    digest=key,
                )
                continue
            entries[key], stamps[key] = split
        return entries, stamps

    def _load(self) -> None:
        disk = self._read_disk()
        if disk is not None:
            self._entries, self._stamps = disk

    def reload(self) -> int:
        """Re-read the backing file, adopting concurrent flushes.

        Because writers flush with a single atomic ``os.replace``, a
        reloading reader sees either the previous complete file or the
        new complete file — never a torn write.  Read-only snapshots
        replace their view wholesale; ``rw`` instances merge the disk
        state *under* their own entries (local puts win until the next
        :meth:`save`).  Returns the number of entries now visible.
        """
        with self._lock:
            disk = self._read_disk()
            if disk is not None:
                entries, stamps = disk
                if self._mode == "rw":
                    entries.update(self._entries)
                    for key, ts in self._stamps.items():
                        stamps[key] = max(ts, stamps.get(key, 0.0))
                self._entries = entries
                self._stamps = stamps
                if stamps:
                    self._last_stamp = max(
                        self._last_stamp, max(stamps.values())
                    )
            return len(self._entries)

    def get(self, key: str) -> Optional[AccessRates]:
        """Look one digest up; None on miss or malformed entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                engine_metrics().rate_cache_misses.inc()
                return None
            try:
                rates = AccessRates(**{k: float(v) for k, v in entry.items()})
            except TypeError:
                self.misses += 1
                engine_metrics().rate_cache_misses.inc()
                _log.warning(
                    "rate_cache_entry_malformed",
                    path=str(self._path),
                    digest=key,
                )
                return None
            self._touch(key)
            self.hits += 1
            engine_metrics().rate_cache_hits.inc()
            return rates

    def put(self, key: str, rates: AccessRates) -> None:
        """Record one result (persisted on the next :meth:`save`)."""
        if self._mode == "ro":
            raise SimulationError(
                f"rate cache opened read-only: {self._path}"
            )
        with self._lock:
            self._entries[key] = asdict(rates)
            self._touch(key)
            self._dirty = True

    def _touch(self, key: str) -> None:
        # Strictly increasing stamps: two touches inside one clock tick
        # must still order deterministically for LRU eviction.
        now = time.time()
        if now <= self._last_stamp:
            now = self._last_stamp + 1e-6
        self._last_stamp = now
        self._stamps[key] = now

    def close(self) -> None:
        """Flush pending entries; safe to call repeatedly.

        Unlike :meth:`save` this never raises: at interpreter exit the
        backing directory may already be gone (tests park caches in
        ``TemporaryDirectory``), and losing the flush is preferable to
        failing teardown.
        """
        try:
            self.save()
        except OSError:
            pass

    def __enter__(self) -> "RateCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def save(self) -> None:
        """Atomically persist, merging concurrent writers' entries.

        A no-op unless :meth:`put` recorded something since the last
        save — callers flush at run/sweep boundaries without write
        amplification.

        After the merge the least-recently-used entries beyond
        ``max_entries`` are evicted, so the backing file stays bounded
        no matter how many distinct sweeps a long-lived process runs.

        Read-only snapshots never write: a no-op in ``mode="ro"``.
        """
        if self._mode == "ro":
            return
        with self._lock:
            self._save_locked()

    def _save_locked(self) -> None:
        if not self._dirty:
            return
        entries: Dict[str, dict] = {}
        stamps: Dict[str, float] = {}
        try:
            with open(self._path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            data = None
        except json.JSONDecodeError as exc:
            _log.warning(
                "rate_cache_corrupt",
                path=str(self._path),
                error=str(exc),
                during="save_merge",
            )
            data = None
        if isinstance(data, dict):
            for key, value in data.items():
                split = _split_entry(value)
                if split is not None:
                    entries[key], stamps[key] = split
        entries.update(self._entries)
        for key, ts in self._stamps.items():
            stamps[key] = max(ts, stamps.get(key, 0.0))
        if len(entries) > self._max_entries:
            keep = sorted(
                entries, key=lambda k: (stamps.get(k, 0.0), k), reverse=True
            )[: self._max_entries]
            entries = {k: entries[k] for k in keep}
            stamps = {k: stamps.get(k, 0.0) for k in keep}
        payload = {
            k: {"rates": v, "ts": stamps.get(k, 0.0)}
            for k, v in entries.items()
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._path.parent), prefix=self._path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self._path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._entries = entries
        self._stamps = stamps
        self._dirty = False
