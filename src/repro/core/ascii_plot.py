"""Dependency-free ASCII charts for the paper's figures.

The environment this reproduction targets has no plotting stack, so the
figure benches and the ``figures`` CLI subcommand render the series as
terminal charts: multi-series line charts for the normalised Figures
1/2 data, and log-y scatter charts for the stride Figures 3/4 grids.
Nothing fancy — columns of characters — but enough to *see* the
hockey-stick, the frequency staircase, and the capped stride cloud.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from ..errors import SimulationError

__all__ = ["line_chart", "log_scatter_chart", "sparkline", "timeline_chart"]

#: Marker characters assigned to series in order.
MARKERS = "o+x*#@%&"

#: Density ramp for sparklines, lightest to densest (pure ASCII).
SPARK_RAMP = " .:-=+*#%@"


def sparkline(
    values: Sequence[float],
    lo: "float | None" = None,
    hi: "float | None" = None,
) -> str:
    """One character per value, density-mapped onto ``[lo, hi]``.

    Bounds default to the data's own min/max; a flat series renders as
    a run of mid-ramp characters.
    """
    if not values:
        raise SimulationError("need at least one value")
    values = [float(v) for v in values]
    lo = min(values) if lo is None else float(lo)
    hi = max(values) if hi is None else float(hi)
    span = hi - lo
    top = len(SPARK_RAMP) - 1
    # A span within float rounding of the values' magnitude is flat —
    # without this, resampling noise in the last digit fills the ramp.
    if span <= 1e-9 * max(abs(lo), abs(hi), 1.0):
        return SPARK_RAMP[top // 2] * len(values)
    chars = []
    for v in values:
        frac = (v - lo) / span
        chars.append(SPARK_RAMP[int(round(min(1.0, max(0.0, frac)) * top))])
    return "".join(chars)


def timeline_chart(timeline, channels: "Sequence[str] | None" = None,
                   width: int = 64) -> str:
    """Sparkline rows for a telemetry timeline's channels.

    ``timeline`` is a :class:`repro.obs.timeseries.RunTimeline` (duck-
    typed: anything with ``names``/``channel``/``duration_s`` and
    resamplable channels works).  Each channel is resampled onto
    ``width`` uniform bins over the run and rendered with its own
    min/mean/max annotations.
    """
    if width < 8:
        raise SimulationError("chart width must be at least 8 columns")
    names = list(channels) if channels else timeline.names()
    if not names:
        raise SimulationError("timeline has no channels to render")
    end = timeline.duration_s()
    label_w = max(len(n) for n in names)
    lines = [
        f"{timeline.workload} @ "
        f"{'uncapped' if timeline.cap_w is None else f'{timeline.cap_w:g} W'}"
        f" — {end:.1f} simulated s, {timeline.reps} rep(s)"
    ]
    for name in names:
        ch = timeline.channel(name)
        pts = ch.resample(width, end)
        if not pts:
            lines.append(f"{name:>{label_w}} | (empty)")
            continue
        spark = sparkline([p.mean for p in pts])
        unit = f" {ch.unit}" if ch.unit else ""
        lines.append(
            f"{name:>{label_w}} |{spark}| "
            f"min {ch.vmin():.6g}  mean {ch.time_weighted_mean():.6g}  "
            f"max {ch.vmax():.6g}{unit}"
        )
    lines.append(f"{'':>{label_w}}  0 s{'':{max(0, width - 12)}}{end:.1f} s")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    labels: Sequence[str],
    title: str = "",
    height: int = 16,
    col_width: int = 7,
) -> str:
    """Render normalised series (values in [0, 1]) over labelled x ticks.

    ``series`` maps a name to one value per x position; ``labels`` are
    the x-axis tick labels (the cap column headers in Figures 1/2).
    """
    if not series:
        raise SimulationError("need at least one series")
    n = len(labels)
    for name, values in series.items():
        if len(values) != n:
            raise SimulationError(
                f"series {name!r} has {len(values)} points for {n} labels"
            )
    if height < 4:
        raise SimulationError("chart height must be at least 4 rows")

    grid = [[" "] * (n * col_width) for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        marker = MARKERS[s_idx % len(MARKERS)]
        for i, v in enumerate(values):
            v = min(1.0, max(0.0, float(v)))
            row = height - 1 - int(round(v * (height - 1)))
            col = i * col_width + col_width // 2
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        axis_value = 1.0 - r / (height - 1)
        prefix = f"{axis_value:4.2f} |" if r % 4 == 0 or r == height - 1 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * (n * col_width))
    tick_row = "      "
    for label in labels:
        tick_row += f"{label:^{col_width}}"
    lines.append(tick_row.rstrip())
    legend = "      " + "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def log_scatter_chart(
    points: Dict[str, Sequence[tuple]],
    title: str = "",
    height: int = 18,
    width: int = 72,
    x_label: str = "stride (B)",
    y_label: str = "ns",
) -> str:
    """Render (x, y) series on log-log axes (the stride figures).

    ``points`` maps a series name to a sequence of ``(x, y)`` pairs with
    strictly positive coordinates.
    """
    all_xy = [
        (x, y) for pts in points.values() for x, y in pts if x > 0 and y > 0
    ]
    if not all_xy:
        raise SimulationError("no plottable points")
    lx = [math.log10(x) for x, _ in all_xy]
    ly = [math.log10(y) for _, y in all_xy]
    x_lo, x_hi = min(lx), max(lx)
    y_lo, y_hi = min(ly), max(ly)
    x_span = max(1e-9, x_hi - x_lo)
    y_span = max(1e-9, y_hi - y_lo)

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, pts) in enumerate(points.items()):
        marker = MARKERS[s_idx % len(MARKERS)]
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int(
                (math.log10(y) - y_lo) / y_span * (height - 1)
            )
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        decade = y_hi - (r / (height - 1)) * y_span
        prefix = (
            f"1e{decade:+4.1f} |" if r % 4 == 0 or r == height - 1 else "       |"
        )
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(
        f"        1e{x_lo:.1f} {x_label} ... 1e{x_hi:.1f}   (y: {y_label}, log)"
    )
    legend = "        " + "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    return "\n".join(lines)
