"""Dependency-free ASCII charts for the paper's figures.

The environment this reproduction targets has no plotting stack, so the
figure benches and the ``figures`` CLI subcommand render the series as
terminal charts: multi-series line charts for the normalised Figures
1/2 data, and log-y scatter charts for the stride Figures 3/4 grids.
Nothing fancy — columns of characters — but enough to *see* the
hockey-stick, the frequency staircase, and the capped stride cloud.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

from ..errors import SimulationError

__all__ = ["line_chart", "log_scatter_chart"]

#: Marker characters assigned to series in order.
MARKERS = "o+x*#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    labels: Sequence[str],
    title: str = "",
    height: int = 16,
    col_width: int = 7,
) -> str:
    """Render normalised series (values in [0, 1]) over labelled x ticks.

    ``series`` maps a name to one value per x position; ``labels`` are
    the x-axis tick labels (the cap column headers in Figures 1/2).
    """
    if not series:
        raise SimulationError("need at least one series")
    n = len(labels)
    for name, values in series.items():
        if len(values) != n:
            raise SimulationError(
                f"series {name!r} has {len(values)} points for {n} labels"
            )
    if height < 4:
        raise SimulationError("chart height must be at least 4 rows")

    grid = [[" "] * (n * col_width) for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        marker = MARKERS[s_idx % len(MARKERS)]
        for i, v in enumerate(values):
            v = min(1.0, max(0.0, float(v)))
            row = height - 1 - int(round(v * (height - 1)))
            col = i * col_width + col_width // 2
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        axis_value = 1.0 - r / (height - 1)
        prefix = f"{axis_value:4.2f} |" if r % 4 == 0 or r == height - 1 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * (n * col_width))
    tick_row = "      "
    for label in labels:
        tick_row += f"{label:^{col_width}}"
    lines.append(tick_row.rstrip())
    legend = "      " + "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def log_scatter_chart(
    points: Dict[str, Sequence[tuple]],
    title: str = "",
    height: int = 18,
    width: int = 72,
    x_label: str = "stride (B)",
    y_label: str = "ns",
) -> str:
    """Render (x, y) series on log-log axes (the stride figures).

    ``points`` maps a series name to a sequence of ``(x, y)`` pairs with
    strictly positive coordinates.
    """
    all_xy = [
        (x, y) for pts in points.values() for x, y in pts if x > 0 and y > 0
    ]
    if not all_xy:
        raise SimulationError("no plottable points")
    lx = [math.log10(x) for x, _ in all_xy]
    ly = [math.log10(y) for _, y in all_xy]
    x_lo, x_hi = min(lx), max(lx)
    y_lo, y_hi = min(ly), max(ly)
    x_span = max(1e-9, x_hi - x_lo)
    y_span = max(1e-9, y_hi - y_lo)

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, pts) in enumerate(points.items()):
        marker = MARKERS[s_idx % len(MARKERS)]
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int(
                (math.log10(y) - y_lo) / y_span * (height - 1)
            )
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        decade = y_hi - (r / (height - 1)) * y_span
        prefix = (
            f"1e{decade:+4.1f} |" if r % 4 == 0 or r == height - 1 else "       |"
        )
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(
        f"        1e{x_lo:.1f} {x_label} ... 1e{x_hi:.1f}   (y: {y_label}, log)"
    )
    legend = "        " + "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    return "\n".join(lines)
