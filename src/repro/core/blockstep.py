"""Block-stepped evaluation of stable control-loop segments.

The runner's hot loop spends most of its time in stretches where the
controller's command does not change: the thermal transient before the
steady-state fast-forward is allowed to engage, and the escalation
march at tight caps (the paper's ≤ 130 W regime, where frequency pins
at 1,200 MHz and runs step thousands of control quanta).  Per quantum
the arithmetic is a handful of scalar recurrences — an EMA filter, a
one-pole thermal model, a leakage-dependent power blend — whose cost in
the scalar path is interpreter and object-protocol overhead, not math.

:class:`BlockStepKernel` executes those stretches in local variables:

- the power-sensor noise is drawn in chunks from the same RNG stream
  (``Generator.normal(size=n)`` consumes exactly the draws ``n`` scalar
  calls would — the property the vectorised :class:`WattsUpMeter` log
  already relies on), and the stream is rewound to the number of quanta
  that actually committed;
- the controller's decision per quantum is replayed exactly — bracket
  search, dither fraction, patience counters — using the memoized
  per-command :class:`~repro.power.model.PStatePowerTable` constants,
  and the kernel **breaks back to the scalar path one quantum before**
  any side effect it does not model: a gating-ladder move, a
  once-per-run flag flip, a fast-forward, the final partial quantum, or
  the simulated-time ceiling.  Duty-only throttle steps — the dominant
  boundary in the paper's ≤ 130 W regime — are replayed *in-block*:
  the kernel swaps in the new duty's memoized power table, re-brackets,
  resets the stability counter, and logs the scalar path's SEL entries
  at the stepped quantum's commit;
- every integral (energy, meter samples and grid cursor, frequency-time,
  telemetry buckets, the time axis itself) is folded sequentially in the
  same association order as the scalar statements, then committed in
  bulk through the substrates' ``*_block`` methods.

The contract is the repo's established one: **bit-identical results** —
same arithmetic, same float association order, same RNG consumption —
verified by ``tests/core/test_blockstep.py`` across workloads, caps,
and telemetry settings.  The runner's ``block_step=False`` (CLI
``--no-block-step``, env ``REPRO_BLOCK_STEP=0``) keeps the scalar path
selectable at runtime.

Exactness notes mirrored from the scalar code (do not "simplify"):

- ``x + 0.0 == x`` and ``1.0 * x == x`` hold exactly for every finite
  ``x`` here, which is what lets the blend skip the zero-weighted side
  of ``alpha * X + (1 - alpha) * Y`` when ``alpha`` is exactly 0 or 1;
- the bracket search replicates ``bracketing_pair_from_powers``'s
  first-match semantics under a verified strictly-decreasing power
  table (margin > 1 nW); tables that violate the margin disable the
  kernel for the run rather than risk a different bracket;
- patience counters are evolved tentatively per quantum and only
  committed once every break check of that quantum has passed, so a
  broken quantum leaves no trace and the scalar path replays it from
  identical state.
"""

from __future__ import annotations

import math

from ..bmc.sel import SelEventType
from ..obs.timeseries import SeriesPoint

__all__ = ["BlockStepKernel"]

#: First sensor-noise chunk per block; grows geometrically so long
#: pinned tails cost one draw while short escalation segments waste
#: only a few values (rewound afterwards either way).
_CHUNK0 = 16
_CHUNK_MAX = 4096
#: Required gap between adjacent per-state powers for the local bracket
#: walk to be provably equivalent to the scalar first-match scan.
_MIN_GAP_W = 1e-9


class BlockStepKernel:
    """Executes stable control-loop segments in bulk, bit-identically.

    Built once per run by :class:`~repro.core.runner.NodeRunner`; holds
    references to the run's substrates and the per-run constants.  One
    :meth:`advance` call evaluates quanta until a side-effect boundary
    and commits everything it retired; the runner then executes the
    boundary quantum through the scalar path and re-enters.
    """

    def __init__(
        self,
        *,
        controller,
        sensor,
        meter,
        energy,
        thermal,
        model,
        pstates,
        cfg,
        sampler,
        series,
        total_instr: float,
        max_sim_seconds: float,
        fast_forward: bool,
        stable_threshold: int,
        eps_pinned: float,
        eps_dither: float,
    ) -> None:
        self._controller = controller
        self._sensor = sensor
        self._meter = meter
        self._energy = energy
        self._thermal = thermal
        self._model = model
        self._pstates = pstates
        self._sampler = sampler
        self._series = series
        self._total_instr = total_instr
        self._max_sim = max_sim_seconds
        self._ff = bool(fast_forward)
        self._stable_thr = int(stable_threshold)
        self._eps_pinned = eps_pinned
        self._eps_dither = eps_dither

        bmc = cfg.bmc
        self._q = bmc.control_quantum_s
        self._q10 = bmc.control_quantum_s * 10.0
        self._target_margin = bmc.target_margin_w
        self._hyst = bmc.hysteresis_w
        self._deesc_margin = bmc.deescalation_margin_w
        self._duty_min = bmc.ladder.duty_min
        self._duty_step = bmc.ladder.duty_step

        pcfg = cfg.power
        self._nref_leak = cfg.n_sockets * pcfg.socket_leakage_ref_w
        self._leak_coeff = pcfg.leakage_temp_coeff
        self._leak_ref_t = pcfg.leakage_ref_temp_c

        tcfg = cfg.thermal
        self._ambient = tcfg.ambient_c
        self._r_th = tcfg.r_th_c_per_w
        self._idle_w = thermal.idle_power_w
        # The same ``exp(-dt/tau)`` the thermal model evaluates, for the
        # only two step sizes that occur in-block.
        self._decay_q = math.exp(-self._q / tcfg.tau_s)
        self._decay_q10 = math.exp(-self._q10 / tcfg.tau_s)

        self._base_cpi = cfg.base_cpi
        self._line_bytes = cfg.l3.line_bytes
        self._bw_gbs = cfg.dram.bandwidth_gbs
        self._w_per_gbs = cfg.dram.active_w_per_gbs

        self._m_period = cfg.meter.sample_period_s
        # is_quiescent's reading band at its default n_sigma of 8.
        self._band = 8.0 * sensor.filtered_sigma_w

        self._freqs = [st.freq_hz for st in pstates]
        self._n_states = len(self._freqs)
        self._cap = controller.cap_w
        self._table_ok: dict = {}
        if sampler is not None:
            self._t_period = sampler.config.period_s
            self._channels = [
                sampler.block_channel(name)
                for name in (
                    "power_w", "freq_mhz", "pstate", "duty", "c0_frac",
                    "temp_c", "l1_mpki", "l2_mpki", "l3_mpki",
                    "dtlb_mpki", "itlb_mpki",
                )
            ]
        #: Set when a run-wide precondition fails (non-monotone power
        #: table, unexpected traffic term); the runner then drops the
        #: kernel and the scalar path carries the rest of the run.
        self.disabled = False

    def _table_constants(self, table, temp, capped):
        """Validated ``block_constants`` for one memoized power table.

        Strictly-decreasing per-state powers (with margin) make the
        kernel's local bracket walk equivalent to the scalar first-match
        scan; the margin is a property of the temperature-independent
        ``dyn``/``gate`` terms (the shared ``base`` cancels in adjacent
        differences), so one check per table covers every quantum and
        every temperature that uses it.
        """
        consts = table.block_constants()
        ok = self._table_ok.get(id(table))
        if ok is None:
            pb, unc, tr0, dyn, gate = consts
            ok = tr0 == 0.0 and len(dyn) == self._n_states
            if ok and capped:
                scale = 1.0 + self._leak_coeff * (temp - self._leak_ref_t)
                if scale < 0.4:
                    scale = 0.4
                base = pb + (self._nref_leak * scale) + unc
                prev_p = None
                for d_i, g_i in zip(dyn, gate):
                    p_i = (base + d_i) - g_i
                    if prev_p is not None and not (
                        prev_p - p_i > _MIN_GAP_W
                    ):
                        ok = False
                        break
                    prev_p = p_i
            self._table_ok[id(table)] = ok
        return ok, consts

    def advance(
        self,
        *,
        power: float,
        t: float,
        done: float,
        freq_time: float,
        cycles: float,
        stable_quanta: int,
        prev_cmd_key: tuple,
        stall_ns: float,
        l3_misses: float,
        freq: float,
        spi: float,
        traffic: float,
        traffic_w: float,
        mpki,
        instr_seg: float,
        stop_batchable: bool = False,
    ) -> "tuple | None":
        """Retire quanta until a side-effect boundary; commit them.

        With ``stop_batchable`` the kernel also stops at the first
        *committed* batch-eligible state — pinned non-dithering command,
        long-step stability engaged, telemetry bucket freshly flushed —
        so a multi-run driver (:mod:`repro.core.batchstep`) can take the
        stable tail as one lane of a numpy batch instead.

        Arguments are the runner's live loop variables (whose memoized
        ``spi``/``traffic`` values are valid for ``prev_cmd_key``, which
        is guaranteed because at least one scalar quantum executes
        between kernel calls).  Returns ``None`` when the very next
        quantum is a boundary (the runner then steps it scalar), else
        ``(n, power, t, done, freq_time, cycles, stable_quanta, fi, si,
        rounded_alpha, duty, instr_seg)`` with every fold already
        committed to the substrates.
        """
        controller = self._controller
        sensor = self._sensor
        cap = self._cap
        capped = cap is not None

        (ctime, oc, uc, floor_logged, over_logged, duty, level, at_top,
         saving, esc_pat, deesc_pat, busy) = controller.block_state()
        pfi, psi, pra = prev_cmd_key[0], prev_cmd_key[1], prev_cmd_key[2]
        if prev_cmd_key[3] != duty or prev_cmd_key[4] != level:
            return None

        table = self._model.power_table(
            self._pstates,
            duty=duty,
            activity=1.0,
            gating_saving_w=saving,
            dram_traffic_bps=0.0,
            busy_cores=busy,
        )
        temp = self._thermal.temperature_c
        ok, (pb, unc, tr0, dyn, gate) = self._table_constants(
            table, temp, capped
        )
        if not ok:
            self.disabled = True
            return None

        # ---- locals for the loop (every constant the scalar path
        # ---- re-reads through attribute access per quantum) ----------
        q = self._q
        q10 = self._q10
        stable_thr = self._stable_thr
        nref = self._nref_leak
        coeff = self._leak_coeff
        ref_t = self._leak_ref_t
        ambient = self._ambient
        r_th = self._r_th
        idle_w = self._idle_w
        decay_q = self._decay_q
        decay_q10 = self._decay_q10
        base_cpi = self._base_cpi
        stall_s = stall_ns * 1e-9
        line_bytes = self._line_bytes
        bw_gbs = self._bw_gbs
        w_per_gbs = self._w_per_gbs
        total = self._total_instr
        max_sim = self._max_sim
        ff_on = self._ff
        m_period = self._m_period
        band = self._band
        s_alpha = sensor.smoothing
        n_last = self._n_states - 1
        freqs = self._freqs
        if capped:
            target = cap - self._target_margin
            cap_hyst = cap + self._hyst
            cap_mhyst = cap - self._hyst
            cap_mdeesc = cap - self._deesc_margin
            duty_min = self._duty_min
            duty_step = self._duty_step
            eps_pinned = self._eps_pinned
            eps_dither = self._eps_dither
            # Duty-only throttle steps are handled in-block: their SEL
            # entries land at the stepped quantum's commit, and the
            # committed duty travels back through ``commit_block``.
            sel_log = controller.sel.log
            t_throt = SelEventType.DUTY_THROTTLED
            t_pin = SelEventType.DUTY_PINNED_AT_MINIMUM
        else:
            if (pfi, psi, pra, duty, level) != (0, 0, 1.0, 1.0, 0):
                return None
            eps_pinned = self._eps_pinned
        dyn0 = dyn[0]
        gate0 = gate[0]
        dyn_l = dyn[n_last]
        gate_l = gate[n_last]

        filt = sensor.reading_w
        stable = stable_quanta
        # ``duty`` tracks the quantum being evaluated (it may step down
        # tentatively); ``duty_c`` is the last *committed* duty — the
        # value commit_block installs and the runner's key resumes from.
        duty_c = duty
        sel_q = False
        # Memoized per-command quantities, seeded from the runner's
        # one-slot memos (valid for prev_cmd_key).
        freq_m = freq
        fm = freq / 1e6
        seg = instr_seg
        e_j = self._energy.energy_j
        el_s = self._energy.elapsed_s
        me_j = self._meter.energy_j
        next_s = self._meter.next_sample_s
        series = self._series
        segs = []
        msamples = []
        msamples_append = msamples.append
        segs_append = segs.append
        series_append = series.append if series is not None else None

        sampler = self._sampler
        telem = sampler is not None
        if telem:
            m1, m2, m3, m4, m5 = mpki
            t_period = self._t_period
            # NamedTuple construction via the generated __new__ costs
            # ~3x a raw tuple build; eleven points per long-step
            # quantum make that the telemetry path's biggest term.
            # ``tuple.__new__(SeriesPoint, ...)`` builds the identical
            # object (NamedTuple has no __init__ logic of its own).
            SP = SeriesPoint
            sp = tuple.__new__
            # Flushed buckets collect per channel and land in one
            # add_block call each at commit (decimation timing is
            # replayed there when capacity is reached).
            flushed = [[] for _ in range(11)]
            (f_pw, f_fm, f_ps, f_dy, f_c0, f_tc,
             f_m1, f_m2, f_m3, f_m4, f_m5) = (
                lst.append for lst in flushed
            )
            bt0, el, acc = sampler.block_state()
            bucket_fresh = el <= 0.0
            const_seeded = bucket_fresh
            if not bucket_fresh:
                if len(acc) != 11:
                    return None
                ws_pw, mn_pw, mx_pw = acc["power_w"]
                ws_fm, mn_fm, mx_fm = acc["freq_mhz"]
                ws_ps, mn_ps, mx_ps = acc["pstate"]
                ws_dy, mn_dy, mx_dy = acc["duty"]
                ws_c0, mn_c0, mx_c0 = acc["c0_frac"]
                ws_tc, mn_tc, mx_tc = acc["temp_c"]
                ws_m1, mn_m1, mx_m1 = acc["l1_mpki"]
                ws_m2, mn_m2, mx_m2 = acc["l2_mpki"]
                ws_m3, mn_m3, mx_m3 = acc["l3_mpki"]
                ws_m4, mn_m4, mx_m4 = acc["dtlb_mpki"]
                ws_m5, mn_m5, mx_m5 = acc["itlb_mpki"]
            # Fused single-quantum buckets batch as raw (bt0, pw, fm,
            # psv, temp) tuples — one append per quantum — and drain
            # into SeriesPoints channel by channel.  mpki cannot change
            # inside a block, and a duty step drains the batch first,
            # so ``fb`` only ever holds quanta sharing the *current*
            # duty — both are drain-time constants.
            fb = []
            fb_append = fb.append
            fb_dt = 0.0

            def drain(dt_b):
                # Same arithmetic as the scalar seed-then-flush of a
                # single-quantum bucket: ws = v * dt; el = 0.0 + dt;
                # mean = ws / el; min = max = v.
                el_b = 0.0 + dt_b
                bs, pws, fms, pss, tcs = zip(*fb)
                dmean = (duty * dt_b) / el_b
                mm1 = (m1 * dt_b) / el_b
                mm2 = (m2 * dt_b) / el_b
                mm3 = (m3 * dt_b) / el_b
                mm4 = (m4 * dt_b) / el_b
                mm5 = (m5 * dt_b) / el_b
                flushed[0].extend(
                    [sp(SP, (b, el_b, (v * dt_b) / el_b, v, v))
                     for b, v in zip(bs, pws)])
                flushed[1].extend(
                    [sp(SP, (b, el_b, (v * dt_b) / el_b, v, v))
                     for b, v in zip(bs, fms)])
                flushed[2].extend(
                    [sp(SP, (b, el_b, (v * dt_b) / el_b, v, v))
                     for b, v in zip(bs, pss)])
                flushed[3].extend(
                    [sp(SP, (b, el_b, dmean, duty, duty)) for b in bs])
                flushed[4].extend(
                    [sp(SP, (b, el_b, dmean, duty, duty)) for b in bs])
                flushed[5].extend(
                    [sp(SP, (b, el_b, (v * dt_b) / el_b, v, v))
                     for b, v in zip(bs, tcs)])
                flushed[6].extend(
                    [sp(SP, (b, el_b, mm1, m1, m1)) for b in bs])
                flushed[7].extend(
                    [sp(SP, (b, el_b, mm2, m2, m2)) for b in bs])
                flushed[8].extend(
                    [sp(SP, (b, el_b, mm3, m3, m3)) for b in bs])
                flushed[9].extend(
                    [sp(SP, (b, el_b, mm4, m4, m4)) for b in bs])
                flushed[10].extend(
                    [sp(SP, (b, el_b, mm5, m5, m5)) for b in bs])
                fb.clear()

        state0 = sensor.rng_state()
        chunk = _CHUNK0
        noise = sensor.noise_block(chunk).tolist()
        drawn = chunk
        n = 0

        while True:
            if (
                stop_batchable
                and n
                and pfi == psi
                and pra == 1.0
                and stable > stable_thr
                and (not telem or bucket_fresh)
            ):
                # The committed state is a pinned long-step march — hand
                # the tail to the batch engine.
                break
            if n == drawn:
                if chunk < _CHUNK_MAX:
                    chunk *= 4
                noise.extend(sensor.noise_block(chunk).tolist())
                drawn += chunk

            # ---- controller.update, replayed tentatively ------------
            # (sensor.sample)
            noisy = power + noise[n]
            filt_new = filt + s_alpha * (noisy - filt)

            # (leakage + bracket at the current temperature)
            scale = 1.0 + coeff * (temp - ref_t)
            if scale < 0.4:
                scale = 0.4
            base = pb + (nref * scale) + unc

            if capped:
                p0 = (base + dyn0) - gate0
                if target >= p0:
                    fi = si = 0
                    alpha = 1.0
                else:
                    p_l = (base + dyn_l) - gate_l
                    if target <= p_l:
                        fi = si = n_last
                        alpha = 1.0
                    else:
                        # Smallest j in 1..n_last with powers[j] <=
                        # target — the scalar scan's first match, given
                        # the margin-checked strictly-decreasing table.
                        j = psi
                        if j < 1:
                            j = 1
                        pj = (base + dyn[j]) - gate[j]
                        if pj <= target:
                            while j > 1:
                                pjm = (base + dyn[j - 1]) - gate[j - 1]
                                if pjm <= target:
                                    j -= 1
                                    pj = pjm
                                else:
                                    break
                        else:
                            while True:
                                j += 1
                                pj = (base + dyn[j]) - gate[j]
                                if pj <= target:
                                    break
                        fi = j - 1
                        si = j
                        p_fast = (base + dyn[fi]) - gate[fi]
                        if p_fast <= pj:
                            alpha = 1.0
                        else:
                            alpha = (target - pj) / (p_fast - pj)
                            if alpha > 1.0:
                                alpha = 1.0
                            elif alpha < 0.0:
                                alpha = 0.0
                at_floor = si == n_last and (fi == si or alpha <= 0.0)

                # ---- escalation state machine (break before any side
                # ---- effect the kernel does not model; duty-only
                # ---- throttle steps *are* modelled in-block) --------
                if at_floor and not floor_logged:
                    break
                measured = filt_new
                if measured > cap_hyst:
                    oc_n = oc + 1
                    uc_n = 0
                    if not over_logged and oc_n >= esc_pat:
                        break
                    if at_floor and oc_n >= esc_pat:
                        if not at_top:
                            break
                        oc_n = 0
                        dn = duty - duty_step
                        if dn < duty_min:
                            dn = duty_min
                        if dn < duty:
                            # ---- in-block duty throttle step --------
                            # The scalar branch lowers duty, logs the
                            # DUTY_THROTTLED (and possibly PINNED) SEL
                            # entries, and re-brackets against the new
                            # duty's power table.  Gating, rates, and
                            # mpki are untouched by a duty move, so the
                            # block continues; the SEL entries are
                            # deferred to this quantum's commit below.
                            ntab = self._model.power_table(
                                self._pstates,
                                duty=dn,
                                activity=1.0,
                                gating_saving_w=saving,
                                dram_traffic_bps=0.0,
                                busy_cores=busy,
                            )
                            nok, nconsts = self._table_constants(
                                ntab, temp, True
                            )
                            if not nok:
                                break
                            pb, unc, _ntr0, dyn, gate = nconsts
                            dyn0 = dyn[0]
                            gate0 = gate[0]
                            dyn_l = dyn[n_last]
                            gate_l = gate[n_last]
                            duty = dn
                            sel_q = True
                            # duty is part of the timing memo's key.
                            freq_m = -1.0
                            if telem:
                                if fb:
                                    # Flush batched fused buckets while
                                    # the closure still sees the old
                                    # duty; after this point ``fb``
                                    # only ever holds same-duty quanta.
                                    drain(fb_dt)
                                # An inherited bucket must fold the new
                                # duty's min/max once more.
                                const_seeded = False
                            # Re-bracket at the new duty — the scalar
                            # path's second _bracket call.  Same base
                            # (leakage is duty-independent), same
                            # first-match walk over the new table.
                            base = pb + (nref * scale) + unc
                            p0 = (base + dyn0) - gate0
                            if target >= p0:
                                fi = si = 0
                                alpha = 1.0
                            else:
                                p_l = (base + dyn_l) - gate_l
                                if target <= p_l:
                                    fi = si = n_last
                                    alpha = 1.0
                                else:
                                    j = psi
                                    if j < 1:
                                        j = 1
                                    pj = (base + dyn[j]) - gate[j]
                                    if pj <= target:
                                        while j > 1:
                                            pjm = (base + dyn[j - 1]) - gate[j - 1]
                                            if pjm <= target:
                                                j -= 1
                                                pj = pjm
                                            else:
                                                break
                                    else:
                                        while True:
                                            j += 1
                                            pj = (base + dyn[j]) - gate[j]
                                            if pj <= target:
                                                break
                                    fi = j - 1
                                    si = j
                                    p_fast = (base + dyn[fi]) - gate[fi]
                                    if p_fast <= pj:
                                        alpha = 1.0
                                    else:
                                        alpha = (target - pj) / (p_fast - pj)
                                        if alpha > 1.0:
                                            alpha = 1.0
                                        elif alpha < 0.0:
                                            alpha = 0.0
                            at_floor = si == n_last and (
                                fi == si or alpha <= 0.0
                            )
                        # else: ladder at top, duty already pinned — the
                        # scalar branch is pure bookkeeping (over_count
                        # resets, handled above).
                else:
                    can_raise = duty < 1.0 and measured < cap_mhyst
                    can_deesc = level > 0 and (
                        not at_floor or measured < cap_mdeesc
                    )
                    if can_raise or can_deesc:
                        uc_n = uc + 1
                        oc_n = 0
                        if uc_n >= deesc_pat:
                            break
                    else:
                        oc_n = 0
                        uc_n = 0
            else:
                fi = si = 0
                alpha = 1.0
                at_floor = False
                oc_n = oc
                uc_n = uc

            # ---- command key / stability / step length --------------
            # The scalar key is (fi, si, ra, duty, level); level never
            # changes in-block and duty only on a ``sel_q`` quantum.
            ra = round(alpha, 2)
            if fi == pfi and si == psi and ra == pra:
                st_n = 0 if sel_q else stable + 1
            else:
                st_n = 0
            long_step = st_n > stable_thr
            dt = q10 if long_step else q

            # ---- timing memo (runner's spi_sig, keyed on frequency:
            # ---- gating is constant in-block, and a duty step forces
            # ---- a miss via the freq_m sentinel) --------------------
            freq_n = alpha * freqs[fi] + (1.0 - alpha) * freqs[si]
            if freq_n != freq_m:
                spi = (base_cpi / freq_n + stall_s) / duty
                instr_rate = 1.0 / spi
                traffic = l3_misses * instr_rate * line_bytes
                traffic_w = min(traffic / 1e9, bw_gbs) * w_per_gbs
                fm = freq_n / 1e6
                freq_m = freq_n

            # ---- the power blend (runner's memoized decomposition) --
            if alpha == 1.0:
                pw = (base + dyn[fi] + traffic_w) - gate[fi]
            elif alpha == 0.0:
                pw = (base + dyn[si] + traffic_w) - gate[si]
            else:
                pw = alpha * (base + dyn[fi] + traffic_w - gate[fi]) + (
                    1.0 - alpha
                ) * (base + dyn[si] + traffic_w - gate[si])
            if not pw >= 0.0:
                break

            # thermal.step's target, also the fast-forward screen's.
            ex = pw - idle_w
            if ex < 0.0:
                ex = 0.0
            ss = ambient + r_th * ex

            remaining = (total - done) * spi
            if remaining <= dt:
                # Final (partial) quantum: the scalar path owns it.
                break
            if ff_on and long_step and t + remaining <= max_sim:
                diff = temp - ss
                if diff < 0.0:
                    diff = -diff
                if diff <= (eps_pinned if fi == si else eps_dither):
                    if capped:
                        # controller.is_quiescent, replayed.
                        lo = pw - band
                        hi = pw + band
                        if filt_new < lo:
                            lo = filt_new
                        if filt_new > hi:
                            hi = filt_new
                        quiet = not (at_floor and not floor_logged)
                        if quiet and hi > cap_hyst:
                            if not over_logged:
                                quiet = False
                            elif at_floor and (
                                not at_top or duty > duty_min
                            ):
                                quiet = False
                        if quiet and lo <= cap_hyst:
                            if duty < 1.0 and lo < cap_mhyst:
                                quiet = False
                            elif level > 0 and (
                                not at_floor or lo < cap_mdeesc
                            ):
                                quiet = False
                        if quiet:
                            break
                    else:
                        break
            t_new = t + dt
            if t_new > max_sim:
                # The scalar path commits this quantum and raises.
                break

            # ---- every break check passed: commit the quantum -------
            ctime += q
            if sel_q:
                # The duty step retired: log its SEL entries with the
                # scalar path's timestamp (controller time after this
                # quantum's increment) and make the new duty the
                # committed one.
                sel_q = False
                duty_c = duty
                sel_log(ctime, t_throt, f"duty {duty:.2f}")
                if duty == duty_min:
                    sel_log(ctime, t_pin, f"duty {duty:.2f}")
            oc = oc_n
            uc = uc_n
            filt = filt_new
            stable = st_n
            pfi = fi
            psi = si
            pra = ra
            instr_now = dt / spi
            done += instr_now
            seg += instr_now
            fd = freq_n * dt
            freq_time += fd
            cycles += fd * duty
            pd = pw * dt

            if telem:
                psv = alpha * fi + (1.0 - alpha) * si
                if bucket_fresh and dt >= t_period:
                    # Single-quantum bucket (every long-step quantum):
                    # seed, fold, and flush collapse into one batched
                    # column append; ``drain`` materialises the points.
                    if fb and dt != fb_dt:
                        drain(fb_dt)
                    fb_dt = dt
                    fb_append((bt0, pw, fm, psv, temp))
                    # The flushed bucket spanned el = 0.0 + dt, and
                    # 0.0 + x == x exactly for positive x.
                    bt0 = bt0 + dt
                elif bucket_fresh:
                    if fb:
                        drain(fb_dt)
                    ws_pw = pd
                    mn_pw = mx_pw = pw
                    ws_fm = fm * dt
                    mn_fm = mx_fm = fm
                    ws_ps = psv * dt
                    mn_ps = mx_ps = psv
                    ddt = duty * dt
                    ws_dy = ddt
                    mn_dy = mx_dy = duty
                    ws_c0 = ddt
                    mn_c0 = mx_c0 = duty
                    ws_tc = temp * dt
                    mn_tc = mx_tc = temp
                    ws_m1 = m1 * dt
                    mn_m1 = mx_m1 = m1
                    ws_m2 = m2 * dt
                    mn_m2 = mx_m2 = m2
                    ws_m3 = m3 * dt
                    mn_m3 = mx_m3 = m3
                    ws_m4 = m4 * dt
                    mn_m4 = mx_m4 = m4
                    ws_m5 = m5 * dt
                    mn_m5 = mx_m5 = m5
                    bucket_fresh = False
                    # dt < period here, so the freshly seeded bucket
                    # cannot flush yet.
                    el += dt
                else:
                    ws_pw += pd
                    if pw < mn_pw:
                        mn_pw = pw
                    if pw > mx_pw:
                        mx_pw = pw
                    ws_fm += fm * dt
                    if fm < mn_fm:
                        mn_fm = fm
                    if fm > mx_fm:
                        mx_fm = fm
                    ws_ps += psv * dt
                    if psv < mn_ps:
                        mn_ps = psv
                    if psv > mx_ps:
                        mx_ps = psv
                    ddt = duty * dt
                    ws_dy += ddt
                    ws_c0 += ddt
                    ws_tc += temp * dt
                    if temp < mn_tc:
                        mn_tc = temp
                    if temp > mx_tc:
                        mx_tc = temp
                    ws_m1 += m1 * dt
                    ws_m2 += m2 * dt
                    ws_m3 += m3 * dt
                    ws_m4 += m4 * dt
                    ws_m5 += m5 * dt
                    if not const_seeded:
                        # Constant channels: one min/max fold covers
                        # every in-block quantum of an inherited bucket.
                        if duty < mn_dy:
                            mn_dy = duty
                        if duty > mx_dy:
                            mx_dy = duty
                        if duty < mn_c0:
                            mn_c0 = duty
                        if duty > mx_c0:
                            mx_c0 = duty
                        if m1 < mn_m1:
                            mn_m1 = m1
                        if m1 > mx_m1:
                            mx_m1 = m1
                        if m2 < mn_m2:
                            mn_m2 = m2
                        if m2 > mx_m2:
                            mx_m2 = m2
                        if m3 < mn_m3:
                            mn_m3 = m3
                        if m3 > mx_m3:
                            mx_m3 = m3
                        if m4 < mn_m4:
                            mn_m4 = m4
                        if m4 > mx_m4:
                            mx_m4 = m4
                        if m5 < mn_m5:
                            mn_m5 = m5
                        if m5 > mx_m5:
                            mx_m5 = m5
                        const_seeded = True
                    el += dt
                    if el >= t_period:
                        f_pw(sp(SP, (bt0, el, ws_pw / el, mn_pw, mx_pw)))
                        f_fm(sp(SP, (bt0, el, ws_fm / el, mn_fm, mx_fm)))
                        f_ps(sp(SP, (bt0, el, ws_ps / el, mn_ps, mx_ps)))
                        f_dy(sp(SP, (bt0, el, ws_dy / el, mn_dy, mx_dy)))
                        f_c0(sp(SP, (bt0, el, ws_c0 / el, mn_c0, mx_c0)))
                        f_tc(sp(SP, (bt0, el, ws_tc / el, mn_tc, mx_tc)))
                        f_m1(sp(SP, (bt0, el, ws_m1 / el, mn_m1, mx_m1)))
                        f_m2(sp(SP, (bt0, el, ws_m2 / el, mn_m2, mx_m2)))
                        f_m3(sp(SP, (bt0, el, ws_m3 / el, mn_m3, mx_m3)))
                        f_m4(sp(SP, (bt0, el, ws_m4 / el, mn_m4, mx_m4)))
                        f_m5(sp(SP, (bt0, el, ws_m5 / el, mn_m5, mx_m5)))
                        bt0 = bt0 + el
                        el = 0.0
                        bucket_fresh = True

            temp = ss + (temp - ss) * (decay_q10 if long_step else decay_q)
            while next_s < t_new:
                if next_s >= t:
                    msamples_append((next_s, pw))
                next_s += m_period
            me_j += pd
            e_j += pd
            el_s += dt
            segs_append((pw, dt))
            t = t_new
            if series_append is not None:
                series_append((t, pw, fm, duty))
            power = pw
            n += 1

        if n == 0:
            sensor.rewind(state0, 0)
            return None

        if n != drawn:
            sensor.rewind(state0, n)
        sensor.commit_block(filt)
        controller.commit_block(ctime, oc, uc, duty_c)
        self._thermal.set_temperature(temp)
        self._meter.advance_block(msamples, next_s, me_j)
        self._energy.add_block(segs, e_j, el_s)
        if telem:
            if fb:
                drain(fb_dt)
            for ch, pts in zip(self._channels, flushed):
                if pts:
                    ch.add_block(pts)
            if el > 0.0:
                acc_new = {
                    "power_w": [ws_pw, mn_pw, mx_pw],
                    "freq_mhz": [ws_fm, mn_fm, mx_fm],
                    "pstate": [ws_ps, mn_ps, mx_ps],
                    "duty": [ws_dy, mn_dy, mx_dy],
                    "c0_frac": [ws_c0, mn_c0, mx_c0],
                    "temp_c": [ws_tc, mn_tc, mx_tc],
                    "l1_mpki": [ws_m1, mn_m1, mx_m1],
                    "l2_mpki": [ws_m2, mn_m2, mx_m2],
                    "l3_mpki": [ws_m3, mn_m3, mx_m3],
                    "dtlb_mpki": [ws_m4, mn_m4, mx_m4],
                    "itlb_mpki": [ws_m5, mn_m5, mx_m5],
                }
            else:
                acc_new = {}
            sampler.commit_block(n, bt0, el, acc_new, flushed)
        return (
            n, power, t, done, freq_time, cycles, stable,
            pfi, psi, pra, duty_c, seg,
        )
