"""Infer the active power-management mechanisms from microbenchmarks.

The paper could only *suggest* that "techniques that involve the
configuration of the memory hierarchy are being employed" at low caps
(Section IV-B) — its stride experiment was confounded by the dynamic
enforcement.  :class:`TechniqueDetector` completes the methodology the
authors proposed as future work: run mechanism-isolating probes
(:mod:`repro.workloads.microbench`) and report, with magnitudes, which
mechanisms are active:

- **DVFS** — running-clock frequency below nominal (from the cycle
  counter, immune to clock modulation);
- **clock modulation** — instruction rate below what the running clock
  explains (duty < 1);
- **L2/L3 way gating** — capacity edges earlier than the datasheet;
- **iTLB gating** — TLB reach edge earlier than the datasheet;
- **DRAM gating** — DRAM-resident latency inflated beyond what the
  cache path explains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..workloads.microbench import (
    MachineUnderTest,
    cache_capacity_probe,
    compute_probe,
    dram_latency_probe,
    itlb_reach_probe,
)

__all__ = ["TechniqueDetector", "DetectionReport"]


@dataclass(frozen=True)
class DetectionReport:
    """What the probes revealed about the machine's hidden state."""

    #: Running clock frequency while unthrottled quanta execute (Hz).
    effective_freq_hz: float
    #: Estimated clock-modulation duty factor in (0, 1].
    duty: float
    #: Estimated effective L2 capacity (bytes).
    effective_l2_bytes: int
    #: Estimated effective L3 capacity (bytes).
    effective_l3_bytes: int
    #: Estimated effective iTLB reach (pages).
    effective_itlb_pages: int
    #: Measured DRAM-resident access latency (ns).
    dram_latency_ns: float
    #: Nominal values for comparison.
    nominal_freq_hz: float
    nominal_l2_bytes: int
    nominal_l3_bytes: int
    nominal_itlb_pages: int
    nominal_dram_latency_ns: float

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    @property
    def dvfs_active(self) -> bool:
        """Clock running below 95 % of nominal."""
        return self.effective_freq_hz < 0.95 * self.nominal_freq_hz

    @property
    def clock_modulation_active(self) -> bool:
        """Instruction rate below what the running clock explains."""
        return self.duty < 0.95

    @property
    def l2_way_gating_active(self) -> bool:
        """Effective L2 capacity below 75 % of the datasheet value."""
        return self.effective_l2_bytes < 0.75 * self.nominal_l2_bytes

    @property
    def l3_way_gating_active(self) -> bool:
        """Effective L3 capacity below 75 % of the datasheet value."""
        return self.effective_l3_bytes < 0.75 * self.nominal_l3_bytes

    @property
    def itlb_gating_active(self) -> bool:
        """Effective iTLB reach below 75 % of the datasheet entries."""
        return self.effective_itlb_pages < 0.75 * self.nominal_itlb_pages

    @property
    def dram_gating_active(self) -> bool:
        """DRAM latency more than 1.5x the nominal service time."""
        return self.dram_latency_ns > 1.5 * self.nominal_dram_latency_ns

    def summary(self) -> str:
        """Human-readable verdict list."""
        rows = [
            ("DVFS", self.dvfs_active,
             f"clock {self.effective_freq_hz / 1e6:.0f} MHz "
             f"(nominal {self.nominal_freq_hz / 1e6:.0f})"),
            ("clock modulation", self.clock_modulation_active,
             f"duty ~{self.duty:.2f}"),
            ("L2 way gating", self.l2_way_gating_active,
             f"effective ~{self.effective_l2_bytes // 1024} KB "
             f"(nominal {self.nominal_l2_bytes // 1024} KB)"),
            ("L3 way gating", self.l3_way_gating_active,
             f"effective ~{self.effective_l3_bytes // (1 << 20)} MB "
             f"(nominal {self.nominal_l3_bytes // (1 << 20)} MB)"),
            ("iTLB gating", self.itlb_gating_active,
             f"reach ~{self.effective_itlb_pages} pages "
             f"(nominal {self.nominal_itlb_pages})"),
            ("DRAM gating", self.dram_gating_active,
             f"latency {self.dram_latency_ns:.0f} ns "
             f"(nominal ~{self.nominal_dram_latency_ns:.0f})"),
        ]
        lines = []
        for name, active, detail in rows:
            flag = "ACTIVE  " if active else "inactive"
            lines.append(f"  {flag}  {name:<16} {detail}")
        return "\n".join(lines)


def _edge_before(curve: Dict[int, float], jump: float) -> int:
    """Largest x whose timing is still on the low plateau.

    ``curve`` maps size -> ns; the edge is the first consecutive pair
    whose ratio exceeds ``jump``; returns the x before it (or the last
    x if no jump is found)."""
    xs = sorted(curve)
    for a, b in zip(xs, xs[1:]):
        lo = max(curve[a], 1e-3)
        if curve[b] / lo > jump:
            return a
    return xs[-1]


class TechniqueDetector:
    """Runs the probe suite against a machine and interprets it."""

    def __init__(self, machine: MachineUnderTest, seed: int = 0) -> None:
        self._machine = machine
        self._rng = np.random.default_rng(seed)

    def detect(
        self,
        l2_footprints: Sequence[int] = (
            48 * 1024, 96 * 1024, 160 * 1024, 224 * 1024, 384 * 1024,
        ),
        l3_footprints: Sequence[int] = tuple(
            m * 1024 * 1024 for m in (2, 4, 6, 10, 14, 18, 24)
        ),
        itlb_page_counts: Sequence[int] = (8, 16, 24, 48, 96, 128, 192),
    ) -> DetectionReport:
        """Run every probe and assemble the report."""
        machine = self._machine
        cfg = machine.config

        compute = compute_probe(machine)
        freq = compute.effective_freq_hz
        duty = compute.duty

        l2_curve = cache_capacity_probe(machine, l2_footprints, self._rng)
        l3_curve = cache_capacity_probe(machine, l3_footprints, self._rng)
        itlb_curve = itlb_reach_probe(machine, itlb_page_counts, self._rng)
        dram_ns = dram_latency_probe(machine, self._rng)

        nominal_costs_dram = (
            cfg.l1d.hit_latency_ns
            + cfg.l1d.miss_penalty_ns
            + cfg.l2.miss_penalty_ns
            + cfg.l3.miss_penalty_ns
        )
        return DetectionReport(
            effective_freq_hz=freq,
            duty=duty,
            effective_l2_bytes=_edge_before(l2_curve, jump=1.6),
            effective_l3_bytes=_edge_before(l3_curve, jump=1.6),
            effective_itlb_pages=_edge_before(itlb_curve, jump=1.6),
            dram_latency_ns=dram_ns,
            nominal_freq_hz=2.701e9,
            nominal_l2_bytes=cfg.l2.capacity_bytes,
            nominal_l3_bytes=cfg.l3.capacity_bytes,
            nominal_itlb_pages=cfg.itlb.entries,
            nominal_dram_latency_ns=nominal_costs_dram,
        )

