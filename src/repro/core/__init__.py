"""The paper's experiment methodology — the library's primary surface.

- :mod:`.metrics` — per-run results and paper-style percent diffs;
- :mod:`.runner` — executes a workload on the simulated node under a
  cap, coupling core timing, hierarchy misses, power, thermal, and the
  BMC control loop;
- :mod:`.experiment` — the cap sweep with repetitions and averaging
  (Section III: nine caps, five runs each, averaged);
- :mod:`.normalize` — the per-metric normalisation of Figures 1-2;
- :mod:`.report` — renders Table I, Table II and the figure series;
- :mod:`.amenability` — the characterisation methodology the paper
  proposes as future work (knee detection, tolerable-delay cap ranges).

Plus the four future-work extensions of Section V, implemented:

- :mod:`.multicore` — multi-core applications under a node cap;
- :mod:`.detector` — microbenchmark identification of the active
  power-management mechanisms;
- :mod:`.phased` — unpredictable (bursty) workloads against a budget;
- :mod:`.predictor` — predict cap impact from baseline counters alone.
"""

from .metrics import RunResult, AveragedResult, percent_diff
from .runner import NodeRunner
from .experiment import PowerCapExperiment, ExperimentResult
from .normalize import normalize_series
from .report import (
    render_table1,
    render_table2,
    figure1_series,
    figure2_series,
)
from .amenability import AmenabilityReport, characterize_amenability
from .multicore import MultiCoreRunner, MultiCoreResult
from .detector import TechniqueDetector, DetectionReport
from .phased import PhasedRunner, BurstyRunResult, BudgetComparison
from .predictor import CapImpactPredictor, CapRegime, PredictedImpact
from .optimizer import CapOptimizer, CapRecommendation
from .serialize import save_experiment, load_experiment

__all__ = [
    "RunResult",
    "AveragedResult",
    "percent_diff",
    "NodeRunner",
    "PowerCapExperiment",
    "ExperimentResult",
    "normalize_series",
    "render_table1",
    "render_table2",
    "figure1_series",
    "figure2_series",
    "AmenabilityReport",
    "characterize_amenability",
    "MultiCoreRunner",
    "MultiCoreResult",
    "TechniqueDetector",
    "DetectionReport",
    "PhasedRunner",
    "BurstyRunResult",
    "BudgetComparison",
    "CapImpactPredictor",
    "CapRegime",
    "PredictedImpact",
    "CapOptimizer",
    "CapRecommendation",
    "save_experiment",
    "load_experiment",
]
