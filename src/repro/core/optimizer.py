"""Choose the best cap for a mission: deadline-constrained energy.

The paper's Discussion (Section IV-C) frames the integrator's real
question: given a job with a soft real-time deadline and a platform
with a power allocation, *which cap should be programmed?*  Too high
and the allocation is violated; too low and the deadline (or the
battery) is.

:class:`CapOptimizer` answers it in two stages:

1. **screen** with the baseline-counters predictor
   (:class:`~repro.core.predictor.CapImpactPredictor`) — instant, no
   capped runs — discarding caps whose predicted slowdown already
   breaks the deadline;
2. **verify** the surviving candidates with full simulated runs,
   picking the feasible cap that minimises the chosen objective.

Objectives: ``"energy"`` (battery missions), ``"headroom"`` (maximise
the watts released to other payloads — generator missions), or
``"time"`` (finish as fast as the allocation allows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..mem.reconfig import GatingState
from ..workloads.base import Workload
from .metrics import RunResult
from .predictor import CapImpactPredictor
from .runner import NodeRunner

__all__ = ["CapOptimizer", "CapRecommendation"]

_OBJECTIVES = ("energy", "headroom", "time")


@dataclass(frozen=True)
class CapRecommendation:
    """The optimiser's answer."""

    #: The recommended cap (None = run uncapped).
    cap_w: Optional[float]
    objective: str
    deadline_s: float
    #: The verified run at the recommended cap.
    run: RunResult
    #: Caps screened out by prediction alone (no simulation spent).
    screened_out_w: tuple
    #: Caps simulated and rejected (deadline missed).
    verified_out_w: tuple

    @property
    def meets_deadline(self) -> bool:
        """Whether the verified run fits the deadline."""
        return self.run.execution_s <= self.deadline_s


class CapOptimizer:
    """Two-stage cap selection for one workload and mission."""

    def __init__(self, runner: NodeRunner) -> None:
        self._runner = runner
        self._predictor = CapImpactPredictor(runner.config)

    def recommend(
        self,
        workload: Workload,
        deadline_s: float,
        candidate_caps_w: Sequence[float],
        objective: str = "energy",
        allocation_w: Optional[float] = None,
    ) -> CapRecommendation:
        """Pick the best cap.

        ``deadline_s`` applies to the *scaled* workload the runner will
        execute; ``allocation_w`` (if given) excludes caps above the
        platform's power allocation up front.
        """
        if objective not in _OBJECTIVES:
            raise SimulationError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        if deadline_s <= 0:
            raise SimulationError("deadline must be positive")
        if not candidate_caps_w:
            raise SimulationError("need at least one candidate cap")

        baseline = self._runner.run(workload)
        if baseline.execution_s > deadline_s:
            raise SimulationError(
                "even the uncapped run misses the deadline "
                f"({baseline.execution_s:.1f} s > {deadline_s:.1f} s)"
            )
        tolerance = deadline_s / baseline.execution_s

        rates = self._runner.rates_for(workload, GatingState.ungated())
        screened_out: List[float] = []
        survivors: List[float] = []
        for cap in sorted(set(float(c) for c in candidate_caps_w), reverse=True):
            if allocation_w is not None and cap > allocation_w:
                screened_out.append(cap)
                continue
            impact = self._predictor.predict(rates, cap)
            # Keep undecidable (lower-bound-within-tolerance) caps for
            # verification; discard only confident violations.
            if impact.tolerable(tolerance) is False:
                screened_out.append(cap)
            else:
                survivors.append(cap)

        verified: Dict[Optional[float], RunResult] = {None: baseline}
        verified_out: List[float] = []
        for cap in survivors:
            run = self._runner.run(workload, cap)
            if run.execution_s <= deadline_s:
                verified[cap] = run
            else:
                verified_out.append(cap)

        def score(item) -> float:
            cap, run = item
            if objective == "energy":
                return run.energy_j
            if objective == "time":
                return run.execution_s
            # headroom: maximise watts released below the uncapped draw
            # -> minimise the cap itself (uncapped counts as no release).
            return cap if cap is not None else float("inf")

        best_cap, best_run = min(verified.items(), key=score)
        return CapRecommendation(
            cap_w=best_cap,
            objective=objective,
            deadline_s=deadline_s,
            run=best_run,
            screened_out_w=tuple(screened_out),
            verified_out_w=tuple(verified_out),
        )
