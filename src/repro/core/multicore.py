"""Multi-core power capping — the paper's first future-work item.

"We would like to extend this study to (1) explore how multi-core
applications are affected by power capping" (Section V).  This module
does exactly that on the simulated node: run ``n_cores`` identical
instances of a workload concurrently under one node-level cap.

Model (documented approximations)
---------------------------------
- **Power**: the node power model's ``busy_cores`` term scales the core
  dynamic power; the uncore/platform/leakage terms are shared.  With
  more busy cores the same cap leaves less power per core, so the BMC
  settles at a lower common P-state — the first-order multi-core
  capping effect.
- **Shared L3**: cores compete for L3 capacity.  We approximate the
  steady state as an equal way-partition: each core's rates are
  measured with the L3 gated to ``1/n`` of its ways (on top of any
  escalation gating).  This is the standard partition approximation for
  symmetric co-runners.
- **DRAM bandwidth**: aggregate traffic approaches the sustained
  bandwidth; an M/M/1-style factor ``1 / (1 - U)`` inflates DRAM
  latency with utilisation ``U`` (capped), modelling queueing at the
  memory controller.
- **Private L1/L2 and TLBs** are per-core and unaffected by co-runners.

The headline result the extension produces: the *knee moves up*.  A cap
that costs one core a few percent can push a fully loaded node past its
DVFS range entirely, and per-core slowdown under a fixed cap grows with
core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.core import CoreTimingModel
from ..arch.node import Node
from ..bmc.controller import CapController
from ..bmc.sensors import PowerSensor
from ..config import NodeConfig, sandy_bridge_config
from ..errors import SimulationError
from ..mem.latency import AccessCosts, stall_ns_per_instruction
from ..mem.reconfig import GatingState
from ..power.energy import EnergyAccumulator
from ..power.meter import WattsUpMeter
from ..rng import DEFAULT_SEED, RngStreams
from ..workloads.base import Workload
from .runner import NodeRunner

__all__ = ["MultiCoreRunner", "MultiCoreResult"]


@dataclass(frozen=True)
class MultiCoreResult:
    """One multi-core run under one cap."""

    workload: str
    n_cores: int
    cap_w: float | None
    #: Wall time for every core to finish its instance.
    execution_s: float
    avg_power_w: float
    energy_j: float
    avg_freq_mhz: float
    #: Aggregate instruction throughput (instr/s across all cores).
    throughput_ips: float
    max_escalation_level: int
    min_duty: float

    @property
    def per_core_ips(self) -> float:
        """Throughput of one core."""
        return self.throughput_ips / self.n_cores


class MultiCoreRunner:
    """Run ``n_cores`` symmetric instances of a workload under a cap."""

    def __init__(
        self,
        config: NodeConfig | None = None,
        seed: int = DEFAULT_SEED,
        slice_accesses: int = 200_000,
    ) -> None:
        self._config = config or sandy_bridge_config()
        self._streams = RngStreams(seed)
        # Reuse the single-core runner's trace/rate machinery.
        self._rates_runner = NodeRunner(
            config=self._config, seed=seed, slice_accesses=slice_accesses
        )

    @property
    def config(self) -> NodeConfig:
        """The node configuration."""
        return self._config

    def _shared_gating(self, base: GatingState, n_cores: int) -> GatingState:
        """Compose escalation gating with the L3 partition for n cores."""
        if n_cores == 1:
            return base
        share = max(1.0 / self._config.l3.ways, base.l3_way_fraction / n_cores)
        return GatingState(
            l1_way_fraction=base.l1_way_fraction,
            l2_way_fraction=base.l2_way_fraction,
            l3_way_fraction=share,
            itlb_fraction=base.itlb_fraction,
            dtlb_fraction=base.dtlb_fraction,
            dram_latency_multiplier=base.dram_latency_multiplier,
            cache_latency_multiplier=base.cache_latency_multiplier,
        )

    def run(
        self,
        workload: Workload,
        n_cores: int,
        cap_w: float | None = None,
        rep: int = 0,
    ) -> MultiCoreResult:
        """Execute ``n_cores`` instances; returns the joint result."""
        if not 1 <= n_cores <= self._config.n_cores:
            raise SimulationError(
                f"n_cores must be in 1..{self._config.n_cores}"
            )
        cfg = self._config
        tag = f"mc:{workload.name}:cores={n_cores}:cap={cap_w}:rep={rep}"
        node = Node(cfg)
        sensor = PowerSensor(self._streams.fresh(f"sensor:{tag}"))
        controller = CapController(node, sensor, busy_cores=n_cores)
        controller.set_cap(cap_w)
        meter = WattsUpMeter(cfg.meter, self._streams.fresh(f"meter:{tag}"))
        energy = EnergyAccumulator()
        core = CoreTimingModel(cfg.base_cpi)
        quantum = cfg.bmc.control_quantum_s

        total_per_core = workload.spec.total_instructions
        done = 0.0  # per-core (symmetric cores advance together)
        t = 0.0
        freq_time = 0.0
        max_escalation = 0
        min_duty = 1.0
        power = node.power_w(busy_cores=n_cores)
        stable = 0
        prev_key = None

        while done < total_per_core:
            cmd = controller.update(power, traffic_bps=0.0)
            key = (cmd.pstate_fast.index, cmd.pstate_slow.index,
                   round(cmd.alpha, 2), cmd.duty, cmd.escalation_level)
            stable = stable + 1 if key == prev_key else 0
            prev_key = key
            step_s = quantum * (10.0 if stable > 40 else 1.0)

            gating = self._shared_gating(cmd.gating, n_cores)
            rates = self._rates_runner.rates_for(workload, gating)
            # Aggregate DRAM pressure -> queueing-inflated latency.
            freq = cmd.effective_freq_hz
            costs0 = AccessCosts.from_config(cfg, gating)
            stall0 = stall_ns_per_instruction(rates, costs0)
            spi0 = core.seconds_per_instruction(freq, stall0, cmd.duty)
            traffic_one = rates.l3_misses / spi0 * cfg.l3.line_bytes
            utilisation = min(
                0.90, n_cores * traffic_one / (cfg.dram.bandwidth_gbs * 1e9)
            )
            queue_factor = 1.0 / (1.0 - utilisation)
            inflated = GatingState(
                l1_way_fraction=gating.l1_way_fraction,
                l2_way_fraction=gating.l2_way_fraction,
                l3_way_fraction=gating.l3_way_fraction,
                itlb_fraction=gating.itlb_fraction,
                dtlb_fraction=gating.dtlb_fraction,
                dram_latency_multiplier=gating.dram_latency_multiplier
                * queue_factor,
                cache_latency_multiplier=gating.cache_latency_multiplier,
            )
            costs = AccessCosts.from_config(cfg, inflated)
            stall = stall_ns_per_instruction(rates, costs)
            spi = core.seconds_per_instruction(freq, stall, cmd.duty)
            traffic_total = n_cores * rates.l3_misses / spi * cfg.l3.line_bytes

            model = node.power_model
            temp = node.thermal.temperature_c

            def p_of(state) -> float:
                return model.power_of_pstate(
                    state,
                    duty=cmd.duty,
                    gating_saving_w=cmd.gating_saving_w,
                    dram_traffic_bps=traffic_total,
                    temperature_c=temp,
                    busy_cores=n_cores,
                )

            power = cmd.alpha * p_of(cmd.pstate_fast) + (
                1.0 - cmd.alpha
            ) * p_of(cmd.pstate_slow)

            remaining_s = (total_per_core - done) * spi
            dt = min(step_s, remaining_s)
            done += dt / spi
            freq_time += freq * dt
            max_escalation = max(max_escalation, cmd.escalation_level)
            min_duty = min(min_duty, cmd.duty)
            node.thermal.step(power, dt)
            meter.advance_const(t, dt, power)
            energy.add(power, dt)
            t += dt

        avg_power = (
            meter.average_power_w()
            if meter.sample_count
            else energy.average_power_w()
        )
        return MultiCoreResult(
            workload=workload.name,
            n_cores=n_cores,
            cap_w=cap_w,
            execution_s=t,
            avg_power_w=avg_power,
            energy_j=energy.energy_j,
            avg_freq_mhz=freq_time / t / 1e6,
            throughput_ips=n_cores * total_per_core / t,
            max_escalation_level=max_escalation,
            min_duty=min_duty,
        )

    def scaling_table(
        self,
        workload: Workload,
        core_counts=(1, 2, 4, 8),
        cap_w: float | None = None,
    ) -> Dict[int, MultiCoreResult]:
        """Throughput scaling across core counts at one cap."""
        return {n: self.run(workload, n, cap_w) for n in core_counts}
