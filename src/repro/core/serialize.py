"""Serialise experiment results to JSON (and back).

Sweeps are expensive; downstream analysis (plotting, regression
tracking, EXPERIMENTS.md generation) should not have to re-run them.
The format is a stable, versioned JSON document with every field of
:class:`~repro.core.metrics.AveragedResult` spelled out — no pickles,
so results are diffable and safe to load from anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import SimulationError
from ..obs.timeseries import RunTimeline, timeline_from_dict, timeline_to_dict
from ..perf.events import PapiEvent
from .experiment import ExperimentResult
from .metrics import AveragedResult

__all__ = [
    "averaged_to_dict",
    "averaged_from_dict",
    "experiment_to_dict",
    "experiment_from_dict",
    "extract_timelines",
    "save_experiment",
    "load_experiment",
]

FORMAT_VERSION = 1


def averaged_to_dict(row: AveragedResult) -> dict:
    """A JSON-ready representation of one averaged table row."""
    return _averaged_to_dict(row)


def averaged_from_dict(data: dict) -> AveragedResult:
    """Reconstruct one averaged row from its JSON representation."""
    return _averaged_from_dict(data)


def _averaged_to_dict(row: AveragedResult) -> dict:
    doc = {
        "workload": row.workload,
        "cap_w": row.cap_w,
        "n_runs": row.n_runs,
        "execution_s": row.execution_s,
        "avg_power_w": row.avg_power_w,
        "energy_j": row.energy_j,
        "avg_freq_mhz": row.avg_freq_mhz,
        "counters": {e.value: v for e, v in row.counters.items()},
        "committed_instructions": row.committed_instructions,
        "executed_instructions": row.executed_instructions,
        "max_escalation_level": row.max_escalation_level,
        "min_duty": row.min_duty,
        "execution_s_std": row.execution_s_std,
    }
    # The telemetry timeline is optional (absent when sampling is off),
    # so documents written either way stay loadable by either reader —
    # format_version 1 is unchanged.
    if row.timeline is not None:
        doc["timeline"] = timeline_to_dict(row.timeline)
    return doc


def _averaged_from_dict(data: dict) -> AveragedResult:
    try:
        counters = {
            PapiEvent(name): float(v) for name, v in data["counters"].items()
        }
        return AveragedResult(
            workload=data["workload"],
            cap_w=data["cap_w"],
            n_runs=int(data["n_runs"]),
            execution_s=float(data["execution_s"]),
            avg_power_w=float(data["avg_power_w"]),
            energy_j=float(data["energy_j"]),
            avg_freq_mhz=float(data["avg_freq_mhz"]),
            counters=counters,
            committed_instructions=float(data["committed_instructions"]),
            executed_instructions=float(data["executed_instructions"]),
            max_escalation_level=int(data["max_escalation_level"]),
            min_duty=float(data["min_duty"]),
            execution_s_std=float(data.get("execution_s_std", 0.0)),
            timeline=(
                timeline_from_dict(data["timeline"])
                if data.get("timeline") is not None
                else None
            ),
        )
    except (KeyError, ValueError) as exc:
        raise SimulationError(f"malformed result row: {exc}") from exc


def experiment_to_dict(result: ExperimentResult) -> dict:
    """A JSON-ready representation of one workload's sweep.

    The provenance manifest (when the sweep recorded one) travels in a
    ``provenance`` key; it is optional, so documents written before the
    instrumentation layer still load.
    """
    doc = {
        "format_version": FORMAT_VERSION,
        "workload": result.workload,
        "baseline": _averaged_to_dict(result.baseline),
        "by_cap": {
            f"{cap:g}": _averaged_to_dict(row)
            for cap, row in result.by_cap.items()
        },
    }
    if result.provenance is not None:
        doc["provenance"] = result.provenance
    return doc


def experiment_from_dict(data: dict) -> ExperimentResult:
    """Reconstruct a sweep from its JSON representation."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    result = ExperimentResult(
        workload=data["workload"],
        baseline=_averaged_from_dict(data["baseline"]),
        provenance=data.get("provenance"),
    )
    for cap_str, row in data.get("by_cap", {}).items():
        result.by_cap[float(cap_str)] = _averaged_from_dict(row)
    return result


def extract_timelines(
    doc: dict, channels: "list[str] | None" = None
) -> "list[RunTimeline]":
    """Every telemetry timeline in a result document.

    ``doc`` is either one sweep document (``format_version`` present)
    or a ``{workload: sweep document}`` map (the ``baseline --format
    json`` and service-store layouts).  Timelines come back baseline
    first, then caps highest to lowest, per workload.  With
    ``channels`` each timeline is restricted to the named channels;
    unknown names raise :class:`~repro.errors.SimulationError`.
    """
    sweep_docs = [doc] if "format_version" in doc else list(doc.values())
    out: "list[RunTimeline]" = []
    for sweep in sweep_docs:
        if not isinstance(sweep, dict):
            continue
        rows = [sweep.get("baseline") or {}]
        by_cap = sweep.get("by_cap") or {}
        rows.extend(
            by_cap[k] for k in sorted(by_cap, key=float, reverse=True)
        )
        for row in rows:
            tl_doc = row.get("timeline")
            if tl_doc is None:
                continue
            timeline = timeline_from_dict(tl_doc)
            if channels:
                missing = [
                    c for c in channels if c not in timeline.channels
                ]
                if missing:
                    raise SimulationError(
                        f"unknown channel(s) {missing}; available: "
                        f"{sorted(timeline.channels)}"
                    )
                timeline.channels = {
                    c: timeline.channels[c] for c in channels
                }
            out.append(timeline)
    return out


def save_experiment(result: ExperimentResult, path: Union[str, Path]) -> None:
    """Write a sweep to a JSON file."""
    Path(path).write_text(
        json.dumps(experiment_to_dict(result), indent=2, sort_keys=True)
    )


def load_experiment(path: Union[str, Path]) -> ExperimentResult:
    """Read a sweep back from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SimulationError(f"not a result file: {exc}") from exc
    return experiment_from_dict(data)
