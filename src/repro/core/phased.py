"""Execute bursty (phase-switching) workloads on the simulated node.

:class:`PhasedRunner` drives a
:class:`~repro.workloads.bursty.BurstyWorkload` schedule through the
node: during idle phases every core parks (node at the ~100 W floor);
during bursts the phase's application runs and the BMC's cap — if one
is set — regulates the transient exactly as it would a steady load.

The point of the experiment (Section IV-C): an *uncapped* bursty node
spikes to its full draw during bursts, violating any budget below that
draw, while a *capped* node holds the budget at the cost of longer
bursts.  :meth:`PhasedRunner.compare` quantifies that trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..arch.core import CoreTimingModel
from ..arch.node import Node
from ..bmc.controller import CapController
from ..bmc.sensors import PowerSensor
from ..config import NodeConfig, sandy_bridge_config
from ..errors import SimulationError
from ..mem.latency import AccessCosts, stall_ns_per_instruction
from ..power.energy import EnergyAccumulator
from ..rng import DEFAULT_SEED, RngStreams
from ..workloads.bursty import BurstyWorkload, PhaseInterval
from .runner import NodeRunner

__all__ = ["PhasedRunner", "BurstyRunResult", "BudgetComparison"]


@dataclass(frozen=True)
class BurstyRunResult:
    """Outcome of one bursty run over a horizon."""

    horizon_s: float
    cap_w: float | None
    #: Instructions retired across all bursts.
    instructions: float
    energy_j: float
    avg_power_w: float
    peak_power_w: float
    #: Time (s) spent with node power above the stated budget.
    over_budget_s: float
    budget_w: float
    busy_fraction: float

    @property
    def throughput_ips(self) -> float:
        """Average instruction throughput over the horizon."""
        return self.instructions / self.horizon_s

    @property
    def budget_held(self) -> bool:
        """Whether the budget was respected (tolerance: 1 % of time)."""
        return self.over_budget_s <= 0.01 * self.horizon_s


@dataclass(frozen=True)
class BudgetComparison:
    """Capped vs uncapped under the same demand process."""

    uncapped: BurstyRunResult
    capped: BurstyRunResult

    @property
    def throughput_retained(self) -> float:
        """Capped throughput as a fraction of uncapped."""
        return self.capped.throughput_ips / self.uncapped.throughput_ips

    @property
    def violation_reduction_s(self) -> float:
        """Over-budget time eliminated by capping."""
        return self.uncapped.over_budget_s - self.capped.over_budget_s


class PhasedRunner:
    """Runs bursty schedules; reuses :class:`NodeRunner` rate caching."""

    def __init__(
        self,
        config: NodeConfig | None = None,
        seed: int = DEFAULT_SEED,
        slice_accesses: int = 150_000,
    ) -> None:
        self._config = config or sandy_bridge_config()
        self._streams = RngStreams(seed)
        self._rates_runner = NodeRunner(
            config=self._config, seed=seed, slice_accesses=slice_accesses
        )

    @property
    def config(self) -> NodeConfig:
        """The node configuration."""
        return self._config

    def run(
        self,
        bursty: BurstyWorkload,
        horizon_s: float,
        budget_w: float,
        cap_w: float | None = None,
        rep: int = 0,
        schedule: List[PhaseInterval] | None = None,
    ) -> BurstyRunResult:
        """Simulate one horizon; returns the result.

        Pass ``schedule`` to pin the demand process (so capped and
        uncapped runs are compared on identical bursts); otherwise one
        is drawn from the run's RNG stream.
        """
        if budget_w <= 0:
            raise SimulationError("budget must be positive")
        cfg = self._config
        tag = f"bursty:{bursty.name}:cap={cap_w}:rep={rep}"
        if schedule is None:
            schedule = bursty.schedule(
                horizon_s, self._streams.fresh(f"schedule:{tag}")
            )
        node = Node(cfg)
        sensor = PowerSensor(self._streams.fresh(f"sensor:{tag}"))
        controller = CapController(node, sensor)
        controller.set_cap(cap_w)
        core = CoreTimingModel(cfg.base_cpi)
        energy = EnergyAccumulator()
        quantum = cfg.bmc.control_quantum_s

        instructions = 0.0
        peak = 0.0
        over_budget = 0.0
        t = 0.0
        power = node.idle_power_w()
        for interval in schedule:
            remaining = interval.duration_s
            while remaining > 0:
                dt = min(quantum, remaining)
                if interval.is_idle:
                    # Controller still monitors; an idle node draws the
                    # floor regardless of the cap.
                    controller.update(power)
                    power = node.power_model.idle_power_w(
                        node.thermal.temperature_c
                    )
                else:
                    cmd = controller.update(power)
                    rates = self._rates_runner.rates_for(
                        interval.workload, cmd.gating
                    )
                    costs = AccessCosts.from_config(cfg, cmd.gating)
                    stall = stall_ns_per_instruction(rates, costs)
                    spi = core.seconds_per_instruction(
                        cmd.effective_freq_hz, stall, cmd.duty
                    )
                    instructions += dt / spi
                    traffic = rates.l3_misses / spi * cfg.l3.line_bytes
                    model = node.power_model

                    def p_of(state) -> float:
                        return model.power_of_pstate(
                            state,
                            duty=cmd.duty,
                            gating_saving_w=cmd.gating_saving_w,
                            dram_traffic_bps=traffic,
                            temperature_c=node.thermal.temperature_c,
                        )

                    power = cmd.alpha * p_of(cmd.pstate_fast) + (
                        1.0 - cmd.alpha
                    ) * p_of(cmd.pstate_slow)
                node.thermal.step(power, dt)
                energy.add(power, dt)
                peak = max(peak, power)
                if power > budget_w:
                    over_budget += dt
                t += dt
                remaining -= dt

        return BurstyRunResult(
            horizon_s=t,
            cap_w=cap_w,
            instructions=instructions,
            energy_j=energy.energy_j,
            avg_power_w=energy.average_power_w(),
            peak_power_w=peak,
            over_budget_s=over_budget,
            budget_w=budget_w,
            busy_fraction=bursty.busy_fraction(schedule),
        )

    def compare(
        self,
        bursty: BurstyWorkload,
        horizon_s: float,
        budget_w: float,
        rep: int = 0,
    ) -> BudgetComparison:
        """Capped-at-budget vs uncapped over the identical schedule."""
        schedule = bursty.schedule(
            horizon_s, self._streams.fresh(f"cmp-schedule:{bursty.name}:{rep}")
        )
        uncapped = self.run(
            bursty, horizon_s, budget_w, cap_w=None, rep=rep,
            schedule=schedule,
        )
        capped = self.run(
            bursty, horizon_s, budget_w, cap_w=budget_w, rep=rep,
            schedule=schedule,
        )
        return BudgetComparison(uncapped=uncapped, capped=capped)
