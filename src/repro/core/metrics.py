"""Run metrics and paper-style comparisons.

Table II reports, per (application, cap): average node power, computed
energy, average frequency, execution time, and the five miss counters —
each with its percent difference from the uncapped baseline, rounded to
the nearest integer.  These types carry exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..obs.timeseries import RunTimeline
from ..perf.events import PapiEvent

__all__ = ["RunResult", "AveragedResult", "percent_diff"]


def percent_diff(value: float, baseline: float) -> float:
    """Percent difference vs a baseline, as Table II computes it."""
    if baseline == 0:
        raise SimulationError("baseline value is zero; percent diff undefined")
    return (value - baseline) / baseline * 100.0


@dataclass(frozen=True)
class RunResult:
    """One run of one workload under one cap."""

    workload: str
    cap_w: float | None
    execution_s: float
    avg_power_w: float
    energy_j: float
    avg_freq_mhz: float
    counters: Dict[PapiEvent, float]
    committed_instructions: float
    executed_instructions: float
    max_escalation_level: int
    min_duty: float
    #: Optional time series: (time_s, power_w, freq_mhz, duty) tuples.
    series: tuple = ()
    #: The BMC's System Event Log trail for this run:
    #: (time_s, event_name, detail) tuples, oldest first.
    sel_events: tuple = ()
    #: Sampled in-run telemetry (see :mod:`repro.obs.timeseries`);
    #: None when telemetry is disabled.  Excluded from equality so
    #: results with and without timelines still compare by their numbers.
    timeline: Optional[RunTimeline] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.execution_s <= 0:
            raise SimulationError("execution time must be positive")
        if self.avg_power_w <= 0 or self.energy_j <= 0:
            raise SimulationError("power/energy must be positive")

    @property
    def cap_label(self) -> str:
        """Row label: the cap in watts, or 'baseline'."""
        return "baseline" if self.cap_w is None else f"{self.cap_w:.0f}"

    def counter(self, event: PapiEvent) -> float:
        """One counter value."""
        return self.counters[event]


@dataclass(frozen=True)
class AveragedResult:
    """Mean of several repetitions (the paper averages five runs)."""

    workload: str
    cap_w: float | None
    n_runs: int
    execution_s: float
    avg_power_w: float
    energy_j: float
    avg_freq_mhz: float
    counters: Dict[PapiEvent, float]
    committed_instructions: float
    executed_instructions: float
    max_escalation_level: int
    min_duty: float
    execution_s_std: float = 0.0
    #: Rep-merged telemetry timeline (channel-wise average across the
    #: repetitions that recorded one); None when telemetry was off.
    timeline: Optional[RunTimeline] = field(default=None, compare=False)

    @classmethod
    def from_runs(cls, runs: Sequence[RunResult]) -> "AveragedResult":
        """Average a repetition set (all runs must match workload/cap)."""
        if not runs:
            raise SimulationError("cannot average zero runs")
        first = runs[0]
        if any(r.workload != first.workload or r.cap_w != first.cap_w for r in runs):
            raise SimulationError("runs mix workloads or caps")
        events = first.counters.keys()
        counters = {
            e: float(np.mean([r.counters[e] for r in runs])) for e in events
        }
        timelines = [r.timeline for r in runs if r.timeline is not None]
        timeline = RunTimeline.merge(timelines) if timelines else None
        return cls(
            workload=first.workload,
            cap_w=first.cap_w,
            n_runs=len(runs),
            execution_s=float(np.mean([r.execution_s for r in runs])),
            avg_power_w=float(np.mean([r.avg_power_w for r in runs])),
            energy_j=float(np.mean([r.energy_j for r in runs])),
            avg_freq_mhz=float(np.mean([r.avg_freq_mhz for r in runs])),
            counters=counters,
            committed_instructions=float(
                np.mean([r.committed_instructions for r in runs])
            ),
            executed_instructions=float(
                np.mean([r.executed_instructions for r in runs])
            ),
            max_escalation_level=max(r.max_escalation_level for r in runs),
            min_duty=min(r.min_duty for r in runs),
            execution_s_std=float(np.std([r.execution_s for r in runs])),
            timeline=timeline,
        )

    @property
    def cap_label(self) -> str:
        """Row label: the cap in watts, or 'baseline'."""
        return "baseline" if self.cap_w is None else f"{self.cap_w:.0f}"

    def diff_vs(self, baseline: "AveragedResult") -> Dict[str, float]:
        """Table II's percent-difference columns vs the baseline row."""
        diffs: Dict[str, float] = {
            "power": percent_diff(self.avg_power_w, baseline.avg_power_w),
            "energy": percent_diff(self.energy_j, baseline.energy_j),
            "frequency": percent_diff(self.avg_freq_mhz, baseline.avg_freq_mhz),
            "time": percent_diff(self.execution_s, baseline.execution_s),
        }
        for event in (
            PapiEvent.PAPI_L1_TCM,
            PapiEvent.PAPI_L2_TCM,
            PapiEvent.PAPI_L3_TCM,
            PapiEvent.PAPI_TLB_DM,
            PapiEvent.PAPI_TLB_IM,
        ):
            base = baseline.counters[event]
            diffs[event.value] = (
                percent_diff(self.counters[event], base) if base else 0.0
            )
        return diffs
