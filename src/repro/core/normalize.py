"""Figure 1/2 normalisation.

The paper's figures plot each metric "normalized" across the cap sweep:
every series is divided by its own maximum so all series share the
[0, 1] axis and their *shapes* can be compared (frequency falling,
time/energy rising, miss counts stepping at the escalation caps).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["normalize_series"]


def normalize_series(values: Sequence[float]) -> np.ndarray:
    """Scale a series by its maximum absolute value.

    All-zero series normalise to all zeros rather than dividing by
    zero; negative values are allowed (scaled by max |v|).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot normalise an empty series")
    peak = np.max(np.abs(arr))
    if peak == 0:
        return np.zeros_like(arr)
    return arr / peak
