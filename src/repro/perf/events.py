"""Performance-counter event definitions.

Names follow the PAPI preset events the paper's measurements map to.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["PapiEvent"]


class PapiEvent(Enum):
    """The events the reproduction exposes."""

    #: Total committed instructions.
    PAPI_TOT_INS = "PAPI_TOT_INS"
    #: Total executed (speculated) instructions.
    PAPI_TOT_IIS = "PAPI_TOT_IIS"
    #: Total cycles (unthrottled clock cycles).
    PAPI_TOT_CYC = "PAPI_TOT_CYC"
    #: L1 data-cache misses.
    PAPI_L1_DCM = "PAPI_L1_DCM"
    #: L1 instruction-cache misses.
    PAPI_L1_ICM = "PAPI_L1_ICM"
    #: L1 total misses (data + instruction) — the paper's "L1 Misses".
    PAPI_L1_TCM = "PAPI_L1_TCM"
    #: L2 total misses.
    PAPI_L2_TCM = "PAPI_L2_TCM"
    #: L3 total misses.
    PAPI_L3_TCM = "PAPI_L3_TCM"
    #: Data TLB misses.
    PAPI_TLB_DM = "PAPI_TLB_DM"
    #: Instruction TLB misses.
    PAPI_TLB_IM = "PAPI_TLB_IM"
    #: Loads issued.
    PAPI_LD_INS = "PAPI_LD_INS"
    #: Stores issued.
    PAPI_SR_INS = "PAPI_SR_INS"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
