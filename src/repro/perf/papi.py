"""High-level PAPI-style API.

Mirrors how the paper instruments a run: create an event set, start it,
run the application, read/stop.  Reads are deltas since ``start`` —
what ``PAPI_read`` returns — so overlapping sessions over one bank each
see their own window.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import CounterError
from .counters import CounterBank
from .events import PapiEvent

__all__ = ["PapiSession"]


class PapiSession:
    """An event set over a counter bank."""

    def __init__(self, bank: CounterBank, events: Iterable[PapiEvent]) -> None:
        self._bank = bank
        self._events: List[PapiEvent] = list(events)
        if not self._events:
            raise CounterError("an event set needs at least one event")
        if len(set(self._events)) != len(self._events):
            raise CounterError("duplicate events in the event set")
        self._start_values: Dict[PapiEvent, float] | None = None

    @property
    def events(self) -> List[PapiEvent]:
        """The events in this set."""
        return list(self._events)

    @property
    def running(self) -> bool:
        """Whether the session is started."""
        return self._start_values is not None

    def start(self) -> None:
        """Begin counting (snapshots the bank)."""
        if self.running:
            raise CounterError("session already started")
        self._start_values = {e: self._bank.read(e) for e in self._events}

    def read(self) -> Dict[PapiEvent, float]:
        """Counts accumulated since ``start`` (session keeps running)."""
        if self._start_values is None:
            raise CounterError("session not started")
        return {
            e: self._bank.read(e) - self._start_values[e] for e in self._events
        }

    def stop(self) -> Dict[PapiEvent, float]:
        """Final counts since ``start``; the session ends."""
        values = self.read()
        self._start_values = None
        return values

    def reset(self) -> None:
        """Re-zero the session's window without stopping it."""
        if self._start_values is None:
            raise CounterError("session not started")
        self._start_values = {e: self._bank.read(e) for e in self._events}
