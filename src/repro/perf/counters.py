"""The counter bank the simulator feeds.

:class:`CounterBank` accumulates event counts; the runner adds
per-segment contributions (scaled :class:`~repro.mem.hierarchy.AccessCounts`
plus instruction/cycle totals) as the run progresses, so a PAPI session
reading the bank mid-run sees monotonically increasing values, exactly
like hardware counters.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import CounterError
from ..mem.hierarchy import AccessCounts
from .events import PapiEvent

__all__ = ["CounterBank"]


class CounterBank:
    """Monotonic event counters."""

    def __init__(self) -> None:
        self._counts: Dict[PapiEvent, float] = {e: 0.0 for e in PapiEvent}

    def add(self, event: PapiEvent, amount: float) -> None:
        """Accumulate ``amount`` events."""
        if amount < 0:
            raise CounterError(f"cannot add a negative count to {event}")
        self._counts[event] += amount

    def add_access_counts(self, counts: AccessCounts) -> None:
        """Fold a slice's memory-event counts into the bank."""
        self.add(PapiEvent.PAPI_L1_DCM, counts.l1d_misses)
        self.add(PapiEvent.PAPI_L1_ICM, counts.l1i_misses)
        self.add(PapiEvent.PAPI_L1_TCM, counts.l1d_misses + counts.l1i_misses)
        self.add(PapiEvent.PAPI_L2_TCM, counts.l2_misses)
        self.add(PapiEvent.PAPI_L3_TCM, counts.l3_misses)
        self.add(PapiEvent.PAPI_TLB_DM, counts.dtlb_misses)
        self.add(PapiEvent.PAPI_TLB_IM, counts.itlb_misses)
        # Loads vs stores: the simulator's data stream does not label
        # them; use the canonical 2:1 load:store split of integer codes.
        self.add(PapiEvent.PAPI_LD_INS, counts.data_accesses * 2.0 / 3.0)
        self.add(PapiEvent.PAPI_SR_INS, counts.data_accesses / 3.0)

    def read(self, event: PapiEvent) -> float:
        """Current value of one event."""
        try:
            return self._counts[event]
        except KeyError:
            raise CounterError(f"unknown event {event!r}") from None

    def snapshot(self) -> Mapping[PapiEvent, float]:
        """An immutable copy of every counter."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        for e in self._counts:
            self._counts[e] = 0.0
