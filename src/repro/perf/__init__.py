"""PAPI-like performance-counter instrumentation.

"Using PAPI and the Romley's performance counters, we measured the
effect of power capping on application execution time (cycle count x
clock speed) and collected different performance data, i.e., the number
of L1, L2, and L3 cache misses as well as the number of instruction and
data TLB misses" (Section III).

:mod:`.events` defines the event set, :mod:`.counters` the bank the
simulator feeds, and :mod:`.papi` the start/read/stop API that mirrors
how the paper instruments its runs.
"""

from .events import PapiEvent
from .counters import CounterBank
from .papi import PapiSession

__all__ = ["PapiEvent", "CounterBank", "PapiSession"]
