"""The vectorized fleet engine: a simulated datacenter of capped nodes.

:class:`FleetEngine` steps an entire fleet — 8 nodes or 10^6 — through
the DCM control loop with *array-of-nodes* state: per-node cap, demand,
power, reading statistics, and SLO debt are flat float64 arrays, and
every tick is a handful of whole-fleet numpy operations.  One tick is:

1. the traffic model emits per-node demand (Watts);
2. served power is demand clamped by the node's armed cap — the
   population version of the paper's finding that a cap binds only
   when demand exceeds it;
3. reading statistics accumulate (the cumulative average a
   :class:`~repro.bmc.bmc.Bmc` would report, integer-rounded the same
   way);
4. the budget tree re-divides on its cadence: datacenter -> rows ->
   racks -> nodes, each level splitting its (escalation-adjusted)
   budget with the shared :class:`~repro.dcm.group.DivisionStrategy`
   semantics, leaf caps applied under the same strict-``>`` hysteresis
   as :class:`~repro.dcm.balancer.GroupBalancer`;
5. cascading cap escalation: a group whose measured power breaches its
   allocated budget for ``patience_ticks`` consecutive ticks raises its
   escalation level, which scales the *cap floor* of every node beneath
   it — emergency throttling below the configured minimum, cascading
   from the breached parent down the tree — and forces an immediate
   re-division; sustained compliance releases the level;
6. throughput / SLO accounting: shortfall (demand minus served power)
   accrues per-node debt, and a node-tick attains its SLO when the
   shortfall stays within ``slo_slack_w``.

**Parity contract** — a fleet with one row and one rack stepped with
``rebalance_every=1`` and no escalation reproduces the serial
:class:`~repro.dcm.manager.DataCenterManager` +
:class:`~repro.dcm.group.NodeGroup` +
:class:`~repro.dcm.balancer.GroupBalancer` loop on the same demand
schedule: identical rebalance decisions and times, caps within
documented float tolerance (see docs/FLEET.md and
``tests/fleet/test_parity.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..dcm.group import DivisionStrategy
from ..errors import ConfigError, PolicyError
from ..obs.detect import Detection
from ..obs.logging import get_logger
from ..obs.metrics import fleet_metrics, telemetry_metrics
from ..obs.provenance import git_describe
from ..obs.stream import FLEET_TOPIC, event_bus
from ..obs.timeseries import SeriesChannel
from ..rng import DEFAULT_SEED, RngStreams
from .division import divide_groups, group_reduce, priority_fill_order
from .health import FleetHealth
from .topology import FleetTopology
from .traffic import TrafficModel

__all__ = [
    "EscalationConfig",
    "FleetRebalance",
    "FleetResult",
    "FleetEngine",
]

_log = get_logger("fleet.engine")


@dataclass(frozen=True)
class EscalationConfig:
    """Cascading cap-escalation knobs (per budget-tree group).

    A group breaches when its measured power exceeds its allocated
    budget by more than ``over_tolerance_frac``; after
    ``patience_ticks`` consecutive breach ticks its escalation level
    rises.  Each level multiplies the *cap floor* of every node under
    the group by ``1 - step_frac * level`` — factors multiply down the
    tree, so a datacenter-level breach cascades emergency throttling to
    every leaf.  Escalated caps may drop below the configured
    ``min_cap_w`` (the normal floor exists precisely because an
    infeasible budget cannot otherwise be enforced), bounded at half
    idle power like the BMC firmware's sanity check.  Every level
    change forces a re-division that bypasses hysteresis;
    ``release_ticks`` consecutive compliant ticks step the level back
    down.
    """

    over_tolerance_frac: float = 0.05
    patience_ticks: int = 3
    step_frac: float = 0.08
    max_level: int = 4
    release_ticks: int = 10

    def __post_init__(self) -> None:
        if self.over_tolerance_frac < 0:
            raise ConfigError("over_tolerance_frac must be non-negative")
        if self.patience_ticks < 1 or self.release_ticks < 1:
            raise ConfigError("patience/release ticks must be >= 1")
        if not 0 < self.step_frac < 1:
            raise ConfigError("step_frac must be within (0, 1)")
        if not 0 <= self.max_level * self.step_frac < 1:
            raise ConfigError("max_level * step_frac must stay below 1")

    def to_dict(self) -> dict:
        """JSON-ready knob dump for provenance."""
        return {
            "over_tolerance_frac": self.over_tolerance_frac,
            "patience_ticks": self.patience_ticks,
            "step_frac": self.step_frac,
            "max_level": self.max_level,
            "release_ticks": self.release_ticks,
        }


@dataclass(frozen=True)
class FleetRebalance:
    """One budget-tree re-division decision (mirror of
    :class:`~repro.dcm.balancer.RebalanceRecord`)."""

    time_s: float
    applied: bool
    max_delta_w: float
    forced_by_escalation: bool = False


class _GroupLevel:
    """Escalation bookkeeping for one tree level (racks, rows, dc)."""

    def __init__(self, n: int) -> None:
        self.level = np.zeros(n, dtype=np.int64)
        self.breach_ticks = np.zeros(n, dtype=np.int64)
        self.calm_ticks = np.zeros(n, dtype=np.int64)
        self.allocated_w: Optional[np.ndarray] = None
        self.escalations = 0

    def observe(self, power_w: np.ndarray, cfg: EscalationConfig) -> bool:
        """Update breach counters against the allocated budgets.

        Returns True when any level moved (escalated or released).
        """
        if self.allocated_w is None:
            return False
        over = power_w > self.allocated_w * (1.0 + cfg.over_tolerance_frac)
        self.breach_ticks = np.where(over, self.breach_ticks + 1, 0)
        self.calm_ticks = np.where(over, 0, self.calm_ticks + 1)
        escalate = (self.breach_ticks >= cfg.patience_ticks) & (
            self.level < cfg.max_level
        )
        release = (self.calm_ticks >= cfg.release_ticks) & (self.level > 0)
        if not (escalate.any() or release.any()):
            return False
        self.level = self.level + escalate - release
        self.breach_ticks[escalate] = 0
        self.calm_ticks[release] = 0
        self.escalations += int(escalate.sum())
        return True

    def factor(self, cfg: EscalationConfig) -> np.ndarray:
        """Per-group cap-floor scale at the current escalation level."""
        return 1.0 - cfg.step_frac * self.level


@dataclass
class FleetResult:
    """Everything one :meth:`FleetEngine.run` produced."""

    topology: dict
    params: dict
    ticks: int
    dt_s: float
    #: Fleet- and row-level telemetry channels by name.
    timelines: Dict[str, SeriesChannel]
    #: Every re-division decision, oldest first.
    rebalances: List[FleetRebalance]
    summary: dict
    provenance: dict
    #: Per-tick (targets, applied caps, readings, powers) — recorded
    #: only when the engine ran with ``record_trajectory=True``.
    trajectory: Optional[dict] = None
    #: Fleet-level detections (budget thrash, waterfill starvation,
    #: SLO-debt runaway) — populated when health rollups ran.
    phenomena: List[Detection] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready document: summaries plus full channel points.

        ``timelines`` carries per-channel summaries (cheap to scan);
        ``timeline_channels`` carries the full
        :meth:`~repro.obs.timeseries.SeriesChannel.to_dict` dumps so
        ``repro-powercap timeline`` can chart a saved fleet run.
        """
        return {
            "topology": self.topology,
            "params": self.params,
            "ticks": self.ticks,
            "dt_s": self.dt_s,
            "summary": self.summary,
            "provenance": self.provenance,
            "rebalances": {
                "evaluated": len(self.rebalances),
                "applied": sum(1 for r in self.rebalances if r.applied),
                "forced_by_escalation": sum(
                    1 for r in self.rebalances if r.forced_by_escalation
                ),
            },
            "timelines": {
                name: ch.summary() for name, ch in self.timelines.items()
            },
            "timeline_channels": {
                name: ch.to_dict() for name, ch in self.timelines.items()
            },
            "phenomena": [d.to_dict() for d in self.phenomena],
        }


class FleetEngine:
    """Array-of-nodes simulation of a power-capped fleet."""

    def __init__(
        self,
        topology: FleetTopology,
        traffic: TrafficModel,
        *,
        budget_w: float,
        strategy: DivisionStrategy = DivisionStrategy.PROPORTIONAL,
        dt_s: float = 1.0,
        rebalance_every: int = 1,
        rebalance_threshold_w: float = 5.0,
        escalation: Optional[EscalationConfig] = None,
        slo_slack_w: float = 1.0,
        seed: int = DEFAULT_SEED,
        telemetry: bool = True,
        telemetry_capacity: int = 512,
        record_trajectory: bool = False,
        health: Optional[bool] = None,
        health_sink: Optional[Callable[[float, float, dict], None]] = None,
    ) -> None:
        topology.validate()
        if budget_w <= 0:
            raise PolicyError("fleet budget must be positive")
        if dt_s <= 0:
            raise ConfigError("dt_s must be positive")
        if rebalance_every < 1:
            raise ConfigError("rebalance_every must be >= 1")
        if rebalance_threshold_w < 0:
            raise PolicyError("rebalance threshold must be non-negative")
        self._topo = topology
        self._traffic = traffic
        self.budget_w = float(budget_w)
        self._strategy = strategy
        self.dt_s = float(dt_s)
        self._rebalance_every = int(rebalance_every)
        self._threshold = float(rebalance_threshold_w)
        self._escalation = escalation
        self._slo_slack_w = float(slo_slack_w)
        self._seed = int(seed)
        self._telemetry = bool(telemetry)
        self._telemetry_capacity = int(telemetry_capacity)
        self._record_trajectory = bool(record_trajectory)
        # Health rollups follow the telemetry switch unless pinned, so
        # the telemetry=False benchmark configuration stays untouched.
        self._health_enabled = (
            self._telemetry if health is None else bool(health)
        )
        # Per-window rollup callback (the archive's health_sink);
        # ignored unless health rollups are enabled.
        self._health_sink = health_sink

        streams = RngStreams(seed=self._seed)
        traffic.bind(topology, streams.stream("fleet-traffic"))

        t = topology
        # Static group aggregates for the budget tree.
        self._rack_min_w = group_reduce(t.min_cap_w, t.rack_ptr)
        self._rack_max_w = group_reduce(t.max_cap_w, t.rack_ptr)
        self._row_min_w = group_reduce(self._rack_min_w, t.row_ptr)
        self._row_max_w = group_reduce(self._rack_max_w, t.row_ptr)
        self._rack_prio = np.maximum.reduceat(t.priority, t.rack_ptr[:-1])
        self._row_prio = np.maximum.reduceat(self._rack_prio, t.row_ptr[:-1])
        self._dc_ptr = np.array([0, t.n_rows], dtype=np.int64)
        # Static PRIORITY fill permutations per level.
        self._node_order = priority_fill_order(t.priority, t.rack_ptr)
        self._rack_order = priority_fill_order(self._rack_prio, t.row_ptr)
        self._row_order = priority_fill_order(self._row_prio, self._dc_ptr)

        self.reset()

    @property
    def topology(self) -> FleetTopology:
        """The fleet's static structure."""
        return self._topo

    def reset(self) -> None:
        """Zero all mutable fleet state (ready for a fresh run)."""
        t = self._topo
        n = t.n_nodes
        self._step_index = 0
        #: Caps currently programmed (integer Watts, like a BMC); +inf
        #: until the first division arms them.
        self._applied_cap_w = np.full(n, np.inf)
        self._last_target_w: Optional[np.ndarray] = None
        self._total_wq = np.zeros(n)
        self._quanta = 0
        self._slo_debt_ws = np.zeros(n)
        self._slo_ok_node_ticks = 0
        self._demand_ws = 0.0  # integral of demand (W * s)
        self._served_ws = 0.0
        self._energy_ws = 0.0
        self._rebalances: List[FleetRebalance] = []
        self._levels = {
            "rack": _GroupLevel(t.n_racks),
            "row": _GroupLevel(t.n_rows),
            "dc": _GroupLevel(1),
        }
        # Levels move only when an observe() reports a change, so the
        # per-tick health rollup reads this cache instead of scanning
        # three arrays every tick.
        self._esc_max_level = 0
        # The live-stream gate takes the bus lock, so probe for
        # subscribers every few ticks instead of every rebalance; a
        # fresh subscriber waits at most 16 ticks for its first frame.
        self._bus = event_bus()
        self._fleet_subscribed = False
        self._sub_probe_left = 0
        self._channels: Dict[str, SeriesChannel] = {}
        if self._telemetry:
            cap = self._telemetry_capacity
            for name, unit in (
                ("fleet_power_w", "W"),
                ("fleet_demand_w", "W"),
                ("fleet_cap_w", "W"),
                ("fleet_shortfall_w", "W"),
                ("slo_attainment", "fraction"),
                ("latency_inflation", "x"),
            ):
                self._channels[name] = SeriesChannel(name, unit, capacity=cap)
            for w in range(t.n_rows):
                self._channels[f"row{w}_power_w"] = SeriesChannel(
                    f"row{w}_power_w", "W", capacity=cap
                )
        self._health: Optional[FleetHealth] = None
        if self._health_enabled:
            self._health = FleetHealth(
                t, self._telemetry_capacity, sink=self._health_sink
            )
            # Health channels ride in the same timeline dict, so the
            # result/CLI/stream surfaces treat them like any channel.
            self._channels.update(self._health.channels)
        self._traj: Optional[Dict[str, list]] = (
            {"target_w": [], "applied_w": [], "reading_w": [], "power_w": []}
            if self._record_trajectory
            else None
        )

    # ------------------------------------------------------------------
    # Budget tree
    # ------------------------------------------------------------------

    def _divide_tree(self, readings_w: np.ndarray) -> np.ndarray:
        """Datacenter -> rows -> racks -> nodes division, one pass.

        Group demand at each internal level is the sum of its members'
        readings; group clamp ranges are the sums of member ranges;
        group priority is the max member priority.  Escalation scales
        the minimum-cap floors at every level (factors multiplying down
        the tree), so a breached parent cascades emergency throttling
        to its leaves while the budgets themselves stay honest.
        """
        t = self._topo
        esc = self._escalation
        rack_demand = group_reduce(readings_w, t.rack_ptr)
        row_demand = group_reduce(rack_demand, t.row_ptr)

        row_min = self._row_min_w
        rack_min = self._rack_min_w
        node_min = t.min_cap_w
        if esc is not None:
            f_dc = float(self._levels["dc"].factor(esc)[0])
            f_row = f_dc * self._levels["row"].factor(esc)
            f_rack = (
                np.repeat(f_row, np.diff(t.row_ptr))
                * self._levels["rack"].factor(esc)
            )
            f_node = np.repeat(f_rack, np.diff(t.rack_ptr))
            row_min = row_min * f_row
            rack_min = rack_min * f_rack
            # Leaf floor bounded at half idle power, like the BMC
            # firmware's Set Power Limit sanity check.
            node_min = np.maximum(node_min * f_node, 0.5 * t.idle_w)

        dc_budget = np.array([self.budget_w])
        row_budgets = divide_groups(
            dc_budget,
            self._strategy,
            row_demand,
            row_min,
            self._row_max_w,
            self._row_prio,
            self._dc_ptr,
            priority_order=self._row_order,
        )
        rack_budgets = divide_groups(
            row_budgets,
            self._strategy,
            rack_demand,
            rack_min,
            self._rack_max_w,
            self._rack_prio,
            t.row_ptr,
            priority_order=self._rack_order,
        )
        self._levels["dc"].allocated_w = dc_budget
        self._levels["row"].allocated_w = row_budgets
        self._levels["rack"].allocated_w = rack_budgets
        return divide_groups(
            rack_budgets,
            self._strategy,
            readings_w,
            node_min,
            t.max_cap_w,
            t.priority,
            t.rack_ptr,
            priority_order=self._node_order,
        )

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole fleet by one control tick."""
        t = self._topo
        dt = self.dt_s
        time_s = self._step_index * dt

        demand = np.clip(
            self._traffic.demand_w(self._step_index, time_s),
            t.idle_w,
            t.busy_w,
        )
        power = np.minimum(demand, self._applied_cap_w)
        self._total_wq += power
        self._quanta += 1

        # SLO / throughput accounting.
        shortfall = demand - power
        self._slo_debt_ws += shortfall * dt
        slo_ok = shortfall <= self._slo_slack_w
        self._slo_ok_node_ticks += int(np.count_nonzero(slo_ok))
        demand_sum = float(demand.sum())
        power_sum = float(power.sum())
        shortfall_sum = demand_sum - power_sum
        self._demand_ws += demand_sum * dt
        self._served_ws += power_sum * dt
        self._energy_ws += power_sum * dt

        # Escalation watches measured group power every tick.
        esc_changed = False
        if self._escalation is not None:
            rack_power = group_reduce(power, t.rack_ptr)
            row_power = group_reduce(rack_power, t.row_ptr)
            cfg = self._escalation
            esc_changed |= self._levels["rack"].observe(rack_power, cfg)
            esc_changed |= self._levels["row"].observe(row_power, cfg)
            esc_changed |= self._levels["dc"].observe(
                np.array([power_sum]), cfg
            )
            if esc_changed:
                self._esc_max_level = max(
                    int(lv.level.max()) for lv in self._levels.values()
                )

        due = self._step_index % self._rebalance_every == 0
        caps_changed = False
        if due or esc_changed:
            readings = np.rint(self._total_wq / self._quanta)
            target = self._divide_tree(readings)
            if self._last_target_w is None:
                max_delta = float("inf")
            else:
                max_delta = float(
                    np.max(np.abs(target - self._last_target_w))
                )
            applied = max_delta > self._threshold or esc_changed
            if applied:
                self._applied_cap_w = np.rint(target)
                self._last_target_w = target
                caps_changed = True
            self._rebalances.append(
                FleetRebalance(
                    time_s=time_s,
                    applied=applied,
                    max_delta_w=max_delta,
                    forced_by_escalation=esc_changed,
                )
            )

        if self._telemetry:
            rack_power = group_reduce(power, t.rack_ptr)
            ch = self._channels
            ch["fleet_power_w"].add(time_s, dt, power_sum)
            ch["fleet_demand_w"].add(time_s, dt, demand_sum)
            armed = np.isfinite(self._applied_cap_w)
            cap_sum = float(self._applied_cap_w[armed].sum()) if armed.any() else 0.0
            ch["fleet_cap_w"].add(time_s, dt, cap_sum)
            ch["fleet_shortfall_w"].add(time_s, dt, shortfall_sum)
            ch["slo_attainment"].add(
                time_s, dt, float(np.count_nonzero(slo_ok)) / t.n_nodes
            )
            ch["latency_inflation"].add(
                time_s, dt, self._latency_inflation(demand)
            )
            row_power = group_reduce(rack_power, t.row_ptr)
            for w in range(t.n_rows):
                ch[f"row{w}_power_w"].add(time_s, dt, float(row_power[w]))

        if self._health is not None:
            # Live fleet stream, on the rebalance cadence: gated on an
            # actual subscriber so unwatched runs skip the bus.
            if due:
                if self._sub_probe_left <= 0:
                    self._fleet_subscribed = self._bus.has_subscribers(
                        FLEET_TOPIC
                    )
                    self._sub_probe_left = 16
                self._sub_probe_left -= 1
            streaming = due and self._fleet_subscribed
            rollup = self._health.observe_tick(
                time_s,
                dt,
                power_sum,
                power,
                self._applied_cap_w,
                t.min_cap_w,
                shortfall,
                shortfall_sum,
                self._slo_slack_w,
                self._levels["rack"].allocated_w,
                self.budget_w,
                self._esc_max_level,
                caps_changed=caps_changed,
                want_rollup=streaming,
            )
            if streaming:
                self._bus.publish(
                    FLEET_TOPIC,
                    "fleet_health",
                    {"t_s": time_s, **rollup},
                )

        if self._traj is not None:
            self._traj["target_w"].append(
                None
                if self._last_target_w is None
                else self._last_target_w.copy()
            )
            self._traj["applied_w"].append(self._applied_cap_w.copy())
            self._traj["reading_w"].append(
                np.rint(self._total_wq / self._quanta)
            )
            self._traj["power_w"].append(power.copy())

        self._step_index += 1

    def _latency_inflation(self, demand: np.ndarray) -> float:
        """Mean M/M/1-style latency inflation proxy across the fleet.

        A node offering work ``demand - idle`` against the capacity its
        armed cap grants (``min(cap, busy) - idle``) runs at
        utilization ``rho``; its latency inflates like
        ``1 / (1 - rho)``, clipped at 50x.  A cap squeezing demand
        pushes ``rho`` toward 1 — the fleet-scale echo of the paper's
        per-core slowdown under tight caps.
        """
        t = self._topo
        offered = demand - t.idle_w
        capacity = np.maximum(
            np.minimum(self._applied_cap_w, t.busy_w) - t.idle_w, 1e-9
        )
        rho = np.clip(offered / capacity, 0.0, 0.98)
        return float(np.mean(1.0 / (1.0 - rho)))

    def run(self, duration_s: float) -> FleetResult:
        """Step the fleet for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        ticks = max(1, int(round(duration_s / self.dt_s)))
        if self._health is not None:
            self._health.begin_run(ticks)
        wall0 = time.perf_counter()
        for _ in range(ticks):
            self.step()
        wall = time.perf_counter() - wall0
        if self._health is not None:
            self._health.finish()
        metrics = fleet_metrics()
        metrics.runs.inc()
        metrics.steps.inc(ticks)
        metrics.node_steps.inc(ticks * self._topo.n_nodes)
        metrics.rebalances.inc(
            sum(1 for r in self._rebalances if r.applied)
        )
        metrics.escalations.inc(
            sum(lv.escalations for lv in self._levels.values())
        )
        metrics.nodes.set(self._topo.n_nodes)
        phenomena: List[Detection] = []
        if self._health is not None:
            health_summary = self._health.summary()
            metrics.observe_health(
                headroom_w=health_summary["mean_headroom_w"],
                capfloor_frac=health_summary["mean_capfloor_frac"],
                slo_debt_rate_w=health_summary["mean_slo_debt_rate_w"],
                escalation_level=health_summary["max_escalation_level"],
                rack_headroom_w=self._health.rack_headroom_means().tolist(),
            )
            phenomena = self._health.detect(
                self._rebalances, self.budget_w, ticks, self.dt_s
            )
            for det in phenomena:
                _log.info(
                    "phenomenon_detected",
                    phenomenon=det.phenomenon,
                    workload=det.workload,
                    cap_w=det.cap_w,
                    **det.detail,
                )
                event_bus().publish(
                    FLEET_TOPIC, "detection", det.to_dict()
                )
            if phenomena:
                telemetry_metrics().observe_detections(
                    [d.phenomenon for d in phenomena]
                )
        return self._result(ticks, wall, phenomena)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _result(
        self,
        ticks: int,
        wall_s: float,
        phenomena: Optional[List[Detection]] = None,
    ) -> FleetResult:
        t = self._topo
        node_ticks = ticks * t.n_nodes
        applied = [r for r in self._rebalances if r.applied]
        summary = {
            "nodes": t.n_nodes,
            "racks": t.n_racks,
            "rows": t.n_rows,
            "ticks": ticks,
            "node_steps": node_ticks,
            "wall_s": round(wall_s, 4),
            "node_steps_per_s": (
                round(node_ticks / wall_s, 1) if wall_s > 0 else None
            ),
            "budget_w": self.budget_w,
            "energy_wh": round(self._energy_ws / 3600.0, 3),
            "demand_wh": round(self._demand_ws / 3600.0, 3),
            "served_wh": round(self._served_ws / 3600.0, 3),
            #: Fraction of offered work actually served under the caps.
            "throughput_attainment": (
                round(self._served_ws / self._demand_ws, 6)
                if self._demand_ws > 0
                else 1.0
            ),
            #: Fraction of node-ticks whose shortfall stayed in the SLO.
            "slo_attainment": round(
                self._slo_ok_node_ticks / node_ticks, 6
            ),
            "worst_node_debt_wh": round(
                float(self._slo_debt_ws.max()) / 3600.0, 4
            ),
            "rebalances_evaluated": len(self._rebalances),
            "rebalances_applied": len(applied),
            "escalations": {
                name: int(lv.escalations)
                for name, lv in self._levels.items()
            },
            "max_escalation_level": {
                name: int(lv.level.max())
                for name, lv in self._levels.items()
            },
        }
        if self._health is not None:
            hs = self._health.summary()
            summary["health"] = {
                "mean_headroom_w": round(hs["mean_headroom_w"], 3),
                "mean_capfloor_frac": round(
                    hs["mean_capfloor_frac"], 6
                ),
                "mean_slo_debt_rate_w": round(
                    hs["mean_slo_debt_rate_w"], 3
                ),
                "max_escalation_level": hs["max_escalation_level"],
            }
        params = {
            "strategy": self._strategy.value,
            "budget_w": self.budget_w,
            "dt_s": self.dt_s,
            "rebalance_every": self._rebalance_every,
            "rebalance_threshold_w": self._threshold,
            "slo_slack_w": self._slo_slack_w,
            "seed": self._seed,
            "escalation": (
                self._escalation.to_dict() if self._escalation else None
            ),
            "traffic": self._traffic.describe(),
        }
        trajectory = None
        if self._traj is not None:
            trajectory = {
                key: [
                    (None if row is None else np.asarray(row))
                    for row in rows
                ]
                for key, rows in self._traj.items()
            }
        from .. import __version__

        provenance = {
            "schema": 1,
            "package_version": __version__,
            "git": git_describe(),
            "engine": "repro.fleet",
            "topology": t.to_dict(),
            **params,
        }
        return FleetResult(
            topology=t.to_dict(),
            params=params,
            ticks=ticks,
            dt_s=self.dt_s,
            timelines=dict(self._channels),
            rebalances=list(self._rebalances),
            summary=summary,
            provenance=provenance,
            trajectory=trajectory,
            phenomena=list(phenomena or []),
        )
