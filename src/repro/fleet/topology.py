"""Fleet topology: the node -> rack -> row -> datacenter tree as arrays.

A :class:`FleetTopology` is the static structure of a simulated
datacenter.  Unlike :class:`~repro.dcm.group.NodeGroup` (per-node
Python objects over simulated IPMI), the fleet keeps every per-node
attribute in a flat numpy array, ordered so that each rack's nodes are
contiguous and each row's racks are contiguous — CSR-style pointer
arrays (``rack_ptr``, ``row_ptr``) delimit the groups, so group
reductions are single ``np.add.reduceat`` calls and fleet size scales
with array length, not object count.

Node attributes come from :class:`NodeClass` templates (idle/busy draw,
cap clamp range, priority), so heterogeneous fleets interleave classes
without per-node objects.  :meth:`FleetTopology.build` constructs a
regular ``rows x racks x nodes`` grid; :meth:`FleetTopology.from_spec`
reads the same shape from a JSON-ready dict (the CLI's ``--spec``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dcm.division import DEFAULT_MAX_CAP_W, DEFAULT_MIN_CAP_W
from ..errors import ConfigError

__all__ = ["NodeClass", "FleetTopology", "DEFAULT_NODE_CLASS"]


@dataclass(frozen=True)
class NodeClass:
    """A template for a population of identical nodes.

    ``idle_w`` / ``busy_w`` bound the node's demand range (utilization
    0 and 1); ``min_cap_w`` / ``max_cap_w`` clamp the caps a budget
    division may assign, exactly like a
    :class:`~repro.dcm.group.NodeGroup` member's range.
    """

    name: str = "paper-node"
    idle_w: float = 110.0
    busy_w: float = 200.0
    min_cap_w: float = DEFAULT_MIN_CAP_W
    max_cap_w: float = DEFAULT_MAX_CAP_W
    priority: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.idle_w <= self.busy_w:
            raise ConfigError(f"{self.name}: need 0 < idle_w <= busy_w")
        if not 0 < self.min_cap_w <= self.max_cap_w:
            raise ConfigError(f"{self.name}: need 0 < min_cap_w <= max_cap_w")
        if self.priority < 1:
            raise ConfigError(f"{self.name}: priority must be >= 1")

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via ``from_dict``)."""
        return {
            "name": self.name,
            "idle_w": self.idle_w,
            "busy_w": self.busy_w,
            "min_cap_w": self.min_cap_w,
            "max_cap_w": self.max_cap_w,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "NodeClass":
        """Rebuild a class from :meth:`to_dict` output."""
        try:
            return cls(**dict(doc))
        except TypeError as exc:
            raise ConfigError(f"bad node class spec: {exc}") from exc


#: The paper's node, fleet-sized: idle ~110 W, peak ~200 W.
DEFAULT_NODE_CLASS = NodeClass()


@dataclass(frozen=True)
class FleetTopology:
    """The immutable structure of a fleet (arrays, not objects).

    Nodes are indexed ``0..n_nodes-1`` in rack order: rack ``r`` owns
    nodes ``rack_ptr[r]:rack_ptr[r+1]``, row ``w`` owns racks
    ``row_ptr[w]:row_ptr[w+1]``.  Per-node attribute arrays are
    parallel to that index.
    """

    rack_ptr: np.ndarray  #: int64[n_racks + 1] node offsets per rack
    row_ptr: np.ndarray  #: int64[n_rows + 1] rack offsets per row
    idle_w: np.ndarray  #: float64[n_nodes]
    busy_w: np.ndarray  #: float64[n_nodes]
    min_cap_w: np.ndarray  #: float64[n_nodes]
    max_cap_w: np.ndarray  #: float64[n_nodes]
    priority: np.ndarray  #: int64[n_nodes]
    node_classes: Tuple[NodeClass, ...] = (DEFAULT_NODE_CLASS,)

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return int(self.rack_ptr[-1])

    @property
    def n_racks(self) -> int:
        """Total rack count."""
        return len(self.rack_ptr) - 1

    @property
    def n_rows(self) -> int:
        """Total row count."""
        return len(self.row_ptr) - 1

    @property
    def rack_of_node(self) -> np.ndarray:
        """int64[n_nodes]: owning rack index per node."""
        return np.repeat(
            np.arange(self.n_racks, dtype=np.int64), np.diff(self.rack_ptr)
        )

    @property
    def row_of_rack(self) -> np.ndarray:
        """int64[n_racks]: owning row index per rack."""
        return np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.row_ptr)
        )

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed topology."""
        if self.n_nodes < 1 or self.n_racks < 1 or self.n_rows < 1:
            raise ConfigError("fleet needs at least one node/rack/row")
        if int(self.row_ptr[-1]) != self.n_racks:
            raise ConfigError("row_ptr does not cover every rack")
        for name in ("idle_w", "busy_w", "min_cap_w", "max_cap_w", "priority"):
            if len(getattr(self, name)) != self.n_nodes:
                raise ConfigError(f"{name} is not parallel to the node index")
        if np.any(np.diff(self.rack_ptr) < 1) or np.any(np.diff(self.row_ptr) < 1):
            raise ConfigError("empty racks/rows are not allowed")

    @classmethod
    def build(
        cls,
        *,
        rows: int,
        racks_per_row: int,
        nodes_per_rack: int,
        node_classes: Sequence[NodeClass] = (DEFAULT_NODE_CLASS,),
    ) -> "FleetTopology":
        """Construct a regular grid, interleaving ``node_classes``.

        Node ``i`` gets class ``node_classes[i % len(node_classes)]``,
        so a heterogeneous fleet mixes classes evenly across racks.
        """
        if rows < 1 or racks_per_row < 1 or nodes_per_rack < 1:
            raise ConfigError("rows/racks_per_row/nodes_per_rack must be >= 1")
        if not node_classes:
            raise ConfigError("need at least one node class")
        n_racks = rows * racks_per_row
        n = n_racks * nodes_per_rack
        rack_ptr = np.arange(n_racks + 1, dtype=np.int64) * nodes_per_rack
        row_ptr = np.arange(rows + 1, dtype=np.int64) * racks_per_row
        classes = tuple(node_classes)
        k = len(classes)
        class_of_node = np.arange(n, dtype=np.int64) % k
        pick = lambda attr: np.array(  # noqa: E731 - tiny local gather
            [getattr(c, attr) for c in classes], dtype=np.float64
        )[class_of_node]
        topo = cls(
            rack_ptr=rack_ptr,
            row_ptr=row_ptr,
            idle_w=pick("idle_w"),
            busy_w=pick("busy_w"),
            min_cap_w=pick("min_cap_w"),
            max_cap_w=pick("max_cap_w"),
            priority=np.array(
                [c.priority for c in classes], dtype=np.int64
            )[class_of_node],
            node_classes=classes,
        )
        topo.validate()
        return topo

    @classmethod
    def from_spec(cls, spec: Mapping) -> "FleetTopology":
        """Build from a JSON-ready dict (the CLI ``--spec`` layout).

        Expected keys: ``rows``, ``racks_per_row``, ``nodes_per_rack``,
        and optionally ``node_classes`` (a list of
        :meth:`NodeClass.to_dict` docs).
        """
        try:
            rows = int(spec["rows"])
            racks_per_row = int(spec["racks_per_row"])
            nodes_per_rack = int(spec["nodes_per_rack"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(
                "topology spec needs integer rows/racks_per_row/"
                f"nodes_per_rack ({exc})"
            ) from exc
        classes = [
            NodeClass.from_dict(doc) for doc in spec.get("node_classes", [])
        ] or [DEFAULT_NODE_CLASS]
        return cls.build(
            rows=rows,
            racks_per_row=racks_per_row,
            nodes_per_rack=nodes_per_rack,
            node_classes=classes,
        )

    def to_dict(self) -> dict:
        """Summary dict for provenance/serialisation (not array dumps)."""
        return {
            "n_nodes": self.n_nodes,
            "n_racks": self.n_racks,
            "n_rows": self.n_rows,
            "node_classes": [c.to_dict() for c in self.node_classes],
        }
