"""Vectorized traffic models driving per-node power demand.

The paper frames capping as most valuable "when the workload is
unpredictable in terms of its power consumption" (Section IV-C); at
fleet scale the unpredictability is the *population's* demand process.
These models produce, per control tick, one demand sample per node —
a whole-fleet numpy array, never a per-node Python loop — using the
same three shapes :mod:`repro.workloads.bursty` gives a single node:

- :class:`FlatTraffic` — constant utilization plus Gaussian wobble
  (the steady half of a :class:`~repro.workloads.bursty.PhaseSpec`);
- :class:`DiurnalTraffic` — a day/night sinusoid with per-node phase
  jitter, the classic datacenter load curve;
- :class:`BurstyTraffic` — a two-state (idle/burst) Markov process per
  node, the vectorized analogue of
  :class:`~repro.workloads.bursty.BurstyWorkload`'s exponential phase
  machine (per-tick geometric transitions have the same mean
  durations);
- :class:`ReplayTraffic` — plays back an explicit ``[ticks, nodes]``
  demand array (the parity harness feeds the same schedule to the
  serial and fleet paths).

A model is bound to a topology once (:meth:`TrafficModel.bind`), then
queried per tick; utilization in ``[0, 1]`` maps affinely onto each
node's ``[idle_w, busy_w]`` range.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Optional

import numpy as np

from ..errors import ConfigError
from .topology import FleetTopology

__all__ = [
    "TrafficModel",
    "FlatTraffic",
    "DiurnalTraffic",
    "BurstyTraffic",
    "ReplayTraffic",
    "make_traffic",
]


class TrafficModel(ABC):
    """Base class: per-tick fleet-wide demand in Watts."""

    def bind(self, topology: FleetTopology, rng: np.random.Generator) -> None:
        """Attach the topology and RNG stream (called once by the engine)."""
        self._topology = topology
        self._rng = rng
        self._span_w = topology.busy_w - topology.idle_w

    def _to_watts(self, utilization: np.ndarray) -> np.ndarray:
        """Map utilization in [0, 1] onto each node's demand range."""
        u = np.clip(utilization, 0.0, 1.0)
        return self._topology.idle_w + u * self._span_w

    @abstractmethod
    def demand_w(self, step: int, t_s: float) -> np.ndarray:
        """Demand array (Watts, one entry per node) for tick ``step``."""

    def describe(self) -> dict:
        """JSON-ready description for provenance."""
        return {"type": type(self).__name__}


class FlatTraffic(TrafficModel):
    """Constant target utilization with Gaussian per-tick wobble."""

    def __init__(
        self, utilization: float = 0.7, noise_sigma: float = 0.03
    ) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigError("utilization must be within [0, 1]")
        if noise_sigma < 0:
            raise ConfigError("noise_sigma must be non-negative")
        self.utilization = float(utilization)
        self.noise_sigma = float(noise_sigma)

    def demand_w(self, step: int, t_s: float) -> np.ndarray:
        """Utilization ``u + N(0, sigma)`` per node, mapped to Watts."""
        n = self._topology.n_nodes
        u = self.utilization + (
            self._rng.normal(0.0, self.noise_sigma, n)
            if self.noise_sigma else 0.0
        )
        return self._to_watts(u)

    def describe(self) -> dict:
        """Type plus the two knobs."""
        return {
            "type": "flat",
            "utilization": self.utilization,
            "noise_sigma": self.noise_sigma,
        }


class DiurnalTraffic(TrafficModel):
    """A day/night sinusoid with per-node phase jitter.

    Utilization swings between ``low`` and ``high`` over ``period_s``
    (default 24 simulated hours).  Each node gets a fixed random phase
    offset up to ``jitter_frac`` of the period, so the fleet's peak is
    realistically smeared rather than perfectly synchronised.
    """

    def __init__(
        self,
        low: float = 0.25,
        high: float = 0.9,
        period_s: float = 86_400.0,
        jitter_frac: float = 0.05,
        noise_sigma: float = 0.02,
    ) -> None:
        if not 0.0 <= low <= high <= 1.0:
            raise ConfigError("need 0 <= low <= high <= 1")
        if period_s <= 0:
            raise ConfigError("period_s must be positive")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ConfigError("jitter_frac must be within [0, 1]")
        self.low = float(low)
        self.high = float(high)
        self.period_s = float(period_s)
        self.jitter_frac = float(jitter_frac)
        self.noise_sigma = float(noise_sigma)

    def bind(self, topology: FleetTopology, rng: np.random.Generator) -> None:
        """Bind and draw each node's fixed phase offset."""
        super().bind(topology, rng)
        self._phase = rng.uniform(
            0.0, 2.0 * np.pi * self.jitter_frac, topology.n_nodes
        )

    def demand_w(self, step: int, t_s: float) -> np.ndarray:
        """The sinusoid sampled at ``t_s`` with per-node phase/noise."""
        mid = 0.5 * (self.high + self.low)
        amp = 0.5 * (self.high - self.low)
        theta = 2.0 * np.pi * t_s / self.period_s + self._phase
        u = mid - amp * np.cos(theta)
        if self.noise_sigma:
            u = u + self._rng.normal(0.0, self.noise_sigma, len(u))
        return self._to_watts(u)

    def describe(self) -> dict:
        """Type plus the sinusoid parameters."""
        return {
            "type": "diurnal",
            "low": self.low,
            "high": self.high,
            "period_s": self.period_s,
            "jitter_frac": self.jitter_frac,
            "noise_sigma": self.noise_sigma,
        }


class BurstyTraffic(TrafficModel):
    """Per-node two-state Markov (idle/burst) demand.

    The vectorized analogue of
    :class:`~repro.workloads.bursty.BurstyWorkload`: each node
    alternates idle phases (utilization ``idle_util``) and bursts
    (``burst_util``) whose durations are geometrically distributed per
    tick with the given means — the discrete-time version of the
    single-node model's exponential phases.
    """

    def __init__(
        self,
        mean_burst_s: float = 120.0,
        mean_idle_s: float = 240.0,
        burst_util: float = 0.95,
        idle_util: float = 0.1,
        noise_sigma: float = 0.02,
    ) -> None:
        if mean_burst_s <= 0 or mean_idle_s <= 0:
            raise ConfigError("phase means must be positive")
        if not 0.0 <= idle_util <= burst_util <= 1.0:
            raise ConfigError("need 0 <= idle_util <= burst_util <= 1")
        self.mean_burst_s = float(mean_burst_s)
        self.mean_idle_s = float(mean_idle_s)
        self.burst_util = float(burst_util)
        self.idle_util = float(idle_util)
        self.noise_sigma = float(noise_sigma)

    def bind(self, topology: FleetTopology, rng: np.random.Generator) -> None:
        """Bind and start each node in a phase matching the duty cycle."""
        super().bind(topology, rng)
        p_burst = self.mean_burst_s / (self.mean_burst_s + self.mean_idle_s)
        self._bursting = rng.random(topology.n_nodes) < p_burst

    def demand_w(self, step: int, t_s: float) -> np.ndarray:
        """Advance every node's phase machine one tick and emit demand.

        The first call (step 0) emits the initial states; transitions
        happen on subsequent calls using the tick spacing implied by
        ``t_s`` differences (the engine calls with a fixed ``dt``).
        """
        if step > 0:
            dt = t_s - self._last_t
            flips = self._rng.random(len(self._bursting))
            end_burst = self._bursting & (flips < dt / self.mean_burst_s)
            start_burst = ~self._bursting & (flips < dt / self.mean_idle_s)
            self._bursting = (self._bursting & ~end_burst) | start_burst
        self._last_t = t_s
        u = np.where(self._bursting, self.burst_util, self.idle_util)
        if self.noise_sigma:
            u = u + self._rng.normal(0.0, self.noise_sigma, len(u))
        return self._to_watts(u)

    def describe(self) -> dict:
        """Type plus the phase-machine parameters."""
        return {
            "type": "bursty",
            "mean_burst_s": self.mean_burst_s,
            "mean_idle_s": self.mean_idle_s,
            "burst_util": self.burst_util,
            "idle_util": self.idle_util,
            "noise_sigma": self.noise_sigma,
        }


class ReplayTraffic(TrafficModel):
    """Plays back an explicit ``[ticks, nodes]`` demand array.

    The parity harness uses this to feed byte-for-byte the same demand
    schedule to the serial :class:`~repro.dcm.manager.DataCenterManager`
    loop and the fleet engine.  Steps beyond the last row repeat it.
    """

    def __init__(self, demand_w_by_tick: np.ndarray) -> None:
        arr = np.asarray(demand_w_by_tick, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] < 1:
            raise ConfigError("replay demand must be a [ticks, nodes] array")
        self._demand = arr

    def bind(self, topology: FleetTopology, rng: np.random.Generator) -> None:
        """Bind; the replay array must match the topology's node count."""
        super().bind(topology, rng)
        if self._demand.shape[1] != topology.n_nodes:
            raise ConfigError(
                f"replay demand has {self._demand.shape[1]} nodes, "
                f"topology has {topology.n_nodes}"
            )

    def demand_w(self, step: int, t_s: float) -> np.ndarray:
        """The recorded row for ``step`` (last row repeats past the end)."""
        return self._demand[min(step, len(self._demand) - 1)]

    def describe(self) -> dict:
        """Type plus the replay shape."""
        return {"type": "replay", "ticks": int(self._demand.shape[0])}


_TRAFFIC_TYPES = {
    "flat": FlatTraffic,
    "diurnal": DiurnalTraffic,
    "bursty": BurstyTraffic,
}


def make_traffic(spec: "str | Mapping") -> TrafficModel:
    """Build a traffic model from a name or a JSON-ready dict.

    A bare string picks a model with default knobs; a dict must carry
    ``type`` plus that model's constructor arguments.
    """
    if isinstance(spec, str):
        doc: dict = {"type": spec}
    else:
        doc = dict(spec)
    kind = doc.pop("type", None)
    try:
        factory = _TRAFFIC_TYPES[kind]
    except KeyError:
        raise ConfigError(
            f"unknown traffic model {kind!r} "
            f"(choose from {sorted(_TRAFFIC_TYPES)})"
        ) from None
    try:
        return factory(**doc)
    except TypeError as exc:
        raise ConfigError(f"bad traffic spec for {kind!r}: {exc}") from exc
