"""Human-readable rendering of fleet runs and parity checks.

Pure string builders (no I/O) shared by ``repro-powercap fleet`` and
``examples/datacenter_group_cap.py`` — the CLI decides where the text
goes.
"""

from __future__ import annotations

from typing import List

from .engine import FleetResult
from .parity import ParityResult

__all__ = ["format_fleet_summary", "format_parity_table"]


def _rule(width: int = 66) -> str:
    return "-" * width


def format_fleet_summary(result: FleetResult) -> str:
    """A terminal-width panel summarizing one fleet run."""
    s = result.summary
    lines: List[str] = []
    lines.append(_rule())
    lines.append(
        f"fleet: {s['nodes']} nodes / {s['racks']} racks / "
        f"{s['rows']} rows | strategy={result.params['strategy']} "
        f"budget={s['budget_w']:.0f} W"
    )
    lines.append(_rule())
    lines.append(
        f"  {s['ticks']} ticks x {result.dt_s:g} s "
        f"({s['node_steps']:,} node-steps"
        + (
            f", {s['node_steps_per_s']:,.0f} node-steps/s"
            if s["node_steps_per_s"]
            else ""
        )
        + ")"
    )
    lines.append(
        f"  energy served {s['served_wh']:,.1f} Wh of "
        f"{s['demand_wh']:,.1f} Wh demanded "
        f"(throughput attainment {s['throughput_attainment']:.4f})"
    )
    lines.append(
        f"  SLO attainment {s['slo_attainment']:.4f} | worst node debt "
        f"{s['worst_node_debt_wh']:.3f} Wh"
    )
    lines.append(
        f"  rebalances {s['rebalances_applied']}/"
        f"{s['rebalances_evaluated']} applied | escalations "
        + ", ".join(
            f"{k}={v}" for k, v in s["escalations"].items()
        )
    )
    for name in (
        "fleet_power_w",
        "fleet_demand_w",
        "fleet_shortfall_w",
        "slo_attainment",
        "latency_inflation",
    ):
        channel = result.timelines.get(name)
        if channel is None or len(channel) == 0:
            continue
        lines.append(
            f"  {name:>20s}: mean {channel.time_weighted_mean():10.2f}  "
            f"min {channel.vmin():10.2f}  max {channel.vmax():10.2f}"
        )
    lines.append(_rule())
    return "\n".join(lines)


def format_parity_table(parity: ParityResult) -> str:
    """Serial-vs-fleet comparison table for one parity run."""
    doc = parity.to_dict()
    lines: List[str] = []
    lines.append(_rule())
    lines.append(
        f"parity: serial DCM stack vs repro.fleet | "
        f"{doc['n_nodes']} nodes x {doc['ticks']} ticks, "
        f"strategy={doc['strategy']}"
    )
    lines.append(_rule())
    lines.append(f"  {'':28s}{'serial':>12s}{'fleet':>12s}")
    lines.append(
        f"  {'rebalances applied':28s}"
        f"{doc['rebalances_applied_serial']:>12d}"
        f"{doc['rebalances_applied_fleet']:>12d}"
    )
    lines.append(
        f"  {'decision times/flags':28s}"
        + f"{'match' if doc['decisions_match'] else 'MISMATCH':>24s}"
    )
    lines.append(
        f"  {'max cap delta (W)':28s}"
        + f"{doc['max_cap_delta_w']:>24.3e}"
    )
    lines.append(
        f"  {'max reading delta (W)':28s}"
        + f"{doc['max_reading_delta_w']:>24.3e}"
    )
    lines.append(
        f"  {'contract (tol %.0e W)' % doc['tolerance_w']:28s}"
        + f"{'OK' if doc['ok'] else 'VIOLATED':>24s}"
    )
    lines.append(_rule())
    return "\n".join(lines)
