"""The parity contract: fleet engine vs the serial DCM stack.

:func:`run_parity` steps the *same* small topology (one row, one rack,
up to ~8 nodes) and the *same* per-tick demand schedule through two
implementations:

- the **serial** path — real :class:`~repro.arch.node.Node` +
  :class:`~repro.bmc.bmc.Bmc` objects on a lossless simulated LAN,
  polled by :class:`~repro.dcm.manager.DataCenterManager` and
  rebalanced by a :class:`~repro.dcm.balancer.GroupBalancer`;
- the **fleet** path — :class:`~repro.fleet.engine.FleetEngine` with
  :class:`~repro.fleet.traffic.ReplayTraffic` playing back the
  identical schedule.

Both sides see int-rounded cumulative-average power readings, divide
with the shared :mod:`repro.dcm.division` semantics, compare unrounded
targets under the same strict-``>`` hysteresis, and program int-rounded
caps — so the contract is tight:

- rebalance **decisions** (applied / skipped) and their **times** must
  match exactly;
- applied **caps** and polled **readings** must agree within
  ``CAP_TOLERANCE_W`` (they are integer Watts on both sides; the
  tolerance only absorbs float-summation association differences in
  the unrounded division arithmetic).

The contract holds for *feasible* budgets — ``sum(min_cap) <= budget
<= sum(max_cap)`` — where the budget tree's row/rack levels are exact
pass-throughs of a single flat group.  ``tests/fleet/test_parity.py``
enforces all of this in tier 1; docs/FLEET.md documents it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..arch.node import Node
from ..bmc.bmc import Bmc
from ..config import sandy_bridge_config
from ..dcm.balancer import GroupBalancer
from ..dcm.group import DivisionStrategy, NodeGroup
from ..dcm.manager import DataCenterManager
from ..dcm.policy import StaticCapPolicy
from ..errors import ConfigError
from ..ipmi.transport import LanTransport
from ..rng import DEFAULT_SEED, RngStreams
from .engine import FleetEngine
from .topology import DEFAULT_NODE_CLASS, FleetTopology, NodeClass
from .traffic import ReplayTraffic

__all__ = ["CAP_TOLERANCE_W", "ParityResult", "parity_topology", "run_parity"]

#: Documented cap/reading tolerance: both sides program integer Watts,
#: so any disagreement beyond float-sum association noise is a bug.
CAP_TOLERANCE_W = 1e-6


@dataclass(frozen=True)
class ParityResult:
    """Outcome of one serial-vs-fleet parity run."""

    n_nodes: int
    ticks: int
    strategy: str
    #: Largest |serial - fleet| applied cap over all (tick, node) where
    #: both sides had armed caps.
    max_cap_delta_w: float
    #: Largest |serial - fleet| polled power reading.
    max_reading_delta_w: float
    #: True when every tick's armed/unarmed state matched per node.
    armed_states_match: bool
    #: (time_s, applied) per rebalance decision, serial side.
    serial_decisions: Tuple[Tuple[float, bool], ...]
    #: (time_s, applied) per rebalance decision, fleet side.
    fleet_decisions: Tuple[Tuple[float, bool], ...]
    #: [ticks, nodes] applied caps per side (inf = unarmed).
    serial_caps_w: np.ndarray
    fleet_caps_w: np.ndarray

    @property
    def decisions_match(self) -> bool:
        """Whether rebalance times and applied flags agree exactly."""
        return self.serial_decisions == self.fleet_decisions

    def ok(self, tolerance_w: float = CAP_TOLERANCE_W) -> bool:
        """The whole contract: decisions exact, values within tolerance."""
        return (
            self.decisions_match
            and self.armed_states_match
            and self.max_cap_delta_w <= tolerance_w
            and self.max_reading_delta_w <= tolerance_w
        )

    def to_dict(self) -> dict:
        """JSON-ready summary (for the CLI / example comparison table)."""
        return {
            "n_nodes": self.n_nodes,
            "ticks": self.ticks,
            "strategy": self.strategy,
            "max_cap_delta_w": self.max_cap_delta_w,
            "max_reading_delta_w": self.max_reading_delta_w,
            "decisions_match": self.decisions_match,
            "armed_states_match": self.armed_states_match,
            "rebalances_applied_serial": sum(
                1 for _, a in self.serial_decisions if a
            ),
            "rebalances_applied_fleet": sum(
                1 for _, a in self.fleet_decisions if a
            ),
            "tolerance_w": CAP_TOLERANCE_W,
            "ok": self.ok(),
        }


def parity_topology(
    n_nodes: int,
    node_classes: "Tuple[NodeClass, ...]" = (DEFAULT_NODE_CLASS,),
) -> FleetTopology:
    """A one-row, one-rack fleet — the shape the serial path can mirror."""
    if not 1 <= n_nodes <= 64:
        raise ConfigError("parity topologies are small: 1..64 nodes")
    return FleetTopology.build(
        rows=1,
        racks_per_row=1,
        nodes_per_rack=n_nodes,
        node_classes=node_classes,
    )


def _random_demand(
    topology: FleetTopology, ticks: int, seed: int
) -> np.ndarray:
    """A [ticks, nodes] demand schedule inside every node's range."""
    rng = RngStreams(seed=seed).stream("fleet-parity-demand")
    u = rng.random((ticks, topology.n_nodes))
    return topology.idle_w + u * (topology.busy_w - topology.idle_w)


def _run_serial(
    topology: FleetTopology,
    demand_w: np.ndarray,
    budget_w: float,
    strategy: DivisionStrategy,
    threshold_w: float,
    dt_s: float,
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[float, bool]]]:
    """The reference loop: Nodes + BMCs + DCM + NodeGroup + balancer.

    Per tick, in the same order as :meth:`FleetEngine.step`: serve
    ``min(demand, armed cap)``, feed it to the BMC statistics, poll
    via :meth:`DataCenterManager.tick`, then let the balancer decide.
    After an applied rebalance each node's policy is pinned to its
    programmed cap so the manager's own policy pass is a no-op (the
    balancer, not a schedule, owns the caps here).
    """
    n = topology.n_nodes
    ticks = len(demand_w)
    lan = LanTransport(
        np.random.default_rng(0),
        drop_probability=0.0,
        corruption_probability=0.0,
    )
    dcm = DataCenterManager(lan)
    config = sandy_bridge_config()
    bmcs: List[Bmc] = []
    ids: List[str] = []
    for i in range(n):
        addr = f"10.9.{i // 250}.{i % 250 + 1}"
        node_id = f"n{i:03d}"
        bmcs.append(
            Bmc(
                Node(config),
                np.random.default_rng(1000 + i),
                lan_address=addr,
                transport=lan,
            )
        )
        ids.append(node_id)
        dcm.register_node(node_id, addr)
    group = NodeGroup(dcm, "fleet-parity", budget_w)
    for i, node_id in enumerate(ids):
        group.add_member(
            node_id,
            priority=int(topology.priority[i]),
            min_cap_w=float(topology.min_cap_w[i]),
            max_cap_w=float(topology.max_cap_w[i]),
        )
    balancer = GroupBalancer(group, strategy, rebalance_threshold_w=threshold_w)

    armed = np.full(n, np.inf)
    caps_t = np.empty((ticks, n))
    readings_t = np.empty((ticks, n))
    decisions: List[Tuple[float, bool]] = []
    for k in range(ticks):
        t = k * dt_s
        power = np.minimum(demand_w[k], armed)
        for i, bmc in enumerate(bmcs):
            bmc.record_power(float(power[i]), dt_s)
        dcm.tick(t)
        record = balancer.tick(t)
        if record.applied:
            for i, node_id in enumerate(ids):
                cap = dcm.node(node_id).applied_cap_w
                dcm.set_policy(node_id, StaticCapPolicy(cap))
                armed[i] = cap
        decisions.append((t, record.applied))
        caps_t[k] = armed
        readings_t[k] = [dcm.node(node_id).history[-1][1] for node_id in ids]
    return caps_t, readings_t, decisions


def run_parity(
    topology: Optional[FleetTopology] = None,
    *,
    ticks: int = 24,
    budget_w: float = 780.0,
    strategy: DivisionStrategy = DivisionStrategy.PROPORTIONAL,
    rebalance_threshold_w: float = 5.0,
    dt_s: float = 1.0,
    seed: int = DEFAULT_SEED,
    demand_w_by_tick: Optional[np.ndarray] = None,
) -> ParityResult:
    """Run both paths on one schedule and diff them.

    ``topology`` defaults to six paper-class nodes in one rack (the
    shape of ``examples/datacenter_group_cap.py``); ``demand_w_by_tick``
    defaults to a seeded uniform schedule inside each node's range.
    """
    topo = topology if topology is not None else parity_topology(6)
    if topo.n_rows != 1 or topo.n_racks != 1:
        raise ConfigError("parity needs a one-row, one-rack topology")
    demand = (
        np.asarray(demand_w_by_tick, dtype=np.float64)
        if demand_w_by_tick is not None
        else _random_demand(topo, ticks, seed)
    )
    if demand.ndim != 2 or demand.shape[1] != topo.n_nodes:
        raise ConfigError("demand schedule must be [ticks, n_nodes]")
    ticks = len(demand)

    serial_caps, serial_readings, serial_decisions = _run_serial(
        topo, demand, budget_w, strategy, rebalance_threshold_w, dt_s
    )

    engine = FleetEngine(
        topo,
        ReplayTraffic(demand),
        budget_w=budget_w,
        strategy=strategy,
        dt_s=dt_s,
        rebalance_every=1,
        rebalance_threshold_w=rebalance_threshold_w,
        seed=seed,
        telemetry=False,
        record_trajectory=True,
    )
    result = engine.run(ticks * dt_s)
    assert result.trajectory is not None
    fleet_caps = np.stack(result.trajectory["applied_w"])
    fleet_readings = np.stack(result.trajectory["reading_w"])
    fleet_decisions = [(r.time_s, r.applied) for r in result.rebalances]

    serial_armed = np.isfinite(serial_caps)
    fleet_armed = np.isfinite(fleet_caps)
    states_match = bool(np.array_equal(serial_armed, fleet_armed))
    both = serial_armed & fleet_armed
    max_cap_delta = (
        float(np.max(np.abs(serial_caps[both] - fleet_caps[both])))
        if both.any()
        else 0.0
    )
    max_reading_delta = float(np.max(np.abs(serial_readings - fleet_readings)))

    return ParityResult(
        n_nodes=topo.n_nodes,
        ticks=ticks,
        strategy=strategy.value,
        max_cap_delta_w=max_cap_delta,
        max_reading_delta_w=max_reading_delta,
        armed_states_match=states_match,
        serial_decisions=tuple(serial_decisions),
        fleet_decisions=tuple(fleet_decisions),
        serial_caps_w=serial_caps,
        fleet_caps_w=fleet_caps,
    )
