"""repro.fleet: vectorized fleet-scale DCM simulation.

The serial stack (:mod:`repro.dcm`) manages one node per Python object
over simulated IPMI — faithful, but it tops out at rack scale.  This
package simulates the *datacenter* the paper's product was sold into:
per-node state lives in flat numpy arrays (10^5–10^6 nodes), a
hierarchical budget tree (node -> rack -> row -> datacenter) divides
power with the exact :class:`~repro.dcm.group.DivisionStrategy`
semantics, traffic models drive demand, and throughput / SLO
attainment come out per run.  A tier-1 parity contract
(:mod:`repro.fleet.parity`) pins small fleets against the serial stack
so the two paths cannot drift.  See docs/FLEET.md.
"""

from .division import divide_groups, group_reduce
from .engine import EscalationConfig, FleetEngine, FleetRebalance, FleetResult
from .health import (
    FleetHealth,
    detect_budget_thrash,
    detect_slo_debt_runaway,
    detect_waterfill_starvation,
)
from .parity import CAP_TOLERANCE_W, ParityResult, parity_topology, run_parity
from .report import format_fleet_summary, format_parity_table
from .topology import DEFAULT_NODE_CLASS, FleetTopology, NodeClass
from .traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    FlatTraffic,
    ReplayTraffic,
    TrafficModel,
    make_traffic,
)

__all__ = [
    "BurstyTraffic",
    "CAP_TOLERANCE_W",
    "DEFAULT_NODE_CLASS",
    "DiurnalTraffic",
    "EscalationConfig",
    "FlatTraffic",
    "FleetEngine",
    "FleetHealth",
    "FleetRebalance",
    "FleetResult",
    "FleetTopology",
    "NodeClass",
    "ParityResult",
    "ReplayTraffic",
    "TrafficModel",
    "detect_budget_thrash",
    "detect_slo_debt_runaway",
    "detect_waterfill_starvation",
    "divide_groups",
    "format_fleet_summary",
    "format_parity_table",
    "group_reduce",
    "make_traffic",
    "parity_topology",
    "run_parity",
]
