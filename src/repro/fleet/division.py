"""Vectorized budget division: the numpy twin of :mod:`repro.dcm.division`.

:func:`divide_groups` computes per-member caps for *many groups at
once*: members live in one flat array where each group's members are
contiguous (delimited by a CSR ``group_ptr``), and every strategy is a
handful of whole-array operations — no per-group Python loop, so one
call divides a 100k-node fleet's racks as fast as a single rack.

The semantics are exactly those of
:func:`repro.dcm.division.divide_budget` (the shared scalar
reference):

- **EQUAL** — ``clip(budget / n, min, max)`` per member;
- **PROPORTIONAL** — ``clip(budget * demand / sum(demands), min, max)``;
- **PRIORITY** — minima first, then a waterfill of the remaining
  budget in (priority descending, member index ascending) order.  The
  serial loop's running ``remaining`` is replaced by the closed form
  ``grant_i = clip(R0 - cumsum_prev(want), 0, want_i)``, which is the
  same fill because grants are non-negative and stop exactly when the
  cumulative want crosses the remaining budget.

``tests/fleet/test_division.py`` pins this module against the scalar
reference over randomized instances, so the two paths cannot drift.
"""

from __future__ import annotations

import numpy as np

from ..dcm.group import DivisionStrategy
from ..errors import PolicyError

__all__ = ["divide_groups", "group_reduce"]


def group_reduce(values: np.ndarray, group_ptr: np.ndarray) -> np.ndarray:
    """Per-group sums of ``values`` (groups contiguous per ``group_ptr``)."""
    return np.add.reduceat(values, group_ptr[:-1])


def divide_groups(
    budgets_w: np.ndarray,
    strategy: DivisionStrategy,
    demands_w: np.ndarray,
    min_caps_w: np.ndarray,
    max_caps_w: np.ndarray,
    priorities: np.ndarray,
    group_ptr: np.ndarray,
    priority_order: "np.ndarray | None" = None,
) -> np.ndarray:
    """Divide each group's budget into member caps, vectorized.

    ``budgets_w`` has one entry per group; every other array is flat
    over members with group ``g`` occupying
    ``group_ptr[g]:group_ptr[g+1]``.  ``priority_order`` optionally
    carries the precomputed PRIORITY fill permutation (see
    :func:`priority_fill_order`); passing it avoids a per-call lexsort
    when priorities are static, as they are in the fleet engine.

    Returns the caps, parallel to the member arrays.
    """
    counts = np.diff(group_ptr)
    if np.any(counts < 1):
        raise PolicyError("cannot divide a budget among zero members")
    budgets = np.repeat(budgets_w, counts)

    if strategy is DivisionStrategy.EQUAL:
        share = budgets / np.repeat(counts, counts)
        return np.clip(share, min_caps_w, max_caps_w)

    if strategy is DivisionStrategy.PROPORTIONAL:
        totals = group_reduce(demands_w, group_ptr)
        share = budgets * demands_w / np.repeat(totals, counts)
        return np.clip(share, min_caps_w, max_caps_w)

    if strategy is DivisionStrategy.PRIORITY:
        order = (
            priority_order
            if priority_order is not None
            else priority_fill_order(priorities, group_ptr)
        )
        # Work in fill order; group boundaries are preserved because the
        # permutation only reorders within groups.
        mins = min_caps_w[order]
        want = np.maximum(
            np.minimum(demands_w[order], max_caps_w[order]) - mins, 0.0
        )
        r0 = budgets_w - group_reduce(min_caps_w, group_ptr)
        cum = np.cumsum(want)
        # cumsum of wants *before* each member, restarted per group.
        starts = cum[group_ptr[1:-1] - 1] if len(group_ptr) > 2 else np.array([])
        offsets = np.concatenate(([0.0], starts))
        cum_prev = cum - want - np.repeat(offsets, counts)
        grant = np.clip(np.repeat(r0, counts) - cum_prev, 0.0, want)
        caps = np.empty_like(min_caps_w)
        caps[order] = mins + grant
        return caps

    raise PolicyError(f"unknown strategy {strategy!r}")


def priority_fill_order(
    priorities: np.ndarray, group_ptr: np.ndarray
) -> np.ndarray:
    """The PRIORITY fill permutation: within each group, priority
    descending with ties broken by member index ascending.

    Precompute once when priorities are static (the fleet engine does)
    and pass to :func:`divide_groups`.
    """
    n = len(priorities)
    counts = np.diff(group_ptr)
    group_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    # lexsort: last key is most significant -> sort by group, then by
    # -priority, then by index (np.lexsort is stable, index implicit).
    return np.lexsort((-np.asarray(priorities), group_of)).astype(np.int64)
